module sparseadapt

go 1.22
