// Package matrix provides the sparse matrix substrate used throughout the
// SparseAdapt reproduction: compressed formats (CSR, CSC, COO), sparse
// vectors, conversions, and the synthetic dataset generators that stand in
// for the paper's SciPy / R-MAT / SuiteSparse / SNAP inputs.
//
// The paper stores matrix A in compressed sparse column (CSC) and matrix B
// in compressed sparse row (CSR) for the outer-product SpMSpM kernel
// (Section 5.4); the formats here mirror that usage.
package matrix

import (
	"errors"
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix. It is the interchange format
// produced by all generators; kernels consume CSR/CSC built from it.
type COO struct {
	Rows, Cols int
	R, C       []int
	V          []float64
}

// NewCOO returns an empty COO matrix of the given shape.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends one entry. Duplicate coordinates are allowed; they are summed
// during conversion to a compressed format, matching SciPy semantics.
func (m *COO) Add(r, c int, v float64) {
	m.R = append(m.R, r)
	m.C = append(m.C, c)
	m.V = append(m.V, v)
}

// NNZ returns the number of stored entries (before duplicate merging).
func (m *COO) NNZ() int { return len(m.V) }

// Validate checks coordinate bounds and slice-length agreement.
func (m *COO) Validate() error {
	if len(m.R) != len(m.C) || len(m.R) != len(m.V) {
		return errors.New("matrix: COO slice lengths disagree")
	}
	for i := range m.R {
		if m.R[i] < 0 || m.R[i] >= m.Rows || m.C[i] < 0 || m.C[i] >= m.Cols {
			return fmt.Errorf("matrix: COO entry %d (%d,%d) out of bounds %dx%d",
				i, m.R[i], m.C[i], m.Rows, m.Cols)
		}
	}
	return nil
}

// CSR is a compressed sparse row matrix. Column indices within each row are
// sorted ascending and unique.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len NNZ
	Val        []float64
}

// CSC is a compressed sparse column matrix. Row indices within each column
// are sorted ascending and unique.
type CSC struct {
	Rows, Cols int
	ColPtr     []int // len Cols+1
	RowIdx     []int // len NNZ
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row r as sub-slices; callers
// must not mutate them.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// Col returns the row indices and values of column c as sub-slices; callers
// must not mutate them.
func (m *CSC) Col(c int) (rows []int, vals []float64) {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

type cooEntry struct {
	r, c int
	v    float64
}

// compress sorts COO entries in (major, minor) order and merges duplicates.
func compress(m *COO, rowMajor bool) []cooEntry {
	es := make([]cooEntry, len(m.V))
	for i := range m.V {
		es[i] = cooEntry{m.R[i], m.C[i], m.V[i]}
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if rowMajor {
			if a.r != b.r {
				return a.r < b.r
			}
			return a.c < b.c
		}
		if a.c != b.c {
			return a.c < b.c
		}
		return a.r < b.r
	})
	out := es[:0]
	for _, e := range es {
		if n := len(out); n > 0 && out[n-1].r == e.r && out[n-1].c == e.c {
			out[n-1].v += e.v
			continue
		}
		out = append(out, e)
	}
	return out
}

// ToCSR converts the COO matrix to CSR form, summing duplicates.
func (m *COO) ToCSR() *CSR {
	es := compress(m, true)
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, len(es)),
		Val:    make([]float64, len(es)),
	}
	for i, e := range es {
		out.RowPtr[e.r+1]++
		out.ColIdx[i] = e.c
		out.Val[i] = e.v
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	return out
}

// ToCSC converts the COO matrix to CSC form, summing duplicates.
func (m *COO) ToCSC() *CSC {
	es := compress(m, false)
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int, m.Cols+1),
		RowIdx: make([]int, len(es)),
		Val:    make([]float64, len(es)),
	}
	for i, e := range es {
		out.ColPtr[e.c+1]++
		out.RowIdx[i] = e.r
		out.Val[i] = e.v
	}
	for c := 0; c < m.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	return out
}

// ToCOO expands the CSR matrix back to coordinate form.
func (m *CSR) ToCOO() *COO {
	out := NewCOO(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			out.Add(r, c, vals[i])
		}
	}
	return out
}

// ToCOO expands the CSC matrix back to coordinate form.
func (m *CSC) ToCOO() *COO {
	out := NewCOO(m.Rows, m.Cols)
	for c := 0; c < m.Cols; c++ {
		rows, vals := m.Col(c)
		for i, r := range rows {
			out.Add(r, c, vals[i])
		}
	}
	return out
}

// ToCSC converts CSR to CSC with a direct O(nnz) counting-sort transpose
// of the index structure — the access pattern the format-conversion cost
// model charges for. A valid CSR input (sorted, unique column indices per
// row) yields output identical to the COO round trip.
func (m *CSR) ToCSC() *CSC {
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int, m.Cols+1),
		RowIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			k := next[c]
			next[c]++
			out.RowIdx[k] = r
			out.Val[k] = vals[i]
		}
	}
	return out
}

// ToCSR converts CSC to CSR, the mirror of (*CSR).ToCSC.
func (m *CSC) ToCSR() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	next := make([]int, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for c := 0; c < m.Cols; c++ {
		rows, vals := m.Col(c)
		for i, r := range rows {
			k := next[r]
			next[r]++
			out.ColIdx[k] = c
			out.Val[k] = vals[i]
		}
	}
	return out
}

// Validate checks the CSR invariants: pointer array monotone from 0 to NNZ
// with the right length, and column indices in bounds and strictly
// increasing within each row.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: CSR negative shape %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: CSR RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Val) {
		return errors.New("matrix: CSR index/value lengths disagree")
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.Val) {
		return fmt.Errorf("matrix: CSR RowPtr endpoints %d..%d, want 0..%d",
			m.RowPtr[0], m.RowPtr[m.Rows], len(m.Val))
	}
	// Vet the whole pointer array before dereferencing ColIdx: a decreasing
	// or out-of-range interior pointer would otherwise index past the
	// arrays below (pairwise checks alone reach the bad row too late).
	for r := 0; r < m.Rows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("matrix: CSR RowPtr decreases at row %d", r)
		}
	}
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.ColIdx[i]
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("matrix: CSR column %d out of bounds in row %d", c, r)
			}
			if i > lo && c <= m.ColIdx[i-1] {
				return fmt.Errorf("matrix: CSR row %d columns not strictly increasing", r)
			}
		}
	}
	return nil
}

// Validate checks the CSC invariants, the mirror of (*CSR).Validate.
func (m *CSC) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: CSC negative shape %dx%d", m.Rows, m.Cols)
	}
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("matrix: CSC ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if len(m.RowIdx) != len(m.Val) {
		return errors.New("matrix: CSC index/value lengths disagree")
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.Cols] != len(m.Val) {
		return fmt.Errorf("matrix: CSC ColPtr endpoints %d..%d, want 0..%d",
			m.ColPtr[0], m.ColPtr[m.Cols], len(m.Val))
	}
	for c := 0; c < m.Cols; c++ {
		if m.ColPtr[c] > m.ColPtr[c+1] {
			return fmt.Errorf("matrix: CSC ColPtr decreases at column %d", c)
		}
	}
	for c := 0; c < m.Cols; c++ {
		lo, hi := m.ColPtr[c], m.ColPtr[c+1]
		for i := lo; i < hi; i++ {
			r := m.RowIdx[i]
			if r < 0 || r >= m.Rows {
				return fmt.Errorf("matrix: CSC row %d out of bounds in column %d", r, c)
			}
			if i > lo && r <= m.RowIdx[i-1] {
				return fmt.Errorf("matrix: CSC column %d rows not strictly increasing", c)
			}
		}
	}
	return nil
}

// Transpose returns the transpose of the matrix in CSR form. Since the CSC
// representation of Aᵀ has the same layout as the CSR representation of A,
// this is a relabelling plus a format flip.
func (m *CSR) Transpose() *CSR {
	return (&CSC{
		Rows:   m.Cols,
		Cols:   m.Rows,
		ColPtr: m.RowPtr,
		RowIdx: m.ColIdx,
		Val:    m.Val,
	}).ToCSR()
}

// Transpose returns the transpose in CSC form.
func (m *CSC) Transpose() *CSC {
	return (&CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: m.ColPtr,
		ColIdx: m.RowIdx,
		Val:    m.Val,
	}).ToCSC()
}

// Dense expands the matrix to a dense row-major [][]float64. Only intended
// for test verification on small matrices.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
		cols, vals := m.Row(r)
		for i, c := range cols {
			d[r][c] = vals[i]
		}
	}
	return d
}

// Density returns NNZ / (Rows*Cols).
func (m *CSR) Density() float64 {
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// Equal reports whether two CSR matrices have identical structure and values
// within tolerance tol.
func (m *CSR) Equal(o *CSR, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] {
			return false
		}
		if d := m.Val[i] - o.Val[i]; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// SparseVec is a sorted index/value sparse vector, the array-of-tuples form
// the paper uses for the SpMSpV operand B (Section 5.4).
type SparseVec struct {
	N   int
	Idx []int
	Val []float64
}

// NewSparseVec builds a sparse vector from parallel index/value slices,
// sorting by index and merging duplicates.
func NewSparseVec(n int, idx []int, val []float64) *SparseVec {
	type iv struct {
		i int
		v float64
	}
	es := make([]iv, len(idx))
	for k := range idx {
		es[k] = iv{idx[k], val[k]}
	}
	sort.Slice(es, func(a, b int) bool { return es[a].i < es[b].i })
	out := &SparseVec{N: n}
	for _, e := range es {
		if k := len(out.Idx); k > 0 && out.Idx[k-1] == e.i {
			out.Val[k-1] += e.v
			continue
		}
		out.Idx = append(out.Idx, e.i)
		out.Val = append(out.Val, e.v)
	}
	return out
}

// NNZ returns the number of stored entries.
func (v *SparseVec) NNZ() int { return len(v.Idx) }

// Dense expands the vector for test verification.
func (v *SparseVec) Dense() []float64 {
	d := make([]float64, v.N)
	for k, i := range v.Idx {
		d[i] = v.Val[k]
	}
	return d
}

// Get returns the value at index i (0 if absent) using binary search.
func (v *SparseVec) Get(i int) float64 {
	k := sort.SearchInts(v.Idx, i)
	if k < len(v.Idx) && v.Idx[k] == i {
		return v.Val[k]
	}
	return 0
}
