package matrix

import (
	"math"
	"math/rand"
)

// Uniform generates an n×m matrix with approximately nnz uniformly random
// nonzeros (duplicates merged, so the realized NNZ can be slightly lower for
// dense targets), mirroring scipy.sparse.random used for the paper's
// synthetic training and evaluation inputs (Section 5.4).
func Uniform(rng *rand.Rand, n, m, nnz int) *COO {
	out := NewCOO(n, m)
	for i := 0; i < nnz; i++ {
		out.Add(rng.Intn(n), rng.Intn(m), 0.5+rng.Float64())
	}
	return out
}

// UniformDensity generates an n×m matrix at the given density.
func UniformDensity(rng *rand.Rand, n, m int, density float64) *COO {
	return Uniform(rng, n, m, int(density*float64(n)*float64(m)))
}

// RMAT generates a power-law matrix with the recursive R-MAT model
// (Chakrabarti et al.), the generator the paper uses for its power-law
// inputs with parameters A = C = 0.1, B = 0.4 (Section 5.4). dim must be a
// power of two; if it is not, it is rounded up internally and coordinates
// outside the requested dim are rejected.
func RMAT(rng *rand.Rand, dim, nnz int, a, b, c float64) *COO {
	levels := 0
	for 1<<levels < dim {
		levels++
	}
	out := NewCOO(dim, dim)
	for out.NNZ() < nnz {
		r, col := 0, 0
		for l := 0; l < levels; l++ {
			p := rng.Float64()
			switch {
			case p < a: // top-left
			case p < a+b: // top-right
				col |= 1 << l
			case p < a+b+c: // bottom-left
				r |= 1 << l
			default: // bottom-right
				r |= 1 << l
				col |= 1 << l
			}
		}
		if r < dim && col < dim {
			out.Add(r, col, 0.5+rng.Float64())
		}
	}
	return out
}

// RMATDefault generates a power-law matrix with the paper's R-MAT
// parameters A = C = 0.1, B = 0.4 (and D = 0.4).
func RMATDefault(rng *rand.Rand, dim, nnz int) *COO {
	return RMAT(rng, dim, nnz, 0.1, 0.4, 0.1)
}

// DenseStrips reproduces the motivating matrix of Figure 1: dense columns
// separating `strips` sparse strips, so that outer products alternate
// between dense (column × dense row) and sparse work, creating implicit
// phase changes during the SpMSpM multiply phase. density is the overall
// target density.
func DenseStrips(rng *rand.Rand, n int, density float64, strips int) *COO {
	out := NewCOO(n, n)
	if strips < 1 {
		strips = 1
	}
	stripW := n / strips
	if stripW < 2 {
		stripW = 2
	}
	// Half the nonzero budget goes into the dense separator columns, half
	// into the sparse strips.
	budget := int(density * float64(n) * float64(n))
	denseCols := make([]int, 0, strips)
	for s := 0; s < strips; s++ {
		denseCols = append(denseCols, s*stripW)
	}
	perDense := budget / 2 / len(denseCols)
	if perDense > n {
		perDense = n
	}
	for _, c := range denseCols {
		for k := 0; k < perDense; k++ {
			out.Add(rng.Intn(n), c, 0.5+rng.Float64())
		}
	}
	sparseBudget := budget - out.NNZ()
	for k := 0; k < sparseBudget; k++ {
		c := rng.Intn(n)
		out.Add(rng.Intn(n), c, 0.5+rng.Float64())
	}
	return out
}

// Banded generates a banded matrix: every nonzero lies within `band`
// diagonals of the main diagonal. This models FEM / structural problems
// (e.g. matrices R04, R09, R12 in the paper) whose nonzeros hug the
// diagonal and therefore show strong spatial locality.
func Banded(rng *rand.Rand, n, nnz, band int) *COO {
	out := NewCOO(n, n)
	for i := 0; i < nnz; i++ {
		r := rng.Intn(n)
		off := rng.Intn(2*band+1) - band
		c := r + off
		if c < 0 {
			c = 0
		}
		if c >= n {
			c = n - 1
		}
		out.Add(r, c, 0.5+rng.Float64())
	}
	return out
}

// Clustered generates a block-clustered matrix: nonzeros concentrate in
// `blocks` dense-ish diagonal blocks with a sprinkle of off-block entries.
// This models chemistry / economics matrices with community structure
// (e.g. R02, R03, R05).
func Clustered(rng *rand.Rand, n, nnz, blocks int, offBlockFrac float64) *COO {
	out := NewCOO(n, n)
	if blocks < 1 {
		blocks = 1
	}
	bw := n / blocks
	if bw < 1 {
		bw = 1
	}
	for i := 0; i < nnz; i++ {
		if rng.Float64() < offBlockFrac {
			out.Add(rng.Intn(n), rng.Intn(n), 0.5+rng.Float64())
			continue
		}
		b := rng.Intn(blocks)
		lo := b * bw
		hi := lo + bw
		if hi > n {
			hi = n
		}
		out.Add(lo+rng.Intn(hi-lo), lo+rng.Intn(hi-lo), 0.5+rng.Float64())
	}
	return out
}

// Grid2D generates the adjacency-like pattern of a 2D five-point stencil
// mesh with sqrt(n)×sqrt(n) nodes, optionally with extra random edges. It
// models "2D/3D problem" matrices (R12 crack) and gives near-uniform
// diagonal locality.
func Grid2D(rng *rand.Rand, n, extraNNZ int) *COO {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	dim := side * side
	out := NewCOO(dim, dim)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := r*side + c
			out.Add(v, v, 4)
			if c+1 < side {
				out.Add(v, v+1, -1)
				out.Add(v+1, v, -1)
			}
			if r+1 < side {
				out.Add(v, v+side, -1)
				out.Add(v+side, v, -1)
			}
		}
	}
	for i := 0; i < extraNNZ; i++ {
		out.Add(rng.Intn(dim), rng.Intn(dim), 0.5+rng.Float64())
	}
	return out
}

// Bipartitish generates a matrix with a few ultra-dense hub rows/columns on
// top of a sparse background, approximating social-network / peer-to-peer
// graphs (R01, R07, R10, R11, R15, R16) whose degree distribution is heavy
// tailed.
func Bipartitish(rng *rand.Rand, n, nnz, hubs int) *COO {
	out := NewCOO(n, n)
	if hubs < 1 {
		hubs = 1
	}
	hubBudget := nnz / 2
	for i := 0; i < hubBudget; i++ {
		h := rng.Intn(hubs)
		if rng.Intn(2) == 0 {
			out.Add(h, rng.Intn(n), 0.5+rng.Float64())
		} else {
			out.Add(rng.Intn(n), h, 0.5+rng.Float64())
		}
	}
	for out.NNZ() < nnz {
		out.Add(rng.Intn(n), rng.Intn(n), 0.5+rng.Float64())
	}
	return out
}

// BlockTridiag generates a block-tridiagonal pattern typical of optimal
// control problems (R08 spaceStation, R13 kineticBatchReactor): dense
// blocks along the diagonal plus coupling blocks above and below.
func BlockTridiag(rng *rand.Rand, n, nnz, blockSize int) *COO {
	out := NewCOO(n, n)
	if blockSize < 2 {
		blockSize = 2
	}
	blocks := n / blockSize
	if blocks < 1 {
		blocks = 1
	}
	for i := 0; i < nnz; i++ {
		b := rng.Intn(blocks)
		db := rng.Intn(3) - 1 // -1, 0, +1 → sub/main/super block diagonal
		tb := b + db
		if tb < 0 || tb >= blocks {
			tb = b
		}
		r := b*blockSize + rng.Intn(blockSize)
		c := tb*blockSize + rng.Intn(blockSize)
		if r < n && c < n {
			out.Add(r, c, 0.5+rng.Float64())
		}
	}
	return out
}

// RandomVec generates a sparse vector of length n with the given density,
// as used for the SpMSpV operand (50% dense in the paper's Figure 5).
func RandomVec(rng *rand.Rand, n int, density float64) *SparseVec {
	var idx []int
	var val []float64
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			idx = append(idx, i)
			val = append(val, 0.5+rng.Float64())
		}
	}
	if len(idx) == 0 {
		idx = append(idx, rng.Intn(n))
		val = append(val, 1)
	}
	return NewSparseVec(n, idx, val)
}
