package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSRBasic(t *testing.T) {
	m := NewCOO(3, 4)
	m.Add(0, 1, 2)
	m.Add(2, 3, 5)
	m.Add(1, 0, -1)
	m.Add(0, 1, 3) // duplicate, must be summed
	csr := m.ToCSR()
	if csr.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates merged)", csr.NNZ())
	}
	d := csr.Dense()
	if d[0][1] != 5 || d[2][3] != 5 || d[1][0] != -1 {
		t.Fatalf("dense = %v", d)
	}
}

func TestCOOToCSCBasic(t *testing.T) {
	m := NewCOO(3, 3)
	m.Add(0, 0, 1)
	m.Add(2, 0, 2)
	m.Add(1, 2, 3)
	csc := m.ToCSC()
	rows, vals := csc.Col(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("col 0 = %v %v", rows, vals)
	}
	if r, _ := csc.Col(1); len(r) != 0 {
		t.Fatalf("col 1 should be empty")
	}
}

func TestValidate(t *testing.T) {
	m := NewCOO(2, 2)
	m.Add(0, 0, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	m.Add(2, 0, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-bounds entry accepted")
	}
	bad := &COO{Rows: 2, Cols: 2, R: []int{0}, C: []int{0, 1}, V: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
}

func randomCOO(rng *rand.Rand, maxDim, maxNNZ int) *COO {
	n := 1 + rng.Intn(maxDim)
	m := 1 + rng.Intn(maxDim)
	out := NewCOO(n, m)
	for i := 0; i < rng.Intn(maxNNZ+1); i++ {
		out.Add(rng.Intn(n), rng.Intn(m), float64(rng.Intn(20))-10)
	}
	return out
}

func denseOf(m *COO) [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
	}
	for i := range m.V {
		d[m.R[i]][m.C[i]] += m.V[i]
	}
	return d
}

func denseEq(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if d := a[i][j] - b[i][j]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
	}
	return true
}

// Property: COO→CSR and COO→CSC preserve the dense expansion.
func TestQuickCompressionPreservesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 12, 40)
		want := denseOf(m)
		if !denseEq(want, m.ToCSR().Dense()) {
			return false
		}
		return denseEq(want, m.ToCSC().ToCSR().Dense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and swaps coordinates.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 10, 30).ToCSR()
		tt := m.Transpose().Transpose()
		return m.Equal(tt, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR row indices are sorted and strictly increasing within rows.
func TestQuickCSRSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 15, 80).ToCSR()
		for r := 0; r < m.Rows; r++ {
			cols, _ := m.Row(r)
			for i := 1; i < len(cols); i++ {
				if cols[i] <= cols[i-1] {
					return false
				}
			}
		}
		return m.RowPtr[m.Rows] == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseVec(t *testing.T) {
	v := NewSparseVec(10, []int{5, 1, 5, 3}, []float64{1, 2, 4, 3})
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", v.NNZ())
	}
	if v.Get(5) != 5 {
		t.Fatalf("Get(5) = %v, want 5 (duplicates merged)", v.Get(5))
	}
	if v.Get(0) != 0 {
		t.Fatalf("Get(0) = %v, want 0", v.Get(0))
	}
	for i := 1; i < len(v.Idx); i++ {
		if v.Idx[i] <= v.Idx[i-1] {
			t.Fatalf("indices not sorted: %v", v.Idx)
		}
	}
}

func TestUniformGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Uniform(rng, 100, 200, 500)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 500 {
		t.Fatalf("NNZ = %d, want 500", m.NNZ())
	}
	if m.Rows != 100 || m.Cols != 200 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RMATDefault(rng, 256, 4000)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power-law structure: with A=C=0.1, B=0.4 the column distribution is
	// heavily skewed, so the max column degree should far exceed the mean.
	deg := make([]int, 256)
	for _, c := range m.C {
		deg[c]++
	}
	max, sum := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		sum += d
	}
	mean := float64(sum) / 256
	if float64(max) < 4*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", max, mean)
	}
}

func TestBandedStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Banded(rng, 200, 1000, 10)
	for i := range m.R {
		d := m.R[i] - m.C[i]
		if d < -10 || d > 10 {
			t.Fatalf("entry (%d,%d) outside band", m.R[i], m.C[i])
		}
	}
}

func TestDenseStripsHasDenseColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := DenseStrips(rng, 128, 0.2, 8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	csc := m.ToCSC()
	// The separator columns must be much denser than the average column.
	maxCol, total := 0, 0
	for c := 0; c < 128; c++ {
		n := csc.ColPtr[c+1] - csc.ColPtr[c]
		if n > maxCol {
			maxCol = n
		}
		total += n
	}
	if float64(maxCol) < 2*float64(total)/128 {
		t.Fatalf("no dense separator columns: max %d mean %.1f", maxCol, float64(total)/128)
	}
}

func TestAllDatasetEntriesGenerate(t *testing.T) {
	for _, e := range Dataset {
		m := e.Generate(0.05, 42)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if m.NNZ() == 0 {
			t.Fatalf("%s: empty matrix", e.ID)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	e, err := Entry("R07")
	if err != nil {
		t.Fatal(err)
	}
	a := e.Generate(0.1, 7).ToCSR()
	b := e.Generate(0.1, 7).ToCSR()
	if !a.Equal(b, 0) {
		t.Fatal("generation not deterministic for fixed seed")
	}
}

func TestEntryUnknown(t *testing.T) {
	if _, err := Entry("R99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestRandomVecDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := RandomVec(rng, 1000, 0.5)
	if v.NNZ() < 400 || v.NNZ() > 600 {
		t.Fatalf("NNZ = %d, want ~500", v.NNZ())
	}
}

func TestGrid2DSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Grid2D(rng, 100, 0).ToCSR()
	mt := m.Transpose()
	if !m.Equal(mt, 1e-12) {
		t.Fatal("stencil matrix not symmetric")
	}
}

func TestStructureClassString(t *testing.T) {
	classes := []StructureClass{StructUniform, StructPowerLaw, StructBanded,
		StructClustered, StructGrid, StructHub, StructBlockTridiag, StructDenseStrips}
	seen := map[string]bool{}
	for _, c := range classes {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate class name %q", s)
		}
		seen[s] = true
	}
	if StructureClass(99).String() != "unknown" {
		t.Fatal("out-of-range class should be unknown")
	}
}
