package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	d := m.ToCSR().Dense()
	if d[0][0] != 2.5 || d[2][3] != -1 || d[1][1] != 7 {
		t.Fatalf("values wrong: %v", d)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 4
3 3 9
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToCSR().Dense()
	if d[1][0] != 4 || d[0][1] != 4 {
		t.Fatalf("symmetric mirror missing: %v", d)
	}
	if d[2][2] != 9 {
		t.Fatal("diagonal must not be duplicated")
	}
	if m.ToCSR().NNZ() != 3 {
		t.Fatalf("NNZ %d, want 3", m.ToCSR().NNZ())
	}
}

func TestReadMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer skew-symmetric
2 2 1
2 1 5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToCSR().Dense()
	if d[1][0] != 5 || d[0][1] != -5 {
		t.Fatalf("skew mirror wrong: %v", d)
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToCSR().Dense()
	if d[0][1] != 1 || d[1][0] != 1 {
		t.Fatalf("pattern values wrong: %v", d)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n", // out of bounds
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n", // unparsable
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",   // missing value
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted:\n%s", i, c)
		}
	}
}

// Property: write → read round trip preserves the dense expansion.
func TestQuickMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 10, 30)
		if m.Rows == 0 || m.Cols == 0 {
			return true
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return denseEq(denseOf(m), got.ToCSR().Dense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
