package matrix

import (
	"fmt"
	"math/rand"
	"sort"
)

// StructureClass labels the sparsity-structure family a dataset entry is
// generated from. The paper's real-world matrices (Table 5) come from
// SuiteSparse and SNAP, which are not redistributable offline; each is
// replaced by a synthetic generator of the same structural class at the
// published dimension and NNZ (see DESIGN.md, substitution table).
type StructureClass int

const (
	StructUniform StructureClass = iota
	StructPowerLaw
	StructBanded
	StructClustered
	StructGrid
	StructHub
	StructBlockTridiag
	StructDenseStrips
)

// String returns a short human-readable class name.
func (s StructureClass) String() string {
	switch s {
	case StructUniform:
		return "uniform"
	case StructPowerLaw:
		return "power-law"
	case StructBanded:
		return "banded"
	case StructClustered:
		return "clustered"
	case StructGrid:
		return "grid"
	case StructHub:
		return "hub"
	case StructBlockTridiag:
		return "block-tridiag"
	case StructDenseStrips:
		return "dense-strips"
	default:
		return "unknown"
	}
}

// DatasetEntry describes one matrix of the evaluation suite (Table 5).
type DatasetEntry struct {
	ID     string
	Name   string
	Domain string
	Dim    int
	NNZ    int
	Class  StructureClass
}

// Dataset is the evaluation suite of Table 5: synthetic U1–U3 and P1–P3 on
// top, real-world stand-ins R01–R16 below, each at the published dimension
// and NNZ.
var Dataset = []DatasetEntry{
	{"U1", "uniform-25k", "Synthetic", 8192, 25000, StructUniform},
	{"U2", "uniform-50k", "Synthetic", 8192, 50000, StructUniform},
	{"U3", "uniform-100k", "Synthetic", 8192, 100000, StructUniform},
	{"P1", "rmat-25k", "Synthetic", 8192, 25000, StructPowerLaw},
	{"P2", "rmat-50k", "Synthetic", 8192, 50000, StructPowerLaw},
	{"P3", "rmat-100k", "Synthetic", 8192, 100000, StructPowerLaw},

	{"R01", "California", "Directed Graph", 9700, 16200, StructHub},
	{"R02", "Si2", "Quant. Chemistry", 800, 17800, StructClustered},
	{"R03", "bayer09", "Chemical Simulation", 3100, 11800, StructClustered},
	{"R04", "bcsstk08", "Structural Problem", 1100, 13000, StructBanded},
	{"R05", "coater1", "Comp. Fluid Dyn.", 1300, 19500, StructBanded},
	{"R06", "gemat12", "Power Network", 4900, 33000, StructBanded},
	{"R07", "p2p-Gnutella08", "Directed Graph", 6300, 20800, StructPowerLaw},
	{"R08", "spaceStation_11", "Optimal Control", 1400, 19000, StructBlockTridiag},

	{"R09", "EX3", "Comp. Fluid Dyn.", 1800, 52700, StructBanded},
	{"R10", "Oregon-1", "Undirected Graph", 11500, 46800, StructPowerLaw},
	{"R11", "as-22july06", "Undirected Graph", 23000, 96900, StructPowerLaw},
	{"R12", "crack", "2D/3D Problem", 10200, 60800, StructGrid},
	{"R13", "kineticBatchReactor_3", "Optimal Control", 5100, 53200, StructBlockTridiag},
	{"R14", "nopoly", "Undirected Graph", 10800, 70800, StructPowerLaw},
	{"R15", "soc-sign-bitcoin-otc", "Directed Graph", 5900, 35600, StructPowerLaw},
	{"R16", "wiki-Vote_11", "Directed Graph", 8300, 103700, StructHub},
}

// Entry looks up a dataset entry by ID (e.g. "R07", "P3").
func Entry(id string) (DatasetEntry, error) {
	for _, e := range Dataset {
		if e.ID == id {
			return e, nil
		}
	}
	return DatasetEntry{}, fmt.Errorf("matrix: unknown dataset entry %q", id)
}

// IDs returns the IDs of all dataset entries, sorted.
func IDs() []string {
	out := make([]string, len(Dataset))
	for i, e := range Dataset {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

// Generate materializes the dataset entry at the given scale. scale=1
// reproduces the published dimension and NNZ; smaller scales shrink both
// proportionally (dimension by scale, NNZ by scale) so simulation cost in
// tests stays bounded while the structure class is preserved. Generation is
// deterministic for a given seed.
func (e DatasetEntry) Generate(scale float64, seed int64) *COO {
	if scale <= 0 {
		scale = 1
	}
	dim := int(float64(e.Dim) * scale)
	if dim < 16 {
		dim = 16
	}
	nnz := int(float64(e.NNZ) * scale)
	if nnz < dim {
		nnz = dim
	}
	rng := rand.New(rand.NewSource(seed))
	switch e.Class {
	case StructUniform:
		return Uniform(rng, dim, dim, nnz)
	case StructPowerLaw:
		return RMATDefault(rng, dim, nnz)
	case StructBanded:
		band := dim / 32
		if band < 4 {
			band = 4
		}
		return Banded(rng, dim, nnz, band)
	case StructClustered:
		blocks := 8
		return Clustered(rng, dim, nnz, blocks, 0.1)
	case StructGrid:
		return Grid2D(rng, dim, nnz/8)
	case StructHub:
		hubs := dim / 64
		if hubs < 4 {
			hubs = 4
		}
		return Bipartitish(rng, dim, nnz, hubs)
	case StructBlockTridiag:
		bs := dim / 16
		if bs < 4 {
			bs = 4
		}
		return BlockTridiag(rng, dim, nnz, bs)
	case StructDenseStrips:
		return DenseStrips(rng, dim, float64(nnz)/float64(dim)/float64(dim), 8)
	default:
		return Uniform(rng, dim, dim, nnz)
	}
}
