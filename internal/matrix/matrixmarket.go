package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O. The paper's real-world inputs come from SuiteSparse
// and SNAP, which distribute matrices in the MatrixMarket coordinate
// format; this reader/writer lets users substitute the bundled synthetic
// stand-ins with the genuine files when they have them.
//
// Supported: `%%MatrixMarket matrix coordinate <real|integer|pattern>
// <general|symmetric|skew-symmetric>`. Pattern entries get value 1;
// symmetric entries are mirrored; skew-symmetric entries are mirrored with
// negated value.

// ReadMatrixMarket parses a MatrixMarket coordinate stream into COO form.
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrix: not a MatrixMarket header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("matrix: unsupported format %q (only coordinate)", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrix: unsupported field %q", field)
	}
	sym := header[4]
	switch sym {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrix: unsupported symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("matrix: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: bad dimensions %dx%d", rows, cols)
	}

	out := NewCOO(rows, cols)
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("matrix: bad entry %q", line)
		}
		r1, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad row in %q: %w", line, err)
		}
		c1, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad col in %q: %w", line, err)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("matrix: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: bad value in %q: %w", line, err)
			}
		}
		ri, ci := r1-1, c1-1 // MatrixMarket is 1-indexed
		if ri < 0 || ri >= rows || ci < 0 || ci >= cols {
			return nil, fmt.Errorf("matrix: entry (%d,%d) outside %dx%d", r1, c1, rows, cols)
		}
		out.Add(ri, ci, v)
		switch sym {
		case "symmetric":
			if ri != ci {
				out.Add(ci, ri, v)
			}
		case "skew-symmetric":
			if ri != ci {
				out.Add(ci, ri, -v)
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("matrix: expected %d entries, got %d", nnz, read)
	}
	return out, nil
}

// WriteMatrixMarket writes the matrix in general real coordinate format.
func WriteMatrixMarket(w io.Writer, m *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	// Merge duplicates so the declared NNZ is exact.
	csr := m.ToCSR()
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", csr.Rows, csr.Cols, csr.NNZ()); err != nil {
		return err
	}
	for r := 0; r < csr.Rows; r++ {
		cols, vals := csr.Row(r)
		for i, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, c+1, vals[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
