package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFormatConverters hardens the CSR/CSC/COO converters behind the
// widened Format axis. The raw bytes are decoded two ways: (1) directly
// into a CSR's index arrays — usually malformed (negative or decreasing
// pointers, out-of-bounds or unsorted columns, length mismatches), which
// Validate must reject without panicking; (2) into in-range COO
// coordinates — duplicates and empty rows/cols included — which must
// compress cleanly and round-trip bit-exactly through every format.
func FuzzFormatConverters(f *testing.F) {
	f.Add(uint8(3), uint8(3), []byte{0, 1, 2, 2}, []byte{0, 1, 2, 0})
	f.Add(uint8(0), uint8(0), []byte{0}, []byte{})
	f.Add(uint8(2), uint8(2), []byte{0, 0, 0}, []byte{})           // all rows empty
	f.Add(uint8(2), uint8(2), []byte{0, 2, 1}, []byte{1, 0})       // decreasing pointer
	f.Add(uint8(2), uint8(2), []byte{0, 1, 2}, []byte{5, 1})       // column out of bounds
	f.Add(uint8(4), uint8(4), []byte{0, 2, 2, 2, 2}, []byte{1, 1}) // duplicate column
	f.Fuzz(func(t *testing.T, rows, cols uint8, ptrBytes, idxBytes []byte) {
		r, c := int(rows%40), int(cols%40)

		// Malformed-array probe: Validate must classify, never panic.
		rowPtr := make([]int, len(ptrBytes))
		for i, b := range ptrBytes {
			rowPtr[i] = int(int8(b))
		}
		colIdx := make([]int, len(idxBytes))
		for i, b := range idxBytes {
			colIdx[i] = int(int8(b))
		}
		csr := &CSR{Rows: r, Cols: c, RowPtr: rowPtr, ColIdx: colIdx, Val: make([]float64, len(colIdx))}
		for i := range csr.Val {
			csr.Val[i] = float64(i + 1)
		}
		if err := csr.Validate(); err == nil {
			// Anything Validate accepts must convert and round-trip exactly.
			csc := csr.ToCSC()
			if verr := csc.Validate(); verr != nil {
				t.Fatalf("ToCSC of valid CSR fails Validate: %v", verr)
			}
			if !csc.ToCSR().Equal(csr, 0) {
				t.Fatal("CSR -> CSC -> CSR changed the matrix")
			}
			coo := csr.ToCOO()
			if verr := coo.Validate(); verr != nil {
				t.Fatalf("ToCOO of valid CSR fails Validate: %v", verr)
			}
			if !coo.ToCSR().Equal(csr, 0) {
				t.Fatal("CSR -> COO -> CSR changed the matrix")
			}
		}

		// In-range COO probe: duplicates sum, empty rows/cols survive, and
		// the row-major and column-major compressions agree.
		coo := NewCOO(r+1, c+1)
		for i := 0; i+1 < len(idxBytes); i += 2 {
			coo.Add(int(idxBytes[i])%(r+1), int(idxBytes[i+1])%(c+1), float64(i+1))
		}
		if err := coo.Validate(); err != nil {
			t.Fatalf("in-range COO rejected: %v", err)
		}
		viaRow := coo.ToCSR()
		if err := viaRow.Validate(); err != nil {
			t.Fatalf("COO.ToCSR invalid: %v", err)
		}
		viaCol := coo.ToCSC()
		if err := viaCol.Validate(); err != nil {
			t.Fatalf("COO.ToCSC invalid: %v", err)
		}
		if !viaCol.ToCSR().Equal(viaRow, 0) {
			t.Fatal("COO row-major and column-major compressions disagree")
		}
		if viaRow.NNZ() > coo.NNZ() {
			t.Fatalf("compression grew nnz: %d -> %d", coo.NNZ(), viaRow.NNZ())
		}
	})
}

// FuzzParseMatrixMarket hardens the MatrixMarket reader against arbitrary
// input: it must never panic, and anything it accepts must be a valid
// matrix that survives a write/read round-trip.
func FuzzParseMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n4 4 1\n2 1 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e308\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 5 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted matrix fails Validate: %v\ninput: %q", verr, in)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-write accepted matrix: %v\ninput: %q", err, in)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("cannot re-read own output: %v\ninput: %q", err, in)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round-trip changed shape: %dx%d nnz=%d -> %dx%d nnz=%d",
				m.Rows, m.Cols, m.NNZ(), back.Rows, back.Cols, back.NNZ())
		}
	})
}
