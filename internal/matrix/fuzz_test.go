package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMatrixMarket hardens the MatrixMarket reader against arbitrary
// input: it must never panic, and anything it accepts must be a valid
// matrix that survives a write/read round-trip.
func FuzzParseMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n4 4 1\n2 1 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e308\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 5 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted matrix fails Validate: %v\ninput: %q", verr, in)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-write accepted matrix: %v\ninput: %q", err, in)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("cannot re-read own output: %v\ninput: %q", err, in)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round-trip changed shape: %dx%d nnz=%d -> %dx%d nnz=%d",
				m.Rows, m.Cols, m.NNZ(), back.Rows, back.Cols, back.NNZ())
		}
	})
}
