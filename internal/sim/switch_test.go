package sim

import (
	"reflect"
	"testing"

	"sparseadapt/internal/config"
)

// dirtyStoreTrace writes through a region so both cache levels hold dirty
// state when a tenant switch arrives.
func dirtyStoreTrace(n int) *Trace {
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	reg := b.AllocRegion("w", 32*1024, RegionStream, 1)
	for i := 0; i < n; i++ {
		b.On(i % testChip.NGPE())
		b.StoreF(1, reg.Lo+uint32(i*8%(32*1024)))
	}
	return b.Build()
}

// The tenant determinism contract: after ContextSwitch the machine must be
// state-identical to a freshly constructed one, so the incoming tenant's
// epochs replay byte-identically to a solo run regardless of who ran before.
func TestContextSwitchFreshMachineEquality(t *testing.T) {
	warm := dirtyStoreTrace(2000)
	next := streamTrace(400)
	to := config.Baseline
	to[config.L1Cap] = 4
	to[config.Clock] = 3

	used := New(testChip, DefaultBandwidth, config.Baseline)
	used.BindTrace(warm)
	for i, ep := range warm.Epochs(100) {
		if i >= 3 {
			break
		}
		used.RunEpoch(ep)
	}
	rc, err := used.ContextSwitch(to)
	if err != nil {
		t.Fatal(err)
	}
	if rc.L1Flushed == 0 && rc.L2Flushed == 0 {
		t.Fatal("a dirty machine must flush on context switch")
	}
	used.BindTrace(next)

	fresh := New(testChip, DefaultBandwidth, to)
	fresh.BindTrace(next)

	for i, ep := range next.Epochs(100) {
		a, b := used.RunEpoch(ep), fresh.RunEpoch(ep)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d diverges after context switch:\n%+v\nvs fresh\n%+v", i, a, b)
		}
	}
}

// Same contract in scratchpad mode: SPM residency is rebuilt for the
// incoming trace and no filled-line state survives the switch.
func TestContextSwitchSPMFreshEquality(t *testing.T) {
	warm := reuseTrace(4096, 500)
	next := reuseTrace(8192, 300)
	from := config.BestAvgSPM
	to := config.BestAvgSPM
	to[config.Clock] = 2

	used := New(testChip, DefaultBandwidth, from)
	used.BindTrace(warm)
	for i, ep := range warm.Epochs(100) {
		if i >= 2 {
			break
		}
		used.RunEpoch(ep)
	}
	if _, err := used.ContextSwitch(to); err != nil {
		t.Fatal(err)
	}
	used.BindTrace(next)

	fresh := New(testChip, DefaultBandwidth, to)
	fresh.BindTrace(next)

	for i, ep := range next.Epochs(100) {
		a, b := used.RunEpoch(ep), fresh.RunEpoch(ep)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("SPM epoch %d diverges after context switch:\n%+v\nvs fresh\n%+v", i, a, b)
		}
	}
}

// A Reconfigure inside the outgoing tenant's quantum leaves its penalty
// pending; the switch must sweep it into the switch cost instead of letting
// the incoming tenant's first epoch absorb it.
func TestContextSwitchSweepsPendingPenalty(t *testing.T) {
	warm := dirtyStoreTrace(2000)
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(warm)
	m.RunEpoch(warm.Epochs(100)[0])

	mid := config.Baseline
	mid[config.L1Share] = config.Private
	if _, err := m.Reconfigure(mid); err != nil {
		t.Fatal(err)
	}
	if m.pendCycles == 0 {
		t.Fatal("reconfigure should leave a pending penalty")
	}
	pend := m.pendCycles

	base, err := freshSwitchCost(warm)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := m.ContextSwitch(config.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if m.pendCycles != 0 {
		t.Fatal("pending penalty must not survive a context switch")
	}
	if rc.Cycles < pend {
		t.Fatalf("switch cost %v must include swept pending %v (baseline switch alone: %v)", rc.Cycles, pend, base)
	}
}

// freshSwitchCost measures the switch cost of a machine that ran one epoch
// with no intervening reconfiguration, for comparison.
func freshSwitchCost(tr *Trace) (float64, error) {
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(tr)
	m.RunEpoch(tr.Epochs(100)[0])
	rc, err := m.ContextSwitch(config.Baseline)
	return rc.Cycles, err
}

func TestContextSwitchCoarseRejected(t *testing.T) {
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(streamTrace(10))
	if _, err := m.ContextSwitch(config.BestAvgSPM); err == nil {
		t.Fatal("coarse change must be rejected at a tenant switch too")
	}
}

func TestSwitchPenaltyPricing(t *testing.T) {
	rc := ReconfigCost{Cycles: 5000, L1Flushed: 200, L2Flushed: 50, DRAMWrites: 50 * LineSize}
	tSec, e := SwitchPenalty(testChip, config.Baseline, rc, DefaultBandwidth)
	if tSec <= 0 || e <= 0 {
		t.Fatalf("switch penalty %v s %v J", tSec, e)
	}
	// More flushed state must cost more in both dimensions.
	rc2 := rc
	rc2.L1Flushed *= 10
	rc2.L2Flushed *= 10
	rc2.DRAMWrites *= 10
	rc2.Cycles *= 10
	t2, e2 := SwitchPenalty(testChip, config.Baseline, rc2, DefaultBandwidth)
	if t2 <= tSec || e2 <= e {
		t.Fatalf("dirtier switch must cost more: (%v,%v) vs (%v,%v)", t2, e2, tSec, e)
	}
	if ts, es := SwitchPenalty(testChip, config.Baseline, ReconfigCost{}, DefaultBandwidth); ts != 0 || es != 0 {
		t.Fatal("empty switch must be free")
	}
}
