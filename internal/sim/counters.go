package sim

import "sparseadapt/internal/power"

// Counters is the per-epoch hardware telemetry of Table 2, spatially
// averaged across replicated blocks and temporally normalized to the
// epoch's elapsed cycles, exactly as the paper's runtime pre-processes it
// (Section 3.3).
type Counters struct {
	// R-DCache counters, L1 layer.
	L1AccessRate float64 // accesses per cycle across the layer
	L1Occupancy  float64 // fraction of valid tags
	L1MissRate   float64
	L1PrefRatio  float64 // prefetches issued per demand access
	L1CapKB      float64 // current capacity (fed back per Section 4.2)

	// R-DCache counters, L2 layer.
	L2AccessRate float64
	L2Occupancy  float64
	L2MissRate   float64
	L2PrefRatio  float64
	L2CapKB      float64

	// R-XBar contention-to-access ratios.
	XbarL1Cont float64
	XbarL2Cont float64

	// Core counters.
	GPEIPC   float64
	GPEFPIPC float64
	LCPIPC   float64
	ClockMHz float64

	// Memory controller utilization (used/available bandwidth).
	MemReadUtil  float64
	MemWriteUtil float64
}

// NumFeatures is the length of the telemetry feature vector.
const NumFeatures = 18

// Features flattens the counters into the model input vector. Order is
// fixed and matches FeatureNames.
func (c Counters) Features() []float64 {
	return []float64{
		c.L1AccessRate, c.L1Occupancy, c.L1MissRate, c.L1PrefRatio, c.L1CapKB,
		c.L2AccessRate, c.L2Occupancy, c.L2MissRate, c.L2PrefRatio, c.L2CapKB,
		c.XbarL1Cont, c.XbarL2Cont,
		c.GPEIPC, c.GPEFPIPC, c.LCPIPC, c.ClockMHz,
		c.MemReadUtil, c.MemWriteUtil,
	}
}

// FeatureNames returns the telemetry feature names in Features order.
func FeatureNames() []string {
	return []string{
		"l1-access-rate", "l1-occupancy", "l1-miss-rate", "l1-pref-ratio", "l1-cap-kb",
		"l2-access-rate", "l2-occupancy", "l2-miss-rate", "l2-pref-ratio", "l2-cap-kb",
		"xbar-l1-contention", "xbar-l2-contention",
		"gpe-ipc", "gpe-fp-ipc", "lcp-ipc", "clock-mhz",
		"mem-read-util", "mem-write-util",
	}
}

// FeatureGroup labels each feature with its hardware block for the Figure
// 10 feature-importance analysis.
func FeatureGroup(i int) string {
	switch {
	case i < 5:
		return "L1 R-DCache"
	case i < 10:
		return "L2 R-DCache"
	case i < 12:
		return "R-XBar"
	case i < 14:
		return "GPE"
	case i == 14:
		return "LCP"
	case i == 15:
		return "Clock"
	default:
		return "Mem Ctrl"
	}
}

// CountersFromFeatures reconstructs a Counters from a feature vector in
// Features order.
func CountersFromFeatures(f []float64) Counters {
	return Counters{
		L1AccessRate: f[0], L1Occupancy: f[1], L1MissRate: f[2], L1PrefRatio: f[3], L1CapKB: f[4],
		L2AccessRate: f[5], L2Occupancy: f[6], L2MissRate: f[7], L2PrefRatio: f[8], L2CapKB: f[9],
		XbarL1Cont: f[10], XbarL2Cont: f[11],
		GPEIPC: f[12], GPEFPIPC: f[13], LCPIPC: f[14], ClockMHz: f[15],
		MemReadUtil: f[16], MemWriteUtil: f[17],
	}
}

// AverageCounters returns the element-wise mean of a set of counters, the
// temporal averaging the runtime applies across an evaluation window.
func AverageCounters(cs []Counters) Counters {
	if len(cs) == 0 {
		return Counters{}
	}
	acc := make([]float64, NumFeatures)
	for _, c := range cs {
		for i, v := range c.Features() {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(len(cs))
	}
	return CountersFromFeatures(acc)
}

// buildCounters derives the Table 2 telemetry from the epoch's raw machine
// state. cycles is the epoch's critical-path compute cycle count, t its
// wall time. Rates and IPCs are normalized to the *elapsed* cycles of the
// epoch (t × f), exactly as the paper's runtime does (Section 3.3) — this
// is what lets the model see how memory-bound an epoch really was: a
// bandwidth-stalled epoch has many elapsed cycles and thus a low IPC.
func (m *Machine) buildCounters(cycles, t float64, cnt power.Counts, l1Cont, l2Cont int) Counters {
	l1 := sumBanks(m.l1)
	l2 := sumBanks(m.l2)
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	elapsed := t * m.cfg.ClockHz()
	if elapsed < cycles {
		elapsed = cycles
	}
	c := Counters{
		L1AccessRate: div(float64(l1.acc), elapsed),
		L1Occupancy:  occupancyOf(m.l1),
		L1MissRate:   div(float64(l1.miss), float64(l1.acc)),
		L1PrefRatio:  div(float64(l1.pref), float64(l1.acc)),
		L1CapKB:      float64(m.cfg.L1CapKB()),

		L2AccessRate: div(float64(l2.acc), elapsed),
		L2Occupancy:  occupancyOf(m.l2),
		L2MissRate:   div(float64(l2.miss), float64(l2.acc)),
		L2PrefRatio:  div(float64(l2.pref), float64(l2.acc)),
		L2CapKB:      float64(m.cfg.L2CapKB()),

		XbarL1Cont: div(float64(l1Cont), float64(l1.acc)),
		XbarL2Cont: div(float64(l2Cont), float64(l2.acc)),

		GPEIPC:   div(float64(m.gpeInstr), elapsed*float64(m.chip.NGPE())),
		GPEFPIPC: div(float64(m.gpeFP), elapsed*float64(m.chip.NGPE())),
		LCPIPC:   div(float64(m.lcpInstr), elapsed*float64(m.chip.Tiles)),
		ClockMHz: m.cfg.ClockMHz(),

		MemReadUtil:  div(float64(cnt.DRAMReadBytes), m.bw*t),
		MemWriteUtil: div(float64(cnt.DRAMWriteBytes), m.bw*t),
	}
	// In scratchpad mode the "L1" block counters reflect SPM activity.
	if m.cfg.L1IsSPM() {
		c.L1AccessRate = div(float64(cnt.SPMAccesses), elapsed)
		c.L1MissRate = 0
		c.L1Occupancy = div(float64(len(m.spmFilled)*LineSize),
			float64(m.chip.L1Banks()*m.cfg.L1CapKB()*1024))
		if c.L1Occupancy > 1 {
			c.L1Occupancy = 1
		}
	}
	return c
}
