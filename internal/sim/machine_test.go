package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
)

var testChip = power.Chip{Tiles: 2, GPEsPerTile: 8}

// streamTrace builds a memory-bound trace: each GPE streams through its own
// large array once (no reuse).
func streamTrace(perGPE int) *Trace {
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	regions := make([]Region, testChip.NGPE())
	for g := range regions {
		regions[g] = b.AllocRegion("stream", perGPE*8, RegionStream, 1)
	}
	b.Phase("stream")
	for i := 0; i < perGPE; i++ {
		for g := 0; g < testChip.NGPE(); g++ {
			b.On(g)
			b.LoadF(1, regions[g].Lo+uint32(i*8))
			b.FP(1)
		}
	}
	return b.Build()
}

// reuseTrace builds a compute-friendly trace: every GPE loops over a small
// shared working set many times.
func reuseTrace(wsBytes, iters int) *Trace {
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	r := b.AllocRegion("hot", wsBytes, RegionReuse, 0)
	b.Phase("reuse")
	for it := 0; it < iters; it++ {
		for g := 0; g < testChip.NGPE(); g++ {
			b.On(g)
			b.LoadF(2, r.Lo+uint32((it*64+g*8)%wsBytes))
			b.FP(2)
		}
	}
	return b.Build()
}

func runWhole(m *Machine, tr *Trace, epochFP int) (power.Metrics, []EpochResult) {
	m.BindTrace(tr)
	var total power.Metrics
	var results []EpochResult
	for _, ep := range tr.Epochs(epochFP) {
		r := m.RunEpoch(ep)
		total.Add(r.Metrics)
		results = append(results, r)
	}
	return total, results
}

func TestEpochSegmentation(t *testing.T) {
	tr := streamTrace(100)
	eps := tr.Epochs(10) // 10 FP-ops/GPE → 160 FP ops per epoch
	if len(eps) < 5 {
		t.Fatalf("expected multiple epochs, got %d", len(eps))
	}
	// Coverage: epochs tile the trace exactly.
	at := 0
	totalFP := 0
	for _, ep := range eps {
		if ep.Start != at {
			t.Fatalf("gap at %d", at)
		}
		at = ep.End
		totalFP += ep.FPOps
	}
	if at != len(tr.Events) || totalFP != tr.FPOps {
		t.Fatalf("epochs don't cover trace: %d/%d events, %d/%d fpops",
			at, len(tr.Events), totalFP, tr.FPOps)
	}
}

func TestPhaseTracking(t *testing.T) {
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	r := b.AllocRegion("x", 1024, RegionStream, 1)
	b.Phase("multiply")
	b.On(0)
	for i := 0; i < 100; i++ {
		b.LoadF(1, r.Lo)
	}
	b.Phase("merge")
	for i := 0; i < 100; i++ {
		b.LoadF(1, r.Lo)
	}
	tr := b.Build()
	if tr.PhaseAt(0) != "multiply" || tr.PhaseAt(150) != "merge" {
		t.Fatalf("phases: %q %q", tr.PhaseAt(0), tr.PhaseAt(150))
	}
}

func TestRegionAllocationDisjoint(t *testing.T) {
	b := NewBuilder(16, 2)
	r1 := b.AllocRegion("a", 1000, RegionStream, 1)
	r2 := b.AllocRegion("b", 1000, RegionReuse, 0)
	if r1.Hi > r2.Lo {
		t.Fatal("regions overlap")
	}
	tr := b.Build()
	if got := tr.RegionOf(r2.Lo + 5); got == nil || got.Name != "b" {
		t.Fatalf("RegionOf wrong: %+v", got)
	}
	if tr.RegionOf(0) != nil {
		t.Fatal("address 0 must be unmapped")
	}
}

func TestStreamIsMemoryBound(t *testing.T) {
	tr := streamTrace(2000)
	m := New(testChip, DefaultBandwidth, config.Baseline)
	_, results := runWhole(m, tr, 100)
	last := results[len(results)-1]
	if util := last.Counters.MemReadUtil; util < 0.5 {
		t.Fatalf("streaming at 1 GHz should saturate 1 GB/s, util %v", util)
	}
	if last.Counters.L1MissRate < 0.05 {
		t.Fatalf("streaming should miss, rate %v", last.Counters.L1MissRate)
	}
}

func TestDVFSOnMemoryBoundPhase(t *testing.T) {
	tr := streamTrace(2000)
	fast := New(testChip, DefaultBandwidth, config.Baseline)
	mFast, _ := runWhole(fast, tr, 100)

	slowCfg := config.Baseline
	slowCfg[config.Clock] = 3 // 250 MHz
	slow := New(testChip, DefaultBandwidth, slowCfg)
	mSlow, _ := runWhole(slow, tr, 100)

	if mSlow.TimeSec > mFast.TimeSec*1.35 {
		t.Fatalf("memory-bound phase should tolerate DVFS: %v vs %v s", mSlow.TimeSec, mFast.TimeSec)
	}
	if mSlow.EnergyJ >= mFast.EnergyJ {
		t.Fatalf("DVFS should save energy when memory-bound: %v vs %v J", mSlow.EnergyJ, mFast.EnergyJ)
	}
}

func TestDVFSOnComputeBoundPhaseHurts(t *testing.T) {
	tr := reuseTrace(2048, 3000)
	fast := New(testChip, DefaultBandwidth, config.Baseline)
	mFast, _ := runWhole(fast, tr, 100)

	slowCfg := config.Baseline
	slowCfg[config.Clock] = 0 // 31.25 MHz
	slow := New(testChip, DefaultBandwidth, slowCfg)
	mSlow, _ := runWhole(slow, tr, 100)

	if mSlow.TimeSec < 4*mFast.TimeSec {
		t.Fatalf("compute-bound phase must slow with clock: %v vs %v", mSlow.TimeSec, mFast.TimeSec)
	}
}

func TestCacheCapacityReducesMisses(t *testing.T) {
	// 200 kB working set cycled ~3×: fits in 16×64 kB shared L1, thrashes
	// 16×4 kB. Prefetching off to isolate the capacity effect.
	tr := reuseTrace(200*1024, 10000)
	smallCfg := config.Baseline
	smallCfg[config.Prefetch] = 0
	small := New(testChip, DefaultBandwidth, smallCfg)
	_, rs := runWhole(small, tr, 100)
	bigCfg := config.MaxCfg
	bigCfg[config.Prefetch] = 0
	big := New(testChip, DefaultBandwidth, bigCfg)
	_, rb := runWhole(big, tr, 100)

	missSmall := rs[len(rs)-1].Counters.L1MissRate
	missBig := rb[len(rb)-1].Counters.L1MissRate
	if missBig >= missSmall {
		t.Fatalf("bigger caches should cut steady-state misses: %v vs %v", missBig, missSmall)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	// With headroom (64 kB banks) a strided stream should be almost fully
	// covered by the stride prefetcher; compare at high bandwidth so the
	// hidden latency shows up in time.
	tr := streamTrace(3000)
	noPf := config.MaxCfg
	noPf[config.Prefetch] = 0
	mHB0 := New(testChip, 100e9, noPf)
	hb0, _ := runWhole(mHB0, tr, 500)

	pf := config.MaxCfg // degree 8
	mHB8 := New(testChip, 100e9, pf)
	hb8, r8 := runWhole(mHB8, tr, 500)

	if r8[len(r8)-1].Counters.L1PrefRatio == 0 {
		t.Fatal("prefetcher should issue on strided stream")
	}
	if hb8.TimeSec >= hb0.TimeSec {
		t.Fatalf("prefetching should hide latency at high bandwidth: %v vs %v", hb8.TimeSec, hb0.TimeSec)
	}
}

func TestPrefetcherPollutesTinyCache(t *testing.T) {
	// The flip side (the reason the knob is adaptive): aggressive
	// prefetching into 4 kB banks with 8 interleaved streams per tile
	// conflict-thrashes and wastes bandwidth.
	tr := streamTrace(3000)
	noPf := config.Baseline
	noPf[config.Prefetch] = 0
	m0 := New(testChip, 100e9, noPf)
	t0, _ := runWhole(m0, tr, 500)
	m8cfg := config.Baseline
	m8cfg[config.Prefetch] = 2
	m8 := New(testChip, 100e9, m8cfg)
	t8, _ := runWhole(m8, tr, 500)
	if t8.EnergyJ <= t0.EnergyJ {
		t.Fatalf("useless prefetch traffic should cost energy: %v vs %v J", t8.EnergyJ, t0.EnergyJ)
	}
	_ = t0
}

func TestSharedVsPrivateL1(t *testing.T) {
	// All GPEs hammer the same small structure: shared L1 keeps one copy
	// and hits; private L1 duplicates it (more L2 traffic on first touch)
	// but still hits afterwards. Both must run; shared sees xbar transfers.
	tr := reuseTrace(4096, 1500)
	shared := New(testChip, DefaultBandwidth, config.Baseline)
	_, rs := runWhole(shared, tr, 100)
	priv := config.Baseline
	priv[config.L1Share] = config.Private
	privM := New(testChip, DefaultBandwidth, priv)
	_, rp := runWhole(privM, tr, 100)

	if rs[len(rs)-1].Counters.XbarL1Cont < 0 {
		t.Fatal("contention ratio negative")
	}
	if rp[len(rp)-1].Counters.L1MissRate > 0.5 {
		t.Fatalf("private reuse should eventually hit, miss %v", rp[len(rp)-1].Counters.L1MissRate)
	}
}

func TestSPMResidency(t *testing.T) {
	tr := reuseTrace(4096, 1000)
	cfg := config.BestAvgSPM
	m := New(testChip, DefaultBandwidth, cfg)
	total, rs := runWhole(m, tr, 100)
	if total.TimeSec <= 0 {
		t.Fatal("no time elapsed")
	}
	last := rs[len(rs)-1]
	if last.Counters.L1MissRate != 0 {
		t.Fatal("SPM has no misses by definition")
	}
	if last.Counters.L1AccessRate == 0 {
		t.Fatal("SPM accesses should be recorded for the reuse region")
	}
}

func TestSPMCapacityLimitsResidency(t *testing.T) {
	// Reuse region far larger than total scratchpad: most accesses bypass.
	big := reuseTrace(4*1024*1024, 200)
	cfg := config.BestAvgSPM
	cfg[config.L1Cap] = 0 // 4 kB banks → 64 kB total SPM
	m := New(testChip, DefaultBandwidth, cfg)
	m.BindTrace(big)
	if len(m.spmRanges) == 0 {
		t.Fatal("some prefix of the region should be pinned")
	}
	r := m.spmRanges[0]
	if r.Hi-r.Lo > uint32(testChip.L1Banks()*4*1024) {
		t.Fatalf("pinned range exceeds SPM capacity: %d bytes", r.Hi-r.Lo)
	}
}

func TestCountersSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	reg := b.AllocRegion("r", 64*1024, RegionStream, 1)
	for i := 0; i < 5000; i++ {
		b.On(rng.Intn(testChip.NGPE()))
		b.LoadF(uint16(rng.Intn(10)), reg.Lo+uint32(rng.Intn(64*1024)))
		b.Int(1)
		b.FP(1)
	}
	b.On(testChip.NGPE()) // LCP 0 bookkeeping
	b.Int(50)
	b.LoadI(20, reg.Lo)
	tr := b.Build()

	m := New(testChip, DefaultBandwidth, config.Baseline)
	_, rs := runWhole(m, tr, 50)
	for _, r := range rs {
		c := r.Counters
		for i, f := range c.Features() {
			if f < 0 {
				t.Fatalf("feature %s negative: %v", FeatureNames()[i], f)
			}
		}
		for _, ratio := range []float64{c.L1MissRate, c.L2MissRate, c.L1Occupancy, c.L2Occupancy,
			c.MemReadUtil, c.MemWriteUtil} {
			if ratio < 0 || ratio > 1.0001 {
				t.Fatalf("ratio out of range: %v (counters %+v)", ratio, c)
			}
		}
		if c.GPEIPC <= 0 || c.GPEIPC > 1 {
			t.Fatalf("GPE IPC out of range: %v", c.GPEIPC)
		}
		if c.ClockMHz != 1000 {
			t.Fatalf("clock counter %v", c.ClockMHz)
		}
	}
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("feature name count %d", len(FeatureNames()))
	}
	groups := map[string]bool{}
	for i := 0; i < NumFeatures; i++ {
		groups[FeatureGroup(i)] = true
	}
	if len(groups) < 5 {
		t.Fatalf("expected ≥5 feature groups, got %v", groups)
	}
}

func TestReconfigureSuperFine(t *testing.T) {
	tr := streamTrace(500)
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(tr)
	to := config.Baseline
	to[config.Clock] = 3
	to[config.Prefetch] = 0
	rc, err := m.Reconfigure(to)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cycles != 200 {
		t.Fatalf("two super-fine changes should cost 200 cycles, got %v", rc.Cycles)
	}
	if rc.L1Flushed != 0 || rc.L2Flushed != 0 {
		t.Fatal("super-fine changes must not flush")
	}
	if m.Config() != to {
		t.Fatal("config not applied")
	}
}

func TestReconfigureFlushCost(t *testing.T) {
	// Dirty the caches with stores, then force an L1 flush.
	b := NewBuilder(testChip.NGPE(), testChip.Tiles)
	reg := b.AllocRegion("w", 32*1024, RegionStream, 1)
	for i := 0; i < 2000; i++ {
		b.On(i % testChip.NGPE())
		b.StoreF(1, reg.Lo+uint32(i*8%(32*1024)))
	}
	tr := b.Build()
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(tr)
	eps := tr.Epochs(100)
	r := m.RunEpoch(eps[0])
	if r.DirtyL1 == 0 {
		t.Fatal("stores must dirty the L1")
	}
	to := m.Config()
	to[config.L1Share] = config.Private
	rc, err := m.Reconfigure(to)
	if err != nil {
		t.Fatal(err)
	}
	if rc.L1Flushed == 0 {
		t.Fatal("sharing change must flush dirty L1 lines")
	}
	if rc.Cycles < float64(rc.L1Flushed)*flushCyclesPerLine {
		t.Fatalf("flush cost too low: %v cycles for %d lines", rc.Cycles, rc.L1Flushed)
	}
	// Penalty must be folded into the next epoch.
	if len(eps) < 2 {
		t.Fatal("need a second epoch")
	}
	r2 := m.RunEpoch(eps[1])
	if r2.Metrics.TimeSec <= 0 {
		t.Fatal("second epoch has no time")
	}
}

func TestReconfigureCoarseRejected(t *testing.T) {
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(streamTrace(10))
	to := config.BestAvgSPM // changes L1 type
	if _, err := m.Reconfigure(to); err == nil {
		t.Fatal("coarse change must be rejected at runtime")
	}
}

func TestReconfigureCapacityGrowCheap(t *testing.T) {
	tr := streamTrace(500)
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(tr)
	m.RunEpoch(tr.Epochs(100)[0])
	to := m.Config()
	to[config.L1Cap] = 4 // grow to 64 kB
	rc, err := m.Reconfigure(to)
	if err != nil {
		t.Fatal(err)
	}
	if rc.L1Flushed != 0 {
		t.Fatal("capacity increase must not flush (sub-banked design)")
	}
	if rc.Cycles != config.SuperFineCycles {
		t.Fatalf("grow cost %v, want %d", rc.Cycles, config.SuperFineCycles)
	}
}

func TestTransitionPenaltyPure(t *testing.T) {
	from := config.Baseline
	to := from
	to[config.Clock] = 2
	tSec, e := TransitionPenalty(testChip, from, to, 500, 100, 0, DefaultBandwidth)
	if tSec <= 0 || e <= 0 {
		t.Fatalf("penalty %v s %v J", tSec, e)
	}
	// No-op transition is free.
	if tSec, e = TransitionPenalty(testChip, from, from, 500, 100, 0, DefaultBandwidth); tSec != 0 || e != 0 {
		t.Fatal("identity transition must be free")
	}
	// A flushing transition with more dirty lines costs more.
	flushTo := from
	flushTo[config.L1Share] = config.Private
	t1, _ := TransitionPenalty(testChip, from, flushTo, 100, 0, 0, DefaultBandwidth)
	t2, _ := TransitionPenalty(testChip, from, flushTo, 10000, 0, 0, DefaultBandwidth)
	if t2 <= t1 {
		t.Fatalf("dirtier flush must cost more: %v vs %v", t2, t1)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := streamTrace(800)
	run := func() power.Metrics {
		m := New(testChip, DefaultBandwidth, config.Baseline)
		total, _ := runWhole(m, tr, 100)
		return total
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestTraceString(t *testing.T) {
	tr := streamTrace(10)
	if tr.String() == "" {
		t.Fatal("empty description")
	}
}

func TestEpochCountsMatchEnergy(t *testing.T) {
	tr := streamTrace(800)
	m := New(testChip, DefaultBandwidth, config.Baseline)
	m.BindTrace(tr)
	for _, ep := range tr.Epochs(100) {
		r := m.RunEpoch(ep)
		b := power.EnergyBreakdown(testChip, config.Baseline, r.Counts, r.Metrics.TimeSec)
		if d := b.TotalJ() - r.Metrics.EnergyJ; d > 1e-15 || d < -1e-15 {
			t.Fatalf("breakdown %v != epoch energy %v", b.TotalJ(), r.Metrics.EnergyJ)
		}
	}
}

// Property: FP-op totals are configuration-invariant — the same trace under
// any configuration performs the same floating-point work.
func TestQuickFPOpsConfigInvariant(t *testing.T) {
	tr := streamTrace(500)
	want := -1.0
	f := func(raw uint) bool {
		cfg := config.FromIndex(int(raw % uint(config.SpaceSize())))
		if cfg.L1IsSPM() {
			cfg[config.L1Type] = config.CacheMode
		}
		m := New(testChip, DefaultBandwidth, cfg)
		total, _ := runWhole(m, tr, 100)
		if want < 0 {
			want = total.FPOps
		}
		return total.FPOps == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
