// Package sim is the Transmuter machine model: a trace-driven simulator of
// the tiled CGRA the paper evaluates (Section 3). Kernels execute once,
// functionally, emitting a compact instruction/access trace; the Machine
// then replays any epoch of that trace under any hardware configuration,
// simulating the reconfigurable cache hierarchy exactly (per-access tags,
// LRU, prefetching, crossbar contention) and deriving epoch timing, energy
// and the Table 2 performance counters.
//
// This substitutes for the paper's gem5 model (see DESIGN.md): the
// controller only ever observes epoch-aggregate counters, so what must be
// faithful is how those counters respond to data structure and to the
// configuration knobs, which the exact cache simulation provides.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind classifies one traced instruction.
type EventKind uint8

const (
	// KLoadF is a floating-point load (counts toward FP-ops, Section 4).
	KLoadF EventKind = iota
	// KStoreF is a floating-point store (counts toward FP-ops).
	KStoreF
	// KLoadI is an integer/index load.
	KLoadI
	// KStoreI is an integer/index store.
	KStoreI
	// KFP is a floating-point ALU operation (counts toward FP-ops).
	KFP
	// KInt is an integer/bookkeeping ALU operation.
	KInt
)

// IsMem reports whether the event accesses memory.
func (k EventKind) IsMem() bool { return k <= KStoreI }

// IsStore reports whether the event writes memory.
func (k EventKind) IsStore() bool { return k == KStoreF || k == KStoreI }

// IsFP reports whether the event counts as a floating-point operation under
// the paper's epoch definition (FP ALU ops plus FP loads and stores).
func (k EventKind) IsFP() bool { return k == KLoadF || k == KStoreF || k == KFP }

// Event is one traced instruction: 12 bytes, kept small because traces for
// the larger inputs run to tens of millions of events.
type Event struct {
	Addr uint32 // byte address (memory events only)
	PC   uint16 // static instruction ID, used by the stride prefetcher
	Core uint8  // issuing core: GPEs [0,nGPE), LCPs [nGPE, nGPE+tiles)
	Kind EventKind
}

// RegionKind classifies an address range by its reuse behaviour, which the
// machine uses to decide SPM residency when the L1 is configured as
// scratchpad (Section 3.2.4).
type RegionKind uint8

const (
	// RegionStream holds streamed-once input/output data (low reuse).
	RegionStream RegionKind = iota
	// RegionReuse holds heavily reused working structures (accumulators,
	// partial-product buffers, the SpMSpV result hash) — the structures a
	// programmer would pin in scratchpad.
	RegionReuse
	// RegionBookkeep holds scheduling/bookkeeping state.
	RegionBookkeep
)

// Region is a tagged address range of the kernel's data layout.
type Region struct {
	Name     string
	Lo, Hi   uint32 // [Lo, Hi)
	Kind     RegionKind
	Priority int // lower = pinned to SPM first
}

// PhaseMark labels the start of an explicit program phase (e.g. the
// multiply → merge transition of OP-SpMSpM).
type PhaseMark struct {
	Event int // index of first event of the phase
	Name  string
}

// Trace is one kernel execution: the event stream, the data-layout regions
// and the explicit phase marks. A Trace is shared read-only between
// concurrently replaying machines and must not be copied by value once in
// use (it carries a lazily built replay-index cache guarded by a mutex).
type Trace struct {
	Events  []Event
	Regions []Region
	Phases  []PhaseMark
	NCores  int // GPE count the trace was generated for
	NLCP    int
	// FPOps is the total FP-op count (ALU + FP loads/stores).
	FPOps int
	// NNZ is the nonzero count of the kernel's primary (A) operand, the
	// size driver of the format-conversion cost charged when an algorithmic
	// reconfiguration switches storage formats mid-run. Zero when the
	// kernel did not record it.
	NNZ int

	// aggs caches one epochAgg per distinct epoch range replayed from this
	// trace; see epochAggFor. Lazily built, safe for concurrent machines.
	aggMu sync.RWMutex
	aggs  map[[2]int]*epochAgg
}

// epochAgg is the precomputed replay index of one epoch range: the indices
// of its memory events plus the configuration-independent aggregates of
// everything else. Non-memory events cost exactly one cycle and touch no
// machine state, so their effect on an epoch is a per-core cycle count and
// the instruction totals — computable once per (trace, epoch) instead of
// once per (configuration, epoch). RunEpoch then replays only the memory
// events, which is where all configuration-dependent behaviour lives.
type epochAgg struct {
	mem      []int32 // indices into Events of the range's memory events
	baseCyc  []int32 // per-core non-memory event count (one cycle each)
	gpeInstr int     // events issued by GPE cores (memory included)
	lcpInstr int     // events issued by LCP cores (memory included)
	gpeFP    int     // GPE events counting as FP ops
}

// epochAggFor returns the replay index for ep, building and caching it on
// first use. Concurrent builders may race to compute the same aggregate;
// the computation is pure, so either result is identical and one wins.
func (t *Trace) epochAggFor(ep EpochRange) *epochAgg {
	k := [2]int{ep.Start, ep.End}
	t.aggMu.RLock()
	a := t.aggs[k]
	t.aggMu.RUnlock()
	if a != nil {
		return a
	}
	a = t.buildAgg(ep)
	t.aggMu.Lock()
	if prev, ok := t.aggs[k]; ok {
		a = prev
	} else {
		if t.aggs == nil {
			t.aggs = map[[2]int]*epochAgg{}
		}
		t.aggs[k] = a
	}
	t.aggMu.Unlock()
	return a
}

// buildAgg scans ep's events once, splitting them into the memory-event
// index and the non-memory aggregates.
func (t *Trace) buildAgg(ep EpochRange) *epochAgg {
	a := &epochAgg{}
	nGPE := t.NCores
	maxCore := -1
	nMem := 0
	for i := ep.Start; i < ep.End; i++ {
		e := &t.Events[i]
		if e.Kind.IsMem() {
			nMem++
		} else if int(e.Core) > maxCore {
			maxCore = int(e.Core)
		}
	}
	a.mem = make([]int32, 0, nMem)
	a.baseCyc = make([]int32, maxCore+1)
	for i := ep.Start; i < ep.End; i++ {
		e := &t.Events[i]
		core := int(e.Core)
		if e.Kind.IsMem() {
			a.mem = append(a.mem, int32(i))
		} else {
			a.baseCyc[core]++
		}
		if core < nGPE {
			a.gpeInstr++
			if e.Kind.IsFP() {
				a.gpeFP++
			}
		} else {
			a.lcpInstr++
		}
	}
	return a
}

// PhaseAt returns the name of the explicit phase containing event i.
func (t *Trace) PhaseAt(i int) string {
	name := ""
	for _, p := range t.Phases {
		if p.Event > i {
			break
		}
		name = p.Name
	}
	return name
}

// RegionOf returns the region containing addr, or nil.
func (t *Trace) RegionOf(addr uint32) *Region {
	for i := range t.Regions {
		if addr >= t.Regions[i].Lo && addr < t.Regions[i].Hi {
			return &t.Regions[i]
		}
	}
	return nil
}

// EpochRange is a half-open event index range forming one control epoch.
type EpochRange struct {
	Start, End int
	FPOps      int
	Phase      string // explicit phase the epoch starts in
}

// Epochs segments the trace into FP-op-based epochs: an epoch ends when the
// number of FP operations executed, averaged across GPEs, exceeds
// fpOpsPerGPE (Section 4: 500 for SpMSpV, 5000 for SpMSpM). The FP-op
// boundaries are configuration-independent, which is what lets dynamic
// schemes, oracles and static runs be compared epoch-by-epoch (Appendix
// A.7).
func (t *Trace) Epochs(fpOpsPerGPE int) []EpochRange {
	if fpOpsPerGPE <= 0 {
		panic("sim: epoch size must be positive")
	}
	target := fpOpsPerGPE * t.NCores
	var out []EpochRange
	start, fp := 0, 0
	for i, e := range t.Events {
		if e.Kind.IsFP() {
			fp++
		}
		if fp >= target {
			out = append(out, EpochRange{Start: start, End: i + 1, FPOps: fp, Phase: t.PhaseAt(start)})
			start, fp = i+1, 0
		}
	}
	if start < len(t.Events) {
		out = append(out, EpochRange{Start: start, End: len(t.Events), FPOps: fp, Phase: t.PhaseAt(start)})
	}
	return out
}

// EpochsN segments the trace into exactly n epochs at equal cumulative
// FP-op quantiles. Whereas Epochs cuts at a fixed FP-op budget — so the
// epoch *count* depends on the trace — EpochsN fixes the count, which is
// what lets traces of different dataflow/format variants of the same
// kernel be compared epoch-by-epoch: epoch e covers the same fraction of
// the arithmetic work in every variant. n is clamped to [1, total FP ops]
// (an epoch must contain at least one FP op to make progress).
func (t *Trace) EpochsN(n int) []EpochRange {
	if n < 1 {
		n = 1
	}
	if t.FPOps > 0 && n > t.FPOps {
		n = t.FPOps
	}
	out := make([]EpochRange, 0, n)
	start, cum, epochFP, cut := 0, 0, 0, 1
	for i, e := range t.Events {
		if e.Kind.IsFP() {
			cum++
			epochFP++
		}
		// Cut when the cumulative FP count reaches the next quantile
		// boundary. Because n ≤ total FP ops, the boundary index advances by
		// at most one per FP event, so cutting at most once per event never
		// falls behind and exactly n epochs result.
		if cut < n && epochFP > 0 && cum*n >= cut*t.FPOps {
			out = append(out, EpochRange{Start: start, End: i + 1, FPOps: epochFP, Phase: t.PhaseAt(start)})
			start, epochFP = i+1, 0
			cut++
		}
	}
	if start < len(t.Events) || len(out) == 0 {
		out = append(out, EpochRange{Start: start, End: len(t.Events), FPOps: epochFP, Phase: t.PhaseAt(start)})
	}
	return out
}

// Builder incrementally constructs a Trace. Kernels set the active core
// with On and then emit events; work units handed to different GPEs in
// round-robin order produce the fine-grained interleaving the replay
// machine expects.
type Builder struct {
	t    Trace
	core uint8
	next uint32 // region allocation cursor
}

// NewBuilder returns a Builder for a machine with nGPE worker cores and
// nLCP control cores.
func NewBuilder(nGPE, nLCP int) *Builder {
	return &Builder{
		t:    Trace{NCores: nGPE, NLCP: nLCP},
		next: 1 << 12, // leave page zero unused
	}
}

// AllocRegion reserves bytes of address space for a named structure,
// rounded up to whole cache lines, and records its reuse class.
func (b *Builder) AllocRegion(name string, bytes int, kind RegionKind, priority int) Region {
	if bytes <= 0 {
		bytes = 1
	}
	sz := (uint32(bytes) + LineSize - 1) &^ (LineSize - 1)
	r := Region{Name: name, Lo: b.next, Hi: b.next + sz, Kind: kind, Priority: priority}
	b.t.Regions = append(b.t.Regions, r)
	b.next += sz + LineSize // guard line between regions
	return r
}

// On selects the core that issues subsequent events. GPE indices are
// [0, nGPE); LCP c of tile t is nGPE+t.
func (b *Builder) On(core int) { b.core = uint8(core) }

// Phase marks the beginning of a named explicit phase.
func (b *Builder) Phase(name string) {
	b.t.Phases = append(b.t.Phases, PhaseMark{Event: len(b.t.Events), Name: name})
}

func (b *Builder) emit(kind EventKind, pc uint16, addr uint32) {
	b.t.Events = append(b.t.Events, Event{Addr: addr, PC: pc, Core: b.core, Kind: kind})
	if kind.IsFP() {
		b.t.FPOps++
	}
}

// LoadF emits a floating-point load from addr by static instruction pc.
func (b *Builder) LoadF(pc uint16, addr uint32) { b.emit(KLoadF, pc, addr) }

// StoreF emits a floating-point store.
func (b *Builder) StoreF(pc uint16, addr uint32) { b.emit(KStoreF, pc, addr) }

// LoadI emits an integer load.
func (b *Builder) LoadI(pc uint16, addr uint32) { b.emit(KLoadI, pc, addr) }

// StoreI emits an integer store.
func (b *Builder) StoreI(pc uint16, addr uint32) { b.emit(KStoreI, pc, addr) }

// FP emits n floating-point ALU operations.
func (b *Builder) FP(n int) {
	for i := 0; i < n; i++ {
		b.emit(KFP, 0, 0)
	}
}

// Int emits n integer ALU operations.
func (b *Builder) Int(n int) {
	for i := 0; i < n; i++ {
		b.emit(KInt, 0, 0)
	}
}

// SetNNZ records the nonzero count of the kernel's primary operand (see
// Trace.NNZ).
func (b *Builder) SetNNZ(nnz int) { b.t.NNZ = nnz }

// Build finalizes and returns the trace. The builder must not be reused.
func (b *Builder) Build() *Trace {
	sort.Slice(b.t.Regions, func(i, j int) bool { return b.t.Regions[i].Lo < b.t.Regions[j].Lo })
	return &b.t
}

// Fingerprint returns a stable 64-bit FNV-1a hash of the trace content —
// events, regions, phases and topology — used as the "matrix identity"
// component of content-addressed simulation cache keys. Two traces with the
// same fingerprint replay identically, so it captures everything a cached
// epoch result depends on from the workload side.
func (t *Trace) Fingerprint() uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(t.NCores))
	mix(uint64(t.NLCP))
	mix(uint64(t.FPOps))
	mix(uint64(t.NNZ))
	for _, e := range t.Events {
		mix(uint64(e.Addr) | uint64(e.PC)<<32 | uint64(e.Core)<<48 | uint64(e.Kind)<<56)
	}
	for _, r := range t.Regions {
		mix(uint64(r.Lo) | uint64(r.Hi)<<32)
		mix(uint64(r.Kind) | uint64(uint32(r.Priority))<<8)
		for _, c := range []byte(r.Name) {
			h ^= uint64(c)
			h *= prime64
		}
	}
	for _, p := range t.Phases {
		mix(uint64(p.Event))
		for _, c := range []byte(p.Name) {
			h ^= uint64(c)
			h *= prime64
		}
	}
	return h
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{events=%d fpops=%d regions=%d phases=%d cores=%d}",
		len(t.Events), t.FPOps, len(t.Regions), len(t.Phases), t.NCores)
}
