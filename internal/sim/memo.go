package sim

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
)

// runKey identifies one memoizable epoch-sequence replay: the content
// fingerprint of the trace, the chip topology, the off-chip bandwidth, the
// configuration ordinal, and a hash of the exact epoch ranges replayed.
// Together these determine every byte of the result (replay is a pure
// function of them), which is what makes memoization semantics-preserving.
type runKey struct {
	traceFP  uint64
	tiles    int
	gpt      int
	bwBits   uint64
	cfgIndex int
	epsHash  uint64
}

// epochsHash fingerprints an epoch-range slice with FNV-1a over the range
// boundaries and phase labels (FPOps is derived from the trace and the
// boundaries, but is mixed in anyway so a changed segmentation policy can
// never alias).
func epochsHash(eps []EpochRange) uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(eps)))
	for _, ep := range eps {
		mix(uint64(ep.Start))
		mix(uint64(ep.End))
		mix(uint64(ep.FPOps))
		mix(uint64(len(ep.Phase)))
		for i := 0; i < len(ep.Phase); i++ {
			h ^= uint64(ep.Phase[i])
			h *= prime64
		}
	}
	return h
}

// RunMemo is a bounded, concurrency-safe memo table for whole epoch-sequence
// replays, keyed on (trace fingerprint, chip, bandwidth, configuration,
// epoch ranges). Oracle recordings and trainer sweeps evaluate the same
// (workload, config) pair repeatedly — across experiment modes, dataset
// passes and daemon jobs — and a replay is a pure function of the key, so a
// hit returns results byte-identical to a fresh simulation at a tiny
// fraction of the cost.
//
// The table is bounded by total stored EpochResult values rather than entry
// count: entries are proportional to their epoch count in size, and
// paper-scale recordings run thousands of epochs per row. When an insert
// would exceed the budget, arbitrary entries are evicted until it fits
// (random replacement; reuse within one process is typically all-or-nothing
// per workload, so recency tracking buys little).
type RunMemo struct {
	mu      sync.Mutex
	budget  int // max total EpochResult values stored
	stored  int
	entries map[runKey][]EpochResult

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultMemoBudget bounds the default shared memo to ~100k stored epoch
// results (order 40 MB), enough for hundreds of test-scale rows or a few
// dozen paper-scale ones.
const DefaultMemoBudget = 100_000

// NewRunMemo creates a memo bounded to roughly budget stored epoch results;
// budget <= 0 selects DefaultMemoBudget.
func NewRunMemo(budget int) *RunMemo {
	if budget <= 0 {
		budget = DefaultMemoBudget
	}
	return &RunMemo{budget: budget, entries: map[runKey][]EpochResult{}}
}

var sharedMemo = NewRunMemo(0)

// SharedRunMemo returns the process-wide replay memo used by the CLI and
// daemon paths. Sharing one table lets, e.g., the PP and EE dataset passes
// of a trainer sweep reuse each other's replays.
func SharedRunMemo() *RunMemo { return sharedMemo }

// Counts reports cumulative hits and misses (for telemetry and tests).
func (mm *RunMemo) Counts() (hits, misses int64) {
	return mm.hits.Load(), mm.misses.Load()
}

// Len reports the number of memoized entries.
func (mm *RunMemo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.entries)
}

func (mm *RunMemo) get(k runKey) ([]EpochResult, bool) {
	mm.mu.Lock()
	row, ok := mm.entries[k]
	mm.mu.Unlock()
	if !ok {
		mm.misses.Add(1)
		return nil, false
	}
	mm.hits.Add(1)
	// Copy on the way out: EpochResult is a value type, but callers own
	// their slice and may reorder or truncate it.
	out := make([]EpochResult, len(row))
	copy(out, row)
	return out, true
}

func (mm *RunMemo) put(k runKey, row []EpochResult) {
	if len(row) > mm.budget {
		return // larger than the whole table; never cacheable
	}
	cp := make([]EpochResult, len(row))
	copy(cp, row)
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if old, ok := mm.entries[k]; ok {
		mm.stored -= len(old)
	}
	for mm.stored+len(cp) > mm.budget {
		for ek, ev := range mm.entries {
			delete(mm.entries, ek)
			mm.stored -= len(ev)
			break
		}
	}
	mm.entries[k] = cp
	mm.stored += len(cp)
}

// RunEpochs replays eps on a fresh machine under (chip, bw, cfg), returning
// one EpochResult per range. When memo is non-nil the replay is memoized on
// the trace's content fingerprint; a hit skips simulation entirely and is
// byte-identical to the cold path. ctx (which may be nil) is checked every
// 64 epochs so long rows abort promptly on cancellation.
//
// This is the hot primitive behind oracle recording rows and trainer phase
// evaluations; it deliberately starts from a cold machine each time, which
// is exactly what those callers do and what makes the result a pure
// function of the key.
func RunEpochs(ctx context.Context, memo *RunMemo, chip power.Chip, bw float64, cfg config.Config, tr *Trace, eps []EpochRange) ([]EpochResult, error) {
	var key runKey
	if memo != nil {
		key = runKey{
			traceFP:  tr.Fingerprint(),
			tiles:    chip.Tiles,
			gpt:      chip.GPEsPerTile,
			bwBits:   math.Float64bits(bw),
			cfgIndex: cfg.Index(),
			epsHash:  epochsHash(eps),
		}
		if row, ok := memo.get(key); ok {
			return row, nil
		}
	}
	m := New(chip, bw, cfg)
	m.BindTrace(tr)
	row := make([]EpochResult, len(eps))
	for i, ep := range eps {
		if ctx != nil && i%64 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		row[i] = m.RunEpoch(ep)
	}
	if memo != nil {
		memo.put(key, row)
	}
	return row, nil
}
