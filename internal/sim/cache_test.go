package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBankHitMiss(t *testing.T) {
	b := NewBank(4 * 1024) // 16 sets × 4 ways
	if hit, _ := b.Access(100, false); hit {
		t.Fatal("cold access must miss")
	}
	b.Insert(100, false, false)
	if hit, _ := b.Access(100, false); !hit {
		t.Fatal("second access must hit")
	}
	if b.Accesses != 2 || b.Misses != 1 {
		t.Fatalf("counters %d/%d", b.Accesses, b.Misses)
	}
}

func TestBankDirtyAndWriteback(t *testing.T) {
	b := NewBank(4 * 1024)
	b.Insert(7, false, false)
	b.Access(7, true) // store marks dirty
	if b.DirtyLines() != 1 {
		t.Fatalf("dirty lines %d", b.DirtyLines())
	}
	dirty := b.Flush()
	if len(dirty) != 1 || dirty[0] != 7 {
		t.Fatalf("flush returned %v", dirty)
	}
	if b.Occupancy() != 0 {
		t.Fatal("flush must invalidate everything")
	}
}

func TestBankLRUEviction(t *testing.T) {
	b := NewBank(LineSize * Ways) // one set
	for i := uint32(0); i < Ways; i++ {
		b.Insert(i, false, false)
	}
	b.Access(0, false) // refresh line 0
	ev := b.Insert(100, false, false)
	if !ev.Valid || ev.LineAddr != 1 {
		t.Fatalf("expected LRU victim line 1, got %+v", ev)
	}
	if !b.Lookup(0) {
		t.Fatal("recently used line 0 must survive")
	}
}

func TestBankVictimAddressReconstruction(t *testing.T) {
	b := NewBank(8 * 1024)   // 32 sets
	addr := uint32(5*32 + 9) // tag 5, set 9
	b.Insert(addr, true, false)
	// Fill the set to force eviction of addr.
	for tag := uint32(10); tag < 10+Ways; tag++ {
		ev := b.Insert(tag*32+9, false, false)
		if ev.Valid && ev.Dirty {
			if ev.LineAddr != addr {
				t.Fatalf("victim address %d, want %d", ev.LineAddr, addr)
			}
			return
		}
	}
	t.Fatal("dirty victim never evicted")
}

func TestBankResizeGrowKeepsLines(t *testing.T) {
	b := NewBank(4 * 1024)
	for i := uint32(0); i < 40; i++ {
		b.Insert(i, i%2 == 0, false)
	}
	resident := 0
	for i := uint32(0); i < 40; i++ {
		if b.Lookup(i) {
			resident++
		}
	}
	wb := b.Resize(64 * 1024)
	if len(wb) != 0 {
		t.Fatalf("grow must not write back, got %d casualties", len(wb))
	}
	after := 0
	for i := uint32(0); i < 40; i++ {
		if b.Lookup(i) {
			after++
		}
	}
	if after < resident {
		t.Fatalf("grow lost lines: %d -> %d", resident, after)
	}
}

func TestBankResizeShrink(t *testing.T) {
	b := NewBank(64 * 1024)
	for i := uint32(0); i < 2000; i++ {
		b.Insert(i, true, false)
	}
	wb := b.Resize(4 * 1024)
	if b.CapacityBytes() != 4*1024 {
		t.Fatalf("capacity %d", b.CapacityBytes())
	}
	// The 64 kB bank holds 1024 lines; shrinking to 64 lines must write back
	// nearly all of the resident dirty lines.
	if len(wb) < 1024-64 {
		t.Fatalf("shrink returned only %d writebacks", len(wb))
	}
}

func TestBankOccupancy(t *testing.T) {
	b := NewBank(4 * 1024) // 64 lines
	if b.Occupancy() != 0 {
		t.Fatal("empty bank occupancy must be 0")
	}
	for i := uint32(0); i < 32; i++ {
		b.Insert(i, false, false)
	}
	if occ := b.Occupancy(); occ < 0.4 || occ > 0.6 {
		t.Fatalf("occupancy %v, want ~0.5", occ)
	}
}

func TestPrefetchedUsefulness(t *testing.T) {
	b := NewBank(4 * 1024)
	b.Insert(50, false, true)
	if b.Prefetches != 1 {
		t.Fatalf("prefetches %d", b.Prefetches)
	}
	b.Access(50, false)
	if b.PrefUseful != 1 {
		t.Fatal("demanded prefetched line must count as useful")
	}
	b.Access(50, false)
	if b.PrefUseful != 1 {
		t.Fatal("usefulness must count once")
	}
}

// Property: a bank never holds two lines with the same address, and
// occupancy is always within [0,1].
func TestQuickBankInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBank((1 + rng.Intn(16)) * 1024)
		for i := 0; i < 500; i++ {
			a := uint32(rng.Intn(300))
			if hit, _ := b.Access(a, rng.Intn(2) == 0); !hit {
				b.Insert(a, rng.Intn(2) == 0, false)
			}
			if !b.Lookup(a) {
				return false // just-inserted line must be resident
			}
		}
		occ := b.Occupancy()
		return occ >= 0 && occ <= 1 && b.Misses <= b.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherStrideDetection(t *testing.T) {
	p := &Prefetcher{}
	var got []uint32
	for a := uint32(0); a < 10; a += 2 {
		got = p.Observe(7, a, 4)
	}
	if len(got) != 4 {
		t.Fatalf("prefetch count %d, want 4", len(got))
	}
	if got[0] != 10 || got[3] != 16 {
		t.Fatalf("prefetch addrs %v", got)
	}
}

func TestPrefetcherIrregularNoPrefetch(t *testing.T) {
	p := &Prefetcher{}
	rng := rand.New(rand.NewSource(9))
	issued := 0
	for i := 0; i < 200; i++ {
		issued += len(p.Observe(3, uint32(rng.Intn(1_000_000)), 8))
	}
	if issued > 10 {
		t.Fatalf("random stream should not trigger steady prefetching, issued %d", issued)
	}
}

func TestPrefetcherDegreeZeroDisabled(t *testing.T) {
	p := &Prefetcher{}
	for a := uint32(0); a < 20; a++ {
		if len(p.Observe(1, a, 0)) != 0 {
			t.Fatal("degree 0 must never prefetch")
		}
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := &Prefetcher{}
	for a := uint32(0); a < 10; a++ {
		p.Observe(1, a, 4)
	}
	p.Reset()
	if len(p.Observe(1, 11, 4)) != 0 {
		t.Fatal("reset must clear learned strides")
	}
}
