package sim

import (
	"fmt"
	"sort"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
)

// Timing constants (cycles unless noted). The evaluated system is clocked
// by the global DVFS clock, so DRAM latency in cycles shrinks with the
// clock — the mechanism that makes low clocks cheap for memory-bound
// phases.
const (
	latL1Private = 1
	latL1Shared  = 2 // includes crossbar arbitration (Section 3.2.3)
	latL2Private = 8
	latL2Shared  = 10
	dramLatNs    = 80.0
	// flushCyclesPerLine approximates the per-dirty-line writeback cost of
	// a fine-grained reconfiguration (Section 5.2 reports 100–961k cycles
	// for full L1 flushes of up to 16×64 kB, i.e. ≈60 cycles/line).
	flushCyclesPerLine = 60
	// telemetryCycles is the per-epoch host decision+communication cost
	// (Section 3.4: 50–100 host cycles).
	telemetryCycles = 100
	// spmOrchestration is the extra bookkeeping cost per scratchpad line
	// fill (SPM trades tag lookups for explicit data orchestration,
	// Section 3.2.4).
	spmOrchestration = 2
	// overlapLeak is the fraction of the non-bottleneck time component that
	// is exposed on top of the roofline max (imperfect compute/memory
	// overlap on in-order cores).
	overlapLeak = 0.25
)

// DefaultBandwidth is the evaluated off-chip bandwidth (Section 5.2: 1 GB/s
// to keep the 2×8 system's compute-to-memory ratio representative).
const DefaultBandwidth = 1e9

// Machine is the Transmuter model: it holds the reconfigurable memory
// hierarchy state and replays trace epochs under the current configuration.
type Machine struct {
	chip power.Chip
	bw   float64 // off-chip bytes/sec
	cfg  config.Config

	l1   []*Bank // one per GPE
	l2   []*Bank // one per tile
	l1pf []*Prefetcher
	l2pf []*Prefetcher

	// SPM residency state (L1 scratchpad mode).
	spmRanges []Region
	spmFilled map[uint32]bool
	// Per-core staged stream line for non-resident SPM traffic.
	streamLine  []uint32
	streamValid []bool

	trace *Trace

	// mx is the optional registry-backed instrumentation (see Instrument);
	// nil means observability is off and costs one branch per epoch.
	mx *machineMetrics

	// Pending reconfiguration penalty, folded into the next epoch.
	pendCycles float64
	pendCounts power.Counts

	// Derived per-configuration values cached off the hot path (decoding
	// the packed config on every access costs more than the tag scan);
	// refreshed by refreshDerived on construction and reconfiguration.
	dvNGPE     int  // chip.NGPE()
	dvGPT      int  // chip.GPEsPerTile
	dvL2Banks  int  // chip.L2Banks()
	dvL1Shared bool // cfg.L1Shared()
	dvL2Shared bool // cfg.L2Shared()
	dvL1SPM    bool // cfg.L1IsSPM()
	dvPrefDeg  int  // cfg.PrefetchDegree()
	dvDRAMCyc  int  // dramCycles() at the current clock

	// Per-epoch scratch state.
	cyc        []int64 // per-core cycles
	bankAcc    []int   // per-L1-bank accesses (contention model)
	l2BankAcc  []int
	epCnt      power.Counts
	gpeInstr   int
	lcpInstr   int
	gpeFP      int
	readBytes  int
	writeBytes int
}

type bankTotals struct {
	acc, miss, pref, useful int
}

// New constructs a machine with the given chip topology, off-chip bandwidth
// in bytes/second and initial configuration.
func New(chip power.Chip, bwBytesPerSec float64, cfg config.Config) *Machine {
	if !cfg.Valid() {
		panic("sim: invalid configuration")
	}
	m := &Machine{chip: chip, bw: bwBytesPerSec, cfg: cfg}
	m.l1 = make([]*Bank, chip.L1Banks())
	m.l1pf = make([]*Prefetcher, chip.L1Banks())
	for i := range m.l1 {
		m.l1[i] = NewBank(cfg.L1CapKB() * 1024)
		m.l1pf[i] = &Prefetcher{}
	}
	m.l2 = make([]*Bank, chip.L2Banks())
	m.l2pf = make([]*Prefetcher, chip.L2Banks())
	for i := range m.l2 {
		m.l2[i] = NewBank(cfg.L2CapKB() * 1024)
		m.l2pf[i] = &Prefetcher{}
	}
	m.cyc = make([]int64, chip.NGPE()+chip.Tiles)
	m.bankAcc = make([]int, chip.L1Banks())
	m.l2BankAcc = make([]int, chip.L2Banks())
	m.spmFilled = make(map[uint32]bool)
	m.streamLine = make([]uint32, chip.NGPE())
	m.streamValid = make([]bool, chip.NGPE())
	m.refreshDerived()
	return m
}

// refreshDerived recomputes the cached per-configuration hot-path values.
// Must be called whenever m.cfg changes.
func (m *Machine) refreshDerived() {
	m.dvNGPE = m.chip.NGPE()
	m.dvGPT = m.chip.GPEsPerTile
	m.dvL2Banks = m.chip.L2Banks()
	m.dvL1Shared = m.cfg.L1Shared()
	m.dvL2Shared = m.cfg.L2Shared()
	m.dvL1SPM = m.cfg.L1IsSPM()
	m.dvPrefDeg = m.cfg.PrefetchDegree()
	m.dvDRAMCyc = int(dramLatNs * m.cfg.ClockMHz() / 1e3)
}

// Chip returns the machine's physical topology.
func (m *Machine) Chip() power.Chip { return m.chip }

// InjectPenalty adds extra pending stall cycles, folded into the next epoch
// exactly like a transition cost. The fault-injection layer uses it to model
// reconfigurations that take at a multiple of their nominal cost.
func (m *Machine) InjectPenalty(cycles float64) {
	if cycles > 0 {
		m.pendCycles += cycles
	}
}

// Bandwidth returns the off-chip bandwidth in bytes/second.
func (m *Machine) Bandwidth() float64 { return m.bw }

// Config returns the active configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// TraceNNZ returns the bound trace's operand nonzero count (0 when no
// trace is bound or the kernel did not record it) — the size driver of
// format-conversion costs.
func (m *Machine) TraceNNZ() int {
	if m.trace == nil {
		return 0
	}
	return m.trace.NNZ
}

// BindTrace prepares the machine for replaying tr: in scratchpad mode it
// selects which reuse regions are SPM-resident (lowest priority value
// first) until the aggregate scratchpad capacity is exhausted.
func (m *Machine) BindTrace(tr *Trace) {
	if tr.NCores != m.chip.NGPE() {
		panic(fmt.Sprintf("sim: trace generated for %d GPEs, machine has %d", tr.NCores, m.chip.NGPE()))
	}
	m.trace = tr
	m.rebuildSPMResidency()
}

func (m *Machine) rebuildSPMResidency() {
	m.spmRanges = m.spmRanges[:0]
	if m.trace == nil || !m.cfg.L1IsSPM() {
		return
	}
	budget := uint32(m.chip.L1Banks() * m.cfg.L1CapKB() * 1024)
	regions := make([]Region, 0, len(m.trace.Regions))
	for _, r := range m.trace.Regions {
		if r.Kind == RegionReuse {
			regions = append(regions, r)
		}
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Priority != regions[j].Priority {
			return regions[i].Priority < regions[j].Priority
		}
		return regions[i].Lo < regions[j].Lo
	})
	for _, r := range regions {
		if budget == 0 {
			break
		}
		sz := r.Hi - r.Lo
		if sz > budget {
			r.Hi = r.Lo + budget
			sz = budget
		}
		budget -= sz
		m.spmRanges = append(m.spmRanges, r)
	}
	sort.Slice(m.spmRanges, func(i, j int) bool { return m.spmRanges[i].Lo < m.spmRanges[j].Lo })
}

// spmResident reports whether addr falls in an SPM-pinned range.
func (m *Machine) spmResident(addr uint32) bool {
	lo, hi := 0, len(m.spmRanges)
	for lo < hi {
		mid := (lo + hi) / 2
		if addr >= m.spmRanges[mid].Hi {
			lo = mid + 1
		} else if addr < m.spmRanges[mid].Lo {
			hi = mid
		} else {
			return true
		}
	}
	return false
}

// tileOf returns the tile index of a core (GPE or LCP).
func (m *Machine) tileOf(core int) int {
	if core < m.dvNGPE {
		return core / m.dvGPT
	}
	return core - m.dvNGPE
}

// l2Access routes one access to the L2 layer from a tile, returning the
// latency charged to the requester. Misses fetch from DRAM; dirty victims
// write back. store marks full-line writebacks from L1 (no fill read).
//
// In shared mode lines interleave across banks on the low line bits; the
// bank then indexes its sets on the remaining (bank-local) bits so the full
// set space is used.
func (m *Machine) l2Access(tile int, lineAddr uint32, store bool, pc uint16) int {
	var bank int
	local := lineAddr
	lat := latL2Private
	nb := uint32(m.dvL2Banks)
	if m.dvL2Shared {
		bank = int(lineAddr % nb)
		local = lineAddr / nb
		lat = latL2Shared
	} else {
		bank = tile % m.dvL2Banks
	}
	m.l2BankAcc[bank]++
	m.epCnt.L2Accesses++
	m.epCnt.XbarTransfers++
	b := m.l2[bank]
	hit, _, ev := b.AccessFill(local, store)
	if hit {
		return lat
	}
	// L2 miss; AccessFill has already performed the demand fill (for a
	// store, a full-line writeback from L1 allocating without a DRAM fill).
	if store {
		if ev.Valid && ev.Dirty {
			m.writeBytes += LineSize
		}
		return lat
	}
	m.readBytes += LineSize
	if ev.Valid && ev.Dirty {
		m.writeBytes += LineSize
	}
	// L2 stride prefetcher fills from DRAM. PC 0 (writeback traffic) does
	// not train it.
	if deg := m.dvPrefDeg; deg > 0 && pc != 0 {
		for _, pa := range m.l2pf[bank].Observe(pc, local, deg) {
			if !b.Lookup(pa) {
				m.readBytes += LineSize
				m.epCnt.L2Accesses++
				pev := b.Insert(pa, false, true)
				if pev.Valid && pev.Dirty {
					m.writeBytes += LineSize
				}
			}
		}
	}
	return lat + m.dvDRAMCyc
}

// corePC folds the requesting core into the static instruction ID so that
// interleaved per-core streams occupy distinct prefetcher table entries.
// PC 0 is reserved for non-demand traffic (writebacks), which must not
// train the prefetchers.
func corePC(pc uint16, core uint8) uint16 {
	if pc == 0 {
		return 0
	}
	return pc + uint16(core)*131
}

// dramCycles returns DRAM access latency in cycles at the current clock.
func (m *Machine) dramCycles() int { return m.dvDRAMCyc }

// l1BankFor returns the L1 bank servicing an access by a GPE.
func (m *Machine) l1BankFor(core int, lineAddr uint32) int {
	g := m.dvGPT
	tile := core / g
	if m.dvL1Shared {
		return tile*g + int(lineAddr)%g
	}
	return core
}

// memAccess simulates one memory event and returns the cycles charged to
// the issuing core.
func (m *Machine) memAccess(e Event) int {
	lineAddr := e.Addr / LineSize
	core := int(e.Core)
	tile := m.tileOf(core)
	store := e.Kind.IsStore()

	// LCP accesses (bookkeeping) bypass the GPE-layer L1 and go to L2.
	if core >= m.dvNGPE {
		return 1 + m.l2Access(tile, lineAddr, store, corePC(e.PC, e.Core))
	}

	// Scratchpad mode.
	if m.dvL1SPM {
		if m.spmResident(e.Addr) {
			m.epCnt.SPMAccesses++
			if m.spmFilled[lineAddr] {
				return 1 + latL1Private
			}
			// First touch: explicit fill from L2 plus orchestration.
			m.spmFilled[lineAddr] = true
			return 1 + latL1Private + spmOrchestration + m.l2Access(tile, lineAddr, false, corePC(e.PC, e.Core))
		}
		// Non-resident data is streamed through a per-core line buffer (the
		// SPM algorithm variant stages streamed lines explicitly): repeated
		// accesses to the staged line cost one cycle; a new line is fetched
		// from L2.
		if m.streamValid[core] && m.streamLine[core] == lineAddr {
			m.epCnt.SPMAccesses++
			return 1 + latL1Private
		}
		m.streamLine[core] = lineAddr
		m.streamValid[core] = true
		return 1 + m.l2Access(tile, lineAddr, store, corePC(e.PC, e.Core))
	}

	// Cache mode. In shared mode the bank is selected by the low line bits
	// and the bank indexes on the remaining (bank-local) bits.
	bank := m.l1BankFor(core, lineAddr)
	local := lineAddr
	g := uint32(m.dvGPT)
	shared := m.dvL1Shared
	if shared {
		local = lineAddr / g
	}
	// toGlobal recovers the global line address of a bank-local one for
	// writeback routing.
	toGlobal := func(l uint32) uint32 {
		if shared {
			return l*g + uint32(bank)%g
		}
		return l
	}
	m.bankAcc[bank]++
	m.epCnt.L1Accesses++
	lat := latL1Private
	if shared {
		lat = latL1Shared
		m.epCnt.XbarTransfers++
	}
	b := m.l1[bank]
	hit, prefHit, ev := b.AccessFill(local, store)
	cost := 1 + lat
	if !hit {
		if ev.Valid && ev.Dirty {
			// Dirty victim written back to L2, off the critical path.
			m.epCnt.L1Accesses++
			m.l2Access(tile, toGlobal(ev.LineAddr), true, 0)
		}
		cost += m.l2Access(tile, lineAddr, false, corePC(e.PC, e.Core))
	}
	// L1 stride prefetcher observes demand accesses but only issues fills on
	// a miss or on the first hit to a prefetched line (run extension), the
	// classic policy that avoids re-issuing over resident data. The table
	// index folds in the requester so interleaved per-core streams don't
	// alias.
	if deg := m.dvPrefDeg; deg > 0 && (!hit || prefHit) {
		for _, pa := range m.l1pf[bank].Observe(corePC(e.PC, e.Core), local, deg) {
			if !b.Lookup(pa) {
				m.epCnt.L1Accesses++
				pev := b.Insert(pa, false, true)
				if pev.Valid && pev.Dirty {
					m.epCnt.L1Accesses++
					m.l2Access(tile, toGlobal(pev.LineAddr), true, 0)
				}
				m.l2Access(tile, toGlobal(pa), false, 0)
			}
		}
	}
	return cost
}

// EpochResult is the outcome of replaying one epoch: the metrics the
// objective is computed from, the Table 2 counters the controller observes,
// and the dirty-line state the oracle needs for transition costs.
type EpochResult struct {
	Metrics  power.Metrics
	Counters Counters
	// Counts are the raw energy-relevant event totals (including any
	// pending reconfiguration work folded into this epoch), from which
	// power.EnergyBreakdown decomposes the energy.
	Counts  power.Counts
	Phase   string
	DirtyL1 int
	DirtyL2 int
}

// RunEpoch replays the trace events of ep under the current configuration
// and returns the epoch result. Any pending reconfiguration penalty from a
// preceding Reconfigure call is folded into this epoch, mirroring how the
// paper charges reconfiguration at epoch boundaries.
func (m *Machine) RunEpoch(ep EpochRange) EpochResult {
	if m.trace == nil {
		panic("sim: BindTrace before RunEpoch")
	}
	for i := range m.cyc {
		m.cyc[i] = 0
	}
	for i := range m.bankAcc {
		m.bankAcc[i] = 0
	}
	for i := range m.l2BankAcc {
		m.l2BankAcc[i] = 0
	}
	m.epCnt = power.Counts{}
	m.readBytes, m.writeBytes = 0, 0
	m.snapshotBankCounters()

	// Batched replay: the per-epoch aggregate (built once per trace and
	// shared across configurations) supplies the cycle and instruction
	// contributions of every non-memory event, so the loop below touches
	// only the memory events — the configuration-dependent part of the
	// epoch. Arithmetic is commutative per core, so the result is identical
	// to the original event-by-event walk.
	agg := m.trace.epochAggFor(ep)
	for i, n := range agg.baseCyc {
		m.cyc[i] += int64(n)
	}
	events := m.trace.Events
	for _, idx := range agg.mem {
		e := events[idx]
		m.cyc[e.Core] += int64(m.memAccess(e))
	}
	m.gpeInstr, m.lcpInstr, m.gpeFP = agg.gpeInstr, agg.lcpInstr, agg.gpeFP
	m.epCnt.GPEInstrs = agg.gpeInstr
	m.epCnt.LCPInstrs = agg.lcpInstr

	// Crossbar contention: per-bank access imbalance within each arbitration
	// domain approximates collision counts (hot banks serialize requesters).
	l1Cont := 0
	if m.cfg.L1Shared() {
		l1Cont = contentionOf(m.bankAcc, m.chip.GPEsPerTile)
	}
	l2Cont := 0
	if m.cfg.L2Shared() && m.chip.L2Banks() > 1 {
		l2Cont = contentionOf(m.l2BankAcc, m.chip.L2Banks())
	}
	m.epCnt.XbarConts = l1Cont + l2Cont

	var maxCyc int64
	for _, c := range m.cyc {
		if c > maxCyc {
			maxCyc = c
		}
	}
	active := int64(m.chip.NGPE())
	cycles := float64(maxCyc) + float64(l1Cont+l2Cont)/float64(active) + telemetryCycles + m.pendCycles

	f := m.cfg.ClockHz()
	tCompute := cycles / f
	tMem := float64(m.readBytes+m.writeBytes) / m.bw
	// Imperfect overlap of compute and memory: the in-order GPEs hide only
	// part of whichever side is not the bottleneck, so the epoch costs the
	// roofline max plus a fraction of the other component. This keeps DVFS
	// on memory-bound phases cheap (not free) — matching the paper's
	// "negligible" but nonzero performance loss.
	t := tCompute
	lo := tMem
	if tMem > t {
		t, lo = tMem, tCompute
	}
	t += overlapLeak * lo

	m.epCnt.DRAMReadBytes = m.readBytes
	m.epCnt.DRAMWriteBytes = m.writeBytes
	cnt := m.epCnt
	cnt.Add(m.pendCounts)
	m.pendCycles = 0
	m.pendCounts = power.Counts{}

	energy := power.Energy(m.chip, m.cfg, cnt, t)
	if m.mx != nil {
		m.mx.recordEpoch(cycles, t, cnt, l1Cont+l2Cont, energy)
	}

	res := EpochResult{
		Metrics: power.Metrics{TimeSec: t, EnergyJ: energy, FPOps: float64(ep.FPOps)},
		Counts:  cnt,
		Phase:   ep.Phase,
	}
	res.Counters = m.buildCounters(cycles, t, cnt, l1Cont, l2Cont)
	for _, b := range m.l1 {
		res.DirtyL1 += b.DirtyLines()
	}
	for _, b := range m.l2 {
		res.DirtyL2 += b.DirtyLines()
	}
	return res
}

// contentionOf estimates collisions from per-bank access imbalance: any
// accesses a bank receives beyond its fair share of the domain traffic had
// to be serialized against another requester.
func contentionOf(bankAcc []int, requesters int) int {
	total := 0
	for _, a := range bankAcc {
		total += a
	}
	if total == 0 || len(bankAcc) == 0 {
		return 0
	}
	fair := total / len(bankAcc)
	cont := 0
	for _, a := range bankAcc {
		if a > fair {
			cont += a - fair
		}
	}
	// Scale by how many requesters compete in the domain.
	return cont * (requesters - 1) / requesters
}

// prevBankTotals snapshots aggregate bank counters so per-epoch deltas can
// be derived (the hardware resets counters on query; the model accumulates
// and diffs, which is equivalent).
func (m *Machine) snapshotBankCounters() {
	for _, b := range m.l1 {
		b.ResetCounters()
	}
	for _, b := range m.l2 {
		b.ResetCounters()
	}
}

func sumBanks(banks []*Bank) bankTotals {
	var t bankTotals
	for _, b := range banks {
		t.acc += b.Accesses
		t.miss += b.Misses
		t.pref += b.Prefetches
		t.useful += b.PrefUseful
	}
	return t
}

func occupancyOf(banks []*Bank) float64 {
	s := 0.0
	for _, b := range banks {
		s += b.Occupancy()
	}
	return s / float64(len(banks))
}
