package sim

// LineSize is the cache line size in bytes throughout the hierarchy.
const LineSize = 64

// Ways is the set associativity of every R-DCache bank.
const Ways = 4

// line is one cache line's bookkeeping state.
type line struct {
	tag        uint32
	lru        uint32
	valid      bool
	dirty      bool
	prefetched bool // filled by prefetch, not yet demanded
}

// Bank models one reconfigurable data-cache (R-DCache) bank: set-associative
// with LRU replacement, exact tags, dirty bits and resizable capacity
// (Section 3.2.2: each logical bank is a set of physical sub-banks, so
// capacity increases keep resident lines).
type Bank struct {
	sets  int
	lines []line // sets × Ways
	tick  uint32

	// setMask/tagShift implement the set split with mask/shift when sets is
	// a power of two (every standard capacity), falling back to div/mod
	// otherwise. Integer division is the single most expensive instruction
	// on the per-access path, so this is load-bearing for replay speed.
	setMask  uint32
	tagShift uint8
	pow2     bool

	// nValid/nDirty track resident and dirty line counts incrementally so
	// Occupancy and DirtyLines are O(1) per epoch instead of a full scan of
	// the line array.
	nValid int
	nDirty int

	// Per-epoch counters, reset by the machine after telemetry (Table 2).
	Accesses   int
	Misses     int
	Prefetches int // prefetch fills issued
	PrefUseful int // prefetched lines later hit by a demand access
}

// NewBank creates a bank of the given capacity in bytes.
func NewBank(capacityBytes int) *Bank {
	b := &Bank{}
	b.init(capacityBytes)
	return b
}

func (b *Bank) init(capacityBytes int) {
	sets := capacityBytes / (LineSize * Ways)
	if sets < 1 {
		sets = 1
	}
	b.sets = sets
	b.lines = make([]line, sets*Ways)
	b.tick = 0
	b.nValid, b.nDirty = 0, 0
	b.pow2 = sets&(sets-1) == 0
	if b.pow2 {
		b.setMask = uint32(sets - 1)
		shift := uint8(0)
		for 1<<shift < sets {
			shift++
		}
		b.tagShift = shift
	}
}

// CapacityBytes returns the current bank capacity.
func (b *Bank) CapacityBytes() int { return b.sets * Ways * LineSize }

// set returns the slice of ways for the set holding lineAddr.
func (b *Bank) set(lineAddr uint32) ([]line, uint32) {
	if b.pow2 {
		s := lineAddr & b.setMask
		return b.lines[s*Ways : s*Ways+Ways], lineAddr >> b.tagShift
	}
	s := int(lineAddr) % b.sets
	tag := lineAddr / uint32(b.sets)
	return b.lines[s*Ways : s*Ways+Ways], tag
}

// Lookup probes the bank without counting a demand access. It reports
// whether the line is resident.
func (b *Bank) Lookup(lineAddr uint32) bool {
	ws, tag := b.set(lineAddr)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access to lineAddr. On a hit it updates LRU and
// the dirty bit; on a miss it reports hit=false and the caller must Insert
// the line after fetching it from the next level. prefHit reports that the
// hit consumed a prefetched line for the first time, which prefetch
// policies use to extend a run.
func (b *Bank) Access(lineAddr uint32, store bool) (hit, prefHit bool) {
	b.Accesses++
	b.tick++
	ws, tag := b.set(lineAddr)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if ws[i].prefetched {
				b.PrefUseful++
				ws[i].prefetched = false
				prefHit = true
			}
			ws[i].lru = b.tick
			if store && !ws[i].dirty {
				ws[i].dirty = true
				b.nDirty++
			}
			return true, prefHit
		}
	}
	b.Misses++
	return false, false
}

// AccessFill is the fused demand-access path of the hot loop: a miss fills
// the line in the same call (the demand fill the caller would otherwise
// perform with a separate Insert), saving a second set scan. Counter and
// LRU-tick semantics are bit-identical to Access followed by
// Insert(lineAddr, store, false) on the miss path: the access bumps the
// tick once, the fill bumps it again, and the victim is chosen under the
// post-fill tick, exactly as the split sequence did.
func (b *Bank) AccessFill(lineAddr uint32, store bool) (hit, prefHit bool, ev Evicted) {
	b.Accesses++
	b.tick++
	ws, tag := b.set(lineAddr)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if ws[i].prefetched {
				b.PrefUseful++
				ws[i].prefetched = false
				prefHit = true
			}
			ws[i].lru = b.tick
			if store && !ws[i].dirty {
				ws[i].dirty = true
				b.nDirty++
			}
			return true, prefHit, Evicted{}
		}
	}
	b.Misses++
	// Demand fill. The set was just scanned and the line is absent, so the
	// resident-rescan of Insert is skipped; tick bumps again exactly as the
	// standalone Insert would.
	b.tick++
	victim := 0
	for i := 1; i < len(ws); i++ {
		if !ws[victim].valid {
			break
		}
		if !ws[i].valid || ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	ev = b.replace(victim, ws, lineAddr, tag, store, false)
	return false, false, ev
}

// Evicted describes a line displaced from a bank.
type Evicted struct {
	LineAddr uint32
	Dirty    bool
	Valid    bool
}

// Insert fills lineAddr into the bank (after a miss or as a prefetch) and
// returns the displaced victim, if any. prefetched marks prefetch fills for
// usefulness accounting; dirty marks write-allocated or written-back lines.
func (b *Bank) Insert(lineAddr uint32, dirty, prefetched bool) Evicted {
	b.tick++
	ws, tag := b.set(lineAddr)
	// Already resident (e.g. racing prefetch): just update.
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if dirty && !ws[i].dirty {
				ws[i].dirty = true
				b.nDirty++
			}
			ws[i].lru = b.tick
			return Evicted{}
		}
	}
	victim := 0
	for i := 1; i < len(ws); i++ {
		if !ws[victim].valid {
			break
		}
		if !ws[i].valid || ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	return b.replace(victim, ws, lineAddr, tag, dirty, prefetched)
}

// replace overwrites the victim way with a fresh line and maintains the
// incremental valid/dirty counts. ws is the set slice lineAddr maps to and
// tag its bank-local tag; the caller has already bumped the tick.
func (b *Bank) replace(victim int, ws []line, lineAddr, tag uint32, dirty, prefetched bool) Evicted {
	ev := Evicted{}
	v := &ws[victim]
	if v.valid {
		ev = Evicted{
			LineAddr: v.tag*uint32(b.sets) + uint32(int(lineAddr)%b.sets),
			Dirty:    v.dirty,
			Valid:    true,
		}
		if v.dirty {
			b.nDirty--
		}
	} else {
		b.nValid++
	}
	if dirty {
		b.nDirty++
	}
	*v = line{tag: tag, lru: b.tick, valid: true, dirty: dirty, prefetched: prefetched}
	if prefetched {
		b.Prefetches++
	}
	return ev
}

// Occupancy returns the fraction of valid lines, the "cache occupancy"
// counter of Table 2. O(1): the count is maintained incrementally.
func (b *Bank) Occupancy() float64 {
	return float64(b.nValid) / float64(len(b.lines))
}

// DirtyLines returns the number of dirty resident lines. O(1): the count
// is maintained incrementally.
func (b *Bank) DirtyLines() int { return b.nDirty }

// Flush invalidates the whole bank and returns the addresses of the dirty
// lines that must be written back to the next level.
func (b *Bank) Flush() []uint32 {
	var dirty []uint32
	for s := 0; s < b.sets; s++ {
		for w := 0; w < Ways; w++ {
			l := &b.lines[s*Ways+w]
			if l.valid && l.dirty {
				dirty = append(dirty, l.tag*uint32(b.sets)+uint32(s))
			}
			l.valid = false
		}
	}
	b.nValid, b.nDirty = 0, 0
	return dirty
}

// Resize changes the bank capacity. Growing keeps resident lines (they are
// re-indexed into the larger structure, matching the sub-banked design of
// Section 3.2.2, which makes capacity increases super-fine). Shrinking
// keeps what fits and returns dirty casualties for writeback.
func (b *Bank) Resize(capacityBytes int) (dirtyWB []uint32) {
	if capacityBytes == b.CapacityBytes() {
		return nil
	}
	old := b.lines
	oldSets := b.sets
	b.init(capacityBytes)
	for s := 0; s < oldSets; s++ {
		for w := 0; w < Ways; w++ {
			l := old[s*Ways+w]
			if !l.valid {
				continue
			}
			addr := l.tag*uint32(oldSets) + uint32(s)
			ev := b.Insert(addr, l.dirty, false)
			if ev.Valid && ev.Dirty {
				dirtyWB = append(dirtyWB, ev.LineAddr)
			}
		}
	}
	return dirtyWB
}

// ResetCounters zeroes the per-epoch counters after telemetry, matching the
// hardware counters that "are reset after they are queried" (Section 3.3).
func (b *Bank) ResetCounters() {
	b.Accesses, b.Misses, b.Prefetches, b.PrefUseful = 0, 0, 0, 0
}

// prefEntry is one stride-prefetcher table entry.
type prefEntry struct {
	pc     uint16
	last   uint32
	stride int32
	conf   uint8
}

// prefTableSize is the per-bank PC-indexed table size.
const prefTableSize = 64

// Prefetcher is the PC-indexed stride prefetcher attached to each cache
// layer (Section 3.2.5). Degree 0 disables it.
type Prefetcher struct {
	table [prefTableSize]prefEntry
	// buf is the reusable output buffer of Observe. Prefetch issue used to
	// be the simulator's dominant allocation site (one slice per confident
	// miss, hundreds of thousands per recording), which throttled parallel
	// sweeps through GC assist; reusing one buffer per prefetcher removes
	// the per-access allocation entirely.
	buf []uint32
}

// Observe records a demand access by static instruction pc to lineAddr and
// returns the line addresses to prefetch (up to degree lines ahead) once a
// stable stride has been established. Repeated accesses to the same line
// (sub-line strides) do not perturb the learned stride.
//
// The returned slice aliases an internal buffer that is overwritten by the
// next Observe call on the same Prefetcher: consume it before re-observing
// (the replay loops issue the fills immediately, so this is free).
func (p *Prefetcher) Observe(pc uint16, lineAddr uint32, degree int) []uint32 {
	e := &p.table[pc%prefTableSize]
	if e.pc != pc {
		*e = prefEntry{pc: pc, last: lineAddr}
		return nil
	}
	if lineAddr == e.last {
		return nil
	}
	stride := int32(lineAddr) - int32(e.last)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.last = lineAddr
	if degree <= 0 || e.conf < 2 {
		return nil
	}
	out := p.buf[:0]
	a := int64(lineAddr)
	for i := 1; i <= degree; i++ {
		a += int64(e.stride)
		if a < 0 {
			break
		}
		out = append(out, uint32(a))
	}
	p.buf = out
	return out
}

// Reset clears the prefetcher state (on reconfiguration of aggressiveness).
func (p *Prefetcher) Reset() { p.table = [prefTableSize]prefEntry{} }
