package sim

import (
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
)

// machineMetrics is the machine's registry-backed instrumentation: raw
// event totals per epoch (the inputs the energy model and the Table 2
// counters are derived from) plus reconfiguration accounting. All updates
// are single atomic adds at epoch/reconfiguration granularity, so the
// per-access hot path is untouched.
type machineMetrics struct {
	epochs     *obs.Counter
	cycles     *obs.Counter
	l1Acc      *obs.Counter
	l2Acc      *obs.Counter
	spmAcc     *obs.Counter
	xbarXfers  *obs.Counter
	xbarConts  *obs.Counter
	dramRead   *obs.Counter
	dramWrite  *obs.Counter
	gpeInstrs  *obs.Counter
	lcpInstrs  *obs.Counter
	epochSecs  *obs.Histogram
	reconfigs  *obs.Counter
	rcCycles   *obs.Counter
	rcL1Flush  *obs.Counter
	rcL2Flush  *obs.Counter
	rcDRAMWr   *obs.Counter
	simSeconds *obs.Gauge
	energyJ    *obs.Gauge
}

// Instrument attaches the machine to a metrics registry: from now on every
// RunEpoch and Reconfigure updates the `sim_*` metric family (see
// docs/OBSERVABILITY.md for the catalog). A nil registry detaches the
// machine. Instrumentation adds a handful of atomic adds per epoch —
// nothing on the per-access path — so the overhead is unmeasurable next to
// trace replay.
func (m *Machine) Instrument(reg *obs.Registry) {
	if reg == nil {
		m.mx = nil
		return
	}
	m.mx = &machineMetrics{
		epochs:     reg.Counter("sim_epochs_total", "trace epochs replayed"),
		cycles:     reg.Counter("sim_epoch_cycles_total", "critical-path compute cycles across epochs"),
		l1Acc:      reg.Counter("sim_l1_accesses_total", "L1 cache accesses (demand + writeback + prefetch)"),
		l2Acc:      reg.Counter("sim_l2_accesses_total", "L2 cache accesses"),
		spmAcc:     reg.Counter("sim_spm_accesses_total", "scratchpad accesses (L1 SPM mode)"),
		xbarXfers:  reg.Counter("sim_xbar_transfers_total", "crossbar transfers"),
		xbarConts:  reg.Counter("sim_xbar_contention_total", "crossbar contention collisions"),
		dramRead:   reg.Counter("sim_dram_read_bytes_total", "DRAM bytes read"),
		dramWrite:  reg.Counter("sim_dram_write_bytes_total", "DRAM bytes written"),
		gpeInstrs:  reg.Counter("sim_gpe_instrs_total", "GPE instructions replayed"),
		lcpInstrs:  reg.Counter("sim_lcp_instrs_total", "LCP instructions replayed"),
		epochSecs:  reg.Histogram("sim_epoch_seconds", "simulated wall time per epoch", epochSecondsBounds),
		reconfigs:  reg.Counter("sim_reconfig_total", "reconfigurations applied"),
		rcCycles:   reg.Counter("sim_reconfig_cycles_total", "reconfiguration penalty cycles"),
		rcL1Flush:  reg.Counter("sim_reconfig_l1_flushed_lines_total", "dirty L1 lines flushed by reconfigurations"),
		rcL2Flush:  reg.Counter("sim_reconfig_l2_flushed_lines_total", "dirty L2 lines flushed by reconfigurations"),
		rcDRAMWr:   reg.Counter("sim_reconfig_dram_write_bytes_total", "DRAM writeback bytes caused by reconfigurations"),
		simSeconds: reg.Gauge("sim_time_seconds", "cumulative simulated time"),
		energyJ:    reg.Gauge("sim_energy_joules", "cumulative simulated energy"),
	}
}

// epochSecondsBounds spans the simulated epoch durations seen from the
// test scale (microseconds) up to paper-scale memory-bound epochs.
var epochSecondsBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// recordEpoch publishes one epoch's raw totals.
func (x *machineMetrics) recordEpoch(cycles float64, t float64, cnt power.Counts, conts int, energyJ float64) {
	x.epochs.Inc()
	x.cycles.Add(int64(cycles))
	x.l1Acc.Add(int64(cnt.L1Accesses))
	x.l2Acc.Add(int64(cnt.L2Accesses))
	x.spmAcc.Add(int64(cnt.SPMAccesses))
	x.xbarXfers.Add(int64(cnt.XbarTransfers))
	x.xbarConts.Add(int64(conts))
	x.dramRead.Add(int64(cnt.DRAMReadBytes))
	x.dramWrite.Add(int64(cnt.DRAMWriteBytes))
	x.gpeInstrs.Add(int64(cnt.GPEInstrs))
	x.lcpInstrs.Add(int64(cnt.LCPInstrs))
	x.epochSecs.Observe(t)
	x.simSeconds.Add(t)
	x.energyJ.Add(energyJ)
}

// recordReconfig publishes one reconfiguration's cost.
func (x *machineMetrics) recordReconfig(rc ReconfigCost) {
	x.reconfigs.Inc()
	x.rcCycles.Add(int64(rc.Cycles))
	x.rcL1Flush.Add(int64(rc.L1Flushed))
	x.rcL2Flush.Add(int64(rc.L2Flushed))
	x.rcDRAMWr.Add(int64(rc.DRAMWrites))
}
