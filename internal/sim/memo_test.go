package sim

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"sparseadapt/internal/config"
)

// TestRunEpochsMemoByteIdentical is the memoization correctness contract: a
// memo hit must return results identical to a cold replay of the same
// (trace, chip, bandwidth, config, epochs) key. Run under -race in CI,
// which also exercises the memo's locking.
func TestRunEpochsMemoByteIdentical(t *testing.T) {
	tr := streamTrace(3000)
	eps := tr.Epochs(500)
	if len(eps) < 2 {
		t.Fatalf("trace too small: %d epochs", len(eps))
	}
	cold, err := RunEpochs(context.Background(), nil, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}

	memo := NewRunMemo(0)
	first, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, first) {
		t.Fatal("memo-miss replay differs from memoless replay")
	}
	if !reflect.DeepEqual(cold, second) {
		t.Fatal("memo-hit replay differs from memoless replay")
	}
	if hits, misses := memo.Counts(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different config must not alias the entry.
	other, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.MaxCfg, tr, eps)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(cold, other) {
		t.Fatal("different configs produced identical rows — key aliasing?")
	}
	if memo.Len() != 2 {
		t.Fatalf("memo entries = %d, want 2", memo.Len())
	}
}

// TestRunMemoConcurrent hammers one memo key from many goroutines; under
// -race this proves the table's synchronization, and every caller must see
// the same bytes.
func TestRunMemoConcurrent(t *testing.T) {
	tr := reuseTrace(4096, 600)
	eps := tr.Epochs(200)
	memo := NewRunMemo(0)
	ref, err := RunEpochs(context.Background(), nil, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	results := make([][]EpochResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.Baseline, tr, eps)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], ref) {
			t.Fatalf("goroutine %d saw a different row", g)
		}
	}
}

// TestRunMemoCopyOnGet: callers own the returned slice; mutating it must
// not poison the table.
func TestRunMemoCopyOnGet(t *testing.T) {
	tr := streamTrace(1500)
	eps := tr.Epochs(500)
	memo := NewRunMemo(0)
	first, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}
	clean := make([]EpochResult, len(first))
	copy(clean, first)
	first[0].Metrics.TimeSec = -1 // caller scribbles on its copy

	again, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, config.Baseline, tr, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, clean) {
		t.Fatal("mutating a returned row corrupted the memo entry")
	}
}

// TestRunMemoBudgetEviction: the table stays within its epoch-result budget
// by evicting whole entries.
func TestRunMemoBudgetEviction(t *testing.T) {
	tr := streamTrace(3000)
	eps := tr.Epochs(500)
	n := len(eps)
	if n < 2 {
		t.Fatalf("need >= 2 epochs, got %d", n)
	}
	// Budget for exactly two rows.
	memo := NewRunMemo(2 * n)
	for _, cfg := range []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg} {
		if _, err := RunEpochs(context.Background(), memo, testChip, DefaultBandwidth, cfg, tr, eps); err != nil {
			t.Fatal(err)
		}
	}
	if got := memo.Len(); got > 2 {
		t.Fatalf("memo holds %d entries, budget allows 2", got)
	}
	// An entry larger than the whole budget is skipped, not stored.
	tiny := NewRunMemo(1)
	if _, err := RunEpochs(context.Background(), tiny, testChip, DefaultBandwidth, config.Baseline, tr, eps); err != nil {
		t.Fatal(err)
	}
	if tiny.Len() != 0 {
		t.Fatalf("oversized row was stored (entries=%d)", tiny.Len())
	}
}

// TestRunEpochsCancel: cancellation aborts a replay.
func TestRunEpochsCancel(t *testing.T) {
	tr := streamTrace(3000)
	eps := tr.Epochs(500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunEpochs(ctx, nil, testChip, DefaultBandwidth, config.Baseline, tr, eps); err == nil {
		t.Fatal("cancelled replay returned nil error")
	}
}
