package sim

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
)

// ReconfigCost summarizes what one reconfiguration cost: cycles charged at
// the new clock, dirty lines moved between levels, and the DRAM writeback
// traffic it generated.
type ReconfigCost struct {
	Cycles     float64
	L1Flushed  int // dirty L1 lines written to L2
	L2Flushed  int // dirty L2 lines written to DRAM
	DRAMWrites int // bytes
	// ConvCycles is the algorithmic component of Cycles: strategy-swap and
	// format-conversion cycles charged for a dataflow/format switch
	// (Transition.ConversionCycles over the bound trace's NNZ).
	ConvCycles float64
}

// TimeSec returns the wall time of the reconfiguration at clock fHz,
// accounting for the off-chip bandwidth bound on L2 writebacks.
func (rc ReconfigCost) TimeSec(fHz, bw float64) float64 {
	t := rc.Cycles / fHz
	if bt := float64(rc.DRAMWrites) / bw; bt > t {
		t = bt
	}
	return t
}

// Reconfigure transitions the machine to a new configuration, applying the
// cost taxonomy of Section 3.4: super-fine parameters cost a fixed 100
// cycles each; fine-grained parameters flush the affected level
// (pessimistically assuming the level is dirty, with the actual dirty lines
// written back through the hierarchy); algorithmic parameters additionally
// charge the strategy-swap and format-conversion cycles scaled by the
// bound trace's operand nonzero count; coarse parameters cannot change at
// runtime. The penalty is held pending and folded into the next RunEpoch.
func (m *Machine) Reconfigure(to config.Config) (ReconfigCost, error) {
	tr := config.Classify(m.cfg, to)
	if tr.Coarse {
		return ReconfigCost{}, fmt.Errorf("sim: coarse parameter change %v requires recompilation", tr.Changed)
	}
	var rc ReconfigCost
	rc.Cycles = float64(tr.SuperFineChanges) * config.SuperFineCycles
	if tr.Algorithmic {
		nnz := 0
		if m.trace != nil {
			nnz = m.trace.NNZ
		}
		rc.ConvCycles = tr.ConversionCycles(nnz)
		rc.Cycles += rc.ConvCycles
	}

	// Note: flush L1 before L2 so L1 writebacks land in L2 (and are flushed
	// onward if the L2 flushes too).
	var cnt power.Counts
	if tr.FlushL1 && !m.cfg.L1IsSPM() {
		for _, b := range m.l1 {
			for _, lineAddr := range b.Flush() {
				rc.L1Flushed++
				cnt.L1Accesses++
				// Writebacks go to the tile-appropriate L2 bank; routing uses
				// the *new* sharing mode since the flush accompanies it.
				bank := 0
				if to.L2Shared() {
					bank = int(lineAddr) % m.chip.L2Banks()
				}
				ev := m.l2[bank].Insert(lineAddr, true, false)
				cnt.L2Accesses++
				if ev.Valid && ev.Dirty {
					rc.DRAMWrites += LineSize
				}
			}
		}
		rc.Cycles += float64(rc.L1Flushed) * flushCyclesPerLine
	}
	if tr.FlushL1 && m.cfg.L1IsSPM() {
		// Scratchpad "flush": resident filled lines are drained; roughly
		// half carry modified data.
		n := len(m.spmFilled)
		rc.L1Flushed = n / 2
		cnt.SPMAccesses += n
		cnt.L2Accesses += n / 2
		rc.Cycles += float64(n/2) * flushCyclesPerLine
		m.spmFilled = make(map[uint32]bool)
	}
	if tr.FlushL2 {
		for _, b := range m.l2 {
			dirty := b.Flush()
			rc.L2Flushed += len(dirty)
			cnt.L2Accesses += len(dirty)
			rc.DRAMWrites += len(dirty) * LineSize
		}
		rc.Cycles += float64(rc.L2Flushed) * flushCyclesPerLine
	}

	// Apply capacity changes. After a flush the bank is empty and resize is
	// free of casualties; on a pure increase (super-fine) resident lines
	// are preserved by the sub-banked design.
	for _, b := range m.l1 {
		for _, wb := range b.Resize(to.L1CapKB() * 1024) {
			_ = wb
			// Shrink without a flush cannot happen (classified fine), but
			// guard anyway: treat casualties as L2 writebacks.
			cnt.L2Accesses++
		}
	}
	for _, b := range m.l2 {
		for range b.Resize(to.L2CapKB() * 1024) {
			rc.DRAMWrites += LineSize
		}
	}
	if m.cfg.PrefetchDegree() != to.PrefetchDegree() {
		for _, p := range m.l1pf {
			p.Reset()
		}
		for _, p := range m.l2pf {
			p.Reset()
		}
	}

	cnt.DRAMWriteBytes = rc.DRAMWrites
	if m.mx != nil {
		m.mx.recordReconfig(rc)
	}
	m.cfg = to
	m.refreshDerived()
	m.rebuildSPMResidency()
	m.pendCycles += rc.Cycles
	m.pendCounts.Add(cnt)
	return rc, nil
}

// ContextSwitch is the tenant-switch transition used by the time-multiplexed
// fabric (internal/tenant). Unlike Reconfigure, which flushes only the levels
// its transition class demands, a context switch always evicts the outgoing
// tenant's entire on-chip state: both cache levels are flushed (dirty lines
// written back through the hierarchy and on to DRAM), scratchpad residency
// and the per-core stream buffers are cleared, and all prefetchers are reset
// unconditionally — so the machine the incoming tenant resumes on is
// state-identical to a freshly constructed one, and its cold-cache misses are
// paid in its own epoch accounting. The cost is returned rather than folded
// into the next RunEpoch: the multiplexer charges switch time and energy to
// the incoming tenant's ledger explicitly (ReconfigCost.TimeSec plus
// SwitchPenalty), which keeps the resuming tenant's simulated epochs
// byte-identical to a solo run at any quantum length. Any penalty still
// pending from an earlier in-quantum Reconfigure is swept into the returned
// cost so it cannot leak across the tenant boundary. No format-conversion
// cycles are charged: the incoming tenant binds its own trace, already in its
// own format.
func (m *Machine) ContextSwitch(to config.Config) (ReconfigCost, error) {
	tr := config.Classify(m.cfg, to)
	if tr.Coarse {
		return ReconfigCost{}, fmt.Errorf("sim: coarse parameter change %v requires recompilation", tr.Changed)
	}
	var rc ReconfigCost
	rc.Cycles = float64(tr.SuperFineChanges) * config.SuperFineCycles

	var cnt power.Counts
	if !m.cfg.L1IsSPM() {
		for _, b := range m.l1 {
			for _, lineAddr := range b.Flush() {
				rc.L1Flushed++
				cnt.L1Accesses++
				bank := 0
				if to.L2Shared() {
					bank = int(lineAddr) % m.chip.L2Banks()
				}
				ev := m.l2[bank].Insert(lineAddr, true, false)
				cnt.L2Accesses++
				if ev.Valid && ev.Dirty {
					rc.DRAMWrites += LineSize
				}
			}
		}
		rc.Cycles += float64(rc.L1Flushed) * flushCyclesPerLine
	} else {
		n := len(m.spmFilled)
		rc.L1Flushed = n / 2
		cnt.SPMAccesses += n
		cnt.L2Accesses += n / 2
		rc.Cycles += float64(n/2) * flushCyclesPerLine
	}
	m.spmFilled = make(map[uint32]bool)
	for _, b := range m.l2 {
		dirty := b.Flush()
		rc.L2Flushed += len(dirty)
		cnt.L2Accesses += len(dirty)
		rc.DRAMWrites += len(dirty) * LineSize
	}
	rc.Cycles += float64(rc.L2Flushed) * flushCyclesPerLine

	// Both levels are empty now, so resizing is free of casualties.
	for _, b := range m.l1 {
		b.Resize(to.L1CapKB() * 1024)
	}
	for _, b := range m.l2 {
		b.Resize(to.L2CapKB() * 1024)
	}
	for _, p := range m.l1pf {
		p.Reset()
	}
	for _, p := range m.l2pf {
		p.Reset()
	}
	for i := range m.streamValid {
		m.streamValid[i] = false
	}

	// Sweep any penalty a same-quantum Reconfigure left pending into this
	// switch's cost instead of letting it fold into the next tenant's epoch.
	rc.Cycles += m.pendCycles
	cnt.Add(m.pendCounts)
	m.pendCycles = 0
	m.pendCounts = power.Counts{}
	cnt.DRAMWriteBytes += rc.DRAMWrites

	if m.mx != nil {
		m.mx.recordReconfig(rc)
	}
	m.cfg = to
	m.refreshDerived()
	m.rebuildSPMResidency()
	return rc, nil
}

// SwitchPenalty prices a ContextSwitch cost in wall time and energy at the
// incoming configuration's operating point, mirroring TransitionPenalty's
// model: flush traffic at cache-access energy (L2 writes weighted 1.5x),
// cores power-gated during the switch at 30% leakage, DRAM writeback bytes
// at 28 pJ/byte, and time bounded below by the off-chip bandwidth on the
// writeback burst.
func SwitchPenalty(chip power.Chip, to config.Config, rc ReconfigCost, bw float64) (timeSec, energyJ float64) {
	timeSec = rc.TimeSec(to.ClockHz(), bw)
	dyn := float64(rc.L1Flushed)*power.CacheAccessJ(to.L1CapKB()) +
		float64(rc.L1Flushed+rc.L2Flushed)*1.5*power.CacheAccessJ(to.L2CapKB())
	leak := 0.3 * chip.LeakageW(to) * timeSec
	energyJ = (dyn+leak)*power.Scale(to.ClockMHz()) + float64(rc.DRAMWrites)*28e-12
	return timeSec, energyJ
}

// TransitionPenalty computes, without machine state, the time and energy
// penalty of switching from one configuration to another given the dirty
// line counts observed at the boundary and the operand nonzero count nnz
// (for the format-conversion charge of algorithmic switches; pass 0 when
// the algorithm axes are fixed). The oracle and ProfileAdapt constructions
// (Appendix A.7) use this when stitching recorded epoch segments. Time is
// charged at the destination clock; cores are power-gated during flushes
// (Section 5.2), modelled as 30% leakage.
func TransitionPenalty(chip power.Chip, from, to config.Config, dirtyL1, dirtyL2, nnz int, bw float64) (timeSec, energyJ float64) {
	tr := config.Classify(from, to)
	if tr.IsNoop() {
		return 0, 0
	}
	cycles := float64(tr.SuperFineChanges) * config.SuperFineCycles
	cycles += tr.ConversionCycles(nnz)
	var cnt power.Counts
	if tr.FlushL1 {
		cycles += float64(dirtyL1) * flushCyclesPerLine
		cnt.L1Accesses += dirtyL1
		cnt.L2Accesses += dirtyL1
	}
	if tr.FlushL2 {
		cycles += float64(dirtyL2) * flushCyclesPerLine
		cnt.L2Accesses += dirtyL2
		cnt.DRAMWriteBytes += dirtyL2 * LineSize
	}
	timeSec = cycles / to.ClockHz()
	if bt := float64(cnt.DRAMWriteBytes) / bw; bt > timeSec {
		timeSec = bt
	}
	dyn := float64(cnt.L1Accesses)*power.CacheAccessJ(to.L1CapKB()) +
		float64(cnt.L2Accesses)*1.5*power.CacheAccessJ(to.L2CapKB())
	leak := 0.3 * chip.LeakageW(to) * timeSec
	energyJ = (dyn+leak)*power.Scale(to.ClockMHz()) + float64(cnt.DRAMWriteBytes)*28e-12
	return timeSec, energyJ
}
