package kernels

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// Static instruction IDs for the inner-product kernel.
const (
	pcInAPtr = iota + 20
	pcInAIdx
	pcInAVal
	pcInBPtr
	pcInBIdx
	pcInBVal
	pcInOut
	pcInQueue
)

// SpMSpMInner computes C = A·B with the inner-product formulation and
// index-compression (the alternative algorithm the paper's host runtime
// can dispatch to, Section 5.4, citing Sparse-TPU): for every nonempty row
// i of A and nonempty column j of B, the two sorted index lists are
// intersected with a two-pointer merge. No partial-product storage and no
// separate merge phase — but the candidate-pair space is quadratic, so it
// only wins over the outer-product algorithm at higher densities.
//
// A is consumed in CSR and B in CSC (the transposed layout of the
// outer-product kernel).
func SpMSpMInner(a *matrix.CSR, b *matrix.CSC, nGPE, nLCP int) (*matrix.CSR, Workload, error) {
	return spmspmInner(a, b, nGPE, nLCP, NewRoundRobin(nGPE), config.FmtCSR)
}

// spmspmInner is the inner-product implementation with an explicit LCP
// scheduling policy and the A operand stored in format aFmt (natural:
// CSR).
func spmspmInner(a *matrix.CSR, b *matrix.CSC, nGPE, nLCP int, sched Scheduler, aFmt int) (*matrix.CSR, Workload, error) {
	if a.Cols != b.Rows {
		return nil, Workload{}, fmt.Errorf("kernels: SpMSpMInner shape mismatch: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	tb.SetNNZ(a.NNZ())
	regAPtr := tb.AllocRegion("A.rowptr", (a.Rows+1)*iBytes, sim.RegionStream, 9)
	regAIdx := tb.AllocRegion("A.colidx", maxInt(a.NNZ(), 1)*iBytes, sim.RegionReuse, 1)
	regAVal := tb.AllocRegion("A.val", maxInt(a.NNZ(), 1)*fBytes, sim.RegionReuse, 1)
	regBPtr := tb.AllocRegion("B.colptr", (b.Cols+1)*iBytes, sim.RegionStream, 9)
	regBIdx := tb.AllocRegion("B.rowidx", maxInt(b.NNZ(), 1)*iBytes, sim.RegionReuse, 2)
	regBVal := tb.AllocRegion("B.val", maxInt(b.NNZ(), 1)*fBytes, sim.RegionReuse, 2)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 3)
	regOut := tb.AllocRegion("C", maxInt(a.Rows, 1)*16, sim.RegionStream, 9)
	ov := newOverlay(tb, aFmt, config.FmtCSR, a.NNZ())

	// Compression: enumerate nonempty rows/cols once so empty candidates
	// are never visited.
	var rowsNE, colsNE []int
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i+1] > a.RowPtr[i] {
			rowsNE = append(rowsNE, i)
		}
	}
	for j := 0; j < b.Cols; j++ {
		if b.ColPtr[j+1] > b.ColPtr[j] {
			colsNE = append(colsNE, j)
		}
	}

	out := matrix.NewCOO(a.Rows, b.Cols)
	tb.Phase("inner")
	sched.Reset()
	lcp := func(u int) int { return nGPE + (u % nLCP) }
	outPos := 0
	for wi, i := range rowsNE {
		g := sched.Assign(a.RowPtr[i+1] - a.RowPtr[i])
		tb.On(lcp(wi))
		tb.Int(2)
		tb.StoreI(pcInQueue, regQueue.Lo+uint32((wi%256)*iBytes))

		tb.On(g)
		tb.LoadI(pcInAPtr, regAPtr.Lo+uint32(i*iBytes))
		tb.LoadI(pcInAPtr, regAPtr.Lo+uint32((i+1)*iBytes))
		aCols, aVals := a.Row(i)
		for _, j := range colsNE {
			tb.LoadI(pcInBPtr, regBPtr.Lo+uint32(j*iBytes))
			tb.LoadI(pcInBPtr, regBPtr.Lo+uint32((j+1)*iBytes))
			bRows, bVals := b.Col(j)
			// Two-pointer intersection of the sorted index lists.
			sum := 0.0
			hit := false
			ai, bi := 0, 0
			aOff, bOff := a.RowPtr[i], b.ColPtr[j]
			for ai < len(aCols) && bi < len(bRows) {
				tb.LoadI(pcInAIdx, regAIdx.Lo+uint32((aOff+ai)*iBytes))
				ov.touch(tb, aOff+ai)
				tb.LoadI(pcInBIdx, regBIdx.Lo+uint32((bOff+bi)*iBytes))
				tb.Int(1) // compare
				switch {
				case aCols[ai] == bRows[bi]:
					tb.LoadF(pcInAVal, regAVal.Lo+uint32((aOff+ai)*fBytes))
					tb.LoadF(pcInBVal, regBVal.Lo+uint32((bOff+bi)*fBytes))
					if hit {
						tb.FP(2) // multiply + accumulate
					} else {
						tb.FP(1) // first product initializes the accumulator
					}
					sum += aVals[ai] * bVals[bi]
					hit = true
					ai++
					bi++
				case aCols[ai] < bRows[bi]:
					ai++
				default:
					bi++
				}
			}
			if hit {
				tb.StoreF(pcInOut, regOut.Lo+uint32((outPos%a.Rows)*16))
				tb.StoreI(pcInOut, regOut.Lo+uint32((outPos%a.Rows)*16+fBytes))
				out.Add(i, j, sum)
				outPos++
			}
		}
	}
	return out.ToCSR(), Workload{Name: "spmspm-inner", Trace: tb.Build(), EpochFPOps: EpochSpMSpM}, nil
}

// Algorithm identifies a SpMSpM formulation the host can dispatch.
type Algorithm int

const (
	// OuterProduct is the OP-SpMSpM of Pal et al. (multiply + merge).
	OuterProduct Algorithm = iota
	// InnerProduct is the compressed inner-product formulation.
	InnerProduct
	// RowWise is the Gustavson formulation (row-by-row sparse accumulator).
	RowWise
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case InnerProduct:
		return "inner-product"
	case RowWise:
		return "row-wise"
	default:
		return "outer-product"
	}
}

// EstimateSpMSpMCost returns rough work estimates (traced operations) for
// both formulations on the given operands, the quantity the host runtime's
// algorithmic-selection step compares (Section 3.1).
func EstimateSpMSpMCost(a *matrix.CSC, b *matrix.CSR) (outer, inner float64) {
	// Outer product: one partial product per (nonzero of col k of A ×
	// nonzero of row k of B). Each is written to memory, read back and
	// sort-merged, so the per-partial cost carries the merge's log factor —
	// the memory-traffic overhead that lets the inner product win on small
	// dense operands despite its larger candidate space.
	pp := 0.0
	for k := 0; k < a.Cols; k++ {
		ca := float64(a.ColPtr[k+1] - a.ColPtr[k])
		cb := float64(b.RowPtr[k+1] - b.RowPtr[k])
		pp += ca * cb
	}
	perRow := pp / float64(maxInt(a.Rows, 1))
	logf := 1.0
	for v := perRow; v > 2; v /= 2 {
		logf++
	}
	outer = pp * (2 + logf)

	// Inner product: every nonempty (row, col) candidate walks both index
	// lists.
	rowsNE, colsNE, nnzRows, nnzCols := 0, 0, 0.0, 0.0
	ar := a.ToCSR()
	for i := 0; i < ar.Rows; i++ {
		if n := ar.RowPtr[i+1] - ar.RowPtr[i]; n > 0 {
			rowsNE++
			nnzRows += float64(n)
		}
	}
	bc := b.ToCSC()
	for j := 0; j < bc.Cols; j++ {
		if n := bc.ColPtr[j+1] - bc.ColPtr[j]; n > 0 {
			colsNE++
			nnzCols += float64(n)
		}
	}
	if rowsNE > 0 && colsNE > 0 {
		avgRow := nnzRows / float64(rowsNE)
		avgCol := nnzCols / float64(colsNE)
		inner = float64(rowsNE) * float64(colsNE) * (avgRow + avgCol)
	}
	return outer, inner
}

// ChooseSpMSpM is the host's dispatch decision: the formulation with the
// lower estimated cost. For the density levels of the paper's evaluation
// the outer product wins (Section 5.4); inner product takes over for
// small, dense operands.
func ChooseSpMSpM(a *matrix.CSC, b *matrix.CSR) Algorithm {
	outer, inner := EstimateSpMSpMCost(a, b)
	if inner < outer {
		return InnerProduct
	}
	return OuterProduct
}
