package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func randDense(rng *rand.Rand, r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}

func TestGeMMCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 9, 7)
	b := randDense(rng, 7, 11)
	got, w, _ := GeMM(a, b, nGPE, nLCP)
	want := denseMul(a, b)
	if !approxEq(got, want, 1e-9) {
		t.Fatal("GeMM result wrong")
	}
	if w.Trace.FPOps == 0 || len(w.Trace.Phases) != 1 {
		t.Fatalf("trace malformed: %v", w.Trace)
	}
}

func TestQuickGeMMMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		k := 2 + rng.Intn(10)
		m := 2 + rng.Intn(10)
		a := randDense(rng, n, k)
		b := randDense(rng, k, m)
		got, _, _ := GeMM(a, b, nGPE, nLCP)
		return approxEq(got, denseMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// refConv is the straightforward reference convolution.
func refConv(in, k [][]float64) [][]float64 {
	h, w := len(in), len(in[0])
	kh, kw := len(k), len(k[0])
	out := make([][]float64, h-kh+1)
	for oy := range out {
		out[oy] = make([]float64, w-kw+1)
		for ox := range out[oy] {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					out[oy][ox] += in[oy+ky][ox+kx] * k[ky][kx]
				}
			}
		}
	}
	return out
}

func TestConv2DCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randDense(rng, 12, 14)
	k := randDense(rng, 3, 3)
	got, w, _ := Conv2D(in, k, nGPE, nLCP)
	want := refConv(in, k)
	if len(got) != len(want) {
		t.Fatalf("output height %d, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
				t.Fatalf("out[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if w.Name != "conv2d" {
		t.Fatalf("workload name %q", w.Name)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randDense(rng, 6, 6)
	id := [][]float64{{1}}
	got, _, _ := Conv2D(in, id, nGPE, nLCP)
	for i := range got {
		for j := range got[i] {
			if got[i][j] != in[i][j] {
				t.Fatal("1x1 identity kernel must copy the input")
			}
		}
	}
}

func TestRegularKernelsRunOnMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	a := randDense(rng, 24, 24)
	_, w, _ := GeMM(a, a, chip.NGPE(), chip.Tiles)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.BindTrace(w.Trace)
	var total power.Metrics
	for _, ep := range w.Epochs(0.05) {
		total.Add(m.RunEpoch(ep).Metrics)
	}
	if total.TimeSec <= 0 || total.GFLOPS() <= 0 {
		t.Fatalf("degenerate metrics %+v", total)
	}
	// Regular GeMM has far better locality than sparse kernels: its L1 miss
	// rate should be low once warm.
	_, w2, _ := GeMM(a, a, chip.NGPE(), chip.Tiles)
	m2 := sim.New(chip, sim.DefaultBandwidth, config.MaxCfg)
	m2.BindTrace(w2.Trace)
	eps := w2.Epochs(0.05)
	var last sim.EpochResult
	for _, ep := range eps {
		last = m2.RunEpoch(ep)
	}
	if last.Counters.L1MissRate > 0.2 {
		t.Fatalf("warm GeMM should mostly hit, miss rate %v", last.Counters.L1MissRate)
	}
}
