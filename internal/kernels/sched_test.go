package kernels

import (
	"math/rand"
	"testing"

	"sparseadapt/internal/matrix"
)

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin(4)
	for i := 0; i < 12; i++ {
		if g := s.Assign(100); g != i%4 {
			t.Fatalf("assign %d = %d", i, g)
		}
	}
	s.Reset()
	if s.Assign(1) != 0 {
		t.Fatal("reset must restart the cycle")
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	s := NewLeastLoaded(4)
	// One huge unit followed by many small ones: the huge GPE is avoided.
	first := s.Assign(1000)
	for i := 0; i < 30; i++ {
		if g := s.Assign(10); g == first {
			t.Fatalf("least-loaded reassigned to the overloaded GPE at %d", i)
		}
	}
	loads := s.Loads()
	if loads[first] != 1000 {
		t.Fatalf("loads %v", loads)
	}
	s.Reset()
	for _, l := range s.Loads() {
		if l != 0 {
			t.Fatal("reset must clear loads")
		}
	}
}

func TestLeastLoadedDeterministicTies(t *testing.T) {
	a := NewLeastLoaded(8)
	b := NewLeastLoaded(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		c := 1 + rng.Intn(50)
		if a.Assign(c) != b.Assign(c) {
			t.Fatal("scheduling not deterministic")
		}
	}
}

// imbalance returns max/mean of per-GPE FP-op counts in a trace.
func imbalance(w Workload, nGPE int) float64 {
	per := make([]int, nGPE)
	for _, e := range w.Trace.Events {
		if int(e.Core) < nGPE && e.Kind.IsFP() {
			per[e.Core]++
		}
	}
	max, sum := 0, 0
	for _, p := range per {
		if p > max {
			max = p
		}
		sum += p
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(nGPE))
}

func TestLeastLoadedReducesImbalanceOnPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	am := matrix.RMATDefault(rng, 256, 4000)
	a := am.ToCSC()
	x := matrix.RandomVec(rng, 256, 0.5)

	_, rr, _ := SpMSpVSched(a, x, nGPE, nLCP, NewRoundRobin(nGPE))
	_, ll, _ := SpMSpVSched(a, x, nGPE, nLCP, NewLeastLoaded(nGPE))
	ir, il := imbalance(rr, nGPE), imbalance(ll, nGPE)
	if il >= ir {
		t.Fatalf("least-loaded should reduce imbalance on power-law input: %v vs %v", il, ir)
	}
}

func TestSchedVariantsSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	am := matrix.Uniform(rng, 48, 48, 300)
	a := am.ToCSC()
	b := am.ToCSR()
	c1, _, _ := SpMSpMSched(a, b, nGPE, nLCP, NewRoundRobin(nGPE))
	c2, _, _ := SpMSpMSched(a, b, nGPE, nLCP, NewLeastLoaded(nGPE))
	if !c1.Equal(c2, 1e-12) {
		t.Fatal("scheduling policy must not change the numerical result")
	}
}
