package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

const (
	nGPE = 16
	nLCP = 2
)

// denseMul multiplies dense expansions for verification.
func denseMul(a, b [][]float64) [][]float64 {
	n, k, mCols := len(a), len(b), len(b[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, mCols)
		for kk := 0; kk < k; kk++ {
			if a[i][kk] == 0 {
				continue
			}
			for j := 0; j < mCols; j++ {
				out[i][j] += a[i][kk] * b[kk][j]
			}
		}
	}
	return out
}

func approxEq(a, b [][]float64, tol float64) bool {
	for i := range a {
		for j := range a[i] {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestSpMSpMCorrectSmall(t *testing.T) {
	coo := matrix.NewCOO(4, 4)
	coo.Add(0, 1, 2)
	coo.Add(1, 2, 3)
	coo.Add(2, 0, 4)
	coo.Add(3, 3, 5)
	coo.Add(0, 2, -1)
	a := coo.ToCSC()
	b := coo.ToCSR()
	got, w, _ := SpMSpM(a, b, nGPE, nLCP)
	want := denseMul(a.ToCSR().Dense(), b.Dense())
	if !approxEq(got.Dense(), want, 1e-9) {
		t.Fatalf("SpMSpM wrong:\n got %v\nwant %v", got.Dense(), want)
	}
	if w.Trace.FPOps == 0 {
		t.Fatal("no FP ops traced")
	}
	if len(w.Trace.Phases) != 2 || w.Trace.Phases[0].Name != "multiply" || w.Trace.Phases[1].Name != "merge" {
		t.Fatalf("explicit phases wrong: %+v", w.Trace.Phases)
	}
}

func TestQuickSpMSpMMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		am := matrix.Uniform(rng, n, n, n*2)
		bm := matrix.Uniform(rng, n, n, n*2)
		a := am.ToCSC()
		b := bm.ToCSR()
		got, _, _ := SpMSpM(a, b, nGPE, nLCP)
		want := denseMul(a.ToCSR().Dense(), b.Dense())
		return approxEq(got.Dense(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpMSpVMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		am := matrix.Uniform(rng, n, n, n*3)
		a := am.ToCSC()
		x := matrix.RandomVec(rng, n, 0.5)
		got, _, _ := SpMSpV(a, x, nGPE, nLCP)
		ad := a.ToCSR().Dense()
		xd := x.Dense()
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want[i] += ad[i][j] * xd[j]
			}
		}
		gd := got.Dense()
		for i := range want {
			if math.Abs(gd[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMSpVTransposeProduct(t *testing.T) {
	// The paper's SpMSpM evaluation computes C = A·Aᵀ; check via kernels.
	rng := rand.New(rand.NewSource(3))
	am := matrix.Uniform(rng, 20, 20, 60)
	a := am.ToCSC()
	at := am.ToCSR().Transpose() // Aᵀ in CSR... Transpose returns CSR of Aᵀ
	got, _, _ := SpMSpM(a, at, nGPE, nLCP)
	want := denseMul(am.ToCSR().Dense(), at.Dense())
	if !approxEq(got.Dense(), want, 1e-9) {
		t.Fatal("A·Aᵀ mismatch")
	}
}

func TestTraceEventsLieInRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	am := matrix.Uniform(rng, 32, 32, 128)
	a := am.ToCSC()
	_, w, _ := SpMSpM(a, am.ToCSR(), nGPE, nLCP)
	for i, e := range w.Trace.Events {
		if !e.Kind.IsMem() {
			continue
		}
		if w.Trace.RegionOf(e.Addr) == nil {
			t.Fatalf("event %d addr %#x outside all regions", i, e.Addr)
		}
		if e.PC == 0 {
			t.Fatalf("memory event %d has reserved PC 0", i)
		}
	}
}

func TestWorkDistributedAcrossGPEs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	am := matrix.Uniform(rng, 64, 64, 512)
	a := am.ToCSC()
	x := matrix.RandomVec(rng, 64, 0.5)
	_, w, _ := SpMSpV(a, x, nGPE, nLCP)
	seen := make([]int, nGPE+nLCP)
	for _, e := range w.Trace.Events {
		seen[e.Core]++
	}
	for g := 0; g < nGPE; g++ {
		if seen[g] == 0 {
			t.Fatalf("GPE %d received no work: %v", g, seen)
		}
	}
	if seen[nGPE] == 0 {
		t.Fatal("LCP 0 did no scheduling")
	}
}

func TestWorkloadEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	am := matrix.Uniform(rng, 128, 128, 2048)
	a := am.ToCSC()
	_, w, _ := SpMSpM(a, am.ToCSR(), nGPE, nLCP)
	eps := w.Epochs(0.02) // scaled-down epoch for the small input
	if len(eps) < 4 {
		t.Fatalf("too few epochs: %d", len(eps))
	}
	// Multiply epochs precede merge epochs.
	sawMerge := false
	for _, ep := range eps {
		if ep.Phase == "merge" {
			sawMerge = true
		} else if sawMerge && ep.Phase == "multiply" {
			t.Fatal("phase order violated")
		}
	}
	if !sawMerge {
		t.Fatal("no merge epochs")
	}
}

func TestKernelsRunOnMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	am := matrix.Uniform(rng, 96, 96, 800)
	a := am.ToCSC()
	x := matrix.RandomVec(rng, 96, 0.5)
	for _, build := range []func() Workload{
		func() Workload { _, w, _ := SpMSpM(a, am.ToCSR(), chip.NGPE(), chip.Tiles); return w },
		func() Workload { _, w, _ := SpMSpV(a, x, chip.NGPE(), chip.Tiles); return w },
	} {
		w := build()
		m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
		m.BindTrace(w.Trace)
		var total power.Metrics
		for _, ep := range w.Epochs(0.05) {
			r := m.RunEpoch(ep)
			total.Add(r.Metrics)
		}
		if total.TimeSec <= 0 || total.EnergyJ <= 0 || total.FPOps <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", w.Name, total)
		}
		if total.GFLOPS() <= 0 {
			t.Fatalf("%s: no throughput", w.Name)
		}
	}
}

func TestMergeRow(t *testing.T) {
	in := []pp{{3, 1}, {1, 2}, {3, 4}, {0, 5}, {1, -2}}
	out := mergeRow(in)
	if len(out) != 3 {
		t.Fatalf("merged %d entries, want 3", len(out))
	}
	if out[0].col != 0 || out[0].val != 5 {
		t.Fatalf("out[0] = %+v", out[0])
	}
	if out[1].col != 1 || out[1].val != 0 {
		t.Fatalf("out[1] = %+v", out[1])
	}
	if out[2].col != 3 || out[2].val != 5 {
		t.Fatalf("out[2] = %+v", out[2])
	}
}

func TestQuickMergeRowSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60)
		in := make([]pp, n)
		for i := range in {
			in[i] = pp{col: rng.Intn(12), val: rng.Float64()}
		}
		out := mergeRow(in)
		for i := 1; i < len(out); i++ {
			if out[i].col <= out[i-1].col {
				return false
			}
		}
		// Sum preservation.
		var a, b float64
		for _, e := range in {
			a += e.val
		}
		for _, e := range out {
			b += e.val
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := matrix.NewCOO(8, 8).ToCSC()
	c, w, _ := SpMSpM(empty, matrix.NewCOO(8, 8).ToCSR(), nGPE, nLCP)
	if c.NNZ() != 0 {
		t.Fatal("empty product must be empty")
	}
	if w.Trace == nil {
		t.Fatal("trace must exist even for empty input")
	}
	y, _, _ := SpMSpV(empty, matrix.NewSparseVec(8, []int{1}, []float64{1}), nGPE, nLCP)
	if y.NNZ() != 0 {
		t.Fatal("empty matvec must be empty")
	}
}
