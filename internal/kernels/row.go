package kernels

import (
	"fmt"
	"sort"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// Static instruction IDs for the row-wise kernel.
const (
	pcRwAPtr = iota + 40
	pcRwAIdx
	pcRwAVal
	pcRwBPtr
	pcRwBIdx
	pcRwBVal
	pcRwAcc
	pcRwOut
	pcRwQueue
)

// SpMSpMRow computes C = A·B with the row-wise (Gustavson) formulation:
// row i of C is the sum of rows k of B scaled by the nonzeros a_ik,
// accumulated in a per-row sparse accumulator. One pass, no
// partial-product spill and no candidate-pair blowup — the middle ground
// between the outer and inner products. A and B are both consumed in CSR.
func SpMSpMRow(a *matrix.CSR, b *matrix.CSR, nGPE, nLCP int) (*matrix.CSR, Workload, error) {
	return spmspmRow(a, b, nGPE, nLCP, NewRoundRobin(nGPE), config.FmtCSR)
}

// spmspmRow is the row-wise implementation with an explicit LCP scheduling
// policy and the A operand stored in format aFmt (natural: CSR).
func spmspmRow(a *matrix.CSR, b *matrix.CSR, nGPE, nLCP int, sched Scheduler, aFmt int) (*matrix.CSR, Workload, error) {
	if a.Cols != b.Rows {
		return nil, Workload{}, fmt.Errorf("kernels: SpMSpMRow shape mismatch: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	tb.SetNNZ(a.NNZ())
	regAPtr := tb.AllocRegion("A.rowptr", (a.Rows+1)*iBytes, sim.RegionStream, 9)
	regAIdx := tb.AllocRegion("A.colidx", maxInt(a.NNZ(), 1)*iBytes, sim.RegionStream, 9)
	regAVal := tb.AllocRegion("A.val", maxInt(a.NNZ(), 1)*fBytes, sim.RegionStream, 9)
	regBPtr := tb.AllocRegion("B.rowptr", (b.Rows+1)*iBytes, sim.RegionStream, 9)
	// B rows are revisited once per referencing nonzero of A — the kernel's
	// main reuse structure besides the accumulator.
	regBIdx := tb.AllocRegion("B.colidx", maxInt(b.NNZ(), 1)*iBytes, sim.RegionReuse, 2)
	regBVal := tb.AllocRegion("B.val", maxInt(b.NNZ(), 1)*fBytes, sim.RegionReuse, 2)
	regAcc := tb.AllocRegion("accumulator", maxInt(nGPE*b.Cols, 1)*fBytes, sim.RegionReuse, 0)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 1)
	regOut := tb.AllocRegion("C", maxInt(a.NNZ()+b.NNZ(), 1)*(fBytes+iBytes+4), sim.RegionStream, 9)
	ov := newOverlay(tb, aFmt, config.FmtCSR, a.NNZ())

	out := matrix.NewCOO(a.Rows, b.Cols)
	acc := make([]float64, b.Cols)
	touched := make([]bool, b.Cols)

	tb.Phase("row")
	sched.Reset()
	lcp := func(u int) int { return nGPE + (u % nLCP) }
	outPos := 0
	for i := 0; i < a.Rows; i++ {
		aCols, aVals := a.Row(i)
		if len(aCols) == 0 {
			continue
		}
		g := sched.Assign(len(aCols))
		tb.On(lcp(i))
		tb.Int(2)
		tb.StoreI(pcRwQueue, regQueue.Lo+uint32((i%256)*iBytes))

		tb.On(g)
		tb.LoadI(pcRwAPtr, regAPtr.Lo+uint32(i*iBytes))
		tb.LoadI(pcRwAPtr, regAPtr.Lo+uint32((i+1)*iBytes))
		var cols []int
		accAddr := func(j int) uint32 { return regAcc.Lo + uint32((g*b.Cols+j)*fBytes) }
		for ai, k := range aCols {
			aOff := a.RowPtr[i] + ai
			tb.LoadI(pcRwAIdx, regAIdx.Lo+uint32(aOff*iBytes))
			tb.LoadF(pcRwAVal, regAVal.Lo+uint32(aOff*fBytes))
			ov.touch(tb, aOff)
			av := aVals[ai]
			tb.LoadI(pcRwBPtr, regBPtr.Lo+uint32(k*iBytes))
			tb.LoadI(pcRwBPtr, regBPtr.Lo+uint32((k+1)*iBytes))
			bCols, bVals := b.Row(k)
			for bi, j := range bCols {
				bOff := b.RowPtr[k] + bi
				tb.LoadI(pcRwBIdx, regBIdx.Lo+uint32(bOff*iBytes))
				tb.LoadF(pcRwBVal, regBVal.Lo+uint32(bOff*fBytes))
				if touched[j] {
					// Read-modify-write on the accumulator entry.
					tb.LoadF(pcRwAcc, accAddr(j))
					tb.FP(2) // multiply + accumulate
				} else {
					tb.FP(1) // first product initializes the entry
					touched[j] = true
					cols = append(cols, j)
				}
				tb.StoreF(pcRwAcc, accAddr(j))
				acc[j] += av * bVals[bi]
			}
		}
		// Gather the row: sort the touched columns and stream them out.
		sort.Ints(cols)
		n := len(cols)
		logn := 1
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		for _, j := range cols {
			tb.Int(logn)
			tb.LoadF(pcRwAcc, accAddr(j))
			tb.StoreF(pcRwOut, regOut.Lo+uint32(outPos*16))
			tb.StoreI(pcRwOut, regOut.Lo+uint32(outPos*16+fBytes))
			out.Add(i, j, acc[j])
			acc[j] = 0
			touched[j] = false
			outPos++
		}
	}

	w := Workload{Name: "spmspm-row", Trace: tb.Build(), EpochFPOps: EpochSpMSpM}
	return out.ToCSR(), w, nil
}
