package kernels

// Scheduler models the LCPs' work-distribution policy (Section 3.1: the
// local control processors issue work to GPEs and load-balance). Kernels
// ask for a GPE per work unit, passing a cost hint (the unit's nonzero
// count); how the hint is used is the policy.
type Scheduler interface {
	// Assign returns the GPE that should execute a work unit of the given
	// estimated cost.
	Assign(costHint int) int
	// Reset clears accumulated load state (called between phases).
	Reset()
}

// RoundRobin assigns work units cyclically, ignoring cost — simple
// hardware, but skewed inputs (power-law columns) leave some GPEs with far
// more work.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin builds a round-robin scheduler over n GPEs.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		n = 1
	}
	return &RoundRobin{n: n}
}

// Assign returns GPEs in cyclic order.
func (s *RoundRobin) Assign(int) int {
	g := s.next
	s.next = (s.next + 1) % s.n
	return g
}

// Reset restarts the cycle.
func (s *RoundRobin) Reset() { s.next = 0 }

// LeastLoaded greedily assigns each unit to the GPE with the least
// accumulated estimated cost — the LCP's dynamic load balancing.
type LeastLoaded struct {
	load []int
}

// NewLeastLoaded builds a least-loaded scheduler over n GPEs.
func NewLeastLoaded(n int) *LeastLoaded {
	if n < 1 {
		n = 1
	}
	return &LeastLoaded{load: make([]int, n)}
}

// Assign picks the GPE with minimum accumulated cost (lowest index wins
// ties, keeping traces deterministic).
func (s *LeastLoaded) Assign(costHint int) int {
	if costHint < 1 {
		costHint = 1
	}
	best := 0
	for g := 1; g < len(s.load); g++ {
		if s.load[g] < s.load[best] {
			best = g
		}
	}
	s.load[best] += costHint
	return best
}

// Reset zeroes accumulated load.
func (s *LeastLoaded) Reset() {
	for i := range s.load {
		s.load[i] = 0
	}
}

// Loads exposes the per-GPE accumulated cost (for imbalance analysis).
func (s *LeastLoaded) Loads() []int { return append([]int{}, s.load...) }
