package kernels

import (
	"fmt"
	"sync"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
)

// AlgoKey is the algorithm-level slice of a configuration: the axes that
// select which kernel variant executes (as opposed to the hardware knobs,
// which only change how a fixed trace replays).
type AlgoKey struct {
	Dataflow int
	Format   int
	Sched    int
}

// AlgoOf extracts the algorithm axes of a configuration.
func AlgoOf(cfg config.Config) AlgoKey {
	return AlgoKey{Dataflow: cfg[config.Dataflow], Format: cfg[config.Format], Sched: cfg[config.SchedPolicy]}
}

// String renders the key like "outer/csc/rr".
func (k AlgoKey) String() string {
	df := "?"
	if names := config.DataflowNames(); k.Dataflow >= 0 && k.Dataflow < len(names) {
		df = names[k.Dataflow]
	}
	f := "?"
	if names := config.FormatNames(); k.Format >= 0 && k.Format < len(names) {
		f = names[k.Format]
	}
	s := "?"
	if names := config.SchedNames(); k.Sched >= 0 && k.Sched < len(names) {
		s = names[k.Sched]
	}
	return df + "/" + f + "/" + s
}

// NewSchedulerFor builds the Scheduler for a config.SchedPolicy value.
func NewSchedulerFor(kind, n int) Scheduler {
	if kind == config.SchedLL {
		return NewLeastLoaded(n)
	}
	return NewRoundRobin(n)
}

// SpMSpMVariant computes C = A·B with the dataflow, A-operand format and
// scheduling policy of key, converting the operands to the dataflow's
// consumed layout as needed. The numeric result is the same for every key
// (within floating-point association); the trace differs.
func SpMSpMVariant(a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int, key AlgoKey) (*matrix.CSR, Workload, error) {
	sched := NewSchedulerFor(key.Sched, nGPE)
	switch key.Dataflow {
	case config.DFInner:
		return spmspmInner(a.ToCSR(), b.ToCSC(), nGPE, nLCP, sched, key.Format)
	case config.DFRow:
		return spmspmRow(a.ToCSR(), b, nGPE, nLCP, sched, key.Format)
	default:
		return spmspmOuter(a, b, nGPE, nLCP, sched, key.Format)
	}
}

// SpMSpVVariant computes y = A·x with the A-operand format and scheduling
// policy of key. SpMSpV has a single formulation, so the dataflow axis is
// ignored.
func SpMSpVVariant(a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int, key AlgoKey) (*matrix.SparseVec, Workload, error) {
	return spmspv(a, x, nGPE, nLCP, NewSchedulerFor(key.Sched, nGPE), key.Format)
}

// Source holds one kernel invocation's operands and lazily builds the
// trace of each algorithm variant on demand, caching them so oracle
// recordings, trainer sweeps and controller runs over the widened action
// space trace each variant exactly once. Safe for concurrent use; variant
// builds are deterministic, so results are identical regardless of build
// order.
type Source struct {
	name       string
	epochFPOps int
	build      func(key AlgoKey) (Workload, error)
	collapse   func(key AlgoKey) AlgoKey

	mu    sync.Mutex
	cache map[AlgoKey]Workload
}

// NewSpMSpMSource wraps a C = A·B invocation. name labels the workload in
// reports (variants append their AlgoKey).
func NewSpMSpMSource(name string, a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int) *Source {
	return &Source{
		name:       name,
		epochFPOps: EpochSpMSpM,
		build: func(key AlgoKey) (Workload, error) {
			_, w, err := SpMSpMVariant(a, b, nGPE, nLCP, key)
			return w, err
		},
		collapse: func(key AlgoKey) AlgoKey { return key },
		cache:    map[AlgoKey]Workload{},
	}
}

// NewSpMSpVSource wraps a y = A·x invocation. The dataflow axis collapses
// (SpMSpV has one formulation), so configurations differing only in
// dataflow share a variant.
func NewSpMSpVSource(name string, a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int) *Source {
	return &Source{
		name:       name,
		epochFPOps: EpochSpMSpV,
		build: func(key AlgoKey) (Workload, error) {
			_, w, err := SpMSpVVariant(a, x, nGPE, nLCP, key)
			return w, err
		},
		collapse: func(key AlgoKey) AlgoKey { key.Dataflow = config.DFOuter; return key },
		cache:    map[AlgoKey]Workload{},
	}
}

// Name returns the source's report label.
func (s *Source) Name() string { return s.name }

// EpochFPOps returns the kernel's paper epoch size (FP ops per GPE).
func (s *Source) EpochFPOps() int { return s.epochFPOps }

// Key normalizes an AlgoKey to the variant that actually executes (e.g.
// SpMSpV collapses the dataflow axis).
func (s *Source) Key(key AlgoKey) AlgoKey { return s.collapse(key) }

// Variant returns the workload for the configuration's algorithm axes,
// building and caching it on first use.
func (s *Source) Variant(cfg config.Config) (Workload, error) {
	return s.VariantKey(AlgoOf(cfg))
}

// VariantKey is Variant by explicit key.
func (s *Source) VariantKey(key AlgoKey) (Workload, error) {
	key = s.collapse(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.cache[key]; ok {
		return w, nil
	}
	w, err := s.build(key)
	if err != nil {
		return Workload{}, fmt.Errorf("kernels: building %s variant %v: %w", s.name, key, err)
	}
	w.Name = s.name + "/" + key.String()
	s.cache[key] = w
	return w, nil
}

// Natural returns the variant of the natural algorithm point (the Baseline
// configuration's axes), which anchors the epoch grid: callers size their
// per-variant epoch grids to len(Natural().Epochs(scale)) so epoch e
// covers the same work fraction in every variant (see sim.Trace.EpochsN).
func (s *Source) Natural() (Workload, error) {
	return s.Variant(config.Baseline)
}

// GridEpochs returns the epoch count E of the natural variant at the given
// epoch scale, and the natural workload itself.
func (s *Source) GridEpochs(scale float64) (int, Workload, error) {
	w, err := s.Natural()
	if err != nil {
		return 0, Workload{}, err
	}
	return len(w.Epochs(scale)), w, nil
}
