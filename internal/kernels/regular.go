package kernels

import (
	"fmt"

	"sparseadapt/internal/sim"
)

// Static instruction IDs for the regular kernels (distinct from the sparse
// kernels' PCs so prefetcher behaviour is comparable when traces are mixed
// in tests).
const (
	pcGemmA = iota + 40
	pcGemmB
	pcGemmC
	pcConvIn
	pcConvK
	pcConvOut
)

// EpochRegular is the epoch size used for the regular kernels (same as
// SpMSpM: coarse phases, plentiful FP ops).
const EpochRegular = 5000

// GeMM computes the dense product C = A·B with a blocked loop nest and
// returns the result plus its trace. The paper's Discussion (Section 7)
// observes that for regular kernels like GeMM the gap between Ideal Static
// and Oracle is under 5%, making dynamic control unnecessary — the
// `disc7` experiment reproduces that claim with this kernel.
func GeMM(a, b [][]float64, nGPE, nLCP int) ([][]float64, Workload, error) {
	n, k := len(a), len(b)
	if n == 0 || k == 0 || len(a[0]) != k || len(b[0]) == 0 {
		return nil, Workload{}, fmt.Errorf("kernels: GeMM shape mismatch: A is %dx%d, B has %d rows", n, lenOrZero(a), k)
	}
	mCols := len(b[0])
	tb := sim.NewBuilder(nGPE, nLCP)
	regA := tb.AllocRegion("A", n*k*fBytes, sim.RegionStream, 9)
	regB := tb.AllocRegion("B", k*mCols*fBytes, sim.RegionReuse, 1)
	regC := tb.AllocRegion("C", n*mCols*fBytes, sim.RegionReuse, 0)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 2)

	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, mCols)
	}

	tb.Phase("gemm")
	lcp := func(u int) int { return nGPE + (u % nLCP) }
	for i := 0; i < n; i++ {
		g := i % nGPE
		tb.On(lcp(i))
		tb.Int(2)
		tb.StoreI(pcGemmC, regQueue.Lo+uint32((i%256)*4))

		tb.On(g)
		for kk := 0; kk < k; kk++ {
			tb.LoadF(pcGemmA, regA.Lo+uint32((i*k+kk)*fBytes))
			av := a[i][kk]
			if av == 0 {
				tb.Int(1)
				continue
			}
			for j := 0; j < mCols; j++ {
				tb.LoadF(pcGemmB, regB.Lo+uint32((kk*mCols+j)*fBytes))
				tb.LoadF(pcGemmC, regC.Lo+uint32((i*mCols+j)*fBytes))
				tb.FP(2) // multiply-accumulate
				tb.StoreF(pcGemmC, regC.Lo+uint32((i*mCols+j)*fBytes))
				c[i][j] += av * b[kk][j]
			}
		}
	}
	return c, Workload{Name: "gemm", Trace: tb.Build(), EpochFPOps: EpochRegular}, nil
}

// Conv2D computes a dense 2-D convolution (valid padding, stride 1) of a
// h×w input with a kh×kw kernel — the second regular workload of the
// paper's Discussion. Rows of the output are distributed across GPEs.
func Conv2D(in [][]float64, kernel [][]float64, nGPE, nLCP int) ([][]float64, Workload, error) {
	if len(in) == 0 || len(in[0]) == 0 || len(kernel) == 0 || len(kernel[0]) == 0 {
		return nil, Workload{}, fmt.Errorf("kernels: Conv2D with empty input or kernel")
	}
	h, w := len(in), len(in[0])
	kh, kw := len(kernel), len(kernel[0])
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		return nil, Workload{}, fmt.Errorf("kernels: Conv2D kernel %dx%d larger than input %dx%d", kh, kw, h, w)
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	regIn := tb.AllocRegion("input", h*w*fBytes, sim.RegionStream, 9)
	regK := tb.AllocRegion("kernel", kh*kw*fBytes, sim.RegionReuse, 0)
	regOut := tb.AllocRegion("output", oh*ow*fBytes, sim.RegionStream, 9)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 2)

	out := make([][]float64, oh)
	for i := range out {
		out[i] = make([]float64, ow)
	}

	tb.Phase("conv")
	lcp := func(u int) int { return nGPE + (u % nLCP) }
	for oy := 0; oy < oh; oy++ {
		g := oy % nGPE
		tb.On(lcp(oy))
		tb.Int(2)
		tb.StoreI(pcConvOut, regQueue.Lo+uint32((oy%256)*4))

		tb.On(g)
		for ox := 0; ox < ow; ox++ {
			acc := 0.0
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					tb.LoadF(pcConvIn, regIn.Lo+uint32(((oy+ky)*w+ox+kx)*fBytes))
					tb.LoadF(pcConvK, regK.Lo+uint32((ky*kw+kx)*fBytes))
					tb.FP(2)
					acc += in[oy+ky][ox+kx] * kernel[ky][kx]
				}
			}
			tb.StoreF(pcConvOut, regOut.Lo+uint32((oy*ow+ox)*fBytes))
			out[oy][ox] = acc
		}
	}
	return out, Workload{Name: "conv2d", Trace: tb.Build(), EpochFPOps: EpochRegular}, nil
}

// lenOrZero returns the row width of a non-empty dense matrix.
func lenOrZero(m [][]float64) int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}
