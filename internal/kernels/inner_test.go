package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/matrix"
)

func TestSpMSpMInnerCorrectSmall(t *testing.T) {
	coo := matrix.NewCOO(4, 4)
	coo.Add(0, 1, 2)
	coo.Add(1, 2, 3)
	coo.Add(2, 0, 4)
	coo.Add(0, 2, -1)
	a := coo.ToCSR()
	b := coo.ToCSC()
	got, w, _ := SpMSpMInner(a, b, nGPE, nLCP)
	want := denseMul(a.Dense(), b.ToCSR().Dense())
	if !approxEq(got.Dense(), want, 1e-9) {
		t.Fatalf("inner product wrong:\n got %v\nwant %v", got.Dense(), want)
	}
	if w.Name != "spmspm-inner" || w.Trace.FPOps == 0 {
		t.Fatalf("workload malformed: %+v", w)
	}
}

// Property: both SpMSpM formulations agree with each other and the dense
// reference.
func TestQuickInnerMatchesOuter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		am := matrix.Uniform(rng, n, n, n*3)
		bm := matrix.Uniform(rng, n, n, n*3)
		inner, _, _ := SpMSpMInner(am.ToCSR(), bm.ToCSC(), nGPE, nLCP)
		outer, _, _ := SpMSpM(am.ToCSC(), bm.ToCSR(), nGPE, nLCP)
		// The formulations may differ in explicit zeros (inner drops exact
		// zero dot products only if no index matched); compare dense forms.
		return approxEq(inner.Dense(), outer.Dense(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmSelectionCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Sparse large operands: outer product must win.
	sparse := matrix.Uniform(rng, 512, 512, 1024)
	if got := ChooseSpMSpM(sparse.ToCSC(), sparse.ToCSR()); got != OuterProduct {
		t.Fatalf("sparse input chose %v", got)
	}
	// Small dense-ish operands: inner product avoids the partial-product
	// explosion.
	dense := matrix.UniformDensity(rng, 24, 24, 0.8)
	if got := ChooseSpMSpM(dense.ToCSC(), dense.ToCSR()); got != InnerProduct {
		outer, inner := EstimateSpMSpMCost(dense.ToCSC(), dense.ToCSR())
		t.Fatalf("dense input chose %v (outer=%v inner=%v)", got, outer, inner)
	}
}

func TestEstimateCostMonotoneInDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prevRatio := 0.0
	for i, d := range []float64{0.01, 0.05, 0.2, 0.6} {
		m := matrix.UniformDensity(rng, 64, 64, d)
		outer, inner := EstimateSpMSpMCost(m.ToCSC(), m.ToCSR())
		if outer <= 0 || inner <= 0 {
			t.Fatalf("degenerate estimates at density %v", d)
		}
		ratio := outer / inner
		if i > 0 && ratio < prevRatio {
			t.Fatalf("outer/inner cost ratio should grow with density: %v -> %v at %v",
				prevRatio, ratio, d)
		}
		prevRatio = ratio
	}
}

func TestAlgorithmString(t *testing.T) {
	if OuterProduct.String() == InnerProduct.String() {
		t.Fatal("algorithm names must differ")
	}
}

func TestInnerEmptyOperands(t *testing.T) {
	empty := matrix.NewCOO(6, 6)
	c, _, _ := SpMSpMInner(empty.ToCSR(), empty.ToCSC(), nGPE, nLCP)
	if c.NNZ() != 0 {
		t.Fatal("empty product must be empty")
	}
}
