// Package kernels implements the paper's sparse linear algebra workloads on
// the Transmuter machine model: SpMSpM in three dataflow formulations —
// outer-product (the OuterSPACE algorithm of Pal et al., with its two
// explicit phases, multiply and merge), compressed inner-product, and
// row-wise (Gustavson) — and SpMSpV (whose multiply and merge proceed in
// tandem, Section 5.1). Each kernel executes functionally — producing the
// real result, which tests verify against dense references — while
// emitting the instruction/access trace the sim.Machine replays under
// arbitrary hardware configurations.
//
// The dataflow, the A operand's storage format and the LCP scheduling
// policy are runtime action axes (config.Dataflow/Format/SchedPolicy); a
// Source caches the per-variant traces of one operand set so the
// controller, oracle and trainer can switch between them mid-run.
package kernels

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// Epoch sizes used in the paper's evaluation (Section 5.4): FP-ops per GPE
// per control epoch.
const (
	EpochSpMSpM = 5000
	EpochSpMSpV = 500
)

// Static instruction IDs (PCs) for the prefetcher's index table. PC 0 is
// reserved for non-demand traffic.
const (
	pcAColPtr = iota + 1
	pcARowIdx
	pcAVal
	pcBRowPtr
	pcBColIdx
	pcBVal
	pcPPWrite
	pcPPRead
	pcAcc
	pcOut
	pcXIdx
	pcXVal
	pcQueue
	pcAFmt // extra index traffic when A's stored format is not the natural one
)

// sizes of scalar elements in the traced address space.
const (
	fBytes = 8 // float64
	iBytes = 4 // int32 index
)

// Workload bundles a kernel execution: its trace, the paper's epoch size
// for it, and a short name for reports.
type Workload struct {
	Name       string
	Trace      *sim.Trace
	EpochFPOps int
}

// Epochs segments the workload's trace with its kernel-appropriate epoch
// size, optionally scaled (scale 1 = paper's epoch size).
func (w Workload) Epochs(scale float64) []sim.EpochRange {
	n := int(float64(w.EpochFPOps) * scale)
	if n < 10 {
		n = 10
	}
	return w.Trace.Epochs(n)
}

// EpochsN segments the workload's trace into exactly n epochs at equal
// FP-op quantiles (see sim.Trace.EpochsN) — the grid used to align epochs
// across dataflow/format variants of the same kernel.
func (w Workload) EpochsN(n int) []sim.EpochRange {
	return w.Trace.EpochsN(n)
}

// fmtOverlay models the extra index traffic of consuming the A operand
// through a storage format other than the dataflow's natural orientation:
// the opposite compressed format costs one extra index load per element
// (chasing the transposed index structure), COO costs two (both explicit
// coordinates). The natural format has no overlay and leaves the trace
// byte-identical to the pre-widening kernels.
type fmtOverlay struct {
	loads int
	reg   sim.Region
}

// newOverlay allocates the overlay's index region on tb when the stored
// format differs from the natural one.
func newOverlay(tb *sim.Builder, stored, natural, nnz int) fmtOverlay {
	var ov fmtOverlay
	switch {
	case stored == natural:
		return ov
	case stored == config.FmtCOO:
		ov.loads = 2
	default:
		ov.loads = 1
	}
	ov.reg = tb.AllocRegion("A.fmt-index", maxInt(nnz, 1)*ov.loads*iBytes, sim.RegionStream, 9)
	return ov
}

// touch emits the overlay's extra index loads for one access to A element
// elem (0 ≤ elem < nnz).
func (o fmtOverlay) touch(tb *sim.Builder, elem int) {
	for k := 0; k < o.loads; k++ {
		tb.LoadI(pcAFmt, o.reg.Lo+uint32((elem*o.loads+k)*iBytes))
	}
}

// pp is one partial product (multiply-phase output) awaiting the merge.
type pp struct {
	col int
	val float64
}

// SpMSpM computes C = A·B with the outer-product algorithm and returns the
// result plus the execution trace for a machine with nGPE worker cores and
// nLCP control processors. Work units are distributed round-robin; use
// SpMSpMSched for a different LCP scheduling policy.
//
// Multiply phase: for every k, the outer product of column k of A (CSC)
// with row k of B (CSR) appends partial products to per-output-row lists.
// Merge phase: each output row's partial products are sorted and combined.
// The LCPs' scheduling activity is traced too.
func SpMSpM(a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int) (*matrix.CSR, Workload, error) {
	return SpMSpMSched(a, b, nGPE, nLCP, NewRoundRobin(nGPE))
}

// SpMSpMSched is SpMSpM with an explicit LCP work-scheduling policy.
func SpMSpMSched(a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int, sched Scheduler) (*matrix.CSR, Workload, error) {
	return spmspmOuter(a, b, nGPE, nLCP, sched, config.FmtCSC)
}

// spmspmOuter is the outer-product implementation with the A operand
// stored in format aFmt (natural: CSC; other formats add overlay index
// traffic on every A element access).
func spmspmOuter(a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int, sched Scheduler, aFmt int) (*matrix.CSR, Workload, error) {
	if a.Cols != b.Rows {
		return nil, Workload{}, fmt.Errorf("kernels: SpMSpM shape mismatch: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	tb.SetNNZ(a.NNZ())

	// Data layout. Inputs stream; partial-product lists are written in
	// multiply and re-read in merge (the read-modify-write structures of
	// Section 5.2); per-GPE sort scratch is the hottest reuse region.
	regAPtr := tb.AllocRegion("A.colptr", (a.Cols+1)*iBytes, sim.RegionStream, 9)
	regAIdx := tb.AllocRegion("A.rowidx", a.NNZ()*iBytes, sim.RegionStream, 9)
	regAVal := tb.AllocRegion("A.val", a.NNZ()*fBytes, sim.RegionStream, 9)
	regBPtr := tb.AllocRegion("B.rowptr", (b.Rows+1)*iBytes, sim.RegionStream, 9)
	regBIdx := tb.AllocRegion("B.colidx", b.NNZ()*iBytes, sim.RegionStream, 9)
	regBVal := tb.AllocRegion("B.val", b.NNZ()*fBytes, sim.RegionStream, 9)

	// Estimate partial-product volume for layout.
	nPP := 0
	for k := 0; k < a.Cols; k++ {
		ca := a.ColPtr[k+1] - a.ColPtr[k]
		cb := b.RowPtr[k+1] - b.RowPtr[k]
		nPP += ca * cb
	}
	regPP := tb.AllocRegion("partials", maxInt(nPP, 1)*(fBytes+iBytes+4), sim.RegionReuse, 2)
	regScratch := tb.AllocRegion("merge-scratch", nGPE*4096, sim.RegionReuse, 0)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 1)
	regOut := tb.AllocRegion("C", maxInt(nPP, 1)*(fBytes+iBytes+4), sim.RegionStream, 9)
	ov := newOverlay(tb, aFmt, config.FmtCSC, a.NNZ())

	rows := make([][]pp, a.Rows)
	ppCursor := 0 // element index into the partial-product region

	// ---- Multiply phase ----
	tb.Phase("multiply")
	sched.Reset()
	lcp := func(unit int) int { return nGPE + (unit % nLCP) }
	for k := 0; k < a.Cols; k++ {
		ca := a.ColPtr[k+1] - a.ColPtr[k]
		cb := b.RowPtr[k+1] - b.RowPtr[k]
		g := sched.Assign(ca * cb)
		// LCP schedules the work unit.
		tb.On(lcp(k))
		tb.Int(2)
		tb.StoreI(pcQueue, regQueue.Lo+uint32((k%256)*iBytes))

		tb.On(g)
		tb.LoadI(pcAColPtr, regAPtr.Lo+uint32(k*iBytes))
		tb.LoadI(pcAColPtr, regAPtr.Lo+uint32((k+1)*iBytes))
		tb.LoadI(pcBRowPtr, regBPtr.Lo+uint32(k*iBytes))
		tb.LoadI(pcBRowPtr, regBPtr.Lo+uint32((k+1)*iBytes))
		aRows, aVals := a.Col(k)
		bCols, bVals := b.Row(k)
		if len(aRows) == 0 || len(bCols) == 0 {
			tb.Int(1)
			continue
		}
		for ai, r := range aRows {
			aOff := a.ColPtr[k] + ai
			tb.LoadI(pcARowIdx, regAIdx.Lo+uint32(aOff*iBytes))
			tb.LoadF(pcAVal, regAVal.Lo+uint32(aOff*fBytes))
			ov.touch(tb, aOff)
			av := aVals[ai]
			for bi, c := range bCols {
				bOff := b.RowPtr[k] + bi
				tb.LoadI(pcBColIdx, regBIdx.Lo+uint32(bOff*iBytes))
				tb.LoadF(pcBVal, regBVal.Lo+uint32(bOff*fBytes))
				tb.FP(1) // multiply
				// Append (c, av*bv) to row r's partial list.
				tb.StoreF(pcPPWrite, regPP.Lo+uint32(ppCursor*16))
				tb.StoreI(pcPPWrite, regPP.Lo+uint32(ppCursor*16+fBytes))
				tb.Int(1) // list bookkeeping
				rows[r] = append(rows[r], pp{col: c, val: av * bVals[bi]})
				ppCursor++
			}
		}
	}

	// ---- Merge phase ----
	tb.Phase("merge")
	sched.Reset()
	out := matrix.NewCOO(a.Rows, b.Cols)
	ppRead := 0
	for r := 0; r < a.Rows; r++ {
		list := rows[r]
		if len(list) == 0 {
			continue
		}
		g := sched.Assign(len(list))
		tb.On(lcp(r))
		tb.Int(2)
		tb.StoreI(pcQueue, regQueue.Lo+uint32((r%256)*iBytes))

		tb.On(g)
		// Load the row's partial products into scratch.
		for range list {
			tb.LoadF(pcPPRead, regPP.Lo+uint32(ppRead*16))
			tb.LoadI(pcPPRead, regPP.Lo+uint32(ppRead*16+fBytes))
			ppRead++
		}
		// Sort cost: ~n·log₂n integer compare/swap, touching scratch.
		n := len(list)
		logn := 1
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		for i := 0; i < n; i++ {
			tb.LoadI(pcAcc, regScratch.Lo+uint32((g*4096+(i*8)%4000)))
			tb.Int(logn)
		}
		// Combine duplicates and emit the merged row.
		merged := mergeRow(list)
		dups := n - len(merged)
		tb.FP(dups) // one add per combined duplicate
		for i, e := range merged {
			tb.StoreF(pcOut, regOut.Lo+uint32((ppRead-n+i)*16))
			tb.StoreI(pcOut, regOut.Lo+uint32((ppRead-n+i)*16+fBytes))
			out.Add(r, e.col, e.val)
		}
	}

	w := Workload{Name: "spmspm", Trace: tb.Build(), EpochFPOps: EpochSpMSpM}
	return out.ToCSR(), w, nil
}

// mergeRow sorts partial products by column and sums duplicates.
func mergeRow(list []pp) []pp {
	sorted := make([]pp, len(list))
	copy(sorted, list)
	quickSortPP(sorted)
	out := sorted[:0]
	for _, e := range sorted {
		if n := len(out); n > 0 && out[n-1].col == e.col {
			out[n-1].val += e.val
			continue
		}
		out = append(out, e)
	}
	return out
}

func quickSortPP(s []pp) {
	if len(s) < 2 {
		return
	}
	pivot := s[len(s)/2].col
	i, j := 0, len(s)-1
	for i <= j {
		for s[i].col < pivot {
			i++
		}
		for s[j].col > pivot {
			j--
		}
		if i <= j {
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
	}
	quickSortPP(s[:j+1])
	quickSortPP(s[i:])
}

// SpMSpV computes y = A·x for CSC A and sparse x. Multiply and merge happen
// in tandem (Section 5.1): each nonzero of x scales a column of A into a
// shared sparse accumulator, which is the kernel's hot reuse structure.
// Work units are distributed round-robin; use SpMSpVSched for a different
// LCP scheduling policy.
func SpMSpV(a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int) (*matrix.SparseVec, Workload, error) {
	return SpMSpVSched(a, x, nGPE, nLCP, NewRoundRobin(nGPE))
}

// SpMSpVSched is SpMSpV with an explicit LCP work-scheduling policy.
func SpMSpVSched(a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int, sched Scheduler) (*matrix.SparseVec, Workload, error) {
	return spmspv(a, x, nGPE, nLCP, sched, config.FmtCSC)
}

// spmspv is the implementation with the A operand stored in format aFmt
// (natural: CSC).
func spmspv(a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int, sched Scheduler, aFmt int) (*matrix.SparseVec, Workload, error) {
	if a.Cols != x.N {
		return nil, Workload{}, fmt.Errorf("kernels: SpMSpV shape mismatch: A is %dx%d, x has %d entries", a.Rows, a.Cols, x.N)
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	tb.SetNNZ(a.NNZ())

	regAPtr := tb.AllocRegion("A.colptr", (a.Cols+1)*iBytes, sim.RegionStream, 9)
	regAIdx := tb.AllocRegion("A.rowidx", a.NNZ()*iBytes, sim.RegionStream, 9)
	regAVal := tb.AllocRegion("A.val", a.NNZ()*fBytes, sim.RegionStream, 9)
	regXIdx := tb.AllocRegion("x.idx", maxInt(x.NNZ(), 1)*iBytes, sim.RegionStream, 3)
	regXVal := tb.AllocRegion("x.val", maxInt(x.NNZ(), 1)*fBytes, sim.RegionStream, 3)
	regAcc := tb.AllocRegion("accumulator", a.Rows*fBytes, sim.RegionReuse, 0)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 1)
	regOut := tb.AllocRegion("y", a.Rows*(fBytes+iBytes), sim.RegionStream, 9)
	ov := newOverlay(tb, aFmt, config.FmtCSC, a.NNZ())

	acc := make([]float64, a.Rows)
	touched := make([]bool, a.Rows)

	tb.Phase("spmspv")
	sched.Reset()
	lcp := func(unit int) int { return nGPE + (unit % nLCP) }
	for xi, j := range x.Idx {
		g := sched.Assign(a.ColPtr[j+1] - a.ColPtr[j])
		tb.On(lcp(xi))
		tb.Int(2)
		tb.StoreI(pcQueue, regQueue.Lo+uint32((xi%256)*iBytes))

		tb.On(g)
		tb.LoadI(pcXIdx, regXIdx.Lo+uint32(xi*iBytes))
		tb.LoadF(pcXVal, regXVal.Lo+uint32(xi*fBytes))
		tb.LoadI(pcAColPtr, regAPtr.Lo+uint32(j*iBytes))
		tb.LoadI(pcAColPtr, regAPtr.Lo+uint32((j+1)*iBytes))
		xv := x.Val[xi]
		rowsJ, valsJ := a.Col(j)
		for ai, r := range rowsJ {
			off := a.ColPtr[j] + ai
			tb.LoadI(pcARowIdx, regAIdx.Lo+uint32(off*iBytes))
			tb.LoadF(pcAVal, regAVal.Lo+uint32(off*fBytes))
			ov.touch(tb, off)
			// Read-modify-write on the accumulator entry.
			tb.LoadF(pcAcc, regAcc.Lo+uint32(r*fBytes))
			tb.FP(2) // multiply + add
			tb.StoreF(pcAcc, regAcc.Lo+uint32(r*fBytes))
			acc[r] += xv * valsJ[ai]
			touched[r] = true
		}
	}

	// Result extraction: stream the touched accumulator entries out.
	var idx []int
	var val []float64
	outPos := 0
	for r := 0; r < a.Rows; r++ {
		if !touched[r] {
			continue
		}
		g := outPos % nGPE
		tb.On(g)
		tb.LoadF(pcAcc, regAcc.Lo+uint32(r*fBytes))
		tb.Int(1)
		tb.StoreF(pcOut, regOut.Lo+uint32(outPos*12))
		tb.StoreI(pcOut, regOut.Lo+uint32(outPos*12+fBytes))
		idx = append(idx, r)
		val = append(val, acc[r])
		outPos++
	}

	w := Workload{Name: "spmspv", Trace: tb.Build(), EpochFPOps: EpochSpMSpV}
	return matrix.NewSparseVec(a.Rows, idx, val), w, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
