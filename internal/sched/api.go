package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/host"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/obs"
)

// The run modes a job can request, mapping one-to-one onto the host
// runner's entry points.
const (
	ModeStatic    = "static"    // fixed configuration (host.RunStatic)
	ModeAdaptive  = "adaptive"  // SparseAdapt control (host.RunAdaptive)
	ModeResilient = "resilient" // fault-tolerant control (host.RunResilient)
	ModeBatch     = "batch"     // N offloads through the engine pool (host.RunBatchAdaptive)
)

// Job lifecycle states, as reported by JobStatus.State. Quarantined is the
// poison-job terminal state: the job failed MaxAttempts consecutive
// execution attempts and the scheduler refuses to burn more capacity on it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateQuarantined = "quarantined"
)

// JobRequest is the POST /v1/jobs body: one simulation job parameterized
// the same way the CLI `run` subcommand is. Exactly one of Matrix (a
// dataset entry ID) or MatrixMarket (an inline MatrixMarket coordinate
// body) selects the input; everything else has CLI-compatible defaults.
type JobRequest struct {
	// Mode selects the run mode: static|adaptive|resilient|batch
	// (default adaptive).
	Mode string `json:"mode,omitempty"`
	// Kernel is the workload: spmspm|spmspv|bfs|sssp (default spmspv).
	Kernel string `json:"kernel,omitempty"`
	// Matrix is a dataset entry ID (see GET /v1/datasets), generated at the
	// job scale's matrix size.
	Matrix string `json:"matrix,omitempty"`
	// MatrixMarket is an inline MatrixMarket coordinate body, used verbatim
	// instead of a generated dataset entry. Subject to the server's upload
	// size limit.
	MatrixMarket string `json:"matrix_market,omitempty"`
	// Scale is the simulation scale: test|small|paper (default test).
	Scale string `json:"scale,omitempty"`
	// Seed overrides the scale's deterministic seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// OptMode is the optimization objective: ee|pp (default ee).
	OptMode string `json:"opt_mode,omitempty"`
	// Policy overrides the controller policy:
	// conservative|aggressive|hybrid (default: kernel-appropriate).
	Policy string `json:"policy,omitempty"`
	// Tolerance is the hybrid policy threshold (default 0.4).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Config names the fixed configuration of static jobs:
	// baseline|best-avg|max (default baseline).
	Config string `json:"config,omitempty"`
	// Faults is a fault-injection spec for resilient jobs
	// (e.g. "nan=0.1,stuck=0.05,seed=7"); empty runs the resilient
	// controller clean.
	Faults string `json:"faults,omitempty"`
	// Count is the number of offload copies a batch job serves through the
	// engine pool (default 4, batch mode only).
	Count int `json:"count,omitempty"`
	// Counters includes the full Table 2 telemetry vector in every epoch
	// event of the SSE stream.
	Counters bool `json:"counters,omitempty"`
	// TimeoutSec caps the job's execution time; 0 uses the server default,
	// and values above the server default are clamped to it.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Tenant names the tenant submitting the job, for per-tenant admission
	// quotas and accounting. Clients may set it here or via the X-Tenant-ID
	// header (the header fills this field server-side, so it survives
	// coordinator→worker forwarding). Empty means untenanted.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the tenant priority class:
	// interactive|batch|scavenger (default batch).
	Priority string `json:"priority,omitempty"`
}

// Validate normalizes defaults in place and rejects malformed requests.
// It is deliberately strict: a job that would fail at execution time for a
// reason knowable at submission time must be rejected with a 400 at the
// door, not occupy a queue slot first.
func (r *JobRequest) Validate() error {
	if r.Mode == "" {
		r.Mode = ModeAdaptive
	}
	switch r.Mode {
	case ModeStatic, ModeAdaptive, ModeResilient, ModeBatch:
	default:
		return fmt.Errorf("unknown mode %q (static|adaptive|resilient|batch)", r.Mode)
	}
	if r.Kernel == "" {
		r.Kernel = "spmspv"
	}
	switch r.Kernel {
	case "spmspm", "spmspv", "bfs", "sssp":
	default:
		return fmt.Errorf("unknown kernel %q (spmspm|spmspv|bfs|sssp)", r.Kernel)
	}
	if r.Matrix != "" && r.MatrixMarket != "" {
		return fmt.Errorf("matrix and matrix_market are mutually exclusive")
	}
	if r.Matrix == "" && r.MatrixMarket == "" {
		r.Matrix = "R04"
	}
	if r.Matrix != "" {
		if _, err := matrix.Entry(r.Matrix); err != nil {
			return fmt.Errorf("unknown dataset entry %q", r.Matrix)
		}
	}
	if r.MatrixMarket != "" && !strings.HasPrefix(strings.ToLower(strings.TrimSpace(r.MatrixMarket)), "%%matrixmarket") {
		return fmt.Errorf("matrix_market body is not a MatrixMarket stream")
	}
	if r.Scale == "" {
		r.Scale = "test"
	}
	switch r.Scale {
	case "test", "small", "paper":
	default:
		return fmt.Errorf("unknown scale %q (test|small|paper)", r.Scale)
	}
	if r.OptMode == "" {
		r.OptMode = "ee"
	}
	switch r.OptMode {
	case "ee", "pp":
	default:
		return fmt.Errorf("unknown opt_mode %q (ee|pp)", r.OptMode)
	}
	switch r.Policy {
	case "", "conservative", "aggressive", "hybrid":
	default:
		return fmt.Errorf("unknown policy %q (conservative|aggressive|hybrid)", r.Policy)
	}
	if r.Tolerance < 0 || r.Tolerance > 10 {
		return fmt.Errorf("tolerance %g out of range [0, 10]", r.Tolerance)
	}
	if r.Config == "" {
		r.Config = "baseline"
	}
	switch r.Config {
	case "baseline", "best-avg", "max":
	default:
		return fmt.Errorf("unknown config %q (baseline|best-avg|max)", r.Config)
	}
	if r.Faults != "" && r.Mode != ModeResilient {
		return fmt.Errorf("faults requires mode resilient")
	}
	if r.Count < 0 || r.Count > 1024 {
		return fmt.Errorf("count %d out of range [0, 1024]", r.Count)
	}
	if r.Count == 0 && r.Mode == ModeBatch {
		r.Count = 4
	}
	if r.Count != 0 && r.Mode != ModeBatch {
		return fmt.Errorf("count requires mode batch")
	}
	if r.TimeoutSec < 0 {
		return fmt.Errorf("timeout_sec must be >= 0")
	}
	if len(r.Tenant) > 64 {
		return fmt.Errorf("tenant name longer than 64 bytes")
	}
	for i := 0; i < len(r.Tenant); i++ {
		if c := r.Tenant[i]; c < 0x21 || c > 0x7e {
			return fmt.Errorf("tenant name contains non-printable or space byte %#x", c)
		}
	}
	switch r.Priority {
	case "":
		if r.Tenant != "" {
			r.Priority = "batch"
		}
	case "interactive", "batch", "scavenger":
	default:
		return fmt.Errorf("unknown priority %q (interactive|batch|scavenger)", r.Priority)
	}
	if r.Priority != "" && r.Tenant == "" {
		return fmt.Errorf("priority requires a tenant")
	}
	return nil
}

// Fingerprint content-addresses the request: every field that determines
// the result participates; TimeoutSec deliberately does not (a timed-out
// job errors and is never cached), and neither do Tenant or Priority —
// who submitted a job and how urgently cannot change its result, and
// excluding them lets tenants share cache entries for identical work
// (results carry no tenant data). The same key addresses the result in
// the engine cache on every node and places the job on the consistent-hash
// ring, which is what routes repeat submissions to the worker already
// holding their cache entry.
func (r JobRequest) Fingerprint() engine.Key {
	counters := 0
	if r.Counters {
		counters = 1
	}
	return engine.NewHasher("server-job/v1").
		Str(r.Mode).Str(r.Kernel).Str(r.Matrix).Str(r.MatrixMarket).
		Str(r.Scale).I64(r.Seed).Str(r.OptMode).Str(r.Policy).
		F64(r.Tolerance).Str(r.Config).Str(r.Faults).
		Int(r.Count, counters).Sum()
}

// DecodeJobRequest parses and validates a JSON job request body. Unknown
// fields are rejected so client typos fail loudly instead of silently
// running a default job. This is the fuzzed decoding surface of the server
// (FuzzDecodeJobRequest).
func DecodeJobRequest(data []byte) (JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return JobRequest{}, fmt.Errorf("invalid job JSON: %w", err)
	}
	if dec.More() {
		return JobRequest{}, fmt.Errorf("invalid job JSON: trailing data after object")
	}
	if err := req.Validate(); err != nil {
		return JobRequest{}, err
	}
	return req, nil
}

// JobResult is a finished job's payload. Host carries the offload
// economics — for an adaptive job it is byte-identical to what the
// equivalent in-process host.RunAdaptive call returns. The per-epoch trace
// is delivered over the job's SSE stream (and kept server-side for cache
// replay) rather than inlined here, so status polls stay small.
type JobResult struct {
	// Host is the end-to-end offload outcome (device + link transfers).
	Host host.Result `json:"host"`
	// Epochs and Reconfigs summarize the device-side run.
	Epochs    int `json:"epochs"`
	Reconfigs int `json:"reconfigs"`
	// Resilience is the resilient controller's report string (resilient
	// jobs only).
	Resilience string `json:"resilience,omitempty"`
	// Batch holds the per-offload results of a batch job, in request order.
	Batch []host.Result `json:"batch,omitempty"`
	// Trace is the per-epoch record stream, excluded from status JSON (the
	// SSE endpoint delivers it) but retained for cached-result replay.
	Trace []obs.EpochRecord `json:"-"`
}

// JobStatus is the GET /v1/jobs/{id} body and the submit response.
type JobStatus struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Request   JobRequest `json:"request"`
	CreatedAt time.Time  `json:"created_at"`
	// StartedAt and FinishedAt are the zero time until the job starts and
	// reaches a terminal state (done, failed, canceled), respectively.
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// RequestID is the submission's trace identifier (X-Request-ID):
	// client-supplied or generated at acceptance, stable across retries and
	// coordinator→worker forwarding.
	RequestID string `json:"request_id,omitempty"`
	// Error is the failure reason of a failed, canceled or quarantined job.
	Error string `json:"error,omitempty"`
	// Result is present once the job is done.
	Result *JobResult `json:"result,omitempty"`
	// CacheHit marks a result served from the content-addressed cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Attempts counts execution attempts so far (0 while queued). A value
	// above 1 means the job was retried after transient failures.
	Attempts int `json:"attempts,omitempty"`
	// Recovered marks a job restored from the durable journal after a
	// daemon restart.
	Recovered bool `json:"recovered,omitempty"`
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return true
	}
	return false
}

// Event is one entry of a job's SSE stream (/v1/jobs/{id}/events). Type
// selects which payload field is set: "state" events mark lifecycle
// transitions, "epoch" events carry per-epoch progress, "retry" events
// mark a failed attempt that will be re-executed (after a retry the epoch
// stream restarts from epoch 0 — consumers should key on Epoch.Epoch, not
// event count), and the final "result" or "error" event carries the
// terminal JobStatus.
type Event struct {
	// Seq is the event's position in the job's stream, used as the SSE id
	// so clients can resume.
	Seq int `json:"seq"`
	// Type is state|epoch|retry|result|error.
	Type string `json:"type"`
	// RequestID stamps every event with the job's trace identifier, so one
	// grep follows a submission coordinator→worker across log and stream.
	RequestID string `json:"request_id,omitempty"`
	// State is the new lifecycle state of a "state" event.
	State string `json:"state,omitempty"`
	// Epoch is the payload of an "epoch" event.
	Epoch *obs.EpochRecord `json:"epoch,omitempty"`
	// Status is the terminal status of a "result" or "error" event.
	Status *JobStatus `json:"status,omitempty"`
	// Attempt and Error describe the failed attempt of a "retry" event.
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}
