package sched

import (
	"context"
	"sync"
	"time"

	"sparseadapt/internal/obs"
)

// Job is the scheduler-side record of one submitted simulation: the
// request, the lifecycle state machine (including the retry attempt
// counter), the cancellation handle of a running execution and the
// append-only event log SSE subscribers replay. Jobs are created by the
// Scheduler (Reserve, Restore) and driven by its worker pool; the exported
// surface is what transports (HTTP server, cluster coordinator) need:
// status snapshots, cancellation, and event emission/subscription.
type Job struct {
	id        string
	req       JobRequest
	requestID string
	created   time.Time

	mu        sync.Mutex
	state     string
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *JobResult
	cacheHit  bool
	attempts  int
	recovered bool               // restored from the journal after a restart
	cancel    context.CancelFunc // non-nil while running
	canceled  bool               // cancel requested (possibly pre-start)
	cancelCh  chan struct{}      // closed on cancel; wakes backoff sleeps

	events *EventLog
}

func newJob(id string, req JobRequest, requestID string, now time.Time) *Job {
	j := &Job{id: id, req: req, requestID: requestID, created: now,
		state: StateQueued, cancelCh: make(chan struct{}),
		events: newEventLog(requestID)}
	j.events.append(Event{Type: "state", State: StateQueued})
	return j
}

// ID returns the job's identifier ("job-%06d").
func (j *Job) ID() string { return j.id }

// RequestID returns the submission's trace identifier (X-Request-ID).
func (j *Job) RequestID() string { return j.requestID }

// Request returns the validated job request.
func (j *Job) Request() JobRequest { return j.req }

// Events returns the job's append-only event log for SSE subscribers.
func (j *Job) Events() *EventLog { return j.events }

// Status snapshots the job under its lock.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	return JobStatus{
		ID: j.id, State: j.state, Request: j.req,
		CreatedAt: j.created, StartedAt: j.started, FinishedAt: j.finished,
		RequestID: j.requestID, Error: j.errMsg, Result: j.result,
		CacheHit: j.cacheHit, Attempts: j.attempts, Recovered: j.recovered,
	}
}

// start begins the next execution attempt, transitioning queued → running
// on the first and installing the attempt's cancel handle. It returns the
// 1-based attempt number, or 0 when the job was canceled while queued (the
// worker must skip it). Attempts surviving a daemon restart keep counting
// from their journaled value — a poison job cannot reset its quarantine
// budget by crashing the server.
func (j *Job) start(cancel context.CancelFunc, now time.Time) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return 0
	}
	j.attempts++
	if j.state != StateRunning {
		j.state = StateRunning
		j.started = now
		j.events.append(Event{Type: "state", State: StateRunning})
	}
	j.cancel = cancel
	return j.attempts
}

// retry records a failed attempt that will be re-executed.
func (j *Job) retry(attempt int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.events.append(Event{Type: "retry", Attempt: attempt, Error: err.Error()})
}

// finish records the terminal state, emits the final event and closes the
// event stream. A canceled job that raced to completion stays canceled;
// quarantine marks a job whose retry budget is exhausted.
func (j *Job) finish(res *JobResult, cacheHit bool, err error, quarantine bool, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.cacheHit = cacheHit
	case j.canceled:
		j.state = StateCanceled
		j.errMsg = err.Error()
	case quarantine:
		j.state = StateQuarantined
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	st := j.statusLocked()
	typ := "result"
	if st.State != StateDone {
		typ = "error"
	}
	j.events.append(Event{Type: typ, Status: &st})
	j.events.close()
}

// RequestCancel marks the job canceled and cancels a running execution.
// Returns false when the job is already terminal. Idempotent: a repeated
// cancel (client retry, or Drain's cancel-all racing a client DELETE) is
// acknowledged without re-closing cancelCh.
func (j *Job) RequestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return false
	}
	if j.canceled {
		return true
	}
	j.canceled = true
	close(j.cancelCh)
	if j.cancel != nil {
		j.cancel()
		return true
	}
	if j.state == StateRunning {
		// Between attempts (backoff sleep): the worker observes cancelCh and
		// finalizes; nothing to do here.
		return true
	}
	// Still queued: finalize immediately, the worker will skip it.
	j.state = StateCanceled
	j.finished = time.Now()
	j.errMsg = "canceled before start"
	st := j.statusLocked()
	j.events.append(Event{Type: "error", Status: &st})
	j.events.close()
	return true
}

// CancelRequested reports whether cancellation has been requested.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// sleep blocks for d or until the job is canceled, reporting whether the
// full backoff elapsed (false = canceled, abandon the retry).
func (j *Job) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-j.cancelCh:
		return false
	}
}

// Emit appends one per-epoch progress event to the job's stream. Executors
// call it as epochs complete — whether the run is local (the engine's
// epoch hook) or remote (a coordinator forwarding a worker's SSE stream).
func (j *Job) Emit(rec obs.EpochRecord) {
	r := rec
	j.events.append(Event{Type: "epoch", Epoch: &r})
}

// SetRecovered marks the job as restored from a durable journal with its
// persisted attempt count. Called before the job is requeued or
// resurfaced; never after execution has started.
func (j *Job) SetRecovered(attempts int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts = attempts
	j.recovered = true
}

// EventLog is a job's append-only event history with broadcast: SSE
// subscribers replay from any index and then block on the wake channel,
// which is closed and replaced on every append, so late subscribers see
// the full stream and live subscribers wake immediately.
type EventLog struct {
	mu        sync.Mutex
	requestID string
	events    []Event
	done      bool
	wake      chan struct{}
}

func newEventLog(requestID string) *EventLog {
	return &EventLog{requestID: requestID, wake: make(chan struct{})}
}

// append assigns the event's sequence number, stamps the job's request ID
// and wakes subscribers. Appending after close is dropped (the stream is
// sealed).
func (l *EventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	ev.Seq = len(l.events)
	if ev.RequestID == "" {
		ev.RequestID = l.requestID
	}
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close seals the stream and wakes subscribers one last time. The wake
// channel is left closed (not replaced) so any subscriber that has drained
// the log wakes immediately, observes done, and exits instead of blocking
// on a channel that will never fire again.
func (l *EventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
}

// Since returns the events from index from onward, whether the stream is
// sealed, and the channel that will be closed on the next append/close.
func (l *EventLog) Since(from int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []Event
	if from < len(l.events) {
		evs = append(evs, l.events[from:]...)
	}
	return evs, l.done, l.wake
}

// EpochEvents counts the epoch events recorded so far — executors use it
// to decide whether a cache-served result still needs its trace replayed
// into the stream.
func (l *EventLog) EpochEvents() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Type == "epoch" {
			n++
		}
	}
	return n
}
