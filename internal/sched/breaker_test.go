package sched

import (
	"testing"
	"time"
)

func TestBreakerTripAndCooldown(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(4, 0.5, 10*time.Second)
	for i := 0; i < 3; i++ {
		if b.record(false, now) {
			t.Fatal("tripped before the window filled")
		}
	}
	if open, _ := b.open(now); open {
		t.Fatal("open before the window filled")
	}
	if !b.record(false, now) {
		t.Fatal("a full window of failures must trip")
	}
	open, wait := b.open(now)
	if !open || wait != 10*time.Second {
		t.Fatalf("open = %v, wait = %v; want open for 10s", open, wait)
	}
	if open, _ := b.open(now.Add(9 * time.Second)); !open {
		t.Error("closed before the cooldown elapsed")
	}
	if open, _ := b.open(now.Add(10 * time.Second)); open {
		t.Error("still open after the cooldown")
	}

	// The post-trip window is fresh: it takes another full window to
	// re-trip, and a failure fraction at the threshold trips again.
	later := now.Add(11 * time.Second)
	outcomes := []bool{true, false, true, false} // 2/4 = 0.5 >= threshold
	tripped := false
	for _, ok := range outcomes {
		tripped = b.record(ok, later)
	}
	if !tripped {
		t.Error("failure fraction at the threshold must re-trip")
	}
	if got := b.tripCount(); got != 2 {
		t.Errorf("tripCount = %d, want 2", got)
	}
}

func TestBreakerBelowThresholdStaysClosed(t *testing.T) {
	b := newBreaker(4, 0.5, time.Second)
	now := time.Unix(1000, 0)
	outcomes := []bool{true, true, true, false} // 1/4 < 0.5
	for _, ok := range outcomes {
		if b.record(ok, now) {
			t.Fatal("tripped below the threshold")
		}
	}
	if open, _ := b.open(now); open {
		t.Error("open below the threshold")
	}
}

// TestBreakerDisabledByThresholdAboveOne: the documented off switch.
func TestBreakerDisabledByThresholdAboveOne(t *testing.T) {
	b := newBreaker(2, 2, time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		if b.record(false, now) {
			t.Fatal("a threshold above 1 must never trip")
		}
	}
}
