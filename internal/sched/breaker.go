package sched

import (
	"sync"
	"time"
)

// breaker is the failure-rate circuit breaker guarding admission. It
// watches a sliding window of execution-attempt outcomes; when the window
// is full and the failure fraction reaches the threshold, the breaker
// opens for a cooldown: new submissions are shed with 503 (in-flight work
// keeps draining) and /readyz reports not-ready, so load balancers steer
// traffic away from a node whose executions are melting down instead of
// letting it grind every retry budget to quarantine. After the cooldown
// the breaker closes with a fresh window (a half-open probe is not needed:
// admission volume is the probe, and a still-broken node re-opens within
// one window).
type breaker struct {
	mu        sync.Mutex
	window    []bool // ring buffer of outcomes, true = success
	idx       int
	filled    int
	threshold float64
	cooldown  time.Duration
	openUntil time.Time
	trips     int64
}

// newBreaker builds a breaker over the last size outcomes opening at the
// given failure fraction. A threshold > 1 can never trip — the documented
// way to disable the breaker.
func newBreaker(size int, threshold float64, cooldown time.Duration) *breaker {
	return &breaker{window: make([]bool, size), threshold: threshold, cooldown: cooldown}
}

// record adds one attempt outcome and reports whether this outcome tripped
// the breaker open. Outcomes recorded while open still count: a node that
// keeps failing while draining re-opens immediately after the cooldown.
func (b *breaker) record(success bool, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window[b.idx] = success
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if b.filled < len(b.window) || now.Before(b.openUntil) {
		return false
	}
	failures := 0
	for _, ok := range b.window {
		if !ok {
			failures++
		}
	}
	if float64(failures)/float64(len(b.window)) >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		b.trips++
		b.filled, b.idx = 0, 0 // fresh window after the cooldown
		return true
	}
	return false
}

// open reports whether the breaker is open and, if so, how long until it
// closes — the Retry-After hint for shed submissions.
func (b *breaker) open(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return true, b.openUntil.Sub(now)
	}
	return false, 0
}

// tripCount returns how many times the breaker has opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
