// Package sched is the transport-agnostic job scheduling core extracted
// from the HTTP server: a bounded admission queue with reserved-slot
// two-phase submission (Reserve → durable accept → Commit), a fixed worker
// pool driving an ExecFunc through the retry state machine (exponential
// backoff with deterministic jitter, quarantine after MaxAttempts), a
// failure-rate circuit breaker, bounded retention of terminal job records,
// and graceful drain.
//
// The package knows nothing about HTTP, journals or engines: callers
// provide the execution function (the standalone daemon runs simulations
// locally; the cluster coordinator places jobs on remote workers) and
// observe lifecycle transitions through Hooks (the server journals them).
// Metrics keep their established server_* names so dashboards survive the
// extraction. See docs/ARCHITECTURE.md and docs/SERVER.md.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseadapt/internal/obs"
)

// ExecFunc performs one execution attempt of a job under ctx (which
// carries the per-job deadline and cancellation). It returns the result,
// whether it was served from a cache, and an error. Errors wrapping
// context.Canceled or context.DeadlineExceeded finalize the job; any other
// error feeds the retry/quarantine state machine and the circuit breaker.
type ExecFunc func(ctx context.Context, j *Job, attempt int) (*JobResult, bool, error)

// Hooks are the scheduler's lifecycle observation points. All fields are
// optional. The HTTP server uses them to journal transitions into the
// durable store; Evicted fires (with internal locks held — keep it cheap)
// when bounded retention drops a terminal job.
type Hooks struct {
	// AttemptStart fires when an execution attempt begins (after the
	// queued → running transition).
	AttemptStart func(j *Job, attempt int)
	// AttemptFailed fires when a failed attempt will be retried (not on
	// terminal failures — Finished covers those).
	AttemptFailed func(j *Job, attempt int, err error)
	// Finished fires exactly once per job reaching a terminal state through
	// the worker pool, with the terminal status snapshot. Jobs canceled
	// while still queued are finalized by RequestCancel and do not fire it
	// (preserved pre-extraction behavior: such jobs journal no terminal
	// record and re-run after a crash).
	Finished func(st JobStatus)
	// Evicted fires when retention evicts a terminal job record.
	Evicted func(id string)
}

// Config sizes the scheduler. The zero value is usable: every field has a
// production-lean default applied by New.
type Config struct {
	// Workers bounds concurrent job executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue makes Reserve return ErrQueueFull (default 64).
	QueueDepth int
	// JobTimeout is the default and maximum per-job execution deadline
	// (default 5 minutes). Requests may ask for less, never more.
	JobTimeout time.Duration
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted beyond it (default 1024).
	MaxJobs int
	// MaxAttempts bounds execution attempts per job (default 3). A job
	// whose every attempt fails is quarantined.
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the exponential backoff with
	// deterministic jitter between attempts (defaults 50ms and 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerWindow, BreakerThreshold and BreakerCooldown configure the
	// failure-rate circuit breaker over execution attempts (defaults 20,
	// 0.5, 10s). A threshold above 1 disables the breaker.
	BreakerWindow    int
	BreakerThreshold float64
	BreakerCooldown  time.Duration
	// Metrics receives the server_* job metrics; nil records nothing.
	Metrics *obs.Registry
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
}

// Sentinel errors of the two-phase submission path.
var (
	// ErrDraining rejects submissions after Drain began.
	ErrDraining = errors.New("sched: draining")
	// ErrQueueFull rejects submissions when the admission queue is full.
	ErrQueueFull = errors.New("sched: queue full")
)

// metrics is the scheduler's slice of the server_* instrument family
// (catalog in docs/OBSERVABILITY.md). Names predate the extraction and are
// kept stable.
type metrics struct {
	submitted, completed, failed, canceled *obs.Counter
	quarantined, retries, recovered        *obs.Counter
	breakerTrips                           *obs.Counter
	queueDepth, inflight, brkOpen          *obs.Gauge
	jobDuration, queueWait                 *obs.Histogram
}

// LatencyBuckets are the histogram bounds shared by the scheduler's and
// the server's duration metrics.
var LatencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		submitted:    r.Counter("server_jobs_submitted_total", "jobs accepted into the queue"),
		completed:    r.Counter("server_jobs_completed_total", "jobs finished successfully"),
		failed:       r.Counter("server_jobs_failed_total", "jobs finished with an error"),
		canceled:     r.Counter("server_jobs_canceled_total", "jobs canceled by the client or deadline"),
		quarantined:  r.Counter("server_jobs_quarantined_total", "jobs quarantined after exhausting their retry budget"),
		retries:      r.Counter("server_job_retries_total", "execution attempts retried after a transient failure"),
		recovered:    r.Counter("server_jobs_recovered_total", "non-terminal jobs re-queued from the journal at boot"),
		breakerTrips: r.Counter("server_breaker_trips_total", "times the failure-rate circuit breaker opened"),
		queueDepth:   r.Gauge("server_queue_depth", "jobs waiting in the admission queue"),
		inflight:     r.Gauge("server_jobs_inflight", "jobs currently executing"),
		brkOpen:      r.Gauge("server_breaker_open", "1 while the circuit breaker is shedding submissions"),
		jobDuration:  r.Histogram("server_job_duration_seconds", "job execution wall time", LatencyBuckets),
		queueWait:    r.Histogram("server_job_queue_wait_seconds", "time jobs spend queued before execution", LatencyBuckets),
	}
}

// Scheduler is the job scheduling core. Construct with New, call Start to
// launch the worker pool, and Drain on shutdown.
type Scheduler struct {
	cfg   Config
	met   metrics
	exec  ExecFunc
	hooks Hooks
	brk   *breaker

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // insertion order, for bounded retention
	nextID   int64
	draining bool
	queue    []*Job
	reserved int // admission slots held by submissions still journaling
	capacity int // admission bound: QueueDepth, raised by recovered jobs

	started   atomic.Bool
	wg        sync.WaitGroup
	recovered int           // non-terminal jobs re-queued at boot
	avgJobSec atomic.Uint64 // EWMA of job wall time (float64 bits), for Retry-After
}

// New builds a Scheduler running exec on cfg.Workers goroutines once Start
// is called. hooks may be the zero value.
func New(cfg Config, exec ExecFunc, hooks Hooks) *Scheduler {
	cfg.defaults()
	s := &Scheduler{
		cfg:   cfg,
		met:   newMetrics(cfg.Metrics),
		exec:  exec,
		hooks: hooks,
		brk:   newBreaker(cfg.BreakerWindow, cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:  map[string]*Job{},
	}
	s.capacity = s.cfg.QueueDepth
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Reserve is phase one of submission: it registers the job and holds an
// admission slot while the caller commits the acceptance durably. Phase
// two is Commit (enqueue for execution) or Withdraw (acceptance failed —
// the client must be told the submission did not take). Counting reserved
// slots against the queue bound means Commit can never overflow the queue.
func (s *Scheduler) Reserve(req JobRequest, requestID string, now time.Time) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if len(s.queue)+s.reserved >= s.capacity {
		return nil, ErrQueueFull
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), req, requestID, now)
	s.reserved++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j, nil
}

// Commit is phase two of a successful submission: the reserved job enters
// the execution queue. If a drain began while the caller was journaling,
// the job is canceled and ErrDraining returned — the caller owns telling
// its durable store the job will never run.
func (s *Scheduler) Commit(j *Job) error {
	s.mu.Lock()
	s.reserved--
	if s.draining {
		s.mu.Unlock()
		j.RequestCancel()
		return ErrDraining
	}
	s.queue = append(s.queue, j)
	s.met.queueDepth.Add(1)
	s.cond.Signal()
	s.mu.Unlock()
	s.met.submitted.Inc()
	return nil
}

// Withdraw aborts a reserved submission whose durable acceptance failed:
// the job is canceled and deregistered as if it was never submitted.
func (s *Scheduler) Withdraw(j *Job) {
	j.RequestCancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	s.forgetLocked(j.id)
}

func (s *Scheduler) forgetLocked(id string) {
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Restore registers a job rebuilt from a durable journal at boot, resuming
// the ID sequence past it. The caller then either resurfaces it as
// terminal (RestoreTerminal) or re-queues it (Requeue). Must be called
// before Start.
func (s *Scheduler) Restore(id string, req JobRequest, requestID string, created time.Time) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := parseJobID(id); ok && n > s.nextID {
		s.nextID = n
	}
	j := newJob(id, req, requestID, created)
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// RestoreTerminal resurfaces a restored job's terminal outcome and seals
// its event stream, so status polls and SSE replays after a restart behave
// exactly like they would have before it.
func (s *Scheduler) RestoreTerminal(j *Job, state string, finished time.Time, errMsg string, cacheHit bool, result *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.finished = finished
	j.errMsg = errMsg
	j.cacheHit = cacheHit
	j.result = result
	st := j.statusLocked()
	typ := "result"
	if st.State != StateDone {
		typ = "error"
	}
	j.events.append(Event{Type: typ, Status: &st})
	j.events.close()
}

// Requeue puts a restored non-terminal job back on the execution queue.
// Recovered jobs are admitted above the queue bound (each raises the
// admission capacity by one slot, mirroring the pre-extraction queue
// sizing): they were accepted before the restart and must not be shed by
// it, nor crowd out new submissions.
func (s *Scheduler) Requeue(j *Job) {
	s.mu.Lock()
	s.queue = append(s.queue, j)
	s.recovered++
	s.capacity++
	s.cond.Signal()
	s.mu.Unlock()
	s.met.queueDepth.Add(1)
	s.met.recovered.Inc()
}

// Recovered returns how many non-terminal jobs Requeue re-admitted at boot.
func (s *Scheduler) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Lookup returns the job with the given ID, or nil.
func (s *Scheduler) Lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// List snapshots every retained job's status in insertion order.
func (s *Scheduler) List() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// QueueLen returns the number of jobs waiting for a worker.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Inflight returns the number of jobs currently executing.
func (s *Scheduler) Inflight() int { return int(s.met.inflight.Load()) }

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Live (queued/running) jobs are never evicted, so the map can exceed
// MaxJobs only by the number of live jobs, which the queue bounds.
func (s *Scheduler) evictLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if j, ok := s.jobs[id]; ok && j.Status().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if s.hooks.Evicted != nil {
					s.hooks.Evicted(id)
				}
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Start launches the worker pool. Safe to call once.
func (s *Scheduler) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Started reports whether the worker pool is running.
func (s *Scheduler) Started() bool { return s.started.Load() }

// Drain gracefully shuts the scheduler down: it stops accepting new
// submissions, lets the workers finish every queued and in-flight job, and
// returns when the pool has exited. If ctx expires first, the remaining
// running jobs are canceled, the drain keeps waiting for the workers to
// observe the cancellation, and ctx.Err() is returned.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !s.started.Load() {
		return nil
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline: cancel whatever is still running so the workers can
		// exit, then wait for them (cancellation is cooperative and prompt).
		s.mu.Lock()
		jobs := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			j.RequestCancel()
		}
		<-done
		return ctx.Err()
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker executes jobs from the queue until drain empties it.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.met.queueDepth.Add(-1)
		s.execute(j)
	}
}

// execute runs one dequeued job to a terminal state through the retry
// state machine: attempt → on failure, backoff + retry → after
// MaxAttempts, quarantine. What one attempt does is the ExecFunc's
// business — a local engine run, or a placement on a remote cluster
// worker.
func (s *Scheduler) execute(j *Job) {
	s.met.queueWait.Observe(time.Since(j.created).Seconds())
	timeout := s.cfg.JobTimeout
	if j.req.TimeoutSec > 0 {
		if d := time.Duration(j.req.TimeoutSec * float64(time.Second)); d < timeout {
			timeout = d
		}
	}
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	begin := time.Now()
	for {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		attempt := j.start(cancel, time.Now())
		if attempt == 0 {
			cancel()
			return // canceled while queued; RequestCancel already finalized it
		}
		if s.hooks.AttemptStart != nil {
			s.hooks.AttemptStart(j, attempt)
		}

		res, hit, err := s.exec(ctx, j, attempt)
		cancel()

		if err == nil {
			s.noteAttempt(true)
			sec := time.Since(begin).Seconds()
			s.met.jobDuration.Observe(sec)
			s.noteJobDuration(sec)
			s.finishJob(j, res, hit, nil, false)
			return
		}

		// Client cancellations and deadline expiries are not transient: the
		// job is done as far as the requester is concerned. Only execution
		// failures feed the breaker and the retry loop.
		if j.CancelRequested() || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.jobDuration.Observe(time.Since(begin).Seconds())
			s.finishJob(j, nil, false, err, false)
			return
		}

		s.noteAttempt(false)
		if attempt >= s.cfg.MaxAttempts {
			s.met.jobDuration.Observe(time.Since(begin).Seconds())
			s.finishJob(j, nil, false,
				fmt.Errorf("quarantined after %d failed attempts, last: %w", attempt, err), true)
			return
		}
		s.met.retries.Inc()
		j.retry(attempt, err)
		if s.hooks.AttemptFailed != nil {
			s.hooks.AttemptFailed(j, attempt, err)
		}
		if !j.sleep(backoffDelay(s.cfg.RetryBaseDelay, s.cfg.RetryMaxDelay, j.id, attempt)) {
			// Canceled during the backoff sleep.
			s.met.jobDuration.Observe(time.Since(begin).Seconds())
			s.finishJob(j, nil, false, fmt.Errorf("canceled during retry backoff (last error: %v)", err), false)
			return
		}
	}
}

// finishJob finalizes the job, bumps the terminal-state metric, and fires
// the Finished hook.
func (s *Scheduler) finishJob(j *Job, res *JobResult, hit bool, err error, quarantine bool) {
	j.finish(res, hit, err, quarantine, time.Now())
	st := j.Status()
	switch st.State {
	case StateDone:
		s.met.completed.Inc()
	case StateCanceled:
		s.met.canceled.Inc()
	case StateQuarantined:
		s.met.quarantined.Inc()
	default:
		s.met.failed.Inc()
	}
	if s.hooks.Finished != nil {
		s.hooks.Finished(st)
	}
}

// noteAttempt feeds one execution-attempt outcome to the circuit breaker
// and maintains the breaker gauge/trip counter.
func (s *Scheduler) noteAttempt(success bool) {
	now := time.Now()
	if s.brk.record(success, now) {
		s.met.breakerTrips.Inc()
	}
	if open, _ := s.brk.open(now); open {
		s.met.brkOpen.Set(1)
	} else {
		s.met.brkOpen.Set(0)
	}
}

// BreakerOpen reports whether the circuit breaker is shedding submissions
// and, if so, for how much longer — the Retry-After hint.
func (s *Scheduler) BreakerOpen(now time.Time) (bool, time.Duration) {
	return s.brk.open(now)
}

// BreakerTrips returns how many times the breaker has opened.
func (s *Scheduler) BreakerTrips() int64 { return s.brk.tripCount() }

// QueueRetryHint estimates how long until a queue slot frees: the current
// depth draining through the worker pool at the observed average job
// duration, clamped to [1s, 60s]. Before any job has finished it falls
// back to 1s.
func (s *Scheduler) QueueRetryHint() time.Duration {
	avg := math.Float64frombits(s.avgJobSec.Load())
	depth := float64(s.met.queueDepth.Load())
	workers := float64(s.cfg.Workers)
	est := time.Duration(avg * depth / workers * float64(time.Second))
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}

// noteJobDuration folds one job wall time into the EWMA behind
// QueueRetryHint.
func (s *Scheduler) noteJobDuration(sec float64) {
	for {
		old := s.avgJobSec.Load()
		avg := math.Float64frombits(old)
		if avg == 0 {
			avg = sec
		} else {
			avg = 0.8*avg + 0.2*sec
		}
		if s.avgJobSec.CompareAndSwap(old, math.Float64bits(avg)) {
			return
		}
	}
}

// parseJobID extracts the numeric suffix of a "job-%06d" ID so recovery
// can resume the ID sequence past every journaled job.
func parseJobID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// backoffDelay computes the pre-retry sleep for a failed attempt:
// exponential from base, capped at max, with deterministic jitter in
// [0.5, 1.5) hashed from (jobID, attempt) — spread-out retries without a
// shared RNG, and reproducible under chaos.
func backoffDelay(base, max time.Duration, jobID string, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > max { // <= 0 catches shift overflow
		d = max
	}
	h := splitmixJitter(jobID, attempt)
	jitter := 0.5 + float64(h>>11)/float64(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// splitmixJitter is a splitmix64 finalizer over fnv1a(jobID) ^ attempt.
func splitmixJitter(jobID string, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= 1099511628211
	}
	z := h ^ uint64(attempt)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
