package sched

import (
	"context"
	"testing"
	"time"
)

// TestRequestCancelIdempotent repeats a cancel against a running job — the
// shape of a client retrying DELETE, or Drain's deadline cancel-all racing
// a client cancel. A running job stays StateRunning after the first
// cancel, so a non-idempotent close of cancelCh would panic here.
func TestRequestCancelIdempotent(t *testing.T) {
	j := newJob("job-000001", JobRequest{}, "rid-1", time.Now())
	if got := j.start(func() {}, time.Now()); got != 1 {
		t.Fatalf("start = attempt %d, want 1", got)
	}
	if !j.RequestCancel() {
		t.Fatal("first cancel of a running job must be acknowledged")
	}
	if !j.RequestCancel() {
		t.Fatal("second cancel of a still-running job must be acknowledged")
	}
	// Once the worker finalizes the job, further cancels report terminal.
	j.finish(nil, false, context.Canceled, false, time.Now())
	if j.RequestCancel() {
		t.Error("cancel of a terminal job must report false")
	}
}

func TestEventLogReplayAndSeal(t *testing.T) {
	l := newEventLog("rid-7")
	l.append(Event{Type: "state", State: StateQueued})
	l.append(Event{Type: "epoch"})
	evs, done, _ := l.Since(0)
	if len(evs) != 2 || done {
		t.Fatalf("Since(0) = %d events done=%v, want 2 false", len(evs), done)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("sequence numbers = %d,%d, want 0,1", evs[0].Seq, evs[1].Seq)
	}
	for _, ev := range evs {
		if ev.RequestID != "rid-7" {
			t.Errorf("event %d request ID = %q, want rid-7", ev.Seq, ev.RequestID)
		}
	}
	l.close()
	// The post-close wake channel must be closed so drained subscribers
	// exit instead of blocking forever.
	_, done, wake := l.Since(2)
	if !done {
		t.Fatal("closed log must report done")
	}
	select {
	case <-wake:
	default:
		t.Fatal("wake channel after close must be closed")
	}
	l.append(Event{Type: "epoch"}) // dropped: stream is sealed
	if evs, _, _ := l.Since(0); len(evs) != 2 {
		t.Errorf("append after close must be dropped, log has %d events", len(evs))
	}
}

// TestSchedulerLifecycle drives the scheduler with a stub executor through
// submit → execute → finish, checking two-phase admission, hook firing and
// queue bookkeeping without any HTTP or journal in the loop.
func TestSchedulerLifecycle(t *testing.T) {
	var finished []JobStatus
	done := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, j *Job, attempt int) (*JobResult, bool, error) {
		return &JobResult{Epochs: 3}, false, nil
	}, Hooks{Finished: func(st JobStatus) {
		finished = append(finished, st)
		done <- struct{}{}
	}})
	j, err := s.Reserve(JobRequest{}, "rid-a", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if j.RequestID() != "rid-a" {
		t.Errorf("RequestID = %q, want rid-a", j.RequestID())
	}
	if err := s.Commit(j); err != nil {
		t.Fatal(err)
	}
	s.Start()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	if len(finished) != 1 || finished[0].State != StateDone {
		t.Fatalf("Finished hook = %+v, want one done status", finished)
	}
	if finished[0].RequestID != "rid-a" {
		t.Errorf("terminal status request ID = %q, want rid-a", finished[0].RequestID)
	}
	st := s.Lookup(j.ID()).Status()
	if st.State != StateDone || st.Result == nil || st.Result.Epochs != 3 {
		t.Fatalf("job status = %+v, want done with result", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRetryAndQuarantine: a permanently failing executor must be
// retried exactly MaxAttempts times and then quarantined, with the
// AttemptFailed hook seeing every non-final failure.
func TestSchedulerRetryAndQuarantine(t *testing.T) {
	attempts := 0
	var retries []int
	done := make(chan JobStatus, 1)
	s2 := New(Config{
		Workers: 1, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 2 * time.Millisecond,
	}, func(ctx context.Context, j *Job, attempt int) (*JobResult, bool, error) {
		attempts++
		return nil, false, errTest
	}, Hooks{
		AttemptFailed: func(j *Job, attempt int, err error) { retries = append(retries, attempt) },
		Finished:      func(st JobStatus) { done <- st },
	})
	j, err := s2.Reserve(JobRequest{}, "", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(j); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	var st JobStatus
	select {
	case st = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not reach a terminal state")
	}
	if st.State != StateQuarantined {
		t.Fatalf("state = %s, want quarantined", st.State)
	}
	if attempts != 3 {
		t.Errorf("executor ran %d times, want 3", attempts)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("AttemptFailed attempts = %v, want [1 2]", retries)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s2.Drain(ctx) //nolint:errcheck // teardown
}

// TestReserveQueueFullAndWithdraw: reserved slots count against admission,
// and Withdraw releases both the slot and the job record.
func TestReserveQueueFullAndWithdraw(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job, attempt int) (*JobResult, bool, error) {
		return &JobResult{}, false, nil
	}, Hooks{})
	// Worker pool not started: committed jobs stay queued.
	j1, err := s.Reserve(JobRequest{}, "", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(JobRequest{}, "", time.Now()); err != ErrQueueFull {
		t.Fatalf("second Reserve = %v, want ErrQueueFull", err)
	}
	s.Withdraw(j1)
	if s.Lookup(j1.ID()) != nil {
		t.Error("withdrawn job still tracked")
	}
	if j1.Status().State != StateCanceled {
		t.Errorf("withdrawn job state = %s, want canceled", j1.Status().State)
	}
	// The slot is free again.
	j2, err := s.Reserve(JobRequest{}, "", time.Now())
	if err != nil {
		t.Fatalf("Reserve after Withdraw = %v", err)
	}
	if err := s.Commit(j2); err != nil {
		t.Fatal(err)
	}
	if got := s.QueueLen(); got != 1 {
		t.Errorf("QueueLen = %d, want 1", got)
	}
}

var errTest = errForTest{}

type errForTest struct{}

func (errForTest) Error() string { return "injected test failure" }
