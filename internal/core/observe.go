package core

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/sim"
)

// Observer bridges a controller run to the observability layer: per-epoch
// trace records (telemetry, predicted vs chosen configuration, transition
// penalties, resilience annotations) into a TraceRecorder, and aggregate
// counters into a Registry. Either sink may be nil; a nil *Observer
// disables everything at the cost of one branch per epoch.
//
// An Observer belongs to one run at a time — it keeps a simulated-time
// cursor and a pending epoch record, so it must not be shared between
// concurrently running controllers (give each its own, over shared sinks:
// the Registry is concurrency-safe, the TraceRecorder too).
type Observer struct {
	// Metrics receives the controller_* metric family (see
	// docs/OBSERVABILITY.md for the catalog).
	Metrics *obs.Registry
	// Trace receives one EpochRecord per epoch plus instants for
	// reconfigurations, watchdog trips and fallback transitions.
	Trace *obs.TraceRecorder
	// TraceCounters includes the full Table 2 telemetry vector in every
	// epoch record (larger traces; off by default).
	TraceCounters bool
	// Tenant, when set, stamps every epoch record with the tenant the run
	// executes on behalf of (multi-tenant fabric multiplexing).
	Tenant string

	// simTime is the cumulative simulated-time cursor placing records on
	// the trace axis.
	simTime float64
	// pendPenalty is the transition cost (cycles) of the reconfiguration
	// entering the next epoch, captured at the boundary.
	pendPenalty float64
	// pend is the current epoch's record, held open so the boundary
	// decision can annotate it before flush.
	pend    *obs.EpochRecord
	pendLog EpochLog
}

// NewObserver builds an observer over the given (possibly nil) sinks.
func NewObserver(reg *obs.Registry, trace *obs.TraceRecorder) *Observer {
	return &Observer{Metrics: reg, Trace: trace}
}

// counterMap flattens the Table 2 telemetry into the trace's counter map.
func counterMap(c sim.Counters) map[string]float64 {
	names := sim.FeatureNames()
	vals := c.Features()
	m := make(map[string]float64, len(names))
	for i, n := range names {
		m[n] = vals[i]
	}
	return m
}

// epoch opens the record for one completed epoch (flushing the previous
// one) and advances the simulated-time cursor, so subsequent reconfig and
// event instants land on this epoch's end boundary.
func (o *Observer) epoch(idx int, log EpochLog) {
	if o == nil {
		return
	}
	o.flush()
	rec := &obs.EpochRecord{
		Epoch:            idx,
		Phase:            log.Phase,
		StartSec:         o.simTime,
		DurSec:           log.Metrics.TimeSec,
		EnergyJ:          log.Metrics.EnergyJ,
		FPOps:            log.Metrics.FPOps,
		Config:           log.Config.String(),
		Reconfigured:     log.Reconfigured,
		PenaltyCycles:    o.pendPenalty,
		Repairs:          log.Repairs,
		TelemetryDropped: log.TelemetryDropped,
		Degraded:         log.Degraded,
		Fallback:         log.Fallback,
		Interference:     log.Interference,
		Tenant:           o.Tenant,
	}
	if o.TraceCounters {
		rec.Counters = counterMap(log.Counters)
	}
	o.pend, o.pendLog = rec, log
	o.pendPenalty = 0
	o.simTime += log.Metrics.TimeSec
}

// decision annotates the pending epoch with the boundary decision made
// after it: the model's raw prediction and the policy-filtered choice.
func (o *Observer) decision(pred, chosen config.Config) {
	if o == nil || o.pend == nil {
		return
	}
	o.pend.Predicted = pred.String()
	o.pend.Chosen = chosen.String()
	if pred != chosen {
		o.Metrics.Counter("controller_filtered_predictions_total",
			"predictions modified by the cost-aware policy filter").Inc()
	}
}

// flush writes the pending epoch record to the sinks. Runs call it once
// more after the loop so the final epoch is not lost.
func (o *Observer) flush() {
	if o == nil || o.pend == nil {
		return
	}
	o.Trace.RecordEpoch(*o.pend)
	if r := o.Metrics; r != nil {
		log := o.pendLog
		r.Counter("controller_epochs_total", "epochs executed under controller runs").Inc()
		if log.Repairs > 0 {
			r.Counter("controller_sanitizer_repairs_total", "telemetry values clamped or replaced by the sanitizer").Add(int64(log.Repairs))
		}
		if log.TelemetryDropped {
			r.Counter("controller_telemetry_dropped_total", "epochs whose telemetry never arrived").Inc()
		}
		if log.Degraded {
			r.Counter("controller_degraded_epochs_total", "epochs over the watchdog cost threshold").Inc()
		}
		if log.Fallback {
			r.Counter("controller_fallback_epochs_total", "epochs executed under the safe static fallback").Inc()
		}
		if log.Interference {
			r.Counter("controller_interference_epochs_total",
				"over-threshold epochs classified as co-tenant interference at a tenant-switch boundary").Inc()
		}
	}
	o.pend = nil
}

// reconfig records a boundary reconfiguration the controller applied; its
// penalty cycles are attached to the next epoch's record (where the
// machine folds the cost).
func (o *Observer) reconfig(from, to config.Config, rc sim.ReconfigCost) {
	if o == nil {
		return
	}
	o.pendPenalty = rc.Cycles
	o.Trace.RecordInstant(obs.Instant{
		Name: "reconfig", Cat: "controller", TSSec: o.simTime,
		Args: map[string]string{
			"from":   from.String(),
			"to":     to.String(),
			"cycles": fmt.Sprintf("%.0f", rc.Cycles),
		},
	})
	o.Metrics.Counter("controller_reconfig_total", "boundary reconfigurations applied by the controller").Inc()
	o.Metrics.Counter("controller_reconfig_cycles_total",
		"transition penalty cycles charged by controller reconfigurations").Add(int64(rc.Cycles))
}

// event records a resilience event (watchdog trip, fallback exit,
// rejected prediction, reconfig failure, checkpoint write) as a trace
// instant and a controller_* counter.
func (o *Observer) event(name string, args map[string]string) {
	if o == nil {
		return
	}
	o.Trace.RecordInstant(obs.Instant{Name: name, Cat: "resilience", TSSec: o.simTime, Args: args})
	o.Metrics.Counter("controller_"+metricName(name)+"_total", "resilience events: "+name).Inc()
}

// metricName converts an event label to a metric-safe suffix.
func metricName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == '-' || c == ' ' {
			b[i] = '_'
		}
	}
	return string(b)
}
