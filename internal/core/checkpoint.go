package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Checkpoint is the controller's crash-recovery state, written every
// CheckpointEvery epochs. The machine's microarchitectural state is not
// serialized: the simulator is deterministic, so Resume rebuilds it by
// replaying the recorded configuration schedule (no model inference)
// against the same workload, then continues the control loop from Epoch
// with identical state — the epoch log tail matches an uninterrupted run
// exactly.
type Checkpoint struct {
	Version int `json:"version"`
	// Epoch is the number of completed epochs; Resume continues at index
	// Epoch.
	Epoch int `json:"epoch"`
	// Start is the configuration the run began in; a Resume against a
	// machine constructed differently is rejected.
	Start config.Config `json:"start"`
	// Next is the machine configuration entering epoch Epoch (after the
	// boundary decision that preceded this checkpoint), and Reconfigured
	// whether that boundary changed it.
	Next         config.Config `json:"next"`
	Reconfigured bool          `json:"reconfigured"`
	InFallback   bool          `json:"in_fallback"`

	Total    power.Metrics    `json:"total"`
	Epochs   []EpochLog       `json:"epochs"`
	Reconfig int              `json:"reconfig"`
	Watchdog watchdogState    `json:"watchdog"`
	Report   ResilienceReport `json:"report"`
}

const checkpointVersion = 1

// writeFileAtomic writes data via a temp file in the destination directory
// and renames it into place, so a crash mid-write never leaves a torn file
// where a valid one is expected.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeCheckpoint captures the live run state after `done` completed epochs.
func (c *ResilientController) writeCheckpoint(m *sim.Machine, st *runState, done int) error {
	ck := Checkpoint{
		Version:      checkpointVersion,
		Epoch:        done,
		Start:        st.res.Epochs[0].Config,
		Next:         m.Config(),
		Reconfigured: st.reconfigured,
		InFallback:   st.inFallback,
		Total:        st.res.Total,
		Epochs:       st.res.Epochs,
		Reconfig:     st.res.Reconfig,
		Watchdog:     st.wd,
		Report:       st.res.Resilience,
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return writeFileAtomic(c.Opts.CheckpointPath, data)
}

// DecodeCheckpoint parses and validates checkpoint bytes. It is the pure
// decoding core of LoadCheckpoint, split out so untrusted bytes can be
// checked without touching the filesystem (the fuzz harness drives it
// directly).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint has version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Epoch < 1 || len(ck.Epochs) != ck.Epoch {
		return nil, fmt.Errorf("core: checkpoint records %d logs for %d epochs", len(ck.Epochs), ck.Epoch)
	}
	if !ck.Start.Valid() || !ck.Next.Valid() {
		return nil, fmt.Errorf("core: checkpoint holds an invalid configuration")
	}
	return ck, nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// fastForward replays the checkpointed prefix against a fresh machine: each
// recorded epoch runs under its recorded configuration and each boundary
// reconfiguration is re-applied through the same fault-injected protocol
// (same hash keys → same drops and penalties), rebuilding the exact
// microarchitectural and pending-cost state the original run had at the
// checkpoint. Model inference is skipped entirely.
func (c *ResilientController) fastForward(m *sim.Machine, eps []sim.EpochRange, ck *Checkpoint) error {
	if ck.Epoch > len(eps) {
		return fmt.Errorf("core: checkpoint at epoch %d exceeds workload's %d epochs", ck.Epoch, len(eps))
	}
	if m.Config() != ck.Start {
		return fmt.Errorf("core: machine starts at %v, checkpoint recorded %v", m.Config(), ck.Start)
	}
	for j := 0; j < ck.Epoch; j++ {
		if m.Config() != ck.Epochs[j].Config {
			return fmt.Errorf("core: replay diverged at epoch %d: machine %v, recorded %v", j, m.Config(), ck.Epochs[j].Config)
		}
		r := m.RunEpoch(eps[j])
		// Telemetry injection must replay too: stuck-at faults reference the
		// previous true frame, so the injector's state advances epoch by
		// epoch exactly as it did originally.
		if c.Inject != nil {
			c.Inject.PerturbTelemetry(j, r.Counters)
		}
		// Re-apply the boundary reconfiguration, if one took.
		if j < ck.Epoch-1 {
			if ck.Epochs[j+1].Reconfigured {
				c.attemptReconfig(m, j, ck.Epochs[j+1].Config)
			}
		} else if ck.Reconfigured {
			c.attemptReconfig(m, j, ck.Next)
		}
	}
	if m.Config() != ck.Next {
		return fmt.Errorf("core: replay ended at %v, checkpoint recorded %v", m.Config(), ck.Next)
	}
	return nil
}
