package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func TestSaveLoadEnsembleRoundTrip(t *testing.T) {
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveEnsemble(path, ens); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEnsemble(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ens.Mode || len(got.Trees) != len(ens.Trees) {
		t.Fatalf("round trip lost structure: %d trees, mode %v", len(got.Trees), got.Mode)
	}
	// The restored model predicts identically.
	c := midCounters()
	if got.Predict(config.Baseline, c) != ens.Predict(config.Baseline, c) {
		t.Fatal("restored model predicts differently")
	}
}

func TestSaveEnsembleLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	if err := SaveEnsemble(path, ens); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only model.json", names)
	}
}

func TestLoadEnsembleRejectsUnknownParam(t *testing.T) {
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	data, err := json.Marshal(ens)
	if err != nil {
		t.Fatal(err)
	}
	// Rename one tree's key to a parameter that does not exist.
	text := strings.Replace(string(data), `"`+config.Clock.String()+`"`, `"turbo-boost"`, 1)
	var got Ensemble
	err = json.Unmarshal([]byte(text), &got)
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown parameter accepted: %v", err)
	}
}

func TestLoadEnsembleRejectsEmptyAndNull(t *testing.T) {
	for _, text := range []string{
		`{"mode":0,"trees":{}}`,
		`{"mode":0}`,
	} {
		var got Ensemble
		if err := json.Unmarshal([]byte(text), &got); err == nil {
			t.Fatalf("treeless model %s accepted", text)
		}
	}
	null := `{"mode":0,"trees":{"` + config.Clock.String() + `":null}}`
	var got Ensemble
	if err := json.Unmarshal([]byte(null), &got); err == nil {
		t.Fatal("null tree accepted")
	}
}

func TestLoadEnsembleRejectsBadFeatureWidth(t *testing.T) {
	// Train a model on a width no feature builder produces by fabricating
	// the JSON: serialize a real model and patch its recorded width.
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	data, err := json.Marshal(ens)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.ReplaceAll(string(data),
		fmt.Sprintf(`"n_features":%d`, NumFeatures),
		fmt.Sprintf(`"n_features":%d`, NumFeatures+1))
	if bad == string(data) {
		t.Fatal("test setup: width field not found in serialized model")
	}
	var got Ensemble
	err = json.Unmarshal([]byte(bad), &got)
	if err == nil || !strings.Contains(err.Error(), "feature") {
		t.Fatalf("impossible feature width accepted: %v", err)
	}
	// A history-augmented width (9 + 2×18 = 45) is legitimate.
	if !validFeatureWidth(ConfigFeatureCount + 2*sim.NumFeatures) {
		t.Fatal("history feature width rejected")
	}
	if validFeatureWidth(NumFeatures-1) || validFeatureWidth(0) {
		t.Fatal("undersized widths accepted")
	}
}

// TestLoadEnsembleTornFile: the interrupted-write and bit-rot fault models
// applied to a model file must yield a load-time error, never a panic or a
// silently wrong model.
func TestLoadEnsembleTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	if err := SaveEnsemble(path, ens); err != nil {
		t.Fatal(err)
	}

	// Truncation (a save that died partway) breaks the JSON.
	torn := filepath.Join(dir, "torn.json")
	data, _ := os.ReadFile(path)
	os.WriteFile(torn, data, 0o644)
	if err := fault.TruncateFile(torn, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(torn); err == nil {
		t.Fatal("truncated model file loaded")
	}

	// Bit flips: load must either fail cleanly or produce a model that still
	// passes validation (a flip inside a number can leave valid JSON). Run
	// several deterministic corruptions; none may panic, and a successful
	// load must still predict without crashing.
	for seed := int64(1); seed <= 20; seed++ {
		flipped := filepath.Join(dir, "flipped.json")
		os.WriteFile(flipped, data, 0o644)
		if err := fault.CorruptFile(flipped, seed, 8); err != nil {
			t.Fatal(err)
		}
		got, err := LoadEnsemble(flipped)
		if err != nil {
			continue // rejected cleanly: the common, desired outcome
		}
		pred := got.Predict(config.Baseline, midCounters())
		if !ValidatePrediction(config.Baseline, pred) {
			// Even a survivor's garbage output is caught by the controller's
			// prediction validator — that is the second line of defense.
			continue
		}
	}
}

func TestLoadEnsembleMissingFile(t *testing.T) {
	if _, err := LoadEnsemble(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
