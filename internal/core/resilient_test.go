package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// bigWorkload builds an SpMSpV workload long enough (≈75 epochs at scale
// 0.1) for the watchdog and checkpoint machinery to play out.
func bigWorkload(t *testing.T) kernels.Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	am := matrix.Uniform(rng, 512, 512, 26000)
	x := matrix.RandomVec(rng, 512, 0.5)
	_, w, err := kernels.SpMSpV(am.ToCSC(), x, chip.NGPE(), chip.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func edp(m power.Metrics) float64 { return m.TimeSec * m.EnergyJ }

// midCounters returns a frame with every feature at the midpoint of its
// plausible range — guaranteed clean.
func midCounters() sim.Counters {
	f := make([]float64, sim.NumFeatures)
	for i := range f {
		f[i] = (counterBounds[i][0] + counterBounds[i][1]) / 2
	}
	return sim.CountersFromFeatures(f)
}

func TestSanitizeCounters(t *testing.T) {
	clean := midCounters()
	got, repairs := SanitizeCounters(clean)
	if repairs != 0 || got != clean {
		t.Fatalf("clean frame repaired %d times", repairs)
	}
	// Machine-produced telemetry must always pass untouched.
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	w := testWorkload(t, 1)
	m.BindTrace(w.Trace)
	r := m.RunEpoch(w.Epochs(1)[0])
	if _, n := SanitizeCounters(r.Counters); n != 0 {
		t.Fatalf("simulator frame needed %d repairs: %+v", n, r.Counters)
	}

	// An all-NaN frame: every feature repaired to its lower bound.
	nan := make([]float64, sim.NumFeatures)
	for i := range nan {
		nan[i] = math.NaN()
	}
	got, repairs = SanitizeCounters(sim.CountersFromFeatures(nan))
	if repairs != sim.NumFeatures {
		t.Fatalf("NaN frame: %d repairs, want %d", repairs, sim.NumFeatures)
	}
	for i, v := range got.Features() {
		if v != counterBounds[i][0] {
			t.Fatalf("feature %d = %v, want lower bound %v", i, v, counterBounds[i][0])
		}
	}

	// An all-Inf frame clamps to the upper bounds.
	inf := make([]float64, sim.NumFeatures)
	for i := range inf {
		inf[i] = math.Inf(1)
	}
	got, repairs = SanitizeCounters(sim.CountersFromFeatures(inf))
	if repairs != sim.NumFeatures {
		t.Fatalf("Inf frame: %d repairs", repairs)
	}
	for i, v := range got.Features() {
		if v != counterBounds[i][1] {
			t.Fatalf("feature %d = %v, want upper bound %v", i, v, counterBounds[i][1])
		}
	}

	// A single out-of-range value is the only one touched.
	f := clean.Features()
	f[0] = -17
	got, repairs = SanitizeCounters(sim.CountersFromFeatures(f))
	if repairs != 1 {
		t.Fatalf("one bad value: %d repairs", repairs)
	}
	if got.Features()[0] != counterBounds[0][0] {
		t.Fatal("bad value not clamped to its bound")
	}
}

func TestValidatePrediction(t *testing.T) {
	cur := config.BestAvgCache
	if !ValidatePrediction(cur, config.Baseline) {
		t.Fatal("a valid same-L1-type config must pass")
	}
	flip := config.Baseline
	flip[config.L1Type] = config.SPMMode
	if ValidatePrediction(cur, flip) {
		t.Fatal("changing the compile-time L1 type must be rejected")
	}
	for _, p := range config.RuntimeParams {
		over := cur
		over[p] = config.Cardinality(p)
		if ValidatePrediction(cur, over) {
			t.Fatalf("%v above cardinality must be rejected", p)
		}
		under := cur
		under[p] = -1
		if ValidatePrediction(cur, under) {
			t.Fatalf("negative %v must be rejected", p)
		}
	}
}

func TestWatchdogObserve(t *testing.T) {
	var w watchdogState
	// Costs below a baseline-forming history are healthy and feed the window.
	for i := 0; i < 8; i++ {
		if w.observe(1.0, 2, 8) {
			t.Fatalf("epoch %d: steady cost flagged degraded", i)
		}
	}
	if b := w.baseline(); b != 1.0 {
		t.Fatalf("baseline %v, want 1.0", b)
	}
	// A 5× cost is degraded and does not pollute the window.
	for i := 0; i < 3; i++ {
		if !w.observe(5.0, 2, 8) {
			t.Fatalf("degraded epoch %d not flagged", i)
		}
		if w.Streak != i+1 {
			t.Fatalf("streak %d, want %d", w.Streak, i+1)
		}
	}
	if b := w.baseline(); b != 1.0 {
		t.Fatalf("degraded epochs moved the baseline to %v", b)
	}
	// One healthy epoch resets the streak.
	if w.observe(1.1, 2, 8) {
		t.Fatal("healthy epoch flagged")
	}
	if w.Streak != 0 {
		t.Fatalf("streak %d after recovery", w.Streak)
	}
	// Zero/invalid costs are ignored entirely.
	if w.observe(0, 2, 8) || w.observe(-1, 2, 8) {
		t.Fatal("non-positive cost classified")
	}
	// The window is bounded.
	for i := 0; i < 100; i++ {
		w.observe(1.0, 2, 8)
	}
	if len(w.Window) != 8 {
		t.Fatalf("window grew to %d", len(w.Window))
	}
}

// rogueInjector models a model gone bad mid-run: from epoch From on, every
// prediction is replaced with Bad — a *valid* but terrible configuration,
// the one failure the sanitizer and validator cannot catch. Only the
// watchdog can.
type rogueInjector struct {
	From int
	Bad  config.Config
}

func (r *rogueInjector) PerturbTelemetry(epoch int, c sim.Counters) (sim.Counters, []string) {
	return c, nil
}
func (r *rogueInjector) DropTelemetry(int) bool { return false }
func (r *rogueInjector) PerturbPrediction(epoch int, pred config.Config) (config.Config, bool) {
	if epoch >= r.From {
		return r.Bad, true
	}
	return pred, false
}
func (r *rogueInjector) ReconfigFault(int, int) (bool, float64) { return false, 1 }

func TestWatchdogFallbackEndToEnd(t *testing.T) {
	w := bigWorkload(t)
	start := config.BestAvgCache
	model := constModel(t, start, power.EnergyEfficient)
	slow := start
	slow[config.Clock] = 0 // 31.25 MHz: ~3× worse EDP on this workload

	opts := DefaultResilientOptions()
	opts.EpochScale = 0.1
	opts.Fallback = start
	// A tighter watchdog than the defaults: this drill's rogue model
	// re-offends on every re-arm, so spend fewer epochs confirming it.
	opts.DegradeEpochs = 2
	opts.MaxTrips = 2
	rc := NewResilientController(model, opts)
	rc.Inject = &rogueInjector{From: 10, Bad: slow}
	m := sim.New(chip, sim.DefaultBandwidth, start)
	res, err := rc.Run(m, w)
	if err != nil {
		t.Fatal(err)
	}

	rep := res.Resilience
	if rep.Fallbacks == 0 {
		t.Fatalf("watchdog never tripped: %+v", rep)
	}
	if rep.DegradedEpochs == 0 || rep.FallbackEpochs == 0 {
		t.Fatalf("no degraded/fallback epochs recorded: %+v", rep)
	}
	// The rogue model re-offends after every cooldown, so the trip budget
	// runs out and the fallback becomes permanent.
	if !rep.PermanentFallback {
		t.Fatalf("trip budget not exhausted over %d epochs: %+v", len(res.Epochs), rep)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Config != start || !last.Fallback {
		t.Fatalf("run did not end in the fallback config: %+v", last)
	}

	// Graceful degradation: despite a model actively driving the machine off
	// a cliff every chance it gets, the run's EDP stays within 2× the best
	// static config (the degraded epochs before each trip are the price).
	static := RunStatic(chip, sim.DefaultBandwidth, start, w, opts.EpochScale)
	if ratio := edp(res.Total) / edp(static.Total); ratio > 2 {
		t.Fatalf("EDP %.2fx best static, want <= 2x", ratio)
	}
}

// TestFaultSuite is the acceptance drill: under every fault class the run
// completes without panic and lands within 1.5× the best static EDP.
func TestFaultSuite(t *testing.T) {
	w := bigWorkload(t)
	scale := 0.1
	bestStatic := math.Inf(1)
	for _, cfg := range []config.Config{config.Baseline, config.BestAvgCache} {
		if e := edp(RunStatic(chip, sim.DefaultBandwidth, cfg, w, scale).Total); e < bestStatic {
			bestStatic = e
		}
	}

	specs := []string{
		"", // clean run through the same resilient path
		"nan=0.3,seed=5",
		"inf=0.3,seed=5",
		"zero=0.3,seed=5",
		"stuck=0.3,seed=5",
		"drop=0.3,seed=5",
		"noise=0.5,seed=5",
		"wild=0.5,seed=5",
		"rc-drop=0.5,seed=5",
		"rc-penalty=0.3,mult=8,seed=5",
		"nan=0.1,stuck=0.1,drop=0.1,noise=0.2,wild=0.2,rc-drop=0.2,rc-penalty=0.1,seed=5",
	}
	for _, specText := range specs {
		name := specText
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			model := constModel(t, config.BestAvgCache, power.EnergyEfficient)
			opts := DefaultResilientOptions()
			opts.EpochScale = scale
			rc := NewResilientController(model, opts)
			if specText != "" {
				spec, err := fault.ParseSpec(specText)
				if err != nil {
					t.Fatal(err)
				}
				rc.Inject = fault.New(spec)
			}
			m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
			res, err := rc.Run(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Epochs) != len(w.Epochs(scale)) {
				t.Fatalf("run stopped early: %d epochs", len(res.Epochs))
			}
			if ratio := edp(res.Total) / bestStatic; ratio > 1.5 {
				t.Fatalf("EDP %.3fx best static under %q, want <= 1.5x\nreport: %s",
					ratio, specText, res.Resilience)
			}
		})
	}
}

// TestReconfigDropAccounting: with every knob write dropped, the machine
// never leaves its start configuration and every failed boundary is counted.
func TestReconfigDropAccounting(t *testing.T) {
	w := bigWorkload(t)
	model := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	opts := DefaultResilientOptions()
	opts.EpochScale = 0.1
	rc := NewResilientController(model, opts)
	rc.Inject = fault.New(fault.Spec{RcDrop: 1})
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	res, err := rc.Run(m, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range res.Epochs {
		if ep.Config != config.Baseline {
			t.Fatalf("epoch %d escaped the start config despite rc-drop=1", i)
		}
		if ep.Reconfigured {
			t.Fatalf("epoch %d marked reconfigured", i)
		}
	}
	rep := res.Resilience
	if rep.ReconfigFailures == 0 || rep.ReconfigRetries == 0 {
		t.Fatalf("dropped writes not accounted: %+v", rep)
	}
	// Every failure burned the full retry budget.
	if rep.ReconfigRetries != rep.ReconfigFailures*opts.ReconfigRetries {
		t.Fatalf("retries %d for %d failures (budget %d)",
			rep.ReconfigRetries, rep.ReconfigFailures, opts.ReconfigRetries)
	}
}

// TestCheckpointResume is the crash-recovery acceptance test: a run killed
// mid-workload and resumed from its checkpoint must produce exactly the
// epoch log an uninterrupted run produces — under fault injection (with
// stateful stuck-at faults) and mid-fallback alike.
func TestCheckpointResume(t *testing.T) {
	w := bigWorkload(t)
	spec, err := fault.ParseSpec("nan=0.1,stuck=0.2,drop=0.1,noise=0.2,wild=0.2,rc-drop=0.2,rc-penalty=0.1,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	slow := config.BestAvgCache
	slow[config.Clock] = 0

	cases := []struct {
		name   string
		start  config.Config
		inject func() FaultInjector
	}{
		{"injected-faults", config.Baseline, func() FaultInjector { return fault.New(spec) }},
		// StopAfter 16 lands inside the first fallback cooldown (trip ≈ epoch
		// 13), so the checkpoint carries live watchdog/fallback state.
		{"mid-fallback", config.BestAvgCache, func() FaultInjector { return &rogueInjector{From: 10, Bad: slow} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := constModel(t, config.BestAvgCache, power.EnergyEfficient)
			opts := DefaultResilientOptions()
			opts.EpochScale = 0.1
			opts.CheckpointEvery = 8

			// Reference: one uninterrupted run.
			ref := NewResilientController(model, opts)
			ref.Inject = tc.inject()
			full, err := ref.Run(sim.New(chip, sim.DefaultBandwidth, tc.start), w)
			if err != nil {
				t.Fatal(err)
			}

			// Crash: same run, killed after 16 epochs with a checkpoint on disk.
			ckPath := filepath.Join(t.TempDir(), "run.ck")
			copts := opts
			copts.CheckpointPath = ckPath
			copts.StopAfter = 16
			crashed := NewResilientController(model, copts)
			crashed.Inject = tc.inject()
			part, err := crashed.Run(sim.New(chip, sim.DefaultBandwidth, tc.start), w)
			if err != nil {
				t.Fatal(err)
			}
			if len(part.Epochs) != 16 {
				t.Fatalf("crashed run logged %d epochs, want 16", len(part.Epochs))
			}

			// Resume: fresh machine, fresh injector, state from the checkpoint.
			ck, err := LoadCheckpoint(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Epoch != 16 {
				t.Fatalf("checkpoint at epoch %d, want 16", ck.Epoch)
			}
			ropts := opts
			ropts.CheckpointPath = ckPath
			resumed := NewResilientController(model, ropts)
			resumed.Inject = tc.inject()
			res, err := resumed.Resume(sim.New(chip, sim.DefaultBandwidth, tc.start), w, ck)
			if err != nil {
				t.Fatal(err)
			}

			if len(res.Epochs) != len(full.Epochs) {
				t.Fatalf("resumed run logged %d epochs, reference %d", len(res.Epochs), len(full.Epochs))
			}
			for i := range full.Epochs {
				if res.Epochs[i] != full.Epochs[i] {
					t.Fatalf("epoch %d diverges:\nresumed:   %+v\nreference: %+v", i, res.Epochs[i], full.Epochs[i])
				}
			}
			if res.Total != full.Total {
				t.Fatalf("totals diverge:\nresumed:   %+v\nreference: %+v", res.Total, full.Total)
			}
			if res.Reconfig != full.Reconfig {
				t.Fatalf("reconfig counts diverge: %d vs %d", res.Reconfig, full.Reconfig)
			}
		})
	}
}

// TestResumeRejectsBadState: Resume must refuse checkpoints that do not
// match the machine or workload instead of silently diverging.
func TestResumeRejectsBadState(t *testing.T) {
	w := bigWorkload(t)
	model := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	opts := DefaultResilientOptions()
	opts.EpochScale = 0.1
	opts.CheckpointPath = filepath.Join(t.TempDir(), "run.ck")
	opts.CheckpointEvery = 8
	opts.StopAfter = 8
	rc := NewResilientController(model, opts)
	if _, err := rc.Run(sim.New(chip, sim.DefaultBandwidth, config.Baseline), w); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong start configuration.
	if _, err := rc.Resume(sim.New(chip, sim.DefaultBandwidth, config.MaxCfg), w, ck); err == nil {
		t.Fatal("resume with a mismatched machine must fail")
	}
	// Workload shorter than the checkpointed prefix.
	short := testWorkload(t, 1)
	if _, err := rc.Resume(sim.New(chip, sim.DefaultBandwidth, config.Baseline), short, ck); err == nil {
		t.Fatal("resume past the workload's end must fail")
	}
	// Nil checkpoint.
	if _, err := rc.Resume(sim.New(chip, sim.DefaultBandwidth, config.Baseline), w, nil); err == nil {
		t.Fatal("nil checkpoint must fail")
	}
}
