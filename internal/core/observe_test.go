package core

import (
	"strings"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// TestObserverCoversEveryEpoch runs the plain controller with an observer
// attached and checks the trace covers every epoch with decision
// annotations, the simulated-time axis is contiguous, and the registry's
// controller_* counters agree with the run result.
func TestObserverCoversEveryEpoch(t *testing.T) {
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	w := testWorkload(t, 1)
	reg := obs.NewRegistry()
	trace := obs.NewTraceRecorder()
	o := NewObserver(reg, trace)
	o.TraceCounters = true

	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	res := NewController(ens, Options{Policy: Aggressive, EpochScale: 1}).Observe(o).Run(m, w)

	recs := trace.Epochs()
	if len(recs) != len(res.Epochs) {
		t.Fatalf("trace has %d epoch records for %d epochs", len(recs), len(res.Epochs))
	}
	cursor := 0.0
	for i, r := range recs {
		if r.Epoch != i {
			t.Fatalf("record %d has epoch %d", i, r.Epoch)
		}
		if r.StartSec != cursor {
			t.Fatalf("epoch %d starts at %v, want %v (contiguous sim time)", i, r.StartSec, cursor)
		}
		cursor += r.DurSec
		if r.Predicted == "" || r.Chosen == "" {
			t.Fatalf("epoch %d missing decision annotation: %+v", i, r)
		}
		if len(r.Counters) == 0 {
			t.Fatalf("epoch %d missing telemetry counters with TraceCounters on", i)
		}
		if r.Reconfigured != res.Epochs[i].Reconfigured {
			t.Fatalf("epoch %d reconfigured mismatch", i)
		}
	}

	if got := reg.Counter("controller_epochs_total", "").Load(); got != int64(len(res.Epochs)) {
		t.Fatalf("controller_epochs_total = %d, want %d", got, len(res.Epochs))
	}
	if got := reg.Counter("controller_reconfig_total", "").Load(); got != int64(res.Reconfig) {
		t.Fatalf("controller_reconfig_total = %d, want %d", got, res.Reconfig)
	}
}

// TestObserverResilientEvents drives the resilient controller through a
// watchdog trip (via a huge injected penalty multiplier is overkill here;
// a degraded model does it) and checks fallback epochs and resilience
// events reach both sinks.
func TestObserverResilientEvents(t *testing.T) {
	ens := constModel(t, config.BestAvgCache, power.EnergyEfficient)
	w := bigWorkload(t)
	reg := obs.NewRegistry()
	trace := obs.NewTraceRecorder()
	o := NewObserver(reg, trace)

	opts := DefaultResilientOptions()
	opts.EpochScale = 0.1
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	res, err := NewResilientController(ens, opts).Observe(o).Run(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.Len(); got < len(res.Epochs) {
		t.Fatalf("trace has %d events for %d epochs", got, len(res.Epochs))
	}
	if got := reg.Counter("controller_epochs_total", "").Load(); got != int64(len(res.Epochs)) {
		t.Fatalf("controller_epochs_total = %d, want %d", got, len(res.Epochs))
	}

	// The nil observer costs nothing and crashes nothing.
	m2 := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	if _, err := NewResilientController(ens, opts).Run(m2, w); err != nil {
		t.Fatal(err)
	}
}

// TestMetricName checks event-label sanitization for the metric namespace.
func TestMetricName(t *testing.T) {
	if got := metricName("watchdog-trip"); got != "watchdog_trip" {
		t.Fatalf("metricName = %q", got)
	}
	if strings.ContainsAny(metricName("a b-c"), " -") {
		t.Fatal("unsanitized metric name")
	}
}
