// Package core implements SparseAdapt itself: the predictive model (an
// ensemble of per-parameter decision trees, Section 4) and the runtime
// controller that, at every FP-op epoch boundary, reads hardware telemetry,
// predicts the best configuration for the next epoch, filters the
// prediction through a reconfiguration-cost-aware policy (Section 4.4) and
// reconfigures the machine.
package core

import (
	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Feature layout: the current values of the runtime configuration
// parameters (the key insight of Section 4.2 — feeding the configuration
// back as model input removes the need for ProfileAdapt's profiling
// configuration), followed by the Table 2 telemetry. The configuration
// block grew from the paper's six hardware knobs when the action space was
// widened with the dataflow/format/scheduling axes; trees persisted with
// the old width are skipped gracefully by Predict.
const NumFeatures = ConfigFeatureCount + sim.NumFeatures

// ConfigFeatureCount is the number of runtime-adjustable parameters fed
// back as model inputs (len(config.RuntimeParams), kept const so feature
// widths are compile-time checkable).
const ConfigFeatureCount = 9

// BuildFeatures assembles the model input vector from the configuration
// active during the epoch and the telemetry it produced.
func BuildFeatures(cfg config.Config, c sim.Counters) []float64 {
	out := make([]float64, 0, NumFeatures)
	for _, p := range config.RuntimeParams {
		out = append(out, float64(cfg[p]))
	}
	return append(out, c.Features()...)
}

// FeatureNames returns the names of all model inputs, aligned with
// BuildFeatures.
func FeatureNames() []string {
	out := make([]string, 0, NumFeatures)
	for _, p := range config.RuntimeParams {
		out = append(out, "cfg-"+p.String())
	}
	return append(out, sim.FeatureNames()...)
}

// FeatureGroup maps a feature index to its hardware-block group for the
// Figure 10 importance analysis; configuration feedback inputs form their
// own group.
func FeatureGroup(i int) string {
	if i < ConfigFeatureCount {
		return "Config"
	}
	return sim.FeatureGroup(i - ConfigFeatureCount)
}

// Ensemble is the predictive model: one decision-tree classifier per
// runtime configuration parameter, assumed conditionally independent given
// the features (Section 4.1).
//
// Concurrency contract: an Ensemble is immutable after construction
// (training or LoadEnsemble), and Predict only reads the tree structures —
// it allocates its feature vectors on the caller's stack/heap and never
// writes shared state. One Ensemble may therefore be shared by any number
// of concurrently running controllers (the batch/adaptive host paths and
// the job server all rely on this); see TestEnsemblePredictConcurrent for
// the -race proof. Mutating Trees or Mode after the model is published to
// other goroutines is a data race.
type Ensemble struct {
	Trees map[config.Param]*ml.Tree
	Mode  power.Mode
}

// Predict returns the configuration the model deems best for the next
// epoch. The compile-time L1 type of cur is always preserved; any parameter
// without a trained tree keeps its current value. Trees trained on a wider
// history-augmented layout (BuildHistoryFeatures) are fed the single
// available frame repeated across the window, so loading a history model
// into the plain controller degrades gracefully instead of reading past
// the feature vector; a tree whose width matches no known layout is
// skipped.
func (e *Ensemble) Predict(cur config.Config, c sim.Counters) config.Config {
	x := BuildFeatures(cur, c)
	var wide []float64 // built lazily, shared by same-width trees
	out := cur
	for _, p := range config.RuntimeParams {
		t, ok := e.Trees[p]
		if !ok {
			continue
		}
		xi := x
		if nf := t.NumFeatures(); nf != len(x) {
			if nf < NumFeatures || (nf-ConfigFeatureCount)%sim.NumFeatures != 0 {
				continue
			}
			if len(wide) != nf {
				wide = BuildHistoryFeatures(cur, []sim.Counters{c}, (nf-ConfigFeatureCount)/sim.NumFeatures)
			}
			xi = wide
		}
		v := t.Predict(xi)
		if v >= 0 && v < config.Cardinality(p) {
			out[p] = v
		}
	}
	return out
}

// Importance aggregates normalized Gini feature importance per feature
// for the tree of parameter p (nil if untrained).
func (e *Ensemble) Importance(p config.Param) []float64 {
	t, ok := e.Trees[p]
	if !ok {
		return nil
	}
	return t.FeatureImportance()
}

// GroupImportance sums a tree's feature importance by feature group,
// producing the rows of Figure 10.
func (e *Ensemble) GroupImportance(p config.Param) map[string]float64 {
	imp := e.Importance(p)
	if imp == nil {
		return nil
	}
	out := map[string]float64{}
	for i, v := range imp {
		out[FeatureGroup(i)] += v
	}
	return out
}
