package core

import (
	"context"
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Policy is the reconfiguration-cost-aware hysteresis scheme of Section
// 4.4, applied per parameter on top of the model's prediction.
type Policy int

const (
	// Conservative never reconfigures parameters whose transition exceeds
	// the fixed super-fine cost (i.e. anything requiring a flush).
	Conservative Policy = iota
	// Aggressive always follows the model's prediction regardless of cost.
	Aggressive
	// Hybrid allows a flushing change only when its estimated time cost is
	// within Tolerance × the previous epoch's elapsed time, penalizing
	// bursts of reconfiguration in short epochs while allowing occasional
	// ones (Section 4.4).
	Hybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Conservative:
		return "conservative"
	case Aggressive:
		return "aggressive"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configure a Controller.
type Options struct {
	Policy Policy
	// Tolerance is the hybrid policy's threshold as a fraction of the
	// previous epoch time (the paper uses 40% for SpMSpV, Section 5.4).
	Tolerance float64
	// EpochScale scales the paper's per-kernel epoch size (1 = paper's 500
	// / 5000 FP-ops per GPE); scaled-down inputs use smaller epochs.
	EpochScale float64
}

// DefaultOptions returns the paper's defaults: hybrid with 40% tolerance.
func DefaultOptions() Options {
	return Options{Policy: Hybrid, Tolerance: 0.4, EpochScale: 1}
}

// EpochLog records one epoch of a run for analysis and plotting (the
// Figure 1 timeline is built from these).
type EpochLog struct {
	Config   config.Config
	Metrics  power.Metrics
	Counters sim.Counters
	Phase    string
	// Reconfigured reports whether the controller changed configuration
	// entering this epoch.
	Reconfigured bool

	// Resilience annotations, populated by ResilientController runs (all
	// zero under the plain controller). EpochLog stays a comparable struct
	// so deterministic runs can be diffed epoch-by-epoch with ==.

	// Repairs counts telemetry values the sanitizer had to clamp or replace
	// before this epoch's counters reached the model.
	Repairs int
	// TelemetryDropped marks an epoch whose telemetry never arrived; the
	// controller held the current configuration.
	TelemetryDropped bool
	// Degraded marks an epoch whose cost exceeded the watchdog's trailing
	// baseline by more than the configured factor.
	Degraded bool
	// Interference marks an epoch whose cost shift coincided with a
	// tenant-switch boundary on a time-multiplexed fabric: the cold-cache
	// spike is attributed to the co-tenant, not a fault, so it neither
	// counts toward the degraded streak nor pollutes the baseline (see
	// ResilientStepper).
	Interference bool
	// Fallback marks an epoch executed under the safe static fallback
	// configuration rather than model control.
	Fallback bool
}

// RunResult aggregates a full workload execution.
type RunResult struct {
	Total    power.Metrics
	Epochs   []EpochLog
	Reconfig int // number of epochs entered with a configuration change
	// Resilience summarizes fault handling over the run (zero for plain
	// controller and static runs).
	Resilience ResilienceReport
}

// Controller is the SparseAdapt runtime: it owns the predictive model and
// drives the feedback loop against a machine.
type Controller struct {
	Model *Ensemble
	Opts  Options
	// Obs is the optional run observer (nil = observability off).
	Obs *Observer
}

// NewController builds a controller with the given trained model.
func NewController(model *Ensemble, opts Options) *Controller {
	if opts.EpochScale <= 0 {
		opts.EpochScale = 1
	}
	return &Controller{Model: model, Opts: opts}
}

// Observe attaches an observer to the controller and returns it, for
// chaining at construction.
func (c *Controller) Observe(o *Observer) *Controller {
	c.Obs = o
	return c
}

// filter applies the cost-aware policy to the model's prediction, given
// the machine state: it returns the configuration actually applied. nnz is
// the operand nonzero count driving the format-conversion charge of
// algorithmic (dataflow/format) switches; those fall under the same
// cost-gating as flushing changes — conservative never takes them,
// aggressive always does, hybrid when the estimated transition time fits
// within the tolerance of the last epoch's time.
func (c *Controller) filter(m *sim.Machine, pred config.Config, lastEpochTime float64, dirtyL1, dirtyL2, nnz int) config.Config {
	cur := m.Config()
	out := cur
	for _, p := range config.RuntimeParams {
		if pred[p] == cur[p] {
			continue
		}
		cls := config.TransitionClass(p, cur[p], pred[p])
		switch c.Opts.Policy {
		case Aggressive:
			out[p] = pred[p]
		case Conservative:
			if cls == config.SuperFine {
				out[p] = pred[p]
			}
		case Hybrid:
			if cls == config.SuperFine {
				out[p] = pred[p]
				continue
			}
			// Estimate the isolated cost of moving this one parameter.
			probe := cur
			probe[p] = pred[p]
			tCost, _ := sim.TransitionPenalty(m.Chip(), cur, probe, dirtyL1, dirtyL2, nnz, m.Bandwidth())
			if tCost <= c.Opts.Tolerance*lastEpochTime {
				out[p] = pred[p]
			}
		}
	}
	return out
}

// Run executes the workload under SparseAdapt control: telemetry,
// inference and reconfiguration at every epoch boundary (Figure 3a).
func (c *Controller) Run(m *sim.Machine, w kernels.Workload) RunResult {
	res, _ := c.RunContext(context.Background(), m, w)
	return res
}

// RunContext is Run with cooperative cancellation: the context is checked
// at every epoch boundary, and a cancelled or expired context stops the run
// there, returning the partial result accumulated so far together with the
// context's error. A background context makes it exactly Run — the two
// share one loop, so results are bit-identical.
func (c *Controller) RunContext(ctx context.Context, m *sim.Machine, w kernels.Workload) (RunResult, error) {
	m.BindTrace(w.Trace)
	eps := w.Epochs(c.Opts.EpochScale)
	var res RunResult
	reconfigured := false
	for i, ep := range eps {
		if err := ctx.Err(); err != nil {
			c.Obs.flush()
			return res, err
		}
		r := m.RunEpoch(ep)
		res.Total.Add(r.Metrics)
		log := EpochLog{
			Config: m.Config(), Metrics: r.Metrics, Counters: r.Counters,
			Phase: r.Phase, Reconfigured: reconfigured,
		}
		res.Epochs = append(res.Epochs, log)
		c.Obs.epoch(i, log)
		pred := c.Model.Predict(m.Config(), r.Counters)
		// A single bound trace cannot change execution strategy: pin the
		// algorithm axes so the prediction only moves hardware knobs. Use
		// RunSource for full widened-space control.
		for _, p := range []config.Param{config.Dataflow, config.Format, config.SchedPolicy} {
			pred[p] = m.Config()[p]
		}
		next := c.filter(m, pred, r.Metrics.TimeSec, r.DirtyL1, r.DirtyL2, w.Trace.NNZ)
		c.Obs.decision(pred, next)
		reconfigured = false
		if next != m.Config() {
			from := m.Config()
			if rc, err := m.Reconfigure(next); err == nil {
				res.Reconfig++
				reconfigured = true
				c.Obs.reconfig(from, next, rc)
			}
		}
	}
	c.Obs.flush()
	return res, nil
}

// RunSource executes a kernel under SparseAdapt control over the full
// widened action space: when the model (filtered by the policy) switches
// the dataflow, storage format or scheduling policy, the machine is
// rebound to the corresponding kernel variant's trace and execution
// resumes at the same work-fraction epoch on that variant's aligned grid
// (sim.Trace.EpochsN). An algorithmic switch flushes both cache levels and
// charges the conversion cost, so rebinding mid-run is sound: no stale
// working set survives the transition.
func (c *Controller) RunSource(m *sim.Machine, src *kernels.Source) (RunResult, error) {
	return c.RunSourceContext(context.Background(), m, src)
}

// RunSourceContext is RunSource with cooperative cancellation checked at
// every epoch boundary.
func (c *Controller) RunSourceContext(ctx context.Context, m *sim.Machine, src *kernels.Source) (RunResult, error) {
	// The epoch-grid size is anchored to the natural variant so every
	// variant splits into the same number of work-aligned epochs.
	nEpochs, _, err := src.GridEpochs(c.Opts.EpochScale)
	if err != nil {
		return RunResult{}, err
	}
	w, err := src.Variant(m.Config())
	if err != nil {
		return RunResult{}, err
	}
	m.BindTrace(w.Trace)
	eps := w.Trace.EpochsN(nEpochs)
	var res RunResult
	reconfigured := false
	// len(eps) == nEpochs unless a variant trace has fewer FP ops than grid
	// epochs (degenerate tiny traces); the condition guards the rebind case.
	for i := 0; i < nEpochs && i < len(eps); i++ {
		if err := ctx.Err(); err != nil {
			c.Obs.flush()
			return res, err
		}
		r := m.RunEpoch(eps[i])
		res.Total.Add(r.Metrics)
		log := EpochLog{
			Config: m.Config(), Metrics: r.Metrics, Counters: r.Counters,
			Phase: r.Phase, Reconfigured: reconfigured,
		}
		res.Epochs = append(res.Epochs, log)
		c.Obs.epoch(i, log)
		pred := c.Model.Predict(m.Config(), r.Counters)
		next := c.filter(m, pred, r.Metrics.TimeSec, r.DirtyL1, r.DirtyL2, w.Trace.NNZ)
		c.Obs.decision(pred, next)
		reconfigured = false
		if next != m.Config() {
			from := m.Config()
			oldKey, newKey := src.Key(kernels.AlgoOf(from)), src.Key(kernels.AlgoOf(next))
			if rc, err := m.Reconfigure(next); err == nil {
				res.Reconfig++
				reconfigured = true
				c.Obs.reconfig(from, next, rc)
				if oldKey != newKey {
					w, err = src.Variant(next)
					if err != nil {
						c.Obs.flush()
						return res, err
					}
					m.BindTrace(w.Trace)
					eps = w.Trace.EpochsN(nEpochs)
				}
			}
		}
	}
	c.Obs.flush()
	return res, nil
}

// RunStatic executes the workload under a fixed configuration — the
// non-reconfiguring comparison points of Section 5.3 (Baseline, Best Avg,
// Max Cfg, Ideal Static).
func RunStatic(chip power.Chip, bw float64, cfg config.Config, w kernels.Workload, epochScale float64) RunResult {
	res, _ := RunStaticContext(context.Background(), chip, bw, cfg, w, epochScale)
	return res
}

// RunStaticContext is RunStatic with cooperative cancellation checked at
// every epoch boundary; a cancelled context returns the partial result and
// the context's error.
func RunStaticContext(ctx context.Context, chip power.Chip, bw float64, cfg config.Config, w kernels.Workload, epochScale float64) (RunResult, error) {
	m := sim.New(chip, bw, cfg)
	m.BindTrace(w.Trace)
	var res RunResult
	for _, ep := range w.Epochs(epochScale) {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		r := m.RunEpoch(ep)
		res.Total.Add(r.Metrics)
		res.Epochs = append(res.Epochs, EpochLog{Config: cfg, Metrics: r.Metrics, Counters: r.Counters, Phase: r.Phase})
	}
	return res, nil
}
