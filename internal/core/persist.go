package core

import (
	"encoding/json"
	"fmt"
	"os"

	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// ensembleJSON is the on-disk form of an Ensemble; trees are keyed by
// parameter name so files are self-describing.
type ensembleJSON struct {
	Mode  int                 `json:"mode"`
	Trees map[string]*ml.Tree `json:"trees"`
}

// MarshalJSON serializes the ensemble.
func (e *Ensemble) MarshalJSON() ([]byte, error) {
	out := ensembleJSON{Mode: int(e.Mode), Trees: map[string]*ml.Tree{}}
	for p, t := range e.Trees {
		out.Trees[p.String()] = t
	}
	return json.Marshal(out)
}

// validFeatureWidth reports whether a tree's input width is one the
// feature builders can produce: the base layout (BuildFeatures) or a
// history-augmented layout (BuildHistoryFeatures) for some window length.
func validFeatureWidth(nf int) bool {
	return nf >= NumFeatures && (nf-ConfigFeatureCount)%sim.NumFeatures == 0
}

// UnmarshalJSON restores a serialized ensemble, validating every tree: the
// file is an untrusted on-disk artifact, and a corrupt model must fail at
// load time, not crash (or silently misconfigure) the controller at an
// epoch boundary. Tree-internal invariants (finite thresholds, in-bounds
// split features, forward child pointers, sane depth) are enforced by
// ml.Tree's own UnmarshalJSON; this layer checks what only the ensemble
// knows — parameter names and the feature-vector widths the controller
// will actually feed the trees.
func (e *Ensemble) UnmarshalJSON(data []byte) error {
	var in ensembleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Trees) == 0 {
		return fmt.Errorf("core: model file holds no trees")
	}
	e.Mode = power.Mode(in.Mode)
	e.Trees = map[config.Param]*ml.Tree{}
	width := 0
	for name, t := range in.Trees {
		found := false
		for _, p := range config.RuntimeParams {
			if p.String() == name {
				e.Trees[p] = t
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: unknown parameter %q in model file", name)
		}
		if t == nil {
			return fmt.Errorf("core: parameter %q has a null tree", name)
		}
		if nf := t.NumFeatures(); !validFeatureWidth(nf) {
			return fmt.Errorf("core: tree for %q expects %d features; no feature layout matches", name, nf)
		} else if width == 0 {
			width = nf
		} else if nf != width {
			return fmt.Errorf("core: tree for %q expects %d features, others expect %d", name, nf, width)
		}
	}
	return nil
}

// SaveEnsemble writes the model to a JSON file atomically (temp file +
// rename), so a crash mid-save never leaves a torn model where the
// controller expects a valid one.
func SaveEnsemble(path string, e *Ensemble) error {
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// LoadEnsemble reads a model from a JSON file.
func LoadEnsemble(path string) (*Ensemble, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e := &Ensemble{}
	if err := json.Unmarshal(data, e); err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	return e, nil
}
