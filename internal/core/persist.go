package core

import (
	"encoding/json"
	"fmt"
	"os"

	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
)

// ensembleJSON is the on-disk form of an Ensemble; trees are keyed by
// parameter name so files are self-describing.
type ensembleJSON struct {
	Mode  int                 `json:"mode"`
	Trees map[string]*ml.Tree `json:"trees"`
}

// MarshalJSON serializes the ensemble.
func (e *Ensemble) MarshalJSON() ([]byte, error) {
	out := ensembleJSON{Mode: int(e.Mode), Trees: map[string]*ml.Tree{}}
	for p, t := range e.Trees {
		out.Trees[p.String()] = t
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a serialized ensemble.
func (e *Ensemble) UnmarshalJSON(data []byte) error {
	var in ensembleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	e.Mode = power.Mode(in.Mode)
	e.Trees = map[config.Param]*ml.Tree{}
	for name, t := range in.Trees {
		found := false
		for _, p := range config.RuntimeParams {
			if p.String() == name {
				e.Trees[p] = t
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: unknown parameter %q in model file", name)
		}
	}
	return nil
}

// SaveEnsemble writes the model to a JSON file.
func SaveEnsemble(path string, e *Ensemble) error {
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadEnsemble reads a model from a JSON file.
func LoadEnsemble(path string) (*Ensemble, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e := &Ensemble{}
	if err := json.Unmarshal(data, e); err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	return e, nil
}
