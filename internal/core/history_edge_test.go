package core

import (
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/sim"
)

func frame(v float64) sim.Counters {
	f := make([]float64, sim.NumFeatures)
	for i := range f {
		f[i] = v
	}
	return sim.CountersFromFeatures(f)
}

// TestHistoryPaddingBoundaries pins BuildHistoryFeatures at every window
// boundary: empty, shorter than h, exactly h, longer than h, and h clamped
// up from zero.
func TestHistoryPaddingBoundaries(t *testing.T) {
	cfg := config.Baseline
	cases := []struct {
		name   string
		h      int
		window []sim.Counters
		// wantFrames is the expected telemetry frame sequence (as the
		// constant fill value of each frame), oldest first.
		wantFrames []float64
	}{
		{"h-clamped-from-zero", 0, []sim.Counters{frame(2)}, []float64{2}},
		{"single-frame-window", 3, []sim.Counters{frame(5)}, []float64{5, 5, 5}},
		{"partial-window-repeats-oldest", 3, []sim.Counters{frame(1), frame(2)}, []float64{1, 1, 2}},
		{"exact-window", 3, []sim.Counters{frame(1), frame(2), frame(3)}, []float64{1, 2, 3}},
		{"overfull-window-keeps-newest", 2, []sim.Counters{frame(1), frame(2), frame(3)}, []float64{2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := BuildHistoryFeatures(cfg, tc.window, tc.h)
			h := tc.h
			if h < 1 {
				h = 1
			}
			if len(x) != HistoryFeatureCount(h) {
				t.Fatalf("width %d, want %d", len(x), HistoryFeatureCount(h))
			}
			for fi, want := range tc.wantFrames {
				off := ConfigFeatureCount + fi*sim.NumFeatures
				for j := 0; j < sim.NumFeatures; j++ {
					if x[off+j] != want {
						t.Fatalf("frame %d feature %d = %v, want %v (x=%v)", fi, j, x[off+j], want, x)
					}
				}
			}
		})
	}
}

// TestHistoryEmptyWindowSanitized pins the empty-window contract: the pad
// frame must be sanitized neutral telemetry, never raw zeros.
func TestHistoryEmptyWindowSanitized(t *testing.T) {
	x := BuildHistoryFeatures(config.Baseline, nil, 2)
	if len(x) != HistoryFeatureCount(2) {
		t.Fatalf("width %d, want %d", len(x), HistoryFeatureCount(2))
	}
	neutral, _ := SanitizeCounters(sim.Counters{})
	nf := neutral.Features()
	for fi := 0; fi < 2; fi++ {
		off := ConfigFeatureCount + fi*sim.NumFeatures
		for j := 0; j < sim.NumFeatures; j++ {
			if x[off+j] != nf[j] {
				t.Fatalf("frame %d feature %d = %v, want sanitized %v", fi, j, x[off+j], nf[j])
			}
		}
	}
}

// TestPredictWidthMismatch pins the width-compatibility layer of
// Ensemble.Predict: a history-trained tree is fed a repeated-frame vector
// instead of reading past the base feature vector, and a tree of impossible
// width is skipped rather than crashing the controller.
func TestPredictWidthMismatch(t *testing.T) {
	trainTree := func(nf, label int) *ml.Tree {
		x := [][]float64{make([]float64, nf), make([]float64, nf)}
		x[1][0] = 1
		tree, err := ml.TrainTree(x, []int{label, label}, ml.TreeParams{MinSamplesLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}

	// History-width tree (h=3): Predict must pad and honor the prediction.
	e := &Ensemble{Trees: map[config.Param]*ml.Tree{
		config.Clock: trainTree(HistoryFeatureCount(3), 2),
	}}
	got := e.Predict(config.Baseline, sim.Counters{})
	if got[config.Clock] != 2 {
		t.Errorf("history-width tree ignored: clock %d, want 2", got[config.Clock])
	}

	// Impossible width (not a history multiple): skipped, config unchanged.
	e = &Ensemble{Trees: map[config.Param]*ml.Tree{
		config.Clock: trainTree(NumFeatures+1, 2),
	}}
	got = e.Predict(config.Baseline, sim.Counters{})
	if got != config.Baseline {
		t.Errorf("incompatible-width tree changed the config: %v", got)
	}

	// Narrower than the base layout: also skipped.
	e = &Ensemble{Trees: map[config.Param]*ml.Tree{
		config.Clock: trainTree(3, 2),
	}}
	got = e.Predict(config.Baseline, sim.Counters{})
	if got != config.Baseline {
		t.Errorf("narrow tree changed the config: %v", got)
	}
}
