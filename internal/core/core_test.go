package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

var chip = power.Chip{Tiles: 2, GPEsPerTile: 8}

// constModel builds an ensemble that always predicts the given target
// configuration, by training single-leaf trees on constant labels.
func constModel(t *testing.T, target config.Config, mode power.Mode) *Ensemble {
	t.Helper()
	x := [][]float64{make([]float64, NumFeatures), make([]float64, NumFeatures)}
	x[1][0] = 1
	ens := &Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: mode}
	for _, p := range config.RuntimeParams {
		tree, err := ml.TrainTree(x, []int{target[p], target[p]}, ml.DefaultTreeParams())
		if err != nil {
			t.Fatal(err)
		}
		ens.Trees[p] = tree
	}
	return ens
}

func testWorkload(t *testing.T, seed int64) kernels.Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	am := matrix.Uniform(rng, 128, 128, 1200)
	x := matrix.RandomVec(rng, 128, 0.5)
	_, w, _ := kernels.SpMSpV(am.ToCSC(), x, chip.NGPE(), chip.Tiles)
	return w
}

func TestFeatureLayout(t *testing.T) {
	f := BuildFeatures(config.Baseline, sim.Counters{ClockMHz: 1000})
	if len(f) != NumFeatures {
		t.Fatalf("feature length %d, want %d", len(f), NumFeatures)
	}
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("name count %d", len(names))
	}
	// The leading entries are the runtime parameter value indices.
	for i, p := range config.RuntimeParams {
		if f[i] != float64(config.Baseline[p]) {
			t.Fatalf("feature %d should mirror %v", i, p)
		}
		if names[i] != "cfg-"+p.String() {
			t.Fatalf("name %d = %q", i, names[i])
		}
	}
	if FeatureGroup(0) != "Config" || FeatureGroup(ConfigFeatureCount) == "Config" {
		t.Fatal("group boundaries wrong")
	}
}

func TestEnsemblePredictPreservesL1Type(t *testing.T) {
	target := config.MaxCfg
	ens := constModel(t, target, power.EnergyEfficient)
	cur := config.BestAvgSPM // SPM L1 type
	got := ens.Predict(cur, sim.Counters{})
	if got[config.L1Type] != cur[config.L1Type] {
		t.Fatal("prediction must not change the compile-time L1 type")
	}
	for _, p := range config.RuntimeParams {
		if got[p] != target[p] {
			t.Fatalf("param %v = %d, want %d", p, got[p], target[p])
		}
	}
	if !got.Valid() {
		t.Fatal("invalid prediction")
	}
}

func TestEnsembleMissingTreeKeepsCurrent(t *testing.T) {
	ens := &Ensemble{Trees: map[config.Param]*ml.Tree{}}
	cur := config.Baseline
	if got := ens.Predict(cur, sim.Counters{}); got != cur {
		t.Fatal("empty ensemble must be identity")
	}
}

func TestGroupImportance(t *testing.T) {
	ens := constModel(t, config.MaxCfg, power.EnergyEfficient)
	if gi := ens.GroupImportance(config.Clock); gi == nil {
		t.Fatal("importance missing")
	}
	if ens.Importance(config.L1Type) != nil {
		t.Fatal("untrained parameter should have nil importance")
	}
}

func TestControllerFollowsModel(t *testing.T) {
	w := testWorkload(t, 1)
	target := config.Baseline
	target[config.Clock] = 2 // 125 MHz
	target[config.Prefetch] = 0
	ens := constModel(t, target, power.EnergyEfficient)
	ctl := NewController(ens, Options{Policy: Aggressive, EpochScale: 0.1})
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	res := ctl.Run(m, w)
	if res.Reconfig == 0 {
		t.Fatal("controller never reconfigured")
	}
	if m.Config() != target {
		t.Fatalf("final config %v, want %v", m.Config(), target)
	}
	// Exactly one reconfiguration: once at the target, predictions repeat it.
	if res.Reconfig != 1 {
		t.Fatalf("expected a single reconfiguration, got %d", res.Reconfig)
	}
	if len(res.Epochs) < 3 {
		t.Fatalf("too few epochs logged: %d", len(res.Epochs))
	}
}

func TestConservativeBlocksFlushingChanges(t *testing.T) {
	w := testWorkload(t, 2)
	target := config.Baseline
	target[config.L1Share] = config.Private // fine-grained (flush)
	target[config.Clock] = 3                // super-fine
	ens := constModel(t, target, power.EnergyEfficient)
	ctl := NewController(ens, Options{Policy: Conservative, EpochScale: 0.1})
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	ctl.Run(m, w)
	final := m.Config()
	if final[config.L1Share] != config.Shared {
		t.Fatal("conservative policy must block flushing changes")
	}
	if final[config.Clock] != 3 {
		t.Fatal("conservative policy must allow super-fine changes")
	}
}

func TestHybridToleranceGates(t *testing.T) {
	w := testWorkload(t, 3)
	target := config.Baseline
	target[config.L2Share] = config.Private
	ens := constModel(t, target, power.EnergyEfficient)

	// Zero tolerance behaves like conservative for flushing changes.
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	NewController(ens, Options{Policy: Hybrid, Tolerance: 0, EpochScale: 0.1}).Run(m, w)
	if m.Config()[config.L2Share] != config.Shared {
		t.Fatal("zero-tolerance hybrid must block the flush")
	}

	// Generous tolerance admits it.
	m2 := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	NewController(ens, Options{Policy: Hybrid, Tolerance: 100, EpochScale: 0.1}).Run(m2, w)
	if m2.Config()[config.L2Share] != config.Private {
		t.Fatal("high-tolerance hybrid must allow the flush")
	}
}

func TestRunStaticMatchesManualReplay(t *testing.T) {
	w := testWorkload(t, 4)
	res := RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, 0.1)
	if res.Total.TimeSec <= 0 || res.Total.FPOps <= 0 {
		t.Fatalf("degenerate static run %+v", res.Total)
	}
	if res.Reconfig != 0 {
		t.Fatal("static run must not reconfigure")
	}
	// Identical to a controller run with an identity model.
	ens := constModel(t, config.Baseline, power.EnergyEfficient)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	dyn := NewController(ens, Options{Policy: Aggressive, EpochScale: 0.1}).Run(m, w)
	if dyn.Total != res.Total {
		t.Fatalf("identity controller differs from static: %+v vs %+v", dyn.Total, res.Total)
	}
}

func TestDVFSAdaptationBeatsStaticOnMemoryBound(t *testing.T) {
	// At 1 GB/s the SpMSpV workload is memory-bound; a model that clamps
	// the clock low must beat the 1 GHz baseline on energy at similar time.
	w := testWorkload(t, 5)
	static := RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, 0.1)
	target := config.Baseline
	target[config.Clock] = 2
	ens := constModel(t, target, power.EnergyEfficient)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	dyn := NewController(ens, Options{Policy: Aggressive, EpochScale: 0.1}).Run(m, w)
	if dyn.Total.EnergyJ >= static.Total.EnergyJ {
		t.Fatalf("DVFS adaptation should save energy: %v vs %v J", dyn.Total.EnergyJ, static.Total.EnergyJ)
	}
	if dyn.Total.TimeSec > 2.0*static.Total.TimeSec {
		t.Fatalf("DVFS on memory-bound workload should not badly hurt time: %v vs %v s",
			dyn.Total.TimeSec, static.Total.TimeSec)
	}
	if dyn.Total.Score(power.EnergyEfficient) <= static.Total.Score(power.EnergyEfficient) {
		t.Fatal("efficiency score should improve")
	}
}

func TestPolicyString(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Policy{Conservative, Aggressive, Hybrid} {
		if s := p.String(); seen[s] {
			t.Fatalf("duplicate %q", s)
		} else {
			seen[s] = true
		}
	}
}

func TestEpochLogPhases(t *testing.T) {
	w := testWorkload(t, 6)
	res := RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, 0.1)
	for _, ep := range res.Epochs {
		if ep.Phase == "" {
			t.Fatal("epoch missing phase label")
		}
	}
}

// Property: whatever the model predicts, the controller only ever holds
// valid configurations and never changes the compile-time L1 type.
func TestQuickControllerConfigsAlwaysValid(t *testing.T) {
	w := testWorkload(t, 7)
	f := func(raw uint) bool {
		target := config.FromIndex(int(raw % uint(config.SpaceSize())))
		target[config.L1Type] = config.CacheMode
		ens := constModel(t, target, power.EnergyEfficient)
		m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
		res := NewController(ens, Options{Policy: Aggressive, EpochScale: 0.2}).Run(m, w)
		for _, ep := range res.Epochs {
			if !ep.Config.Valid() || ep.Config[config.L1Type] != config.CacheMode {
				return false
			}
		}
		return m.Config().Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFeatures(t *testing.T) {
	cfg := config.Baseline
	c1 := sim.Counters{ClockMHz: 1000}
	c2 := sim.Counters{ClockMHz: 500}
	// H=1 equals the published layout.
	h1 := BuildHistoryFeatures(cfg, []sim.Counters{c2}, 1)
	flat := BuildFeatures(cfg, c2)
	if len(h1) != len(flat) {
		t.Fatalf("H=1 width %d vs %d", len(h1), len(flat))
	}
	for i := range h1 {
		if h1[i] != flat[i] {
			t.Fatalf("H=1 differs at %d", i)
		}
	}
	// H=3 with a 2-frame window pads by repeating the oldest frame.
	h3 := BuildHistoryFeatures(cfg, []sim.Counters{c1, c2}, 3)
	if len(h3) != HistoryFeatureCount(3) {
		t.Fatalf("H=3 width %d", len(h3))
	}
	off := len(config.RuntimeParams)
	nf := sim.NumFeatures
	clockIdx := 15
	if h3[off+clockIdx] != 1000 || h3[off+nf+clockIdx] != 1000 || h3[off+2*nf+clockIdx] != 500 {
		t.Fatalf("padding wrong: %v %v %v", h3[off+clockIdx], h3[off+nf+clockIdx], h3[off+2*nf+clockIdx])
	}
	// Over-long windows keep the newest frames.
	hOver := BuildHistoryFeatures(cfg, []sim.Counters{c1, c1, c1, c2}, 2)
	if hOver[off+nf+clockIdx] != 500 {
		t.Fatal("window truncation dropped the newest frame")
	}
	// Empty window pads with a sanitized neutral frame, never raw zeros: a
	// zero frame (0 KB caches, 0 MHz clock) is impossible telemetry and must
	// not be fed to the model as if observed. Regression for the old
	// zero-frame padding path.
	got := BuildHistoryFeatures(cfg, nil, 2)
	if len(got) != HistoryFeatureCount(2) {
		t.Fatal("empty window width wrong")
	}
	neutral, _ := SanitizeCounters(sim.Counters{})
	nFeat := neutral.Features()
	capIdx, l2CapIdx := 4, 9 // L1CapKB, L2CapKB in Features order
	if nFeat[capIdx] == 0 || nFeat[l2CapIdx] == 0 || nFeat[clockIdx] == 0 {
		t.Fatalf("sanitized neutral frame still has impossible zeros: %v", nFeat)
	}
	for frame := 0; frame < 2; frame++ {
		for i, v := range nFeat {
			if got[off+frame*nf+i] != v {
				t.Fatalf("empty-window frame %d feature %d = %v, want sanitized %v", frame, i, got[off+frame*nf+i], v)
			}
		}
	}
}

func TestHistoryControllerH1MatchesPublished(t *testing.T) {
	w := testWorkload(t, 8)
	target := config.Baseline
	target[config.Clock] = 3
	ens := constModel(t, target, power.EnergyEfficient)
	m1 := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	a := NewController(ens, Options{Policy: Aggressive, EpochScale: 0.1}).Run(m1, w)
	m2 := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	b := NewHistoryController(ens, Options{Policy: Aggressive, EpochScale: 0.1}, 1).Run(m2, w)
	if a.Total != b.Total || a.Reconfig != b.Reconfig {
		t.Fatalf("H=1 history controller differs from published: %+v vs %+v", a.Total, b.Total)
	}
}
