package core_test

// Pins the concurrency contract documented on core.Ensemble: a trained
// model is immutable and Predict is read-only, so one shared Ensemble may
// serve any number of concurrent controllers. The batch offload paths did
// this already; the job server multiplies the concurrency, so the contract
// is now load-bearing enough to deserve a -race proof of its own.

import (
	"math/rand"
	"sync"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// harvestCounters runs a small static simulation and returns its per-epoch
// telemetry, giving Predict realistic, varied inputs.
func harvestCounters(t *testing.T, sc experiments.Scale) []sim.Counters {
	t.Helper()
	entry, err := matrix.Entry("R04")
	if err != nil {
		t.Fatal(err)
	}
	am := entry.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	x := matrix.RandomVec(rand.New(rand.NewSource(sc.Seed+1)), a.Cols, 0.5)
	_, wl, err := kernels.SpMSpV(a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	res := core.RunStatic(sc.Chip, sc.BW, config.Baseline, wl, sc.Epoch)
	if len(res.Epochs) == 0 {
		t.Fatal("static run produced no epochs")
	}
	out := make([]sim.Counters, len(res.Epochs))
	for i, ep := range res.Epochs {
		out[i] = ep.Counters
	}
	return out
}

// TestEnsemblePredictConcurrent hammers one shared model from many
// goroutines and cross-checks every prediction against a serial golden
// pass: under -race this proves Predict is data-race-free, and the value
// comparison proves concurrency cannot change what the model predicts.
func TestEnsemblePredictConcurrent(t *testing.T) {
	sc := experiments.TestScale()
	model, err := experiments.Model(sc, "spmspv", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	counters := harvestCounters(t, sc)

	// Golden pass: one prediction per (config, counters) pair, serially.
	cfgs := []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg}
	type cell struct{ pred config.Config }
	golden := make([][]cell, len(cfgs))
	for i, cfg := range cfgs {
		golden[i] = make([]cell, len(counters))
		for j, c := range counters {
			golden[i][j] = cell{model.Predict(cfg, c)}
		}
	}

	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(cfgs)
				j := (g * 31) % len(counters)
				got := model.Predict(cfgs[i], counters[j])
				if got != golden[i][j].pred {
					select {
					case errs <- got.String() + " != " + golden[i][j].pred.String():
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatalf("concurrent Predict diverged from serial prediction: %s", msg)
	}
}
