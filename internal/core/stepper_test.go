package core

import (
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/sim"
)

// The golden interference-vs-fault scenario: the same cost spike is
// classified as interference when it coincides with a tenant-switch boundary
// (no streak, no fallback) and as degradation when it does not (watchdog
// trips). This is the contract the multi-tenant multiplexer relies on —
// re-predict, don't fall back.
func TestStepperInterferenceVsFault(t *testing.T) {
	w := bigWorkload(t)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.BindTrace(w.Trace)
	eps := w.Epochs(0.1)
	if len(eps) < 20 {
		t.Fatalf("workload too short: %d epochs", len(eps))
	}

	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder()
	s := NewResilientStepper(nil, DefaultResilientOptions())
	s.Obs = NewObserver(reg, tr)
	s.Obs.Tenant = "tenant-a"

	// Healthy epochs build the baseline.
	i := 0
	for ; i < 6; i++ {
		log := s.Step(m, m.RunEpoch(eps[i]))
		if log.Interference || log.Degraded {
			t.Fatalf("healthy epoch %d misclassified: %+v", i, log)
		}
	}

	// A tenant switch then a cold-cache cost spike: interference, no trip.
	s.NoteSwitch()
	m.InjectPenalty(5e6)
	log := s.Step(m, m.RunEpoch(eps[i]))
	i++
	if !log.Interference {
		t.Fatal("switch-coincident cost spike must be classified as interference")
	}
	if log.Degraded {
		t.Fatal("an interference epoch must not count as degraded")
	}
	if rep := s.Report(); rep.Fallbacks != 0 || rep.InterferenceEpochs != 1 || rep.DegradedEpochs != 0 {
		t.Fatalf("after interference: %+v", rep)
	}

	// The same spikes with no switch boundary are genuine degradation and
	// must trip the watchdog into fallback.
	for ; i < len(eps) && s.Report().Fallbacks == 0; i++ {
		m.InjectPenalty(5e6)
		l := s.Step(m, m.RunEpoch(eps[i]))
		if l.Interference {
			t.Fatalf("epoch %d: interference without a switch boundary", i)
		}
	}
	rep := s.Report()
	if rep.Fallbacks == 0 {
		t.Fatal("sustained spikes off a switch boundary must trip the watchdog")
	}
	if rep.InterferenceEpochs != 1 {
		t.Fatalf("interference count %d, want 1", rep.InterferenceEpochs)
	}
	if m.Config() != DefaultResilientOptions().Fallback {
		t.Fatalf("machine not in fallback config: %v", m.Config())
	}

	// The classification and tenant stamp must surface in the epoch trace
	// and the metric family.
	s.Flush()
	var interferenceRecs, degradedRecs int
	for _, rec := range tr.Epochs() {
		if rec.Tenant != "tenant-a" {
			t.Fatalf("epoch %d missing tenant stamp: %+v", rec.Epoch, rec)
		}
		if rec.Interference {
			interferenceRecs++
		}
		if rec.Degraded {
			degradedRecs++
		}
	}
	if interferenceRecs != 1 || degradedRecs == 0 {
		t.Fatalf("trace records: interference=%d degraded=%d", interferenceRecs, degradedRecs)
	}
	found := false
	for _, ms := range reg.Snapshot() {
		if ms.Name == "controller_interference_epochs_total" {
			found = true
			if ms.Value != 1 {
				t.Fatalf("controller_interference_epochs_total = %v, want 1", ms.Value)
			}
		}
	}
	if !found {
		t.Fatal("controller_interference_epochs_total not registered")
	}
}

// A switch boundary with no cost shift is business as usual: no
// interference classification, baseline keeps growing.
func TestStepperSwitchWithoutShiftIsClean(t *testing.T) {
	w := bigWorkload(t)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.BindTrace(w.Trace)
	eps := w.Epochs(0.1)

	s := NewResilientStepper(nil, DefaultResilientOptions())
	for i := 0; i < 10 && i < len(eps); i++ {
		if i == 5 {
			s.NoteSwitch()
		}
		log := s.Step(m, m.RunEpoch(eps[i]))
		if log.Interference || log.Degraded {
			t.Fatalf("epoch %d misclassified: %+v", i, log)
		}
	}
	if rep := s.Report(); rep.InterferenceEpochs != 0 || rep.DegradedEpochs != 0 {
		t.Fatalf("clean run report: %+v", rep)
	}
}
