package core

import (
	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/sim"
)

// The history-based extension sketched in the paper's Discussion (Section
// 7, "Bridging the Gap with Oracle"): instead of the current epoch's
// telemetry only, the model sees a window of the last H epochs, borrowing
// from branch prediction and prefetching. H = 1 reduces exactly to the
// published SparseAdapt.

// HistoryFeatureCount returns the model input width for a window of h
// epochs: the configuration feedback plus h telemetry frames.
func HistoryFeatureCount(h int) int {
	if h < 1 {
		h = 1
	}
	return ConfigFeatureCount + h*sim.NumFeatures
}

// BuildHistoryFeatures assembles the input vector from the current
// configuration and the last h telemetry frames, oldest first. Shorter
// windows (program start) are padded by repeating the oldest real frame, so
// the vector width is constant. An empty window — no telemetry observed yet
// — is padded with a sanitized neutral frame (every counter clamped into
// its physical range), never a raw zero frame: a machine reporting zero
// cache capacity and a zero clock is impossible telemetry, and a model
// trained on real frames must not be fed one as if it were observed.
func BuildHistoryFeatures(cfg config.Config, window []sim.Counters, h int) []float64 {
	if h < 1 {
		h = 1
	}
	out := make([]float64, 0, HistoryFeatureCount(h))
	for _, p := range config.RuntimeParams {
		out = append(out, float64(cfg[p]))
	}
	if len(window) == 0 {
		neutral, _ := SanitizeCounters(sim.Counters{})
		window = []sim.Counters{neutral}
	}
	if len(window) > h {
		window = window[len(window)-h:]
	}
	for i := 0; i < h-len(window); i++ {
		out = append(out, window[0].Features()...)
	}
	for _, c := range window {
		out = append(out, c.Features()...)
	}
	return out
}

// PredictX predicts from a pre-built feature vector (used by the
// history-based controller whose vectors are wider than BuildFeatures').
func (e *Ensemble) PredictX(cur config.Config, x []float64) config.Config {
	out := cur
	for _, p := range config.RuntimeParams {
		t, ok := e.Trees[p]
		if !ok {
			continue
		}
		v := t.Predict(x)
		if v >= 0 && v < config.Cardinality(p) {
			out[p] = v
		}
	}
	return out
}

// HistoryController drives the feedback loop with an H-epoch telemetry
// window. Its model must have been trained on history-augmented features
// of the same window length.
type HistoryController struct {
	Model *Ensemble
	Opts  Options
	H     int
}

// NewHistoryController builds the extended controller. h < 1 behaves like
// the published single-epoch SparseAdapt.
func NewHistoryController(model *Ensemble, opts Options, h int) *HistoryController {
	if opts.EpochScale <= 0 {
		opts.EpochScale = 1
	}
	if h < 1 {
		h = 1
	}
	return &HistoryController{Model: model, Opts: opts, H: h}
}

// Run executes the workload under history-based control.
func (c *HistoryController) Run(m *sim.Machine, w kernels.Workload) RunResult {
	m.BindTrace(w.Trace)
	inner := Controller{Model: c.Model, Opts: c.Opts}
	var res RunResult
	var window []sim.Counters
	reconfigured := false
	for _, ep := range w.Epochs(c.Opts.EpochScale) {
		r := m.RunEpoch(ep)
		res.Total.Add(r.Metrics)
		res.Epochs = append(res.Epochs, EpochLog{
			Config: m.Config(), Metrics: r.Metrics, Counters: r.Counters,
			Phase: r.Phase, Reconfigured: reconfigured,
		})
		window = append(window, r.Counters)
		if len(window) > c.H {
			window = window[1:]
		}
		x := BuildHistoryFeatures(m.Config(), window, c.H)
		pred := c.Model.PredictX(m.Config(), x)
		// Single bound trace: the algorithm axes cannot move (see RunContext).
		for _, p := range []config.Param{config.Dataflow, config.Format, config.SchedPolicy} {
			pred[p] = m.Config()[p]
		}
		next := inner.filter(m, pred, r.Metrics.TimeSec, r.DirtyL1, r.DirtyL2, m.TraceNNZ())
		reconfigured = false
		if next != m.Config() {
			if _, err := m.Reconfigure(next); err == nil {
				res.Reconfig++
				reconfigured = true
			}
		}
	}
	return res
}
