package core

import (
	"fmt"
	"math"
	"sort"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// This file is the resilience layer around the SparseAdapt feedback loop:
// the paper asserts the controller is "no worse than the best static
// config", but the published design trusts its inputs (telemetry counters)
// and outputs (predicted config levels) blindly. ResilientController makes
// that claim hold under failure: corrupt telemetry is sanitized before
// prediction, out-of-range predictions are rejected, a watchdog compares
// per-epoch cost against a trailing baseline and falls back to a known-safe
// static configuration when the model drives the machine off a cliff, knob
// writes are verified and retried, and the whole controller state can be
// checkpointed and resumed after a crash.

// FaultInjector is the hook the fault-injection harness (internal/fault)
// implements. A nil injector means a clean run; the resilience machinery is
// active either way, since real deployments fail without being asked.
type FaultInjector interface {
	// PerturbTelemetry returns the (possibly corrupted) counter frame the
	// controller observes for the epoch, plus the fault classes that fired.
	// It is called once per epoch, in order, including during checkpoint
	// replay, so stateful faults (stuck-at) stay reproducible.
	PerturbTelemetry(epoch int, c sim.Counters) (sim.Counters, []string)
	// DropTelemetry reports whether the epoch's telemetry is lost entirely.
	DropTelemetry(epoch int) bool
	// PerturbPrediction corrupts the model's predicted configuration.
	PerturbPrediction(epoch int, pred config.Config) (config.Config, bool)
	// ReconfigFault reports, for the attempt-th try at an epoch boundary,
	// whether the knob write is silently lost, and the multiplier on its
	// transition cost when it takes (1 = clean).
	ReconfigFault(epoch, attempt int) (drop bool, penaltyMult float64)
}

// counterBounds are the physically-plausible ranges of the Table 2
// telemetry, in Features order. Layer-aggregate rates are bounded by the
// bank count (generously), ratios and utilizations by 1, capacities and
// clock by the Table 1 hardware ranges.
var counterBounds = [sim.NumFeatures][2]float64{
	{0, 64}, {0, 1}, {0, 1}, {0, 16}, {4, 64}, // L1: rate, occ, miss, pref, cap
	{0, 64}, {0, 1}, {0, 1}, {0, 16}, {4, 64}, // L2
	{0, 64}, {0, 64}, // crossbar contention ratios
	{0, 4}, {0, 4}, {0, 4}, {31.25, 1000}, // IPCs, clock
	{0, 1}, {0, 1}, // memory utilization
}

// SanitizeCounters clamps or repairs a telemetry frame before it reaches
// the model: NaNs become the lower bound, infinities and out-of-range
// values clamp into the plausible range. It returns the repaired frame and
// the number of values touched. A frame produced by the machine model is
// always returned unchanged.
func SanitizeCounters(c sim.Counters) (sim.Counters, int) {
	f := c.Features()
	repairs := 0
	for i, v := range f {
		lo, hi := counterBounds[i][0], counterBounds[i][1]
		switch {
		case math.IsNaN(v):
			f[i] = lo
			repairs++
		case v < lo:
			f[i] = lo
			repairs++
		case v > hi: // +Inf clamps here
			f[i] = hi
			repairs++
		}
	}
	if repairs == 0 {
		return c, 0
	}
	return sim.CountersFromFeatures(f), repairs
}

// ValidatePrediction reports whether a predicted configuration is safe to
// apply from cur: every runtime parameter within its cardinality and the
// compile-time L1 type untouched.
func ValidatePrediction(cur, pred config.Config) bool {
	if pred[config.L1Type] != cur[config.L1Type] {
		return false
	}
	for _, p := range config.RuntimeParams {
		if pred[p] < 0 || pred[p] >= config.Cardinality(p) {
			return false
		}
	}
	return true
}

// ResilienceReport summarizes the fault handling of one run.
type ResilienceReport struct {
	// Repairs counts telemetry values the sanitizer clamped or replaced.
	Repairs int `json:"repairs"`
	// DroppedTelemetry counts epochs whose telemetry never arrived.
	DroppedTelemetry int `json:"dropped_telemetry"`
	// RejectedPredictions counts model outputs with out-of-range levels.
	RejectedPredictions int `json:"rejected_predictions"`
	// DegradedEpochs counts epochs over the watchdog's cost threshold.
	DegradedEpochs int `json:"degraded_epochs"`
	// InterferenceEpochs counts over-threshold epochs coincident with a
	// tenant-switch boundary, classified as co-tenant interference rather
	// than degradation (multi-tenant runs only; see ResilientStepper).
	InterferenceEpochs int `json:"interference_epochs,omitempty"`
	// Fallbacks counts watchdog trips into the safe static configuration.
	Fallbacks int `json:"fallbacks"`
	// FallbackEpochs counts epochs executed under the fallback config.
	FallbackEpochs int `json:"fallback_epochs"`
	// PermanentFallback reports whether the trip budget was exhausted and
	// the model was retired for the rest of the run.
	PermanentFallback bool `json:"permanent_fallback"`
	// ReconfigRetries counts extra reconfiguration attempts after a knob
	// write that did not take.
	ReconfigRetries int `json:"reconfig_retries"`
	// ReconfigFailures counts boundaries where the retry budget ran out
	// with the machine still in its old configuration.
	ReconfigFailures int `json:"reconfig_failures"`
	// Checkpoints counts controller checkpoints written.
	Checkpoints int `json:"checkpoints"`
}

// String renders the report as the CLI's resilience summary block.
func (r ResilienceReport) String() string {
	s := fmt.Sprintf(
		"repairs=%d dropped=%d rejected=%d degraded=%d fallbacks=%d fallback-epochs=%d permanent=%v retries=%d reconfig-failures=%d",
		r.Repairs, r.DroppedTelemetry, r.RejectedPredictions, r.DegradedEpochs,
		r.Fallbacks, r.FallbackEpochs, r.PermanentFallback, r.ReconfigRetries, r.ReconfigFailures)
	if r.InterferenceEpochs > 0 {
		s += fmt.Sprintf(" interference=%d", r.InterferenceEpochs)
	}
	return s
}

// ResilientOptions extend the controller options with the watchdog,
// fallback, retry and checkpoint knobs.
type ResilientOptions struct {
	Options
	// Fallback is the best-known static configuration, the safe harbor the
	// watchdog retreats to. The zero value is treated as unset and replaced
	// with config.BestAvgCache.
	Fallback config.Config
	// WatchdogWindow is how many trailing healthy epoch costs form the
	// baseline (default 8).
	WatchdogWindow int
	// DegradeFactor marks an epoch degraded when its cost exceeds
	// DegradeFactor × the baseline median (default 2).
	DegradeFactor float64
	// DegradeEpochs is how many consecutive degraded epochs trip the
	// watchdog into fallback (default 3).
	DegradeEpochs int
	// CooldownEpochs is how long a trip pins the fallback configuration
	// before the model is re-armed (default 12).
	CooldownEpochs int
	// MaxTrips is the trip budget: once exhausted the fallback becomes
	// permanent for the rest of the run (default 3).
	MaxTrips int
	// ReconfigRetries bounds extra attempts for a knob write that did not
	// take (default 2).
	ReconfigRetries int
	// CheckpointPath, when set, makes the controller write its state every
	// CheckpointEvery epochs (default 16) so a crashed run can Resume.
	CheckpointPath  string
	CheckpointEvery int
	// StopAfter halts the run after that many epochs (0 = run to
	// completion). It exists to exercise the crash/resume path
	// deterministically in tests and drills.
	StopAfter int
}

// DefaultResilientOptions returns production-shaped defaults around the
// paper's controller defaults.
func DefaultResilientOptions() ResilientOptions {
	return ResilientOptions{
		Options:         DefaultOptions(),
		Fallback:        config.BestAvgCache,
		WatchdogWindow:  8,
		DegradeFactor:   2,
		DegradeEpochs:   3,
		CooldownEpochs:  12,
		MaxTrips:        3,
		ReconfigRetries: 2,
		CheckpointEvery: 16,
	}
}

// normalize fills unset option fields with defaults.
func (o ResilientOptions) normalize() ResilientOptions {
	d := DefaultResilientOptions()
	if o.EpochScale <= 0 {
		o.EpochScale = 1
	}
	if (o.Fallback == config.Config{}) || !o.Fallback.Valid() {
		o.Fallback = d.Fallback
	}
	if o.WatchdogWindow < 1 {
		o.WatchdogWindow = d.WatchdogWindow
	}
	if o.DegradeFactor <= 1 {
		o.DegradeFactor = d.DegradeFactor
	}
	if o.DegradeEpochs < 1 {
		o.DegradeEpochs = d.DegradeEpochs
	}
	if o.CooldownEpochs < 1 {
		o.CooldownEpochs = d.CooldownEpochs
	}
	if o.MaxTrips < 1 {
		o.MaxTrips = d.MaxTrips
	}
	if o.ReconfigRetries < 0 {
		o.ReconfigRetries = d.ReconfigRetries
	}
	if o.CheckpointEvery < 1 {
		o.CheckpointEvery = d.CheckpointEvery
	}
	return o
}

// watchdogState is the degradation tracker: a trailing window of healthy
// epoch costs, the current degraded streak, and the fallback bookkeeping.
// Exported fields only — it is serialized inside checkpoints.
type watchdogState struct {
	Window    []float64 `json:"window"` // trailing healthy epoch costs
	Streak    int       `json:"streak"`
	Cooldown  int       `json:"cooldown"`
	Trips     int       `json:"trips"`
	Permanent bool      `json:"permanent"`
}

// baseline returns the median of the trailing healthy costs, or 0 when too
// few epochs have been observed to judge.
func (w *watchdogState) baseline() float64 {
	if len(w.Window) < 2 {
		return 0
	}
	s := append([]float64(nil), w.Window...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// observe classifies one epoch cost and updates the streak/window.
func (w *watchdogState) observe(cost float64, factor float64, window int) (degraded bool) {
	if cost <= 0 {
		return false
	}
	if b := w.baseline(); b > 0 && cost > factor*b {
		w.Streak++
		return true
	}
	w.Streak = 0
	w.Window = append(w.Window, cost)
	if len(w.Window) > window {
		w.Window = w.Window[len(w.Window)-window:]
	}
	return false
}

// epochCost is the watchdog's scalar: energy-delay product normalized by
// work squared, so epochs of different FP-op counts compare fairly and
// "degraded" means degraded EDP, the quantity the paper's fallback claim is
// stated in.
func epochCost(m power.Metrics) float64 {
	if m.FPOps <= 0 {
		return 0
	}
	return m.TimeSec * m.EnergyJ / (m.FPOps * m.FPOps)
}

// ResilientController drives the SparseAdapt feedback loop with the full
// resilience layer active. Inject is optional fault injection for drills
// and tests.
type ResilientController struct {
	Model  *Ensemble
	Opts   ResilientOptions
	Inject FaultInjector
	// Obs is the optional run observer (nil = observability off). Beyond
	// the plain controller's records it captures sanitizer repairs,
	// watchdog trips, fallback transitions and reconfig failures.
	Obs *Observer
}

// NewResilientController builds the controller, normalizing options.
func NewResilientController(model *Ensemble, opts ResilientOptions) *ResilientController {
	return &ResilientController{Model: model, Opts: opts.normalize()}
}

// Observe attaches an observer to the controller and returns it, for
// chaining at construction.
func (c *ResilientController) Observe(o *Observer) *ResilientController {
	c.Obs = o
	return c
}

// attemptReconfig drives one epoch-boundary reconfiguration with fault
// injection, verification and bounded retry. epoch is the epoch just
// completed (the hash key for injected faults). It returns whether the
// machine ended at target, how many extra attempts were spent, and the
// cost of the reconfiguration that took (zero when none did).
func (c *ResilientController) attemptReconfig(m *sim.Machine, epoch int, target config.Config) (ok bool, retries int, cost sim.ReconfigCost) {
	for attempt := 0; attempt <= c.Opts.ReconfigRetries; attempt++ {
		drop, mult := false, 1.0
		if c.Inject != nil {
			drop, mult = c.Inject.ReconfigFault(epoch, attempt)
		}
		if !drop {
			rc, err := m.Reconfigure(target)
			if err != nil {
				// Unreachable through the policy filter (coarse changes are
				// never predicted), but a corrupt target must not wedge us.
				return false, attempt, cost
			}
			cost = rc
			if mult > 1 {
				m.InjectPenalty(rc.Cycles * (mult - 1))
			}
		}
		// Verify the knobs actually took: a dropped write leaves the old
		// configuration in place and earns another attempt.
		if m.Config() == target {
			return true, attempt, cost
		}
	}
	return m.Config() == target, c.Opts.ReconfigRetries, cost
}

// runState is the live controller state threaded through the loop and
// captured by checkpoints.
type runState struct {
	res          RunResult
	wd           watchdogState
	reconfigured bool // next epoch entered with a config change
	inFallback   bool
}

// Run executes the workload under resilient SparseAdapt control.
func (c *ResilientController) Run(m *sim.Machine, w kernels.Workload) (RunResult, error) {
	return c.run(m, w, nil)
}

// Resume continues a run from a checkpoint written by a previous Run: the
// machine (freshly constructed at the same start configuration) is
// fast-forwarded by replaying the recorded configuration schedule — no
// model inference — and the control loop continues from the checkpointed
// epoch with identical state, so the epoch log tail matches the
// uninterrupted run exactly.
func (c *ResilientController) Resume(m *sim.Machine, w kernels.Workload, ck *Checkpoint) (RunResult, error) {
	if ck == nil {
		return RunResult{}, fmt.Errorf("core: nil checkpoint")
	}
	return c.run(m, w, ck)
}

func (c *ResilientController) run(m *sim.Machine, w kernels.Workload, ck *Checkpoint) (RunResult, error) {
	if c.Model == nil {
		return RunResult{}, fmt.Errorf("core: resilient controller has no model")
	}
	c.Opts = c.Opts.normalize()
	m.BindTrace(w.Trace)
	eps := w.Epochs(c.Opts.EpochScale)

	var st runState
	inner := Controller{Model: c.Model, Opts: c.Opts.Options}
	start := 0
	if ck != nil {
		if err := c.fastForward(m, eps, ck); err != nil {
			return RunResult{}, err
		}
		st = runState{
			res: RunResult{
				Total:      ck.Total,
				Epochs:     append([]EpochLog(nil), ck.Epochs...),
				Reconfig:   ck.Reconfig,
				Resilience: ck.Report,
			},
			wd:           ck.Watchdog,
			reconfigured: ck.Reconfigured,
			inFallback:   ck.InFallback,
		}
		start = ck.Epoch
	}

	for i := start; i < len(eps); i++ {
		r := m.RunEpoch(eps[i])
		st.res.Total.Add(r.Metrics)
		log := EpochLog{
			Config: m.Config(), Metrics: r.Metrics, Counters: r.Counters,
			Phase: r.Phase, Reconfigured: st.reconfigured, Fallback: st.inFallback,
		}
		st.reconfigured = false

		// Telemetry path: inject, maybe drop, sanitize.
		obs := r.Counters
		dropped := false
		if c.Inject != nil {
			// PerturbTelemetry always runs so stateful faults stay in step.
			obs, _ = c.Inject.PerturbTelemetry(i, r.Counters)
			dropped = c.Inject.DropTelemetry(i)
		}
		clean, repairs := SanitizeCounters(obs)
		log.Repairs = repairs
		log.TelemetryDropped = dropped
		st.res.Resilience.Repairs += repairs
		if dropped {
			st.res.Resilience.DroppedTelemetry++
		}

		// Watchdog: classify this epoch's cost against the trailing
		// baseline. Fallback epochs feed the baseline too — they run the
		// safe config, which is exactly what "healthy" means here.
		log.Degraded = st.wd.observe(epochCost(r.Metrics), c.Opts.DegradeFactor, c.Opts.WatchdogWindow)
		if log.Degraded {
			st.res.Resilience.DegradedEpochs++
		}
		if st.inFallback {
			st.res.Resilience.FallbackEpochs++
		}
		st.res.Epochs = append(st.res.Epochs, log)
		c.Obs.epoch(i, log)

		// Boundary decision for the next epoch.
		if i < len(eps)-1 {
			c.decide(m, &inner, &st, i, r, clean, dropped)
		}

		done := i + 1
		if c.Opts.CheckpointPath != "" && (done%c.Opts.CheckpointEvery == 0 || done == len(eps)) {
			if err := c.writeCheckpoint(m, &st, done); err != nil {
				return st.res, fmt.Errorf("core: checkpoint at epoch %d: %w", done, err)
			}
			st.res.Resilience.Checkpoints++
			c.Obs.event("checkpoint", map[string]string{"epoch": fmt.Sprintf("%d", done)})
		}
		if c.Opts.StopAfter > 0 && done >= c.Opts.StopAfter {
			break
		}
	}
	c.Obs.flush()
	return st.res, nil
}

// decide performs the epoch-boundary control decision after epoch i:
// watchdog trips and cooldown bookkeeping, or a validated model prediction
// filtered through the reconfiguration-cost policy, then a verified (and
// retried) reconfiguration.
func (c *ResilientController) decide(m *sim.Machine, inner *Controller, st *runState, i int, r sim.EpochResult, clean sim.Counters, dropped bool) {
	rep := &st.res.Resilience

	// Fallback regime: hold the safe config through the cooldown, then
	// re-arm the model.
	if st.inFallback {
		if !st.wd.Permanent {
			st.wd.Cooldown--
			if st.wd.Cooldown <= 0 {
				st.inFallback = false
				st.wd.Streak = 0
				c.Obs.event("fallback-exit", nil)
				return // re-armed; model resumes next boundary
			}
		}
		if m.Config() != c.Opts.Fallback {
			c.applyTarget(m, st, i, c.Opts.Fallback)
		}
		return
	}

	// Watchdog trip: K consecutive degraded epochs retire the model to the
	// fallback config, permanently once the trip budget is spent.
	if st.wd.Streak >= c.Opts.DegradeEpochs {
		st.wd.Trips++
		rep.Fallbacks++
		st.wd.Streak = 0
		st.wd.Cooldown = c.Opts.CooldownEpochs
		if st.wd.Trips >= c.Opts.MaxTrips {
			st.wd.Permanent = true
			rep.PermanentFallback = true
		}
		st.inFallback = true
		c.Obs.event("watchdog-trip", map[string]string{
			"trips":     fmt.Sprintf("%d", st.wd.Trips),
			"permanent": fmt.Sprintf("%v", st.wd.Permanent),
		})
		c.applyTarget(m, st, i, c.Opts.Fallback)
		return
	}

	// Normal model-driven path. Lost telemetry → no decision, hold config.
	if dropped {
		return
	}
	pred := c.Model.Predict(m.Config(), clean)
	if c.Inject != nil {
		pred, _ = c.Inject.PerturbPrediction(i, pred)
	}
	if !ValidatePrediction(m.Config(), pred) {
		rep.RejectedPredictions++
		// Raw level indices, not pred.String(): the rejection means the
		// levels are out of range, which String would panic on.
		c.Obs.event("rejected-prediction", map[string]string{"pred": fmt.Sprintf("%v", [config.NumParams]int(pred))})
		return
	}
	// Single bound trace: the algorithm axes cannot move (see RunContext).
	for _, p := range []config.Param{config.Dataflow, config.Format, config.SchedPolicy} {
		pred[p] = m.Config()[p]
	}
	next := inner.filter(m, pred, r.Metrics.TimeSec, r.DirtyL1, r.DirtyL2, m.TraceNNZ())
	c.Obs.decision(pred, next)
	if next != m.Config() {
		c.applyTarget(m, st, i, next)
	}
}

// applyTarget reconfigures toward target with verification and retry,
// updating the run state and report.
func (c *ResilientController) applyTarget(m *sim.Machine, st *runState, epoch int, target config.Config) {
	from := m.Config()
	ok, retries, cost := c.attemptReconfig(m, epoch, target)
	st.res.Resilience.ReconfigRetries += retries
	if ok {
		st.res.Reconfig++
		st.reconfigured = true
		c.Obs.reconfig(from, target, cost)
	} else {
		st.res.Resilience.ReconfigFailures++
		c.Obs.event("reconfig-failure", map[string]string{"target": target.String()})
	}
}
