package core

import (
	"encoding/json"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// fuzzSeedModel marshals a tiny real ensemble so the fuzzer starts from a
// structurally valid artifact.
func fuzzSeedModel(f *testing.F) []byte {
	f.Helper()
	x := [][]float64{make([]float64, NumFeatures), make([]float64, NumFeatures)}
	x[1][0] = 1
	tree, err := ml.TrainTree(x, []int{0, 1}, ml.TreeParams{MinSamplesLeaf: 1})
	if err != nil {
		f.Fatal(err)
	}
	e := &Ensemble{Mode: power.EnergyEfficient, Trees: map[config.Param]*ml.Tree{config.Clock: tree}}
	data, err := json.Marshal(e)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzLoadModelJSON hardens model deserialization: a model file is an
// untrusted artifact, and whatever UnmarshalJSON accepts must drive Predict
// without panicking and only ever emit valid configurations.
func FuzzLoadModelJSON(f *testing.F) {
	f.Add(fuzzSeedModel(f))
	f.Add([]byte(`{"mode":0,"trees":{}}`))
	f.Add([]byte(`{"mode":1,"trees":{"bogus-param":{}}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"mode":0,"trees":{"clock":{"n_features":-1,"n_classes":2,"nodes":[]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var e Ensemble
		if err := json.Unmarshal(data, &e); err != nil {
			return
		}
		for _, cur := range []config.Config{config.Baseline, config.BestAvgSPM, config.MaxCfg} {
			got := e.Predict(cur, sim.Counters{})
			if !got.Valid() {
				t.Fatalf("accepted model predicted invalid config %v from %v", got, cur)
			}
		}
	})
}

// FuzzDecodeCheckpoint hardens checkpoint recovery: a checkpoint is
// whatever survived a crash, and DecodeCheckpoint must reject anything
// inconsistent without panicking.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid, err := json.Marshal(&Checkpoint{
		Version: 1, Epoch: 1, Start: config.Baseline, Next: config.Baseline,
		Epochs: []EpochLog{{Config: config.Baseline}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"epoch":3,"epochs":[]}`))
	f.Add([]byte(`{"version":1,"epoch":1,"start":[9,9,9,9,9,9,9],"next":[0,0,0,0,0,5,1],"epochs":[{}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if ck.Epoch != len(ck.Epochs) {
			t.Fatalf("accepted checkpoint with %d epochs claiming %d completed", len(ck.Epochs), ck.Epoch)
		}
		if !ck.Start.Valid() || !ck.Next.Valid() {
			t.Fatalf("accepted checkpoint with invalid configs %v -> %v", ck.Start, ck.Next)
		}
	})
}
