package core

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/sim"
)

// ResilientStepper exposes the resilient decision core one epoch at a time,
// for schedulers that own the epoch loop themselves. The multi-tenant fabric
// multiplexer (internal/tenant) interleaves many jobs' epochs on one
// machine, so no controller can drive a whole run; instead each tenant
// carries a stepper, the multiplexer reports tenant-switch boundaries via
// NoteSwitch, and feeds every completed epoch to Step.
//
// The stepper is the interference-aware extension of ResilientController's
// watchdog: an over-threshold epoch that coincides with a tenant-switch
// boundary is classified as co-tenant interference — the cold-cache spike
// the switch itself caused — rather than degradation. An interference epoch
// does not advance the degraded streak, does not enter the healthy baseline
// window, and does not trip the fallback; the model still re-predicts from
// the epoch's (sanitized) telemetry, so control adapts to the post-switch
// state instead of retreating from it. Re-predict, don't fall back.
//
// Model may be nil: the stepper then holds the current configuration and
// runs watchdog classification only, which is how tenants without a trained
// model (or tests that must not pay for training) use it.
type ResilientStepper struct {
	Model *Ensemble
	Opts  ResilientOptions
	// Obs is the optional run observer; epoch records it emits carry the
	// interference classification and the observer's Tenant stamp.
	Obs *Observer

	wd            watchdogState
	inner         Controller
	inFallback    bool
	reconfigured  bool
	switchPending bool
	epochIdx      int
	normalized    bool
	report        ResilienceReport
}

// NewResilientStepper builds a stepper with normalized options. model may be
// nil (hold configuration, watchdog-only).
func NewResilientStepper(model *Ensemble, opts ResilientOptions) *ResilientStepper {
	s := &ResilientStepper{Model: model, Opts: opts.normalize(), normalized: true}
	s.inner = Controller{Model: model, Opts: s.Opts.Options}
	return s
}

// NoteSwitch tells the stepper the next epoch it observes is the first one
// after a tenant switch, so an over-threshold cost there is classified as
// interference instead of degradation.
func (s *ResilientStepper) NoteSwitch() {
	s.switchPending = true
}

// Report returns the resilience summary accumulated so far.
func (s *ResilientStepper) Report() ResilienceReport { return s.report }

// Epochs returns how many epochs the stepper has observed.
func (s *ResilientStepper) Epochs() int { return s.epochIdx }

// Flush closes the observer's pending epoch record; the multiplexer calls it
// when the tenant's job completes.
func (s *ResilientStepper) Flush() { s.Obs.flush() }

// Step observes one completed epoch and performs the boundary decision for
// the next: watchdog classification (degraded vs interference), fallback
// bookkeeping, and — model permitting — a validated, policy-filtered
// prediction applied to the machine. It returns the annotated epoch log;
// after Step returns, m.Config() is the configuration the tenant's next
// epoch should run under.
func (s *ResilientStepper) Step(m *sim.Machine, r sim.EpochResult) EpochLog {
	if !s.normalized {
		s.Opts = s.Opts.normalize()
		s.inner = Controller{Model: s.Model, Opts: s.Opts.Options}
		s.normalized = true
	}
	log := EpochLog{
		Config: m.Config(), Metrics: r.Metrics, Counters: r.Counters,
		Phase: r.Phase, Reconfigured: s.reconfigured, Fallback: s.inFallback,
	}
	s.reconfigured = false

	clean, repairs := SanitizeCounters(r.Counters)
	log.Repairs = repairs
	s.report.Repairs += repairs

	// Watchdog: an over-threshold epoch right after a tenant switch is the
	// co-tenant's cold-cache bill, not a fault — classify, keep the streak
	// and baseline untouched, and let the model re-predict below.
	cost := epochCost(r.Metrics)
	if b := s.wd.baseline(); s.switchPending && b > 0 && cost > s.Opts.DegradeFactor*b {
		log.Interference = true
		s.report.InterferenceEpochs++
		s.Obs.event("interference", map[string]string{"epoch": fmt.Sprintf("%d", s.epochIdx)})
	} else {
		log.Degraded = s.wd.observe(cost, s.Opts.DegradeFactor, s.Opts.WatchdogWindow)
		if log.Degraded {
			s.report.DegradedEpochs++
		}
	}
	s.switchPending = false
	if s.inFallback {
		s.report.FallbackEpochs++
	}
	s.Obs.epoch(s.epochIdx, log)
	s.epochIdx++

	s.decideNext(m, r, clean)
	return log
}

// decideNext mirrors ResilientController.decide for the steppable loop:
// fallback cooldown, watchdog trip, or model prediction.
func (s *ResilientStepper) decideNext(m *sim.Machine, r sim.EpochResult, clean sim.Counters) {
	if s.inFallback {
		if !s.wd.Permanent {
			s.wd.Cooldown--
			if s.wd.Cooldown <= 0 {
				s.inFallback = false
				s.wd.Streak = 0
				s.Obs.event("fallback-exit", nil)
				return
			}
		}
		if m.Config() != s.Opts.Fallback {
			s.apply(m, s.Opts.Fallback)
		}
		return
	}

	if s.wd.Streak >= s.Opts.DegradeEpochs {
		s.wd.Trips++
		s.report.Fallbacks++
		s.wd.Streak = 0
		s.wd.Cooldown = s.Opts.CooldownEpochs
		if s.wd.Trips >= s.Opts.MaxTrips {
			s.wd.Permanent = true
			s.report.PermanentFallback = true
		}
		s.inFallback = true
		s.Obs.event("watchdog-trip", map[string]string{
			"trips":     fmt.Sprintf("%d", s.wd.Trips),
			"permanent": fmt.Sprintf("%v", s.wd.Permanent),
		})
		s.apply(m, s.Opts.Fallback)
		return
	}

	if s.Model == nil {
		return // hold: watchdog-only mode
	}
	pred := s.Model.Predict(m.Config(), clean)
	if !ValidatePrediction(m.Config(), pred) {
		s.report.RejectedPredictions++
		s.Obs.event("rejected-prediction", map[string]string{"pred": fmt.Sprintf("%v", [config.NumParams]int(pred))})
		return
	}
	// Single bound trace per tenant: the algorithm axes cannot move.
	for _, p := range []config.Param{config.Dataflow, config.Format, config.SchedPolicy} {
		pred[p] = m.Config()[p]
	}
	next := s.inner.filter(m, pred, r.Metrics.TimeSec, r.DirtyL1, r.DirtyL2, m.TraceNNZ())
	s.Obs.decision(pred, next)
	if next != m.Config() {
		s.apply(m, next)
	}
}

// apply reconfigures toward target, updating the stepper's bookkeeping.
func (s *ResilientStepper) apply(m *sim.Machine, target config.Config) {
	from := m.Config()
	rc, err := m.Reconfigure(target)
	if err != nil {
		s.report.ReconfigFailures++
		s.Obs.event("reconfig-failure", map[string]string{"target": target.String()})
		return
	}
	s.reconfigured = true
	s.Obs.reconfig(from, target, rc)
}
