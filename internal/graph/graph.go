// Package graph implements the paper's end-to-end graph workloads —
// breadth-first search and single-source shortest path — as iterative
// semiring SpMSpV vertex programs in the GraphMat style (Section 6.1.3).
// Each frontier expansion is one traced SpMSpV pass over the adjacency
// matrix; iterations appear as explicit phases in the trace, while the
// evolving frontier sparsity produces the implicit phases the controller
// adapts to.
//
// The adjacency convention is column-as-source: entry (r, c) is an edge
// c → r with weight |value|, so expanding frontier x is y = A·x.
package graph

import (
	"fmt"
	"math"

	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// Static instruction IDs for the prefetcher tables (PC 0 is reserved).
const (
	pcColPtr = iota + 1
	pcRowIdx
	pcVal
	pcFrontier
	pcDist
	pcQueue
)

const (
	fBytes = 8
	iBytes = 4
)

// Result is the outcome of a graph traversal.
type Result struct {
	// Dist holds per-vertex distances: hop counts for BFS, weighted
	// distances for SSSP. Unreached vertices hold +Inf.
	Dist []float64
	// Traversed counts edges examined across all iterations (the TEPS
	// numerator).
	Traversed int
	// Iterations is the number of frontier expansions executed.
	Iterations int
}

// TEPS returns traversed edges per second for a measured runtime.
func (r Result) TEPS(timeSec float64) float64 {
	if timeSec <= 0 {
		return 0
	}
	return float64(r.Traversed) / timeSec
}

type traversal struct {
	g    *matrix.CSC
	tb   *sim.Builder
	nGPE int
	nLCP int

	regPtr, regIdx, regVal sim.Region
	regFrontier            sim.Region
	regDist                sim.Region
	regQueue               sim.Region
}

func newTraversal(g *matrix.CSC, nGPE, nLCP int) *traversal {
	tb := sim.NewBuilder(nGPE, nLCP)
	t := &traversal{g: g, tb: tb, nGPE: nGPE, nLCP: nLCP}
	t.regPtr = tb.AllocRegion("adj.colptr", (g.Cols+1)*iBytes, sim.RegionStream, 9)
	t.regIdx = tb.AllocRegion("adj.rowidx", maxInt(g.NNZ(), 1)*iBytes, sim.RegionStream, 9)
	t.regVal = tb.AllocRegion("adj.val", maxInt(g.NNZ(), 1)*fBytes, sim.RegionStream, 9)
	t.regFrontier = tb.AllocRegion("frontier", g.Rows*fBytes, sim.RegionReuse, 1)
	t.regDist = tb.AllocRegion("distances", g.Rows*fBytes, sim.RegionReuse, 0)
	t.regQueue = tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 2)
	return t
}

// expand performs one traced frontier expansion. relax is the semiring
// accumulate: given the tentative value arriving at vertex r via an edge of
// weight wgt from a frontier vertex with value fv, it returns the candidate
// value (BFS: fv+1 hops; SSSP: fv+wgt).
func (t *traversal) expand(iter int, frontier []int, fval []float64, dist []float64,
	relax func(fv, wgt float64) float64) (next []int, nval []float64, traversed int) {

	tb := t.tb
	tb.Phase(fmt.Sprintf("iter%d", iter))
	lcp := func(u int) int { return t.nGPE + (u % t.nLCP) }
	cand := map[int]float64{}
	for fi, v := range frontier {
		gpe := fi % t.nGPE
		tb.On(lcp(fi))
		tb.Int(2)
		tb.StoreI(pcQueue, t.regQueue.Lo+uint32((fi%256)*iBytes))

		tb.On(gpe)
		tb.LoadF(pcFrontier, t.regFrontier.Lo+uint32(v*fBytes))
		tb.LoadI(pcColPtr, t.regPtr.Lo+uint32(v*iBytes))
		tb.LoadI(pcColPtr, t.regPtr.Lo+uint32((v+1)*iBytes))
		rows, vals := t.g.Col(v)
		for ai, r := range rows {
			off := t.g.ColPtr[v] + ai
			tb.LoadI(pcRowIdx, t.regIdx.Lo+uint32(off*iBytes))
			tb.LoadF(pcVal, t.regVal.Lo+uint32(off*fBytes))
			traversed++
			c := relax(fval[fi], math.Abs(vals[ai]))
			// Read-modify-write on the distance entry (min semiring).
			tb.LoadF(pcDist, t.regDist.Lo+uint32(r*fBytes))
			tb.FP(2) // add + compare-select
			if c < dist[r] {
				tb.StoreF(pcDist, t.regDist.Lo+uint32(r*fBytes))
				dist[r] = c
				if prev, ok := cand[r]; !ok || c < prev {
					cand[r] = c
				}
			}
		}
	}
	// Deterministic next-frontier extraction in vertex order.
	for r := 0; r < t.g.Rows; r++ {
		if c, ok := cand[r]; ok {
			next = append(next, r)
			nval = append(nval, c)
			gpe := len(next) % t.nGPE
			tb.On(gpe)
			tb.Int(1)
			tb.StoreF(pcFrontier, t.regFrontier.Lo+uint32(r*fBytes))
		}
	}
	return next, nval, traversed
}

func run(g *matrix.CSC, src int, nGPE, nLCP int, name string,
	relax func(fv, wgt float64) float64) (Result, kernels.Workload, error) {
	if g.Cols == 0 {
		return Result{}, kernels.Workload{}, fmt.Errorf("graph: empty graph")
	}
	if src < 0 || src >= g.Cols {
		return Result{}, kernels.Workload{}, fmt.Errorf("graph: source %d out of range [0, %d)", src, g.Cols)
	}
	t := newTraversal(g, nGPE, nLCP)
	dist := make([]float64, g.Rows)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	frontier := []int{src}
	fval := []float64{0}
	res := Result{}
	for len(frontier) > 0 {
		var trav int
		frontier, fval, trav = t.expand(res.Iterations, frontier, fval, dist, relax)
		res.Traversed += trav
		res.Iterations++
	}
	res.Dist = dist
	return res, kernels.Workload{Name: name, Trace: t.tb.Build(), EpochFPOps: kernels.EpochSpMSpV}, nil
}

// BFS runs breadth-first search from src, returning hop counts. Each
// iteration is one boolean-semiring SpMSpV pass.
func BFS(g *matrix.CSC, src, nGPE, nLCP int) (Result, kernels.Workload, error) {
	return run(g, src, nGPE, nLCP, "bfs", func(fv, _ float64) float64 { return fv + 1 })
}

// SSSP runs single-source shortest path (Bellman-Ford-style frontier
// relaxation over the (min,+) semiring) with edge weights |A[r,c]|.
func SSSP(g *matrix.CSC, src, nGPE, nLCP int) (Result, kernels.Workload, error) {
	return run(g, src, nGPE, nLCP, "sssp", func(fv, wgt float64) float64 { return fv + wgt })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
