package graph

import (
	"fmt"
	"math"

	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// PC ids for the PageRank trace.
const (
	pcPRRank = iota + 10
	pcPRNext
	pcPRDeg
)

// PageRankResult carries the converged ranks.
type PageRankResult struct {
	Rank       []float64
	Iterations int
	// Delta is the final L1 change between iterations.
	Delta float64
}

// PageRank computes the damped PageRank of the column-as-source adjacency
// g as iterated traced SpMV passes: r' = d·A·(r/outdeg) + (1−d)/n, with
// dangling mass redistributed uniformly. Unlike BFS/SSSP the frontier is
// always dense, so the workload exhibits stable per-iteration behaviour —
// a useful contrast workload for the controller (regular phases on sparse
// data). Iteration stops when the L1 delta falls below tol or after
// maxIter rounds.
func PageRank(g *matrix.CSC, damping float64, tol float64, maxIter, nGPE, nLCP int) (PageRankResult, kernels.Workload, error) {
	n := g.Cols
	if n == 0 {
		return PageRankResult{}, kernels.Workload{}, fmt.Errorf("graph: empty graph")
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if maxIter < 1 {
		maxIter = 20
	}
	tb := sim.NewBuilder(nGPE, nLCP)
	regPtr := tb.AllocRegion("adj.colptr", (n+1)*iBytes, sim.RegionStream, 9)

	regIdx := tb.AllocRegion("adj.rowidx", maxInt(g.NNZ(), 1)*iBytes, sim.RegionStream, 9)
	regRank := tb.AllocRegion("rank", n*fBytes, sim.RegionReuse, 0)
	regNext := tb.AllocRegion("rank-next", n*fBytes, sim.RegionReuse, 1)
	regDeg := tb.AllocRegion("outdeg", n*iBytes, sim.RegionReuse, 2)
	regQueue := tb.AllocRegion("work-queue", 4096, sim.RegionBookkeep, 3)

	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.ColPtr[v+1] - g.ColPtr[v]
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	next := make([]float64, n)

	res := PageRankResult{}
	lcp := func(u int) int { return nGPE + (u % nLCP) }
	for it := 0; it < maxIter; it++ {
		tb.Phase(fmt.Sprintf("iter%d", it))
		base := (1 - damping) / float64(n)
		dangling := 0.0
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			gpe := v % nGPE
			if v%64 == 0 {
				tb.On(lcp(v))
				tb.Int(2)
				tb.StoreI(pcPRNext, regQueue.Lo+uint32((v%256)*iBytes))
			}
			tb.On(gpe)
			tb.LoadI(pcPRDeg, regPtr.Lo+uint32(v*iBytes))
			tb.LoadF(pcPRRank, regRank.Lo+uint32(v*fBytes))
			tb.LoadI(pcPRDeg, regDeg.Lo+uint32(v*iBytes))
			if deg[v] == 0 {
				dangling += rank[v]
				tb.FP(1)
				continue
			}
			share := damping * rank[v] / float64(deg[v])
			tb.FP(1) // the division
			rows, _ := g.Col(v)
			for ai, r := range rows {
				off := g.ColPtr[v] + ai
				tb.LoadI(pcPRNext, regIdx.Lo+uint32(off*iBytes))
				tb.LoadF(pcPRNext, regNext.Lo+uint32(r*fBytes))
				tb.FP(1) // accumulate
				tb.StoreF(pcPRNext, regNext.Lo+uint32(r*fBytes))
				next[r] += share
			}
		}
		// Dangling mass spreads uniformly.
		spread := damping * dangling / float64(n)
		delta := 0.0
		for i := range next {
			next[i] += spread
			delta += math.Abs(next[i] - rank[i])
			gpe := i % nGPE
			tb.On(gpe)
			tb.LoadF(pcPRNext, regNext.Lo+uint32(i*fBytes))
			tb.FP(2)
			tb.StoreF(pcPRRank, regRank.Lo+uint32(i*fBytes))
		}
		rank, next = next, rank
		res.Iterations++
		res.Delta = delta
		if delta < tol {
			break
		}
	}
	res.Rank = rank
	return res, kernels.Workload{Name: "pagerank", Trace: tb.Build(), EpochFPOps: kernels.EpochSpMSpV}, nil
}
