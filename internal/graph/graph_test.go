package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

const (
	nGPE = 16
	nLCP = 2
)

// refBFS is a queue-based reference (column-as-source adjacency).
func refBFS(g *matrix.CSC, src int) []float64 {
	dist := make([]float64, g.Rows)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		rows, _ := g.Col(v)
		for _, r := range rows {
			if math.IsInf(dist[r], 1) {
				dist[r] = dist[v] + 1
				q = append(q, r)
			}
		}
	}
	return dist
}

type pqItem struct {
	v int
	d float64
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// refDijkstra is the weighted reference.
func refDijkstra(g *matrix.CSC, src int) []float64 {
	dist := make([]float64, g.Rows)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		rows, vals := g.Col(it.v)
		for i, r := range rows {
			if nd := it.d + math.Abs(vals[i]); nd < dist[r] {
				dist[r] = nd
				heap.Push(h, pqItem{r, nd})
			}
		}
	}
	return dist
}

func distEq(a, b []float64) bool {
	for i := range a {
		ia, ib := math.IsInf(a[i], 1), math.IsInf(b[i], 1)
		if ia != ib {
			return false
		}
		if !ia && math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestBFSPathGraph(t *testing.T) {
	// 0 → 1 → 2 → 3 chain.
	coo := matrix.NewCOO(4, 4)
	coo.Add(1, 0, 1)
	coo.Add(2, 1, 1)
	coo.Add(3, 2, 1)
	g := coo.ToCSC()
	res, w, _ := BFS(g, 0, nGPE, nLCP)
	want := []float64{0, 1, 2, 3}
	if !distEq(res.Dist, want) {
		t.Fatalf("dist %v, want %v", res.Dist, want)
	}
	if res.Traversed != 3 || res.Iterations != 4 {
		t.Fatalf("traversed %d iters %d", res.Traversed, res.Iterations)
	}
	if len(w.Trace.Phases) != res.Iterations {
		t.Fatalf("phases %d vs iterations %d", len(w.Trace.Phases), res.Iterations)
	}
}

func TestBFSDisconnected(t *testing.T) {
	coo := matrix.NewCOO(5, 5)
	coo.Add(1, 0, 1)
	g := coo.ToCSC()
	res, _, _ := BFS(g, 0, nGPE, nLCP)
	if !math.IsInf(res.Dist[4], 1) {
		t.Fatal("unreachable vertex must be +Inf")
	}
	if res.Dist[1] != 1 {
		t.Fatalf("dist[1] = %v", res.Dist[1])
	}
}

func TestQuickBFSMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(56)
		g := matrix.RMATDefault(rng, n, n*3).ToCSC()
		src := rng.Intn(n)
		res, _, _ := BFS(g, src, nGPE, nLCP)
		return distEq(res.Dist, refBFS(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSSSPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(48)
		g := matrix.Uniform(rng, n, n, n*4).ToCSC()
		src := rng.Intn(n)
		res, _, _ := SSSP(g, src, nGPE, nLCP)
		return distEq(res.Dist, refDijkstra(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTEPS(t *testing.T) {
	r := Result{Traversed: 1000}
	if r.TEPS(0.5) != 2000 {
		t.Fatalf("TEPS = %v", r.TEPS(0.5))
	}
	if r.TEPS(0) != 0 {
		t.Fatal("zero time must yield zero TEPS")
	}
}

func TestGraphRunsOnMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	g := matrix.RMATDefault(rng, 128, 512).ToCSC()
	res, w, _ := BFS(g, 0, chip.NGPE(), chip.Tiles)
	if res.Traversed == 0 {
		t.Skip("degenerate graph")
	}
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.BindTrace(w.Trace)
	var total power.Metrics
	for _, ep := range w.Epochs(0.2) {
		total.Add(m.RunEpoch(ep).Metrics)
	}
	if total.TimeSec <= 0 {
		t.Fatal("no time simulated")
	}
	if res.TEPS(total.TimeSec) <= 0 {
		t.Fatal("no TEPS")
	}
}

func TestSSSPWeightsRespected(t *testing.T) {
	// Two routes 0→2: direct weight 10, via 1 weight 2+3=5.
	coo := matrix.NewCOO(3, 3)
	coo.Add(2, 0, 10)
	coo.Add(1, 0, 2)
	coo.Add(2, 1, 3)
	g := coo.ToCSC()
	res, _, _ := SSSP(g, 0, nGPE, nLCP)
	if res.Dist[2] != 5 {
		t.Fatalf("dist[2] = %v, want 5 (via vertex 1)", res.Dist[2])
	}
}
