package graph

import (
	"math"
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// refPageRank is a dense power-iteration reference.
func refPageRank(g *matrix.CSC, damping float64, iters int) []float64 {
	n := g.Cols
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.ColPtr[v+1] - g.ColPtr[v]
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - damping) / float64(n)
		dangling := 0.0
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			if deg[v] == 0 {
				dangling += rank[v]
				continue
			}
			share := damping * rank[v] / float64(deg[v])
			rows, _ := g.Col(v)
			for _, r := range rows {
				next[r] += share
			}
		}
		for i := range next {
			next[i] += damping * dangling / float64(n)
		}
		rank = next
	}
	return rank
}

func TestPageRankMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := matrix.RMATDefault(rng, 128, 800).ToCSC()
	res, w, _ := PageRank(g, 0.85, 0, 12, nGPE, nLCP)
	want := refPageRank(g, 0.85, 12)
	for i := range want {
		if math.Abs(res.Rank[i]-want[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", i, res.Rank[i], want[i])
		}
	}
	if res.Iterations != 12 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	if w.Trace.FPOps == 0 || len(w.Trace.Phases) != 12 {
		t.Fatalf("trace malformed: %v", w.Trace)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := matrix.Uniform(rng, 96, 96, 400).ToCSC()
	res, _, _ := PageRank(g, 0.85, 0, 10, nGPE, nLCP)
	sum := 0.0
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
	for i, r := range res.Rank {
		if r <= 0 {
			t.Fatalf("rank[%d] = %v not positive", i, r)
		}
	}
}

func TestPageRankConvergesEarly(t *testing.T) {
	// A symmetric ring converges almost immediately.
	n := 32
	coo := matrix.NewCOO(n, n)
	for v := 0; v < n; v++ {
		coo.Add((v+1)%n, v, 1)
		coo.Add((v-1+n)%n, v, 1)
	}
	res, _, _ := PageRank(coo.ToCSC(), 0.85, 1e-12, 50, nGPE, nLCP)
	if res.Iterations >= 50 {
		t.Fatalf("ring should converge early, took %d iterations", res.Iterations)
	}
	// Symmetry: all ranks equal.
	for i := 1; i < n; i++ {
		if math.Abs(res.Rank[i]-res.Rank[0]) > 1e-9 {
			t.Fatalf("ring ranks not uniform: %v vs %v", res.Rank[i], res.Rank[0])
		}
	}
}

func TestPageRankHubGetsTopRank(t *testing.T) {
	// Star graph: every vertex points at vertex 0.
	n := 20
	coo := matrix.NewCOO(n, n)
	for v := 1; v < n; v++ {
		coo.Add(0, v, 1)
	}
	res, _, _ := PageRank(coo.ToCSC(), 0.85, 0, 20, nGPE, nLCP)
	for i := 1; i < n; i++ {
		if res.Rank[0] <= res.Rank[i] {
			t.Fatalf("hub rank %v not above leaf %v", res.Rank[0], res.Rank[i])
		}
	}
}

func TestPageRankRunsOnMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	g := matrix.RMATDefault(rng, 128, 700).ToCSC()
	_, w, _ := PageRank(g, 0.85, 0, 4, chip.NGPE(), chip.Tiles)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.BindTrace(w.Trace)
	var total power.Metrics
	for _, ep := range w.Epochs(0.2) {
		total.Add(m.RunEpoch(ep).Metrics)
	}
	if total.TimeSec <= 0 || total.GFLOPS() <= 0 {
		t.Fatalf("degenerate metrics %+v", total)
	}
}

func TestPageRankDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := matrix.Uniform(rng, 32, 32, 64).ToCSC()
	// Out-of-range damping and maxIter fall back to sane defaults.
	res, _, _ := PageRank(g, 2.0, 0, 0, nGPE, nLCP)
	if res.Iterations == 0 || len(res.Rank) != 32 {
		t.Fatalf("defaults not applied: %+v", res.Iterations)
	}
}
