package host

import (
	"context"
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

var chip = power.Chip{Tiles: 2, GPEsPerTile: 8}

func makeOffload(t *testing.T, dim, nnz int) Offload {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	am := matrix.Uniform(rng, dim, dim, nnz)
	a := am.ToCSC()
	x := matrix.RandomVec(rng, dim, 0.5)
	y, w, _ := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
	return Offload{
		Workload: w,
		BytesIn:  InputBytes(a.NNZ(), dim) + InputBytes(x.NNZ(), dim),
		BytesOut: y.NNZ() * 12,
	}
}

func TestLinkTransfer(t *testing.T) {
	l := DefaultLink()
	tt, e := l.transfer(8_000_000)
	if tt <= 1e-3-1e-9 { // 8 MB at 8 GB/s = 1 ms + latency
		t.Fatalf("transfer time %v too small", tt)
	}
	if e <= 0 {
		t.Fatal("transfer must cost energy")
	}
	if z, ze := l.transfer(0); z != 0 || ze != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestRunStaticAddsTransfers(t *testing.T) {
	off := makeOffload(t, 128, 1200)
	r := NewRunner(chip, sim.DefaultBandwidth, 0.05)
	res, err := r.RunStatic(config.Baseline, off)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferSec <= 0 || res.TransferJ <= 0 {
		t.Fatal("transfers not accounted")
	}
	if res.Total.TimeSec <= res.Device.TimeSec {
		t.Fatal("end-to-end must exceed device time")
	}
	if res.Efficiency <= 0 || res.Efficiency >= 1 {
		t.Fatalf("efficiency %v out of range", res.Efficiency)
	}
	if res.Total.FPOps != res.Device.FPOps {
		t.Fatal("transfers must not change FP work")
	}
}

func TestSmallOffloadIsTransferDominated(t *testing.T) {
	r := NewRunner(chip, sim.DefaultBandwidth, 0.05)
	small, err := r.RunStatic(config.Baseline, makeOffload(t, 32, 64))
	if err != nil {
		t.Fatal(err)
	}
	big, err := r.RunStatic(config.Baseline, makeOffload(t, 512, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if big.Efficiency <= small.Efficiency {
		t.Fatalf("bigger offloads should amortize transfers better: %v vs %v",
			big.Efficiency, small.Efficiency)
	}
}

func TestRunErrors(t *testing.T) {
	r := NewRunner(chip, sim.DefaultBandwidth, 1)
	if _, err := r.RunStatic(config.Baseline, Offload{}); err == nil {
		t.Fatal("empty offload accepted")
	}
}

func TestBreakEven(t *testing.T) {
	r := NewRunner(chip, sim.DefaultBandwidth, 1)
	dev := power.Metrics{TimeSec: 1e-3}
	be := r.BreakEvenBytes(dev)
	// 1 ms at 8 GB/s ≈ 8 MB (minus latency).
	if be < 7_000_000 || be > 8_100_000 {
		t.Fatalf("break-even %d bytes", be)
	}
	if r.BreakEvenBytes(power.Metrics{}) != 0 {
		t.Fatal("zero-time device run has no break-even")
	}
}

func TestInputBytes(t *testing.T) {
	if got := InputBytes(100, 50); got != 100*12+51*4 {
		t.Fatalf("InputBytes = %d", got)
	}
}

func TestRunBatchStaticMatchesSerial(t *testing.T) {
	r := NewRunner(chip, sim.DefaultBandwidth, 0.05)
	offs := []Offload{
		makeOffload(t, 64, 300),
		makeOffload(t, 128, 1200),
		makeOffload(t, 96, 800),
	}
	want := make([]Result, len(offs))
	for i, off := range offs {
		res, err := r.RunStatic(config.Baseline, off)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers})
		got, err := r.RunBatchStatic(context.Background(), eng, config.Baseline, offs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: batch result %d differs from serial RunStatic", workers, i)
			}
		}
	}
}
