// Package host models the host-side runtime of Section 3.1: the paper's
// Transmuter is driven by a host CPU that selects the kernel variant,
// allocates input/output buffers in the device HBM, streams data out,
// triggers execution, services the telemetry/reconfiguration feedback loop
// and streams results back. The device-side kernel time is what the
// evaluation reports; this package adds the end-to-end offload view, which
// determines when offloading is worth it at all.
package host

import (
	"context"
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Link models the host↔device interconnect (PCIe-class by default).
type Link struct {
	// BandwidthBytesPerSec is the sustained transfer bandwidth.
	BandwidthBytesPerSec float64
	// LatencySec is the per-transfer setup latency (doorbells, descriptor
	// rings).
	LatencySec float64
	// EnergyPerByte is the transfer energy.
	EnergyPerByte float64
}

// DefaultLink returns a PCIe-3 x8-class link.
func DefaultLink() Link {
	return Link{BandwidthBytesPerSec: 8e9, LatencySec: 2e-6, EnergyPerByte: 10e-12}
}

// transfer returns the time and energy to move n bytes across the link.
func (l Link) transfer(n int) (float64, float64) {
	if n <= 0 {
		return 0, 0
	}
	return l.LatencySec + float64(n)/l.BandwidthBytesPerSec, float64(n) * l.EnergyPerByte
}

// Offload describes one kernel dispatch: the device workload plus the
// bytes that must move in each direction.
type Offload struct {
	// Workload is the kernel to execute on the device.
	Workload kernels.Workload
	// BytesIn are operands streamed host → device before launch.
	BytesIn int
	// BytesOut are results streamed device → host after completion.
	BytesOut int
}

// InputBytes computes the streamed operand footprint of sparse operands
// (index + value arrays + pointers), the quantity the host allocator
// reserves in HBM (Section 3.1).
func InputBytes(nnz, dim int) int {
	return nnz*(8+4) + (dim+1)*4
}

// Result is the end-to-end offload outcome.
type Result struct {
	// Device is the on-device execution (kernel time/energy).
	Device power.Metrics
	// TransferSec and TransferJ cover both directions.
	TransferSec float64
	// TransferJ is the energy spent moving bytes over the link.
	TransferJ float64
	// Total is device + transfers (host decision cost is inside the device
	// epochs already, Section 3.4).
	Total power.Metrics
	// Efficiency is the fraction of end-to-end time spent computing.
	Efficiency float64
}

// Runner executes offloads against a simulated device, statically or under
// SparseAdapt control.
type Runner struct {
	// Chip is the device's physical description.
	Chip power.Chip
	BW   float64 // device HBM bandwidth
	// Link models the host↔device interconnect.
	Link Link
	// EpochScale shrinks device epochs for fast tests (1 = paper scale).
	EpochScale float64
	// Obs, when non-nil, is attached to the controller of single-offload
	// adaptive and resilient runs. It is deliberately NOT used by the batch
	// paths: an Observer carries per-run cursors and must not be shared
	// between the concurrent controllers a batch spawns.
	Obs *core.Observer
}

// NewRunner builds a Runner with the paper's device and a default link.
func NewRunner(chip power.Chip, bw, epochScale float64) *Runner {
	if epochScale <= 0 {
		epochScale = 1
	}
	return &Runner{Chip: chip, BW: bw, Link: DefaultLink(), EpochScale: epochScale}
}

func (r *Runner) finish(dev power.Metrics, off Offload) Result {
	tIn, eIn := r.Link.transfer(off.BytesIn)
	tOut, eOut := r.Link.transfer(off.BytesOut)
	res := Result{
		Device:      dev,
		TransferSec: tIn + tOut,
		TransferJ:   eIn + eOut,
	}
	res.Total = dev
	res.Total.TimeSec += res.TransferSec
	res.Total.EnergyJ += res.TransferJ
	if res.Total.TimeSec > 0 {
		res.Efficiency = dev.TimeSec / res.Total.TimeSec
	}
	return res
}

// RunStatic offloads under a fixed device configuration.
func (r *Runner) RunStatic(cfg config.Config, off Offload) (Result, error) {
	res, _, err := r.RunStaticFull(context.Background(), cfg, off)
	return res, err
}

// RunStaticFull is RunStatic with cooperative cancellation (checked at
// every device epoch boundary) and the full device-side run result, so
// callers that need the per-epoch logs — the job server streams them as
// progress events — get them without a second simulation. RunStatic
// delegates here, so the two are guaranteed to agree.
func (r *Runner) RunStaticFull(ctx context.Context, cfg config.Config, off Offload) (Result, core.RunResult, error) {
	if off.Workload.Trace == nil {
		return Result{}, core.RunResult{}, fmt.Errorf("host: offload has no workload")
	}
	run, err := core.RunStaticContext(ctx, r.Chip, r.BW, cfg, off.Workload, r.EpochScale)
	if err != nil {
		return Result{}, core.RunResult{}, err
	}
	return r.finish(run.Total, off), run, nil
}

// RunAdaptive offloads under SparseAdapt control with the given model.
func (r *Runner) RunAdaptive(model *core.Ensemble, opts core.Options, start config.Config, off Offload) (Result, error) {
	res, _, err := r.RunAdaptiveFull(context.Background(), model, opts, start, off)
	return res, err
}

// RunAdaptiveFull is RunAdaptive with cooperative cancellation (checked at
// every epoch boundary) and the full device-side run result alongside the
// offload economics. RunAdaptive delegates here, so a background context
// produces bit-identical results on both paths.
func (r *Runner) RunAdaptiveFull(ctx context.Context, model *core.Ensemble, opts core.Options, start config.Config, off Offload) (Result, core.RunResult, error) {
	if off.Workload.Trace == nil {
		return Result{}, core.RunResult{}, fmt.Errorf("host: offload has no workload")
	}
	if opts.EpochScale <= 0 {
		opts.EpochScale = r.EpochScale
	}
	m := sim.New(r.Chip, r.BW, start)
	run, err := core.NewController(model, opts).Observe(r.Obs).RunContext(ctx, m, off.Workload)
	if err != nil {
		return Result{}, core.RunResult{}, err
	}
	return r.finish(run.Total, off), run, nil
}

// RunResilient offloads under resilient SparseAdapt control: the full
// fault-tolerance layer (sanitizer, watchdog fallback, verified
// reconfiguration, optional checkpointing) is active, and inject — which
// may be nil for a clean run — perturbs the feedback loop. It returns the
// full device-side run result so callers can read the resilience report
// alongside the offload economics.
func (r *Runner) RunResilient(model *core.Ensemble, opts core.ResilientOptions, start config.Config, off Offload, inject core.FaultInjector) (Result, core.RunResult, error) {
	if off.Workload.Trace == nil {
		return Result{}, core.RunResult{}, fmt.Errorf("host: offload has no workload")
	}
	if opts.EpochScale <= 0 {
		opts.EpochScale = r.EpochScale
	}
	m := sim.New(r.Chip, r.BW, start)
	rc := core.NewResilientController(model, opts).Observe(r.Obs)
	rc.Inject = inject
	run, err := rc.Run(m, off.Workload)
	if err != nil {
		return Result{}, core.RunResult{}, err
	}
	return r.finish(run.Total, off), run, nil
}

// RunBatchStatic serves a queue of offloads under a fixed device
// configuration, one engine task per offload — the sweep-traffic path: each
// dispatch simulates on its own machine, so N workers serve N clients
// concurrently and results come back in request order. A nil eng serves the
// queue serially.
func (r *Runner) RunBatchStatic(ctx context.Context, eng *engine.Engine, cfg config.Config, offs []Offload) ([]Result, error) {
	tasks := make([]engine.Task[Result], len(offs))
	for i, off := range offs {
		off := off
		tasks[i] = engine.Task[Result]{Compute: func(ctx context.Context) (Result, error) {
			return r.RunStatic(cfg, off)
		}}
	}
	return engine.Map(ctx, eng, tasks)
}

// RunBatchAdaptive is RunBatchStatic under SparseAdapt control: every
// offload runs its own controller over the shared (read-only) model.
func (r *Runner) RunBatchAdaptive(ctx context.Context, eng *engine.Engine, model *core.Ensemble, opts core.Options, start config.Config, offs []Offload) ([]Result, error) {
	tasks := make([]engine.Task[Result], len(offs))
	for i, off := range offs {
		off := off
		tasks[i] = engine.Task[Result]{Compute: func(ctx context.Context) (Result, error) {
			return r.RunAdaptive(model, opts, start, off)
		}}
	}
	return engine.Map(ctx, eng, tasks)
}

// BreakEvenBytes estimates, for a measured device run, the operand size at
// which transfer time equals compute time — the classic offload
// amortization threshold the host's dispatch logic weighs.
func (r *Runner) BreakEvenBytes(dev power.Metrics) int {
	if r.Link.BandwidthBytesPerSec <= 0 {
		return 0
	}
	t := dev.TimeSec - 2*r.Link.LatencySec
	if t <= 0 {
		return 0
	}
	return int(t * r.Link.BandwidthBytesPerSec)
}
