// Package power is the energy estimator for the Transmuter machine model,
// substituting for the paper's CACTI + RTL-synthesis power model (Section
// 5.2). It provides per-event energies with CACTI-like capacity scaling,
// leakage power, the paper's DVFS voltage/frequency relation (Section
// 3.2.1), and the two optimization-mode metrics (GFLOPS/W and GFLOPS³/W).
package power

import (
	"math"

	"sparseadapt/internal/config"
)

// DVFS electrical constants. The nominal operating point (VDD at fNom)
// follows the paper's model: f ∝ (VDD−Vt)²/VDD with the minimum voltage
// clamped at 1.3·Vt for correct functionality.
const (
	VDD     = 0.8  // nominal supply, volts
	Vt      = 0.25 // threshold voltage, volts
	FNomMHz = 1000 // nominal frequency at VDD
)

// Voltage returns the supply voltage required to run at fMHz, from the
// paper's relation f/ftarget = [(VDD−Vt)²/VDD] / [(Vt−Vtarget)²/Vtarget],
// solved in closed form and clamped at 1.3·Vt.
func Voltage(fMHz float64) float64 {
	if fMHz >= FNomMHz {
		return VDD
	}
	k := (fMHz / FNomMHz) * (VDD - Vt) * (VDD - Vt) / VDD
	// (V−Vt)² = k·V  →  V² − (2Vt+k)·V + Vt² = 0, larger root.
	b := 2*Vt + k
	disc := b*b - 4*Vt*Vt
	if disc < 0 {
		disc = 0
	}
	v := (b + math.Sqrt(disc)) / 2
	if min := 1.3 * Vt; v < min {
		v = min
	}
	return v
}

// Scale returns the factor by which total power is reduced at fMHz:
// (Vtarget/VDD)², per Section 3.2.1.
func Scale(fMHz float64) float64 {
	v := Voltage(fMHz) / VDD
	return v * v
}

// Per-event dynamic energies (joules), 14 nm-class constants. Cache access
// energy grows roughly with the square root of capacity (CACTI trend);
// scratchpad accesses skip the tag array (Section 3.2.4).
const (
	eGPEInstr  = 6e-12
	eLCPInstr  = 8e-12
	eXbar      = 1.0e-12
	eXbarCont  = 0.4e-12
	eDRAMBytRd = 25e-12
	eDRAMBytWr = 28e-12
	spmFactor  = 0.6
	l2Factor   = 1.5
)

// CacheAccessJ returns the per-access energy of a cache bank of the given
// per-bank capacity in kB.
func CacheAccessJ(capKB int) float64 {
	return (0.5 + 0.45*math.Sqrt(float64(capKB))) * 1e-12
}

// SPMAccessJ returns the per-access energy of a scratchpad bank.
func SPMAccessJ(capKB int) float64 { return spmFactor * CacheAccessJ(capKB) }

// Leakage powers (watts).
const (
	pLeakGPE      = 0.4e-3
	pLeakLCP      = 0.5e-3
	pLeakCachePer = 0.05e-3 // per kB
)

// Chip describes the physical replication of the evaluated system: the 2×8
// Transmuter of Section 5.2 has 2 tiles × 8 GPEs, 8 L1 banks per tile and
// one L2 bank per tile.
type Chip struct {
	Tiles       int
	GPEsPerTile int
}

// NGPE returns the total GPE count.
func (c Chip) NGPE() int { return c.Tiles * c.GPEsPerTile }

// L1Banks returns the total L1 bank count (one per GPE).
func (c Chip) L1Banks() int { return c.Tiles * c.GPEsPerTile }

// L2Banks returns the total L2 bank count (one per tile).
func (c Chip) L2Banks() int { return c.Tiles }

// LeakageW returns the chip leakage power at nominal voltage for the given
// configuration (capacity-dependent: unused sub-banks are power-gated).
func (c Chip) LeakageW(cfg config.Config) float64 {
	l1kB := float64(c.L1Banks() * cfg.L1CapKB())
	l2kB := float64(c.L2Banks() * cfg.L2CapKB())
	leakL1 := pLeakCachePer * l1kB
	if cfg.L1IsSPM() {
		leakL1 *= spmFactor
	}
	return float64(c.NGPE())*pLeakGPE + float64(c.Tiles)*pLeakLCP +
		leakL1 + pLeakCachePer*l2kB
}

// Counts aggregates the energy-relevant event totals of one epoch (or of a
// reconfiguration action), produced by the machine replay.
type Counts struct {
	GPEInstrs      int
	LCPInstrs      int
	L1Accesses     int // demand + prefetch fills + flush writebacks
	SPMAccesses    int
	L2Accesses     int
	XbarTransfers  int
	XbarConts      int
	DRAMReadBytes  int
	DRAMWriteBytes int
}

// Add accumulates other into c.
func (c *Counts) Add(o Counts) {
	c.GPEInstrs += o.GPEInstrs
	c.LCPInstrs += o.LCPInstrs
	c.L1Accesses += o.L1Accesses
	c.SPMAccesses += o.SPMAccesses
	c.L2Accesses += o.L2Accesses
	c.XbarTransfers += o.XbarTransfers
	c.XbarConts += o.XbarConts
	c.DRAMReadBytes += o.DRAMReadBytes
	c.DRAMWriteBytes += o.DRAMWriteBytes
}

// Energy returns the total energy in joules of executing the counted events
// over timeSec under cfg, including leakage, with the whole budget scaled
// by the DVFS factor (V/VDD)² as in Section 3.2.1.
func Energy(chip Chip, cfg config.Config, cnt Counts, timeSec float64) float64 {
	dyn := float64(cnt.GPEInstrs)*eGPEInstr +
		float64(cnt.LCPInstrs)*eLCPInstr +
		float64(cnt.L1Accesses)*CacheAccessJ(cfg.L1CapKB()) +
		float64(cnt.SPMAccesses)*SPMAccessJ(cfg.L1CapKB()) +
		float64(cnt.L2Accesses)*l2Factor*CacheAccessJ(cfg.L2CapKB()) +
		float64(cnt.XbarTransfers)*eXbar +
		float64(cnt.XbarConts)*eXbarCont
	dram := float64(cnt.DRAMReadBytes)*eDRAMBytRd + float64(cnt.DRAMWriteBytes)*eDRAMBytWr
	leak := chip.LeakageW(cfg) * timeSec
	// DRAM energy is off-chip and does not scale with the on-chip rail.
	return (dyn+leak)*Scale(cfg.ClockMHz()) + dram
}

// Mode selects the optimization objective (Section 1): Energy-Efficient
// maximizes GFLOPS/W; Power-Performance maximizes GFLOPS³/W.
type Mode int

const (
	// EnergyEfficient optimizes GFLOPS/W (edge deployments).
	EnergyEfficient Mode = iota
	// PowerPerformance optimizes GFLOPS³/W (cloud deployments).
	PowerPerformance
)

// String names the mode.
func (m Mode) String() string {
	if m == EnergyEfficient {
		return "energy-efficient"
	}
	return "power-performance"
}

// Metrics is the (time, energy, work) triple every comparison in the paper
// is computed from.
type Metrics struct {
	TimeSec float64
	EnergyJ float64
	FPOps   float64
}

// Add accumulates o into m (sequential composition of program segments).
func (m *Metrics) Add(o Metrics) {
	m.TimeSec += o.TimeSec
	m.EnergyJ += o.EnergyJ
	m.FPOps += o.FPOps
}

// GFLOPS returns the achieved floating-point throughput.
func (m Metrics) GFLOPS() float64 {
	if m.TimeSec <= 0 {
		return 0
	}
	return m.FPOps / m.TimeSec / 1e9
}

// Watts returns the average power.
func (m Metrics) Watts() float64 {
	if m.TimeSec <= 0 {
		return 0
	}
	return m.EnergyJ / m.TimeSec
}

// GFLOPSPerW returns the energy efficiency.
func (m Metrics) GFLOPSPerW() float64 {
	if m.EnergyJ <= 0 {
		return 0
	}
	return m.FPOps / m.EnergyJ / 1e9
}

// Score returns the mode's objective value: GFLOPS/W for Energy-Efficient,
// GFLOPS³/W for Power-Performance. Higher is better.
func (m Metrics) Score(mode Mode) float64 {
	if mode == EnergyEfficient {
		return m.GFLOPSPerW()
	}
	g := m.GFLOPS()
	w := m.Watts()
	if w <= 0 {
		return 0
	}
	return g * g * g / w
}
