package power

import (
	"math"
	"testing"
	"testing/quick"

	"sparseadapt/internal/config"
)

func TestVoltageNominal(t *testing.T) {
	if v := Voltage(FNomMHz); math.Abs(v-VDD) > 1e-9 {
		t.Fatalf("Voltage(nominal) = %v, want %v", v, VDD)
	}
	if v := Voltage(2 * FNomMHz); v != VDD {
		t.Fatalf("above-nominal clamped to VDD, got %v", v)
	}
}

func TestVoltageMonotonicAndClamped(t *testing.T) {
	prev := 0.0
	for _, f := range []float64{31.25, 62.5, 125, 250, 500, 1000} {
		v := Voltage(f)
		if v < prev {
			t.Fatalf("Voltage not monotonic at %v MHz: %v < %v", f, v, prev)
		}
		if v < 1.3*Vt-1e-12 {
			t.Fatalf("Voltage(%v) = %v below functional floor %v", f, v, 1.3*Vt)
		}
		prev = v
	}
}

func TestVoltageSatisfiesRelation(t *testing.T) {
	// Where unclamped, V must satisfy f/fnom = [(V−Vt)²/V] / [(VDD−Vt)²/VDD].
	for _, f := range []float64{250, 500, 750, 1000} {
		v := Voltage(f)
		lhs := f / FNomMHz
		rhs := ((v - Vt) * (v - Vt) / v) / ((VDD - Vt) * (VDD - Vt) / VDD)
		if math.Abs(lhs-rhs) > 1e-6 {
			t.Fatalf("relation violated at %v MHz: %v vs %v", f, lhs, rhs)
		}
	}
}

func TestScaleRange(t *testing.T) {
	f := func(raw uint16) bool {
		fMHz := 10 + float64(raw%2000)
		s := Scale(fMHz)
		return s > 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Scale(31.25) >= Scale(1000) {
		t.Fatal("lower clock should scale power down")
	}
}

func TestCacheAccessEnergyGrowsWithCapacity(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{4, 8, 16, 32, 64} {
		e := CacheAccessJ(kb)
		if e <= prev {
			t.Fatalf("access energy not increasing at %d kB", kb)
		}
		prev = e
	}
	if SPMAccessJ(16) >= CacheAccessJ(16) {
		t.Fatal("SPM access must be cheaper than cache access")
	}
}

func TestChipLeakage(t *testing.T) {
	chip := Chip{Tiles: 2, GPEsPerTile: 8}
	if chip.NGPE() != 16 || chip.L1Banks() != 16 || chip.L2Banks() != 2 {
		t.Fatalf("chip arithmetic wrong: %+v", chip)
	}
	small := chip.LeakageW(config.Baseline)
	big := chip.LeakageW(config.MaxCfg)
	if big <= small {
		t.Fatal("larger caches must leak more")
	}
	spmCfg := config.BestAvgSPM
	cacheCfg := spmCfg
	cacheCfg[config.L1Type] = config.CacheMode
	if chip.LeakageW(spmCfg) >= chip.LeakageW(cacheCfg) {
		t.Fatal("SPM mode should leak less than cache mode at same capacity")
	}
}

func TestEnergyComposition(t *testing.T) {
	chip := Chip{Tiles: 2, GPEsPerTile: 8}
	cnt := Counts{GPEInstrs: 1000, L1Accesses: 400, L2Accesses: 50, DRAMReadBytes: 640}
	e1 := Energy(chip, config.Baseline, cnt, 1e-6)
	if e1 <= 0 {
		t.Fatal("energy must be positive")
	}
	cnt2 := cnt
	cnt2.GPEInstrs *= 2
	if Energy(chip, config.Baseline, cnt2, 1e-6) <= e1 {
		t.Fatal("more work must cost more energy")
	}
	// Same event counts at a lower clock (longer time) but scaled voltage:
	// dynamic part must shrink by the DVFS factor.
	slow := config.Baseline
	slow[config.Clock] = 0 // 31.25 MHz
	eSlow := Energy(chip, slow, cnt, 1e-6)
	if eSlow >= e1 {
		t.Fatalf("DVFS scaling should cut energy at equal time: %v vs %v", eSlow, e1)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{GPEInstrs: 1, LCPInstrs: 2, L1Accesses: 3, SPMAccesses: 4,
		L2Accesses: 5, XbarTransfers: 6, XbarConts: 7, DRAMReadBytes: 8, DRAMWriteBytes: 9}
	b := a
	a.Add(b)
	if a.GPEInstrs != 2 || a.DRAMWriteBytes != 18 || a.XbarConts != 14 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TimeSec: 2, EnergyJ: 4, FPOps: 8e9}
	if g := m.GFLOPS(); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GFLOPS = %v", g)
	}
	if w := m.Watts(); math.Abs(w-2) > 1e-9 {
		t.Fatalf("Watts = %v", w)
	}
	if e := m.GFLOPSPerW(); math.Abs(e-2) > 1e-9 {
		t.Fatalf("GFLOPS/W = %v", e)
	}
	if s := m.Score(EnergyEfficient); math.Abs(s-2) > 1e-9 {
		t.Fatalf("EE score = %v", s)
	}
	if s := m.Score(PowerPerformance); math.Abs(s-32) > 1e-9 {
		t.Fatalf("PP score = %v, want 4³/2", s)
	}
	var zero Metrics
	if zero.GFLOPS() != 0 || zero.Score(EnergyEfficient) != 0 || zero.Score(PowerPerformance) != 0 {
		t.Fatal("zero metrics must score zero")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{TimeSec: 1, EnergyJ: 2, FPOps: 3}
	a.Add(Metrics{TimeSec: 4, EnergyJ: 5, FPOps: 6})
	if a.TimeSec != 5 || a.EnergyJ != 7 || a.FPOps != 9 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestModeString(t *testing.T) {
	if EnergyEfficient.String() == PowerPerformance.String() {
		t.Fatal("mode names must differ")
	}
}

// Property: power-performance mode rewards performance more steeply than
// efficiency mode — doubling speed at equal energy must raise the PP score
// by more than the EE score ratio.
func TestQuickPowerPerfPrefersSpeed(t *testing.T) {
	f := func(raw uint8) bool {
		tt := 0.5 + float64(raw)/64
		base := Metrics{TimeSec: tt, EnergyJ: 1, FPOps: 1e9}
		fast := Metrics{TimeSec: tt / 2, EnergyJ: 1, FPOps: 1e9}
		eeRatio := fast.Score(EnergyEfficient) / base.Score(EnergyEfficient)
		ppRatio := fast.Score(PowerPerformance) / base.Score(PowerPerformance)
		return ppRatio > eeRatio
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBreakdownSumsToEnergy(t *testing.T) {
	chip := Chip{Tiles: 2, GPEsPerTile: 8}
	cnt := Counts{GPEInstrs: 5000, LCPInstrs: 100, L1Accesses: 2000, SPMAccesses: 10,
		L2Accesses: 300, XbarTransfers: 2300, XbarConts: 40,
		DRAMReadBytes: 6400, DRAMWriteBytes: 1280}
	for _, cfg := range []config.Config{config.Baseline, config.MaxCfg, config.BestAvgSPM} {
		b := EnergyBreakdown(chip, cfg, cnt, 1e-5)
		want := Energy(chip, cfg, cnt, 1e-5)
		if d := b.TotalJ() - want; d > want*1e-9 || d < -want*1e-9 {
			t.Fatalf("%v: breakdown %v != Energy %v", cfg, b.TotalJ(), want)
		}
		if b.String() == "breakdown{empty}" {
			t.Fatal("non-empty breakdown rendered as empty")
		}
	}
	if (Breakdown{}).String() != "breakdown{empty}" {
		t.Fatal("empty breakdown should say so")
	}
}

func TestBreakdownLeakageDominatesIdleMaxCfg(t *testing.T) {
	chip := Chip{Tiles: 2, GPEsPerTile: 8}
	// Nearly idle epoch at Max Cfg: leakage must dominate.
	cnt := Counts{GPEInstrs: 10}
	b := EnergyBreakdown(chip, config.MaxCfg, cnt, 1e-3)
	if b.LeakageJ < 0.9*b.TotalJ() {
		t.Fatalf("idle Max Cfg should be leakage-dominated: %v", b)
	}
}
