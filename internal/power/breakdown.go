package power

import (
	"fmt"
	"strings"

	"sparseadapt/internal/config"
)

// Breakdown decomposes an epoch's energy by component, all in joules and
// already DVFS-scaled, so the parts sum to Energy(...) for the same
// inputs. The paper's analysis of configuration choices (Section 6.1.5) is
// about exactly these trade-offs: leakage vs cache capacity, DRAM traffic
// vs prefetching, core energy vs clock.
type Breakdown struct {
	CoresJ   float64 // GPE + LCP instruction energy
	L1J      float64 // L1 cache / scratchpad access energy
	L2J      float64
	XbarJ    float64 // crossbar transfers + contention
	DRAMJ    float64 // off-chip traffic (not rail-scaled)
	LeakageJ float64
}

// TotalJ sums the components.
func (b Breakdown) TotalJ() float64 {
	return b.CoresJ + b.L1J + b.L2J + b.XbarJ + b.DRAMJ + b.LeakageJ
}

// String renders the breakdown with percentages.
func (b Breakdown) String() string {
	tot := b.TotalJ()
	if tot <= 0 {
		return "breakdown{empty}"
	}
	var sb strings.Builder
	sb.WriteString("breakdown{")
	for i, c := range []struct {
		name string
		v    float64
	}{
		{"cores", b.CoresJ}, {"l1", b.L1J}, {"l2", b.L2J},
		{"xbar", b.XbarJ}, {"dram", b.DRAMJ}, {"leak", b.LeakageJ},
	} {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.1f%%", c.name, 100*c.v/tot)
	}
	sb.WriteString("}")
	return sb.String()
}

// EnergyBreakdown computes the per-component decomposition of Energy for
// the same chip, configuration, counts and duration.
func EnergyBreakdown(chip Chip, cfg config.Config, cnt Counts, timeSec float64) Breakdown {
	scale := Scale(cfg.ClockMHz())
	b := Breakdown{
		CoresJ: (float64(cnt.GPEInstrs)*eGPEInstr + float64(cnt.LCPInstrs)*eLCPInstr) * scale,
		L1J: (float64(cnt.L1Accesses)*CacheAccessJ(cfg.L1CapKB()) +
			float64(cnt.SPMAccesses)*SPMAccessJ(cfg.L1CapKB())) * scale,
		L2J:   float64(cnt.L2Accesses) * l2Factor * CacheAccessJ(cfg.L2CapKB()) * scale,
		XbarJ: (float64(cnt.XbarTransfers)*eXbar + float64(cnt.XbarConts)*eXbarCont) * scale,
		DRAMJ: float64(cnt.DRAMReadBytes)*eDRAMBytRd + float64(cnt.DRAMWriteBytes)*eDRAMBytWr,
	}
	b.LeakageJ = chip.LeakageW(cfg) * timeSec * scale
	return b
}
