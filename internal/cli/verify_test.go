package cli

import (
	"strings"
	"testing"
)

func TestVerifyScenario(t *testing.T) {
	out, code := runCLI(t, "verify", "-scenario", "spmspv-uniform-baseline", "-invariants=false", "-differential=false")
	if code != 0 {
		t.Fatalf("code %d out %q", code, out)
	}
	if !strings.Contains(out, "ok   golden spmspv-uniform-baseline") || !strings.Contains(out, "all checks passed") {
		t.Fatalf("unexpected output %q", out)
	}
}

func TestVerifyOneInvariant(t *testing.T) {
	out, code := runCLI(t, "verify", "-corpus=false", "-differential=false",
		"-invariant", "config-index-bijection", "-cases", "25")
	if code != 0 {
		t.Fatalf("code %d out %q", code, out)
	}
	if !strings.Contains(out, "config-index-bijection") || !strings.Contains(out, "25 cases") {
		t.Fatalf("unexpected output %q", out)
	}
}

func TestVerifyUnknownSelectors(t *testing.T) {
	out, code := runCLI(t, "verify", "-scenario", "nope")
	if code != 1 || !strings.Contains(out, "unknown scenario") {
		t.Fatalf("code %d out %q", code, out)
	}
	out, code = runCLI(t, "verify", "-corpus=false", "-invariant", "nope")
	if code != 1 || !strings.Contains(out, "unknown invariant") {
		t.Fatalf("code %d out %q", code, out)
	}
}
