package cli

import (
	"flag"
	"fmt"
	"io"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/flagcheck"
)

// engineMemEntries bounds the in-memory cache tier for CLI-constructed
// engines; one entry is one oracle row or trainer sweep point, so this is
// generous for every built-in scale.
const engineMemEntries = 4096

// engineFlags bundles the execution-engine CLI surface shared by the
// simulation-heavy subcommands: -workers bounds parallelism, -cache adds a
// persistent on-disk result cache, -progress reports liveness and the
// end-of-run engine summary.
type engineFlags struct {
	workers  *int
	cacheDir *string
	progress *bool
}

// addEngineFlags registers -workers/-cache/-progress on fs.
func addEngineFlags(fs *flag.FlagSet) *engineFlags {
	return &engineFlags{
		workers:  fs.Int("workers", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)"),
		cacheDir: fs.String("cache", "", "directory for the on-disk simulation result cache (empty = in-memory only)"),
		progress: fs.Bool("progress", false, "print engine progress lines and the end-of-run summary"),
	}
}

// build constructs the engine. Progress lines go to w (the command's
// output stream) so they are testable in-process like everything else.
// When of carries active observability sinks (non-nil of with -metrics or
// -trace set), the engine's engine_* metric family and per-task spans feed
// them.
func (ef *engineFlags) build(w io.Writer, of *obsFlags) (*engine.Engine, error) {
	var check flagcheck.Check
	check.NonNegative("workers", *ef.workers)
	if err := check.Err(); err != nil {
		return nil, err
	}
	cache, err := engine.NewCache(engineMemEntries, *ef.cacheDir)
	if err != nil {
		return nil, err
	}
	opts := engine.Options{Workers: *ef.workers, Cache: cache}
	if *ef.progress {
		opts.Progress = w
	}
	if of != nil {
		opts.Metrics = of.reg
		opts.Trace = of.trace
	}
	return engine.New(opts), nil
}

// report prints the engine summary when -progress is set.
func (ef *engineFlags) report(w io.Writer, eng *engine.Engine) {
	if eng != nil && *ef.progress {
		fmt.Fprint(w, eng.Stats.Report())
	}
}
