package cli

import (
	"flag"
	"fmt"
	"io"

	"sparseadapt/internal/core"
	"sparseadapt/internal/obs"
)

// obsFlags bundles the observability CLI surface shared by the simulation
// subcommands: -metrics exports the run's metric registry, -trace the
// epoch/task trace (Perfetto-loadable), -pprof serves net/http/pprof for
// the duration of the run, -manifest records a reproducibility manifest.
// All four default to off, and the sinks they feed are only allocated when
// requested, so an unobserved run pays nothing but nil checks.
type obsFlags struct {
	metricsPath   *string
	tracePath     *string
	traceCounters *bool
	pprofAddr     *string
	manifestPath  *string

	reg      *obs.Registry
	trace    *obs.TraceRecorder
	manifest *obs.Manifest
	pprof    *obs.PprofServer
	finished bool
}

// addObsFlags registers -metrics/-trace/-trace-counters/-pprof/-manifest
// on fs.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		metricsPath:   fs.String("metrics", "", "write run metrics to this file (.json = JSON snapshot, else Prometheus text)"),
		tracePath:     fs.String("trace", "", "write the run trace to this file (.jsonl = JSONL, else Chrome trace_event JSON for Perfetto)"),
		traceCounters: fs.Bool("trace-counters", false, "include the full Table 2 telemetry vector in every trace epoch record"),
		pprofAddr:     fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the command runs"),
		manifestPath:  fs.String("manifest", "", "write a reproducibility manifest (JSON) for this run"),
	}
}

// start activates the requested sinks. Call it after flag parsing and
// before the run; tool and args name the invocation for the manifest, and
// fs contributes every explicitly set flag value as a manifest annotation.
func (of *obsFlags) start(tool string, fs *flag.FlagSet, args []string, w io.Writer) error {
	if *of.metricsPath != "" {
		of.reg = obs.NewRegistry()
	}
	if *of.tracePath != "" {
		of.trace = obs.NewTraceRecorder()
	}
	if *of.manifestPath != "" {
		of.manifest = obs.NewManifest(tool, args)
		fs.Visit(func(f *flag.Flag) { of.manifest.Set("flag."+f.Name, f.Value.String()) })
	}
	if *of.pprofAddr != "" {
		srv, err := obs.ServePprof(*of.pprofAddr)
		if err != nil {
			return err
		}
		of.pprof = srv
		fmt.Fprintf(w, "pprof: serving on http://%s/debug/pprof/\n", srv.Addr())
	}
	return nil
}

// annotate stamps the run's determinism inputs into the manifest (no-op
// when -manifest is off).
func (of *obsFlags) annotate(seed int64, scale string) {
	if of.manifest == nil {
		return
	}
	of.manifest.Seed = seed
	of.manifest.Scale = scale
}

// observer builds the controller-side observer over the configured sinks,
// or nil when neither -metrics nor -trace is set (observability fully off).
func (of *obsFlags) observer() *core.Observer {
	if of.reg == nil && of.trace == nil {
		return nil
	}
	o := core.NewObserver(of.reg, of.trace)
	o.TraceCounters = *of.traceCounters
	return o
}

// finish closes the pprof server and writes every configured output file.
// It is idempotent: the subcommands call it on their success path AND from
// a defer, so an interrupted run (SIGINT/SIGTERM canceling the context)
// still flushes whatever metrics and trace data it gathered before exit.
func (of *obsFlags) finish(w io.Writer) error {
	if of.finished {
		return nil
	}
	of.finished = true
	of.pprof.Close()
	if of.reg != nil {
		if err := of.reg.WriteFile(*of.metricsPath); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", *of.metricsPath)
	}
	if of.trace != nil {
		if err := of.trace.WriteFile(*of.tracePath); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", *of.tracePath)
	}
	if of.manifest != nil {
		if err := of.manifest.WriteFile(*of.manifestPath); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", *of.manifestPath)
	}
	return nil
}
