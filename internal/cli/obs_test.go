package cli

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sparseadapt/internal/obs"
)

// TestRunWithObservability is the acceptance path of the observability
// layer: `run -trace -metrics -manifest` must produce a Chrome trace with
// at least one event per executed epoch, a non-empty metrics export, and a
// manifest that round-trips.
func TestRunWithObservability(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	manifestPath := filepath.Join(dir, "manifest.json")

	out, code := runCLI(t, "run", "-scale", "test",
		"-trace", tracePath, "-metrics", metricsPath, "-manifest", manifestPath)
	if code != 0 {
		t.Fatalf("run failed: %s", out)
	}

	// The run report names the epoch count ("... (51 epochs, ..."); the
	// trace must cover each one.
	epochs := 0
	for _, f := range strings.Fields(out) {
		if n, err := strconv.Atoi(strings.TrimPrefix(f, "(")); err == nil && strings.HasPrefix(f, "(") {
			epochs = n
			break
		}
	}
	if epochs <= 0 {
		t.Fatalf("could not parse epoch count from output:\n%s", out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	epochSpans := 0
	for _, e := range trace.TraceEvents {
		if e.Ph == "X" && e.Cat == "epoch" {
			epochSpans++
		}
	}
	if epochSpans < epochs {
		t.Fatalf("trace has %d epoch spans for %d epochs", epochSpans, epochs)
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim_epochs_total", "controller_epochs_total", "engine_tasks_submitted_total"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics export missing %s", want)
		}
	}

	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "sparseadapt run" || m.GoVersion == "" {
		t.Fatalf("manifest not stamped: %+v", m)
	}
}

// TestRunWithPprof verifies -pprof serves the profile index for the run's
// duration (the server is torn down by finish, so probe via a second
// server on an ephemeral port here).
func TestRunWithPprof(t *testing.T) {
	srv, err := obs.ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index returned %d", resp.StatusCode)
	}
}
