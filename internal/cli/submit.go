package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sparseadapt/internal/flagcheck"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// cmdSubmit is the client side of the simulation service: it submits one
// job to a running sparseadaptd, streams the job's event feed (state
// transitions and per-epoch progress) and prints the final result — the
// network-transparent counterpart of `sparseadapt run`.
func cmdSubmit(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8080", "sparseadaptd base URL")
	mode := fs.String("mode", "", "run mode: static|adaptive|resilient|batch (default adaptive)")
	kernel := fs.String("kernel", "", "workload: spmspm|spmspv|bfs|sssp (default spmspv)")
	matID := fs.String("matrix", "", "dataset matrix ID (default R04; see `sparseadapt datasets`)")
	mmFile := fs.String("matrix-file", "", "MatrixMarket file to upload instead of -matrix")
	scaleName := fs.String("scale", "", "simulation scale: test|small|paper (default test)")
	seed := fs.Int64("seed", 0, "seed override (0 = scale default)")
	opt := fs.String("opt", "", "optimization mode: ee|pp (default ee)")
	policy := fs.String("policy", "", "policy override: conservative|aggressive|hybrid")
	tolerance := fs.Float64("tolerance", 0, "hybrid tolerance override")
	cfgName := fs.String("config", "", "static/start configuration: baseline|best-avg|max")
	faults := fs.String("faults", "", "fault-injection spec for resilient jobs")
	count := fs.Int("count", 0, "offload copies for batch jobs")
	counters := fs.Bool("counters", false, "include telemetry counters in epoch events")
	timeout := fs.Duration("timeout", 0, "job execution deadline (0 = server default)")
	follow := fs.Bool("follow", true, "stream job events until completion")
	jsonOut := fs.Bool("json", false, "print the terminal status as JSON")
	retries := fs.Int("retries", 3, "retry transiently rejected submissions (429/503) this many times (0 = fail fast)")
	retryWait := fs.Duration("retry-wait", 500*time.Millisecond, "base backoff between submission retries (server Retry-After overrides)")
	stall := fs.Duration("stream-stall", time.Minute, "abort the event stream when no bytes (not even keepalives) arrive for this long, then poll (0 = no watchdog)")
	requestID := fs.String("request-id", "", "X-Request-ID to stamp on the submission (default: server-generated)")
	tenantID := fs.String("tenant", "", "tenant name for per-tenant quotas and accounting (empty = untenanted)")
	priority := fs.String("priority", "", "tenant priority class: interactive|batch|scavenger (default batch; requires -tenant)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var check flagcheck.Check
	check.NonNegative("retries", *retries)
	check.PositiveDuration("retry-wait", *retryWait)
	check.NonNegativeDuration("stream-stall", *stall)
	check.NonNegative("count", *count)
	check.NonNegativeDuration("timeout", *timeout)
	if err := check.Err(); err != nil {
		return err
	}
	req := server.JobRequest{
		Mode: *mode, Kernel: *kernel, Matrix: *matID,
		Scale: *scaleName, Seed: *seed, OptMode: *opt,
		Policy: *policy, Tolerance: *tolerance, Config: *cfgName,
		Faults: *faults, Count: *count, Counters: *counters,
		TimeoutSec: timeout.Seconds(),
		Tenant:     *tenantID, Priority: *priority,
	}
	if *mmFile != "" {
		body, err := os.ReadFile(*mmFile)
		if err != nil {
			return err
		}
		req.MatrixMarket = string(body)
	}
	// Validate locally first: a malformed request fails here with the same
	// message the server would send, without a round trip.
	if err := req.Validate(); err != nil {
		return err
	}

	c := client.New(*serverURL)
	c.Retry = client.RetryPolicy{Max: *retries, BaseWait: *retryWait}
	c.StallTimeout = *stall
	st, err := c.SubmitWithRequestID(ctx, req, *requestID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "job %s %s (%s %s on %s, scale %s)\n",
		st.ID, st.State, st.Request.Mode, st.Request.Kernel, matrixLabel(st.Request), st.Request.Scale)
	if !*follow {
		return nil
	}

	var final *server.JobStatus
	err = c.Stream(ctx, st.ID, func(ev server.Event) error {
		switch ev.Type {
		case "state":
			if ev.State != server.StateQueued { // submit already printed queued
				fmt.Fprintf(w, "  %s\n", ev.State)
			}
		case "epoch":
			if ev.Epoch != nil {
				mark := ""
				if ev.Epoch.Reconfigured {
					mark = " *reconfig"
				}
				fmt.Fprintf(w, "  epoch %3d  %-22s %8.3fms %8.3fmJ%s\n",
					ev.Epoch.Epoch, ev.Epoch.Config, ev.Epoch.DurSec*1e3, ev.Epoch.EnergyJ*1e3, mark)
			}
		case "result", "error":
			final = ev.Status
		}
		return nil
	})
	if err != nil && !errors.Is(err, client.ErrStreamStalled) {
		return err
	}
	// A stalled stream degrades to a status poll: the job is still running
	// server-side, only the event pipe died.
	if final == nil {
		if st, gerr := c.Get(ctx, st.ID); gerr == nil {
			final = &st
		} else {
			return gerr
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(final)
	}
	return printFinal(w, *final)
}

func matrixLabel(req server.JobRequest) string {
	if req.MatrixMarket != "" {
		return "uploaded matrix"
	}
	return req.Matrix
}

func printFinal(w io.Writer, st server.JobStatus) error {
	switch st.State {
	case server.StateDone:
		r := st.Result
		cached := ""
		if st.CacheHit {
			cached = " (cached)"
		}
		fmt.Fprintf(w, "done in %s%s: %d epochs, %d reconfigs\n",
			st.FinishedAt.Sub(st.StartedAt).Round(time.Millisecond), cached, r.Epochs, r.Reconfigs)
		m := r.Host.Total
		fmt.Fprintf(w, "  total    %10.3fms %10.3fmJ %12.4f GFLOPS %10.4f GFLOPS/W\n",
			m.TimeSec*1e3, m.EnergyJ*1e3, m.GFLOPS(), m.GFLOPSPerW())
		d := r.Host.Device
		fmt.Fprintf(w, "  device   %10.3fms %10.3fmJ\n", d.TimeSec*1e3, d.EnergyJ*1e3)
		if r.Resilience != "" {
			fmt.Fprintf(w, "  resilience: %s\n", r.Resilience)
		}
		for i, b := range r.Batch {
			fmt.Fprintf(w, "  batch[%d] %10.3fms %10.3fmJ\n", i, b.Total.TimeSec*1e3, b.Total.EnergyJ*1e3)
		}
		return nil
	default:
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
}
