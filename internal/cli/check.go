package cli

import (
	"flag"
	"fmt"
	"io"
	"math"

	"sparseadapt/internal/experiments"
)

// reference is one recorded headline value of the reproduction at the test
// scale: the GM (or named-row) value of one report column, with a relative
// tolerance. The paper's artifact ships rep_data_orig/ and a rep_check.sh
// that reports deviations; this is the equivalent, with generous
// tolerances because the predictive models are retrained on every run.
type reference struct {
	exp    string
	row    string // row label ("GM", "bfs/GM", …)
	column string
	want   float64
	tol    float64 // relative
}

// references pin the qualitative shapes asserted in EXPERIMENTS.md.
var references = []reference{
	{"fig5", "GM", "ee-eff-sa", 1.2, 0.35},
	{"fig6", "GM", "ee-eff-sa", 1.3, 0.35},
	{"fig6", "GM", "pp-eff-max", 0.8, 0.4},
	{"fig8", "GM", "ee-eff-oracle", 2.0, 0.4},
	{"tab6", "bfs/GM", "sparseadapt", 1.15, 0.35},
	{"tab6", "sssp/GM", "sparseadapt", 1.15, 0.35},
	{"sec64", "GM", "pp-eff-vs-naive", 2.3, 0.5},
	{"fig11R", "0.01GB/s", "vs-baseline", 3.5, 0.6},
	{"fig11R", "100GB/s", "vs-baseline", 1.1, 0.3},
}

func cmdCheck(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(w)
	seed := fs.Int64("seed", 42, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.TestScale()
	sc.Seed = *seed

	reports := map[string]*experiments.Report{}
	fails := 0
	fmt.Fprintf(w, "%-8s %-10s %-18s %10s %10s %8s  %s\n",
		"exp", "row", "column", "expected", "measured", "dev", "status")
	for _, ref := range references {
		rep, ok := reports[ref.exp]
		if !ok {
			e, err := experiments.Get(ref.exp)
			if err != nil {
				return err
			}
			rep, err = e.Run(sc)
			if err != nil {
				return err
			}
			reports[ref.exp] = rep
		}
		got, err := lookup(rep, ref.row, ref.column)
		if err != nil {
			return err
		}
		dev := math.Abs(got-ref.want) / ref.want
		status := "ok"
		if dev > ref.tol {
			status = "DEVIATES"
			fails++
		}
		fmt.Fprintf(w, "%-8s %-10s %-18s %10.3g %10.3g %7.0f%%  %s\n",
			ref.exp, ref.row, ref.column, ref.want, got, dev*100, status)
	}
	if fails > 0 {
		return fmt.Errorf("%d of %d reference shapes deviate beyond tolerance", fails, len(references))
	}
	fmt.Fprintf(w, "all %d reference shapes within tolerance\n", len(references))
	return nil
}

func lookup(rep *experiments.Report, row, column string) (float64, error) {
	ci := -1
	for j, c := range rep.Columns {
		if c == column {
			ci = j
			break
		}
	}
	if ci < 0 {
		return 0, fmt.Errorf("check: %s has no column %q", rep.ID, column)
	}
	for _, r := range rep.Rows {
		if r.Label == row && ci < len(r.Values) {
			return r.Values[ci], nil
		}
	}
	return 0, fmt.Errorf("check: %s has no row %q", rep.ID, row)
}
