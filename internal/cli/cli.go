// Package cli implements the sparseadapt command: it lists and runs the
// paper's experiments, trains and saves predictive models, runs individual
// workloads under SparseAdapt control, prints the dataset inventory and
// checks reproduced results against recorded references. The cmd/ binaries
// are thin wrappers so everything here is testable in-process.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/flagcheck"
	"sparseadapt/internal/graph"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

// Main dispatches the sparseadapt subcommands, writing to stdout. It
// returns a process exit code.
func Main(args []string, stdout io.Writer) int {
	return MainContext(context.Background(), args, stdout)
}

// MainContext is Main under a cancelable context: the simulation
// subcommands check ctx at their epoch/task boundaries, so canceling it
// (the binary wires it to SIGINT/SIGTERM via sigctx) stops the run
// promptly while still flushing any -metrics/-trace/-manifest sinks.
func MainContext(ctx context.Context, args []string, stdout io.Writer) int {
	if len(args) < 1 {
		usage(stdout)
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList(stdout)
	case "datasets":
		err = cmdDatasets(stdout)
	case "exp":
		err = cmdExp(ctx, stdout, args[1:])
	case "train":
		err = cmdTrain(ctx, stdout, args[1:])
	case "run":
		err = cmdRun(ctx, stdout, args[1:])
	case "submit":
		err = cmdSubmit(ctx, stdout, args[1:])
	case "check":
		err = cmdCheck(stdout, args[1:])
	case "verify":
		err = cmdVerify(stdout, args[1:])
	case "-h", "--help", "help":
		usage(stdout)
	case "-version", "--version", "version":
		fmt.Fprintln(stdout, obs.Version("sparseadapt"))
	default:
		fmt.Fprintf(stdout, "unknown command %q\n", args[0])
		usage(stdout)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stdout, "error:", err)
		var fe flagError
		if errors.As(err, &fe) {
			return 2
		}
		return 1
	}
	return 0
}

// flagError marks a flag-range violation so MainContext exits with the
// usage code (2, all violations joined), matching the flag contract of
// the standalone binaries (see internal/flagcheck).
type flagError struct{ error }

func usage(w io.Writer) {
	fmt.Fprintln(w, `sparseadapt — runtime control for sparse linear algebra (MICRO'21 reproduction)

commands:
  list                 list reproducible experiments (paper figures/tables)
  datasets             print the evaluation matrix suite (Table 5)
  exp <id>|all [flags] run one experiment (or all) and print its report
  train [flags]        generate training data and fit the predictive model
  run [flags]          run one workload under SparseAdapt vs the baselines
                       (-faults injects failures, -checkpoint/-resume cover
                       crash recovery; see README)
  check [flags]        re-run the suite at test scale and diff against the
                       recorded reference shapes (artifact rep_check)
  verify [flags]       run the verification subsystem: golden-trace corpus,
                       differential kernel checks and metamorphic invariants
                       (see docs/TESTING.md)
  submit [flags]       submit a job to a sparseadaptd server and stream its
                       progress (see docs/SERVER.md)
  version              print build identity (also -version on every binary)`)
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "test":
		return experiments.TestScale(), nil
	case "small":
		return experiments.SmallScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (test|small|paper)", name)
	}
}

func modeByName(name string) (power.Mode, error) {
	switch name {
	case "ee", "energy-efficient":
		return power.EnergyEfficient, nil
	case "pp", "power-performance":
		return power.PowerPerformance, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (ee|pp)", name)
	}
}

func l1ByName(name string) (int, error) {
	switch name {
	case "cache":
		return config.CacheMode, nil
	case "spm":
		return config.SPMMode, nil
	default:
		return 0, fmt.Errorf("unknown L1 type %q (cache|spm)", name)
	}
}

func cmdList(w io.Writer) error {
	for _, id := range experiments.IDs() {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %s\n", e.ID, e.Title)
	}
	return nil
}

func cmdDatasets(w io.Writer) error {
	fmt.Fprintf(w, "%-4s %-24s %-22s %8s %8s  %s\n", "ID", "name", "domain", "dim", "nnz", "structure")
	for _, e := range matrix.Dataset {
		fmt.Fprintf(w, "%-4s %-24s %-22s %8d %8d  %s\n", e.ID, e.Name, e.Domain, e.Dim, e.NNZ, e.Class)
	}
	return nil
}

func cmdExp(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	scaleName := fs.String("scale", "small", "experiment scale: test|small|paper")
	seed := fs.Int64("seed", 42, "deterministic seed")
	csvDir := fs.String("csv", "", "directory for raw CSV output (artifact-style rep_data/)")
	svgDir := fs.String("svg", "", "directory for SVG figures")
	ef := addEngineFlags(fs)
	of := addObsFlags(fs)
	// Accept the experiment ID before or after the flags.
	id := ""
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	}
	if id == "" {
		return fmt.Errorf("usage: sparseadapt exp <id> [-scale ...]")
	}
	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	if err := of.start("sparseadapt exp", fs, args, w); err != nil {
		return err
	}
	of.annotate(sc.Seed, *scaleName)
	defer of.finish(w) //nolint:errcheck // interrupt path; success path checks
	if sc.Eng, err = ef.build(w, of); err != nil {
		return err
	}
	if id == "all" {
		reps, err := experiments.RunAllContext(ctx, sc, *csvDir)
		for _, rep := range reps {
			fmt.Fprint(w, rep.String())
			fmt.Fprintln(w)
		}
		ef.report(w, sc.Eng)
		if ferr := of.finish(w); err == nil {
			err = ferr
		}
		return err
	}
	e, err := experiments.Get(id)
	if err != nil {
		return err
	}
	rep, err := e.Run(sc)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.String())
	ef.report(w, sc.Eng)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		out := filepath.Join(*csvDir, id+".csv")
		if err := rep.WriteCSV(out); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", out)
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		out := filepath.Join(*svgDir, id+".svg")
		if err := rep.WriteSVG(out); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", out)
	}
	return of.finish(w)
}

func cmdTrain(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	kernel := fs.String("kernel", "spmspv", "kernel: spmspm|spmspv")
	l1 := fs.String("l1", "cache", "L1 type: cache|spm")
	modeName := fs.String("mode", "ee", "optimization mode: ee|pp")
	scale := fs.Float64("scale", 0.3, "training sweep scale (1 = Table 3)")
	out := fs.String("out", "model.json", "output model path")
	dsOut := fs.String("dataset", "", "optional dataset JSON output path")
	csvOut := fs.String("csv", "", "optional dataset CSV output path")
	cv := fs.Bool("cv", false, "use k-fold cross-validated hyperparameter search")
	ef := addEngineFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := modeByName(*modeName)
	if err != nil {
		return err
	}
	l1Type, err := l1ByName(*l1)
	if err != nil {
		return err
	}
	if err := of.start("sparseadapt train", fs, args, w); err != nil {
		return err
	}
	of.annotate(0, fmt.Sprintf("sweep=%g", *scale))
	defer of.finish(w) //nolint:errcheck // interrupt path; success path checks
	eng, err := ef.build(w, of)
	if err != nil {
		return err
	}
	sw := trainer.DefaultSweep(*kernel, l1Type, *scale)
	fmt.Fprintf(w, "generating dataset: kernel=%s l1=%s mode=%s dims=%v densities=%v bw=%v K=%d workers=%d\n",
		*kernel, *l1, mode, sw.Dims, sw.Densities, sw.BandwidthsGBps, sw.K, eng.Workers())
	ds, err := trainer.GenerateEngine(ctx, eng, sw, mode, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %d examples\n", len(ds.Examples))
	ef.report(w, eng)
	if *dsOut != "" {
		if err := trainer.SaveDataset(*dsOut, ds); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", *dsOut)
	}
	if *csvOut != "" {
		if err := trainer.WriteCSV(*csvOut, ds); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", *csvOut)
	}
	var ens *core.Ensemble
	if *cv {
		ens, err = trainer.TrainCV(ds, []int{6, 10, 14, 18}, []int{1, 5, 20}, 3)
	} else {
		ens, err = trainer.Train(ds, ml.DefaultTreeParams())
	}
	if err != nil {
		return err
	}
	if err := core.SaveEnsemble(*out, ens); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", *out)
	return of.finish(w)
}

func cmdRun(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	kernel := fs.String("kernel", "spmspv", "workload: spmspm|spmspv|bfs|sssp")
	matID := fs.String("matrix", "R12", "dataset matrix ID (see `sparseadapt datasets`)")
	dataflowName := fs.String("dataflow", "", "run on this dataflow variant: outer|inner|row (spmspm/spmspv; default: natural)")
	formatName := fs.String("format", "", "run on this A-operand storage format: csr|csc|coo (spmspm/spmspv; default: natural)")
	modeName := fs.String("mode", "ee", "optimization mode: ee|pp")
	scaleName := fs.String("scale", "small", "experiment scale: test|small|paper")
	modelPath := fs.String("model", "", "model JSON (trained on the fly when empty)")
	policy := fs.String("policy", "", "override policy: conservative|aggressive|hybrid")
	tolerance := fs.Float64("tolerance", 0.4, "hybrid tolerance")
	faultSpec := fs.String("faults", "", "fault-injection spec, e.g. nan=0.1,stuck=0.05,rc-drop=0.2,seed=7 (runs the resilient controller)")
	ckPath := fs.String("checkpoint", "", "controller checkpoint file (written during the run; implies the resilient controller)")
	resumeCk := fs.Bool("resume", false, "resume an interrupted run from -checkpoint")
	ef := addEngineFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resumeCk && *ckPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	var check flagcheck.Check
	if *dataflowName != "" {
		check.OneOf("dataflow", *dataflowName, config.DataflowNames()...)
	}
	if *formatName != "" {
		check.OneOf("format", *formatName, config.FormatNames()...)
	}
	if err := check.Err(); err != nil {
		return flagError{err}
	}
	// pinAxes projects a configuration onto the requested algorithm axes so
	// every scheme in the comparison runs the same kernel variant.
	pinAxes := func(c config.Config) config.Config {
		if *dataflowName != "" {
			v, _ := config.DataflowByName(*dataflowName) // validated above
			c[config.Dataflow] = v
		}
		if *formatName != "" {
			v, _ := config.FormatByName(*formatName)
			c[config.Format] = v
		}
		return c
	}
	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if err := of.start("sparseadapt run", fs, args, w); err != nil {
		return err
	}
	of.annotate(sc.Seed, *scaleName)
	defer of.finish(w) //nolint:errcheck // interrupt path; success path checks
	// The engine accelerates the on-the-fly model training below; the
	// controlled run itself is a single sequential simulation.
	if sc.Eng, err = ef.build(w, of); err != nil {
		return err
	}
	mode, err := modeByName(*modeName)
	if err != nil {
		return err
	}
	entry, err := matrix.Entry(*matID)
	if err != nil {
		return err
	}
	am := entry.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	var wl kernels.Workload
	modelKernel := *kernel
	pinned := *dataflowName != "" || *formatName != ""
	switch *kernel {
	case "spmspm":
		if pinned {
			wl, err = kernels.NewSpMSpMSource(*matID, a, am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles).Variant(pinAxes(config.Baseline))
		} else {
			_, wl, err = kernels.SpMSpM(a, am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles)
		}
	case "spmspv":
		x := matrix.RandomVec(randSrc(sc.Seed), a.Cols, 0.5)
		if pinned {
			wl, err = kernels.NewSpMSpVSource(*matID, a, x, sc.Chip.NGPE(), sc.Chip.Tiles).Variant(pinAxes(config.Baseline))
		} else {
			_, wl, err = kernels.SpMSpV(a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
		}
	case "bfs", "sssp":
		if pinned {
			return fmt.Errorf("-dataflow/-format apply to spmspm/spmspv only, not %q", *kernel)
		}
		src := 0
		if *kernel == "bfs" {
			_, wl, err = graph.BFS(a, src, sc.Chip.NGPE(), sc.Chip.Tiles)
		} else {
			_, wl, err = graph.SSSP(a, src, sc.Chip.NGPE(), sc.Chip.Tiles)
		}
		modelKernel = "spmspv"
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}
	if err != nil {
		return err
	}

	var ens *core.Ensemble
	if *modelPath != "" {
		ens, err = core.LoadEnsemble(*modelPath)
	} else {
		ens, err = experiments.Model(sc, modelKernel, config.CacheMode, mode)
	}
	if err != nil {
		return err
	}

	opts := core.Options{Policy: core.Hybrid, Tolerance: *tolerance, EpochScale: sc.Epoch}
	if modelKernel == "spmspm" {
		opts = core.Options{Policy: core.Conservative, EpochScale: sc.Epoch}
	}
	switch *policy {
	case "conservative":
		opts.Policy = core.Conservative
	case "aggressive":
		opts.Policy = core.Aggressive
	case "hybrid":
		opts.Policy = core.Hybrid
	case "":
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	base := core.RunStatic(sc.Chip, sc.BW, pinAxes(config.Baseline), wl, sc.Epoch)
	best := core.RunStatic(sc.Chip, sc.BW, pinAxes(config.BestAvgCache), wl, sc.Epoch)
	max := core.RunStatic(sc.Chip, sc.BW, pinAxes(config.MaxCfg), wl, sc.Epoch)
	m := sim.New(sc.Chip, sc.BW, pinAxes(config.Baseline))
	m.Instrument(of.reg)
	observer := of.observer()

	var dyn core.RunResult
	resilient := *faultSpec != "" || *ckPath != ""
	if resilient {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		ropts := core.DefaultResilientOptions()
		ropts.Options = opts
		ropts.Fallback = config.BestAvgCache
		ropts.CheckpointPath = *ckPath
		rc := core.NewResilientController(ens, ropts).Observe(observer)
		if !spec.IsZero() {
			rc.Inject = fault.New(spec)
		}
		if *resumeCk {
			ck, err := core.LoadCheckpoint(*ckPath)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "resuming from %s at epoch %d\n", *ckPath, ck.Epoch)
			dyn, err = rc.Resume(m, wl, ck)
			if err != nil {
				return err
			}
		} else if dyn, err = rc.Run(m, wl); err != nil {
			return err
		}
	} else if dyn, err = core.NewController(ens, opts).Observe(observer).RunContext(ctx, m, wl); err != nil {
		return err
	}

	fmt.Fprintf(w, "workload %s on %s (%d epochs, %d reconfigs, mode %s, policy %s)\n",
		wl.Name, *matID, len(dyn.Epochs), dyn.Reconfig, mode, opts.Policy)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %14s\n", "scheme", "time(ms)", "energy(mJ)", "GFLOPS", "GFLOPS/W")
	for _, row := range []struct {
		name string
		m    power.Metrics
	}{
		{"baseline", base.Total}, {"best-avg", best.Total}, {"max-cfg", max.Total}, {"sparseadapt", dyn.Total},
	} {
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %14.4f %14.4f\n", row.name,
			row.m.TimeSec*1e3, row.m.EnergyJ*1e3, row.m.GFLOPS(), row.m.GFLOPSPerW())
	}
	fmt.Fprintf(w, "gains over baseline: %.2fx GFLOPS, %.2fx GFLOPS/W\n",
		dyn.Total.GFLOPS()/base.Total.GFLOPS(), dyn.Total.GFLOPSPerW()/base.Total.GFLOPSPerW())
	if resilient {
		fmt.Fprintf(w, "resilience: %s\n", dyn.Resilience)
		edp := func(m power.Metrics) float64 { return m.TimeSec * m.EnergyJ }
		if b := edp(best.Total); b > 0 {
			fmt.Fprintf(w, "EDP vs best static: %.3fx\n", edp(dyn.Total)/b)
		}
	}
	return of.finish(w)
}

// randSrc builds a deterministic RNG for ad-hoc vectors.
func randSrc(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed + 1)) }
