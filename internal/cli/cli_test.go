package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code := Main(args, &buf)
	return buf.String(), code
}

func TestNoArgsShowsUsage(t *testing.T) {
	out, code := runCLI(t)
	if code != 2 || !strings.Contains(out, "commands:") {
		t.Fatalf("code %d out %q", code, out)
	}
}

func TestUnknownCommand(t *testing.T) {
	out, code := runCLI(t, "frobnicate")
	if code != 2 || !strings.Contains(out, "unknown command") {
		t.Fatalf("code %d out %q", code, out)
	}
}

func TestHelp(t *testing.T) {
	out, code := runCLI(t, "help")
	if code != 0 || !strings.Contains(out, "check") {
		t.Fatalf("help missing: %q", out)
	}
}

func TestList(t *testing.T) {
	out, code := runCLI(t, "list")
	if code != 0 {
		t.Fatalf("list failed: %s", out)
	}
	for _, id := range []string{"fig1", "fig6", "tab6", "sec64", "disc7", "hist", "algo"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestDatasets(t *testing.T) {
	out, code := runCLI(t, "datasets")
	if code != 0 {
		t.Fatalf("datasets failed: %s", out)
	}
	for _, frag := range []string{"R01", "R16", "power-law", "wiki-Vote_11"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("datasets missing %q", frag)
		}
	}
}

func TestExpErrors(t *testing.T) {
	if out, code := runCLI(t, "exp"); code == 0 {
		t.Fatalf("exp without id accepted: %s", out)
	}
	if out, code := runCLI(t, "exp", "nope", "-scale", "test"); code == 0 {
		t.Fatalf("unknown experiment accepted: %s", out)
	}
	if out, code := runCLI(t, "exp", "fig10", "-scale", "galactic"); code == 0 {
		t.Fatalf("unknown scale accepted: %s", out)
	}
}

func TestExpRunsAndWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out, code := runCLI(t, "exp", "fig10", "-scale", "test", "-csv", dir)
	if code != 0 {
		t.Fatalf("exp fig10 failed: %s", out)
	}
	if !strings.Contains(out, "Gini importance") {
		t.Fatalf("report missing: %s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,") {
		t.Fatalf("CSV malformed: %s", data[:40])
	}
}

func TestTrainWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.json")
	csv := filepath.Join(dir, "d.csv")
	out, code := runCLI(t, "train", "-kernel", "spmspv", "-mode", "ee",
		"-scale", "0.1", "-out", model, "-csv", csv)
	if code != 0 {
		t.Fatalf("train failed: %s", out)
	}
	for _, p := range []string{model, csv} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("artifact %s missing", p)
		}
	}
	// And the model is loadable by run.
	out, code = runCLI(t, "run", "-kernel", "spmspv", "-matrix", "P1",
		"-scale", "test", "-model", model)
	if code != 0 {
		t.Fatalf("run with saved model failed: %s", out)
	}
	if !strings.Contains(out, "sparseadapt") || !strings.Contains(out, "gains over baseline") {
		t.Fatalf("run output malformed: %s", out)
	}
}

func TestTrainBadFlags(t *testing.T) {
	if out, code := runCLI(t, "train", "-mode", "warp"); code == 0 {
		t.Fatalf("bad mode accepted: %s", out)
	}
	if out, code := runCLI(t, "train", "-l1", "dram"); code == 0 {
		t.Fatalf("bad L1 accepted: %s", out)
	}
}

func TestRunAlgoFlags(t *testing.T) {
	// Invalid enum values exit with the usage code and list every
	// violation at once (the flagcheck contract).
	out, code := runCLI(t, "run", "-kernel", "spmspv", "-matrix", "P1", "-scale", "test",
		"-dataflow", "diagonal", "-format", "ELL")
	if code != 2 {
		t.Fatalf("bad -dataflow/-format exited %d, want 2: %s", code, out)
	}
	for _, frag := range []string{"-dataflow", "-format", "outer|inner|row", "csr|csc|coo"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("violation output missing %q: %s", frag, out)
		}
	}
	// Graph kernels have no dataflow/format axes.
	if out, code := runCLI(t, "run", "-kernel", "bfs", "-matrix", "R07", "-scale", "test",
		"-format", "coo"); code == 0 {
		t.Fatalf("-format accepted for bfs: %s", out)
	}
	// A valid pin runs the whole comparison on the requested variant.
	out, code = runCLI(t, "run", "-kernel", "spmspv", "-matrix", "P1", "-scale", "test",
		"-format", "coo", "-dataflow", "row")
	if code != 0 {
		t.Fatalf("pinned run failed: %s", out)
	}
	if !strings.Contains(out, "gains over baseline") {
		t.Fatalf("pinned run output malformed: %s", out)
	}
}

func TestRunGraphKernels(t *testing.T) {
	out, code := runCLI(t, "run", "-kernel", "bfs", "-matrix", "R07", "-scale", "test")
	if code != 0 {
		t.Fatalf("bfs run failed: %s", out)
	}
	if out, code := runCLI(t, "run", "-kernel", "quantum", "-scale", "test"); code == 0 {
		t.Fatalf("unknown kernel accepted: %s", out)
	}
	if out, code := runCLI(t, "run", "-matrix", "R99", "-scale", "test"); code == 0 {
		t.Fatalf("unknown matrix accepted: %s", out)
	}
}

func TestCheckPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("check runs several experiments")
	}
	out, code := runCLI(t, "check")
	if code != 0 {
		t.Fatalf("check failed:\n%s", out)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Fatalf("check output malformed:\n%s", out)
	}
}

func TestExpWritesSVG(t *testing.T) {
	dir := t.TempDir()
	out, code := runCLI(t, "exp", "fig10", "-scale", "test", "-svg", dir)
	if code != 0 {
		t.Fatalf("exp failed: %s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("not an SVG file")
	}
}
