package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"sparseadapt/internal/verify"
)

// cmdVerify runs the end-to-end verification subsystem: the golden-trace
// corpus comparison, the differential kernel/controller checks and the
// metamorphic invariant suite. The golden records are embedded in the
// binary, so this works from any directory; it is also what CI runs.
func cmdVerify(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(w)
	corpus := fs.Bool("corpus", true, "compare the scenario corpus against embedded golden records")
	diff := fs.Bool("differential", true, "run dense-reference kernel checks and the controller-vs-oracle EDP bound")
	invariants := fs.Bool("invariants", true, "run the metamorphic invariant suite")
	scenario := fs.String("scenario", "", "restrict the corpus pillar to one scenario")
	invariant := fs.String("invariant", "", "restrict the invariant pillar to one invariant")
	cases := fs.Int("cases", 0, "override cases per invariant (0 = each invariant's default; VERIFY_CASES also applies)")
	seed := fs.Int64("seed", verify.DefaultBaseSeed, "base seed for invariant case derivation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fails := 0

	if *corpus {
		scenarios := verify.Corpus()
		if *scenario != "" {
			s, err := verify.ScenarioByName(*scenario)
			if err != nil {
				return err
			}
			scenarios = []verify.Scenario{s}
		}
		for _, s := range scenarios {
			out, err := verify.Run(s)
			if err != nil {
				return err
			}
			got := verify.Golden(out)
			committed, err := verify.LoadGolden(s.Name)
			if err != nil {
				return err
			}
			if lines := verify.Diff(committed, got, 10); len(lines) > 0 {
				fails++
				fmt.Fprintf(w, "FAIL golden %-32s %d mismatches\n", s.Name, len(lines))
				fmt.Fprintln(w, "  "+strings.Join(lines, "\n  "))
			} else {
				fmt.Fprintf(w, "ok   golden %-32s %d epochs, %d reconfigs\n", s.Name, len(got.Epochs), got.Reconfigs)
			}
		}
	}

	if *diff && *invariant == "" {
		if err := verify.CheckCorpusKernels(); err != nil {
			fails++
			fmt.Fprintf(w, "FAIL differential kernels: %v\n", err)
		} else {
			fmt.Fprintln(w, "ok   differential kernels match dense references on the corpus")
		}
		reports, err := verify.CheckControllerEDP()
		if err != nil {
			fails++
			fmt.Fprintf(w, "FAIL controller EDP bound: %v\n", err)
		}
		for _, r := range reports {
			fmt.Fprintf(w, "ok   controller EDP %-27s %.2fx of Ideal Static (limit %.2fx)\n",
				r.Scenario, r.Ratio, verify.MaxEDPRatio)
		}
	}

	if *invariants {
		invs := verify.Invariants()
		if *invariant != "" {
			inv, err := verify.InvariantByName(*invariant)
			if err != nil {
				return err
			}
			invs = []verify.Invariant{inv}
		}
		n := *cases
		if n == 0 {
			n = verify.CasesOverride()
		}
		for _, inv := range invs {
			if err := verify.RunInvariant(inv, *seed, n); err != nil {
				fails++
				fmt.Fprintf(w, "FAIL %v\n", err)
			} else {
				c := n
				if c == 0 {
					c = inv.Cases
				}
				fmt.Fprintf(w, "ok   invariant %-32s %d cases — %s\n", inv.Name, c, inv.Doc)
			}
		}
	}

	if fails > 0 {
		return fmt.Errorf("verify: %d check(s) failed", fails)
	}
	fmt.Fprintln(w, "verify: all checks passed")
	return nil
}
