// Package obs is the observability layer of the reproduction: a
// lightweight metrics registry (counters, gauges, histograms — atomic and
// allocation-free on the hot path) with Prometheus-text and JSON exporters,
// an epoch-trace recorder that captures per-epoch telemetry and controller
// decisions and exports them as schema-stable JSONL or Chrome
// `trace_event` JSON (loadable in chrome://tracing and Perfetto), a run
// manifest for reproducibility (seed, scale, flags, VCS revision, timings)
// and a net/http/pprof server hook.
//
// The package is a leaf: it imports only the standard library, so every
// other layer (sim, core, engine, host, cli) can instrument itself without
// import cycles. All instruments and the registry itself are nil-safe —
// methods on a nil *Counter, *Gauge, *Histogram, *Registry or
// *TraceRecorder are no-ops — so instrumented code pays only a nil check
// when observability is disabled. See docs/OBSERVABILITY.md for the metric
// name catalog and the trace-event schema.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies the instrument type of a registry entry.
type Kind int

// The instrument kinds, in export order precedence.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; methods on a nil *Counter are no-ops, so disabled
// instrumentation costs one branch.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by delta (negative deltas are ignored:
// counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge (a value that can go up and down). The
// zero value is ready to use; methods on a nil *Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket atomic histogram. Bounds are the inclusive
// upper edges of the buckets; one final +Inf bucket is implicit. Observe is
// allocation-free. Methods on a nil *Histogram are no-ops.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a standalone histogram with the given bucket upper
// bounds, which must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper edges (nil on a nil histogram).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket sample counts; the final entry is
// the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metric is one named registry entry.
type metric struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry is a named collection of instruments. Instruments are created
// (or fetched) with Counter, Gauge and Histogram; creation takes a lock,
// but updates on the returned instruments are lock-free, so the hot path
// never contends on the registry. A nil *Registry hands out nil instruments
// whose methods are no-ops — the disabled-observability path.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// lookup returns the entry under name, creating it with mk when absent.
// A name registered under a different kind panics: that is a programming
// error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, mk func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, func(m *metric) { m.counter = NewCounter() }).counter
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, func(m *metric) { m.gauge = NewGauge() }).gauge
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later calls reuse the existing
// bounds). Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, func(m *metric) { m.hist = NewHistogram(bounds) }).hist
}

// MetricSnapshot is the point-in-time state of one registry entry.
type MetricSnapshot struct {
	// Name, Help and Kind identify the instrument ("counter", "gauge"
	// or "histogram").
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"` // counter/gauge value; histogram sum
	// Count, Bounds and Buckets are histogram-only: observation count,
	// inclusive upper bucket edges, and per-bucket (non-cumulative) counts.
	Count   int64     `json:"count,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot returns the current state of every registered metric, sorted by
// name. Nil registries return no metrics.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		entries = append(entries, m)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]MetricSnapshot, 0, len(entries))
	for _, m := range entries {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Load())
		case KindGauge:
			s.Value = m.gauge.Load()
		case KindHistogram:
			s.Value = m.hist.Sum()
			s.Count = m.hist.Count()
			s.Bounds = m.hist.Bounds()
			s.Buckets = m.hist.BucketCounts()
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (# HELP / # TYPE lines, histogram _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		switch s.Kind {
		case "histogram":
			cum := int64(0)
			for i, n := range s.Buckets {
				cum += n
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				s.Name, formatFloat(s.Value), s.Name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	return enc.Encode(snap)
}

// formatFloat renders a metric value in the shortest round-trippable form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteFile exports the registry to path, choosing the format from the
// extension: ".json" writes the JSON snapshot, anything else (".prom",
// ".txt", …) the Prometheus text format. A nil registry writes nothing.
func (r *Registry) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics: %w", err)
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: metrics %s: %w", path, err)
	}
	return nil
}
