package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// EpochRecord is one epoch of a controlled run as the trace recorder
// captures it: the telemetry the controller saw, the configuration the
// epoch executed under, the model's raw prediction versus the
// policy-filtered choice for the next epoch, and the resilience
// annotations. The JSON field set is the schema-stable JSONL export format
// — tests pin it with a golden file, so extend it only by appending new
// `omitempty` fields.
type EpochRecord struct {
	// Epoch is the zero-based epoch index.
	Epoch int `json:"epoch"`
	// Phase is the workload phase label ("multiply", "merge", …).
	Phase string `json:"phase,omitempty"`
	// StartSec and DurSec place the epoch on the simulated-time axis.
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
	// EnergyJ and FPOps are the epoch's objective inputs.
	EnergyJ float64 `json:"energy_j"`
	FPOps   float64 `json:"fp_ops"`
	// Config is the configuration the epoch executed under.
	Config string `json:"config"`
	// Predicted is the model's raw output at this epoch's boundary, before
	// the cost-aware policy filter (empty for static runs or held epochs).
	Predicted string `json:"predicted,omitempty"`
	// Chosen is the configuration actually selected for the next epoch
	// after policy filtering and validation (empty when held).
	Chosen string `json:"chosen,omitempty"`
	// Reconfigured marks an epoch entered with a configuration change;
	// PenaltyCycles is the transition cost folded into it.
	Reconfigured  bool    `json:"reconfigured,omitempty"`
	PenaltyCycles float64 `json:"penalty_cycles,omitempty"`
	// Resilience annotations (see core.EpochLog).
	Repairs          int  `json:"repairs,omitempty"`
	TelemetryDropped bool `json:"telemetry_dropped,omitempty"`
	Degraded         bool `json:"degraded,omitempty"`
	Fallback         bool `json:"fallback,omitempty"`
	// Interference marks an over-threshold epoch coincident with a
	// tenant-switch boundary, classified as co-tenant interference rather
	// than degradation (multi-tenant runs only).
	Interference bool `json:"interference,omitempty"`
	// Tenant is the tenant the epoch ran on behalf of (multi-tenant runs
	// only; empty for dedicated-fabric runs).
	Tenant string `json:"tenant,omitempty"`
	// Counters is the per-epoch telemetry (Table 2), keyed by feature name.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Instant is a point event on a trace timeline: a reconfiguration, a
// watchdog trip, a fallback entry/exit, a checkpoint write.
type Instant struct {
	// Name labels the event ("reconfig", "watchdog-trip", …).
	Name string `json:"name"`
	// Cat is the event category, used as the Chrome trace `cat` field.
	Cat string `json:"cat,omitempty"`
	// TSSec is the simulated-time position of the event.
	TSSec float64 `json:"ts_sec"`
	// Args carries event details (old/new config, cycles, …).
	Args map[string]string `json:"args,omitempty"`
}

// Span is a duration event on the wall-clock timeline — the engine records
// one per executed task, so sweep traces show pool occupancy over time.
type Span struct {
	// Name labels the span (task label or index).
	Name string `json:"name"`
	// Cat is the span category ("engine-task").
	Cat string `json:"cat,omitempty"`
	// TID is the worker that executed the span; spans of the same worker
	// render on one Perfetto track.
	TID int `json:"tid"`
	// StartSec and DurSec place the span on the wall-clock axis (seconds
	// since the recorder was created).
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
	// Args carries span details (cache hit, error, …).
	Args map[string]string `json:"args,omitempty"`
}

// TraceRecorder accumulates epoch records, instants and spans from one run
// and exports them as JSONL or Chrome trace_event JSON. All methods are
// safe for concurrent use; methods on a nil *TraceRecorder are no-ops, so
// instrumented code pays only a nil check when tracing is disabled.
type TraceRecorder struct {
	mu       sync.Mutex
	epochs   []EpochRecord
	instants []Instant
	spans    []Span

	// hook, when set, observes every RecordEpoch call as it happens —
	// the live-streaming tap the job server uses to push SSE progress
	// events while a run is still executing. Set before recording starts.
	hook func(EpochRecord)
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// SetEpochHook registers fn to be called with every epoch record as it is
// recorded, outside the recorder's lock. It must be set before the run
// starts recording; fn must be safe for concurrent invocation if multiple
// producers feed the recorder. A nil recorder ignores the call.
func (t *TraceRecorder) SetEpochHook(fn func(EpochRecord)) {
	if t == nil {
		return
	}
	t.hook = fn
}

// RecordEpoch appends one epoch record and invokes the epoch hook, if set.
func (t *TraceRecorder) RecordEpoch(rec EpochRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.epochs = append(t.epochs, rec)
	t.mu.Unlock()
	if t.hook != nil {
		t.hook(rec)
	}
}

// RecordInstant appends one point event.
func (t *TraceRecorder) RecordInstant(ev Instant) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.instants = append(t.instants, ev)
	t.mu.Unlock()
}

// RecordSpan appends one wall-clock duration event.
func (t *TraceRecorder) RecordSpan(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Epochs returns a copy of the recorded epoch records, in record order.
func (t *TraceRecorder) Epochs() []EpochRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EpochRecord(nil), t.epochs...)
}

// Len returns the total number of recorded events.
func (t *TraceRecorder) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.epochs) + len(t.instants) + len(t.spans)
}

// jsonlLine wraps each JSONL record with its type tag so mixed streams
// stay self-describing.
type jsonlLine struct {
	Type    string       `json:"type"`
	Epoch   *EpochRecord `json:"epoch,omitempty"`
	Instant *Instant     `json:"instant,omitempty"`
	Span    *Span        `json:"span,omitempty"`
}

// WriteJSONL writes the trace as one JSON object per line: epoch records
// first (in epoch order), then instants, then spans. The schema is pinned
// by a golden-file test.
func (t *TraceRecorder) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for i := range t.epochs {
		if err := enc.Encode(jsonlLine{Type: "epoch", Epoch: &t.epochs[i]}); err != nil {
			return err
		}
	}
	for i := range t.instants {
		if err := enc.Encode(jsonlLine{Type: "instant", Instant: &t.instants[i]}); err != nil {
			return err
		}
	}
	for i := range t.spans {
		if err := enc.Encode(jsonlLine{Type: "span", Span: &t.spans[i]}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event array. Field names
// follow the trace-event format spec (ph = phase, ts/dur in microseconds).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track/pid layout of the Chrome export: simulated time on pid 1
// (epochs + config + counters + instants), wall-clock engine spans on
// pid 2, one tid per worker.
const (
	simPID    = 1
	enginePID = 2

	epochTID   = 1
	configTID  = 2
	instantTID = 3
)

// WriteChromeTrace writes the trace in Chrome trace_event JSON (the
// "JSON object format"), loadable in chrome://tracing and
// https://ui.perfetto.dev. Simulated time maps to the trace's microsecond
// axis: one "X" (complete) event per epoch on the epoch track, one per
// contiguous configuration stretch on the config track, "C" (counter)
// events for GFLOPS and GFLOPS/W, "i" (instant) events for
// reconfigurations and watchdog activity, and one "X" event per engine
// task on the wall-clock process.
func (t *TraceRecorder) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	us := func(sec float64) float64 { return sec * 1e6 }
	var evs []chromeEvent

	// Metadata: name the processes and threads so Perfetto labels tracks.
	meta := func(pid, tid int, key, name string) {
		ev := chromeEvent{Name: key, Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name}}
		evs = append(evs, ev)
	}
	meta(simPID, 0, "process_name", "simulated time")
	meta(simPID, epochTID, "thread_name", "epochs")
	meta(simPID, configTID, "thread_name", "configuration")
	meta(simPID, instantTID, "thread_name", "controller events")

	epochs := append([]EpochRecord(nil), t.epochs...)
	sort.SliceStable(epochs, func(i, j int) bool { return epochs[i].Epoch < epochs[j].Epoch })

	for _, ep := range epochs {
		name := fmt.Sprintf("epoch %d", ep.Epoch)
		if ep.Phase != "" {
			name += " · " + ep.Phase
		}
		args := map[string]any{
			"config":   ep.Config,
			"energy_j": ep.EnergyJ,
			"fp_ops":   ep.FPOps,
		}
		if ep.Predicted != "" {
			args["predicted"] = ep.Predicted
		}
		if ep.Chosen != "" {
			args["chosen"] = ep.Chosen
		}
		if ep.Reconfigured {
			args["reconfigured"] = true
			args["penalty_cycles"] = ep.PenaltyCycles
		}
		if ep.Repairs > 0 {
			args["repairs"] = ep.Repairs
		}
		if ep.TelemetryDropped {
			args["telemetry_dropped"] = true
		}
		if ep.Degraded {
			args["degraded"] = true
		}
		if ep.Fallback {
			args["fallback"] = true
		}
		if ep.Interference {
			args["interference"] = true
		}
		if ep.Tenant != "" {
			args["tenant"] = ep.Tenant
		}
		for k, v := range ep.Counters {
			args["counter."+k] = v
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: "epoch", Phase: "X",
			TS: us(ep.StartSec), Dur: us(ep.DurSec),
			PID: simPID, TID: epochTID, Args: args,
		})
		// Counter track: throughput and efficiency per epoch.
		if ep.DurSec > 0 && ep.FPOps > 0 {
			gflops := ep.FPOps / ep.DurSec / 1e9
			evs = append(evs, chromeEvent{
				Name: "GFLOPS", Phase: "C", TS: us(ep.StartSec),
				PID: simPID, TID: 0, Args: map[string]any{"value": gflops},
			})
			if ep.EnergyJ > 0 {
				evs = append(evs, chromeEvent{
					Name: "GFLOPS/W", Phase: "C", TS: us(ep.StartSec),
					PID: simPID, TID: 0,
					Args: map[string]any{"value": gflops * ep.DurSec / ep.EnergyJ},
				})
			}
		}
	}

	// Config track: merge contiguous epochs under the same configuration
	// into one span, so reconfigurations are visible as span boundaries.
	for i := 0; i < len(epochs); {
		j := i
		end := epochs[i].StartSec + epochs[i].DurSec
		for j+1 < len(epochs) && epochs[j+1].Config == epochs[i].Config {
			j++
			end = epochs[j].StartSec + epochs[j].DurSec
		}
		evs = append(evs, chromeEvent{
			Name: epochs[i].Config, Cat: "config", Phase: "X",
			TS: us(epochs[i].StartSec), Dur: us(end - epochs[i].StartSec),
			PID: simPID, TID: configTID,
			Args: map[string]any{"epochs": j - i + 1},
		})
		i = j + 1
	}

	for _, in := range t.instants {
		args := make(map[string]any, len(in.Args))
		for k, v := range in.Args {
			args[k] = v
		}
		evs = append(evs, chromeEvent{
			Name: in.Name, Cat: in.Cat, Phase: "i", Scope: "g",
			TS: us(in.TSSec), PID: simPID, TID: instantTID, Args: args,
		})
	}

	if len(t.spans) > 0 {
		meta(enginePID, 0, "process_name", "engine (wall clock)")
		for _, sp := range t.spans {
			args := make(map[string]any, len(sp.Args))
			for k, v := range sp.Args {
				args[k] = v
			}
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Phase: "X",
				TS: us(sp.StartSec), Dur: us(sp.DurSec),
				PID: enginePID, TID: sp.TID + 1, Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path, choosing the format by extension:
// ".jsonl" (or ".ndjson") writes the line-oriented schema, anything else
// writes Chrome trace_event JSON.
func (t *TraceRecorder) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		err = t.WriteJSONL(f)
	default:
		err = t.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
