package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// Manifest records everything needed to reproduce a run: the tool and its
// raw arguments, the deterministic seed and scale, the VCS revision the
// binary was built from, the Go toolchain and platform, and wall-clock
// timings. It is emitted as indented JSON next to a run's other artifacts.
type Manifest struct {
	// Tool is the binary/subcommand that produced the run ("sparseadapt
	// run", "oracle", …).
	Tool string `json:"tool"`
	// Args are the raw command-line arguments, verbatim.
	Args []string `json:"args,omitempty"`
	// Seed and Scale are the run's determinism inputs.
	Seed  int64  `json:"seed"`
	Scale string `json:"scale,omitempty"`
	// GoVersion, OS and Arch describe the build platform.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// VCSRevision/VCSTime/VCSDirty come from the binary's embedded build
	// info (the `git describe` equivalent for module builds); empty when
	// the binary was built outside version control.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSDirty    bool   `json:"vcs_dirty,omitempty"`
	// StartedAt/FinishedAt/DurationSec are wall-clock timings; FinishedAt
	// and DurationSec are filled by Finish.
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	DurationSec float64   `json:"duration_sec,omitempty"`
	// Extra holds free-form key/value annotations (flag values, matrix ID,
	// epoch counts, …).
	Extra map[string]string `json:"extra,omitempty"`
}

// NewManifest starts a manifest for the given tool invocation, stamping
// the start time, platform and embedded VCS build info.
func NewManifest(tool string, args []string) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      append([]string(nil), args...),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		StartedAt: time.Now(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSDirty = s.Value == "true"
			}
		}
	}
	return m
}

// Set records one free-form annotation.
func (m *Manifest) Set(key, value string) {
	if m == nil {
		return
	}
	if m.Extra == nil {
		m.Extra = map[string]string{}
	}
	m.Extra[key] = value
}

// Finish stamps the end time and duration. Safe to call more than once;
// the first call wins.
func (m *Manifest) Finish() {
	if m == nil || !m.FinishedAt.IsZero() {
		return
	}
	m.FinishedAt = time.Now()
	m.DurationSec = m.FinishedAt.Sub(m.StartedAt).Seconds()
}

// String renders a compact one-line summary for log output.
func (m *Manifest) String() string {
	if m == nil {
		return "<nil manifest>"
	}
	rev := m.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "untracked"
	}
	keys := make([]string, 0, len(m.Extra))
	for k := range m.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	extra := ""
	for _, k := range keys {
		extra += fmt.Sprintf(" %s=%s", k, m.Extra[k])
	}
	return fmt.Sprintf("%s seed=%d scale=%s rev=%s %s/%s%s",
		m.Tool, m.Seed, m.Scale, rev, m.OS, m.Arch, extra)
}

// WriteFile finishes the manifest (if not already finished) and writes it
// as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	if m == nil {
		return nil
	}
	m.Finish()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	return &m, nil
}
