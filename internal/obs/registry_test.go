package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("x_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("x_total", "") != c {
		t.Fatal("Counter did not return the registered instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 2} // le=1 gets {0.5, 1}: bounds are inclusive
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5556.5 {
		t.Fatalf("sum = %v, want 5556.5", h.Sum())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines — the
// -race CI step proves updates are coordination-free and correct.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Get-or-create races with updates and snapshots.
				r.Counter("c_total", "c").Inc()
				r.Gauge("g", "g").Add(1)
				r.Histogram("h_seconds", "h", []float64{0.5}).Observe(float64(i % 2))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Load(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g", "").Load(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must be no-ops")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var tr *TraceRecorder
	tr.RecordEpoch(EpochRecord{})
	tr.RecordInstant(Instant{})
	tr.RecordSpan(Span{})
	if tr.Len() != 0 {
		t.Fatal("nil recorder must be a no-op")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_epochs_total", "epochs replayed").Add(7)
	r.Gauge("engine_pool_occupancy", "running tasks").Set(3)
	h := r.Histogram("task_seconds", "task latency", []float64{0.001, 1})
	h.Observe(0.0005)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sim_epochs_total counter",
		"sim_epochs_total 7",
		"# HELP engine_pool_occupancy running tasks",
		"engine_pool_occupancy 3",
		"# TYPE task_seconds histogram",
		`task_seconds_bucket{le="0.001"} 1`,
		`task_seconds_bucket{le="1"} 2`,
		`task_seconds_bucket{le="+Inf"} 3`,
		"task_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Inc()
	r.Counter("a_total", "").Add(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Name != "a_total" || snaps[0].Value != 2 {
		t.Fatalf("unexpected snapshot: %+v", snaps)
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

// BenchmarkCounterAdd documents the hot-path cost of an enabled counter;
// BenchmarkCounterDisabled the cost when observability is off (nil
// receiver — a single branch).
func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram([]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%7) * 1e-3)
	}
}
