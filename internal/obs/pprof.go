package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofServer is a running net/http/pprof endpoint started by ServePprof.
type PprofServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServePprof starts an HTTP server exposing the standard /debug/pprof/
// endpoints (profile, heap, goroutine, trace, …) on addr — typically
// "localhost:6060" or "localhost:0" for an ephemeral port. The handlers
// are mounted on a private mux, so nothing leaks onto
// http.DefaultServeMux. The server runs until Close.
func ServePprof(addr string) (*PprofServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &PprofServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with a ":0" ephemeral port).
func (s *PprofServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down. Safe on a nil server.
func (s *PprofServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
