package obs

import (
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("sparseadapt run", []string{"-kernel", "spmspv"})
	m.Seed = 42
	m.Scale = "test"
	m.Set("matrix", "R12")
	m.Set("epochs", "17")
	if m.GoVersion == "" || m.OS == "" || m.Arch == "" {
		t.Fatalf("platform fields not stamped: %+v", m)
	}

	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if m.FinishedAt.IsZero() || m.DurationSec < 0 {
		t.Fatal("WriteFile must finish the manifest")
	}

	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != m.Tool || got.Seed != 42 || got.Scale != "test" ||
		got.Extra["matrix"] != "R12" || got.Extra["epochs"] != "17" ||
		len(got.Args) != 2 || got.Args[1] != "spmspv" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.StartedAt.Equal(m.StartedAt) {
		t.Fatalf("start time drifted: %v vs %v", got.StartedAt, m.StartedAt)
	}

	// Finish is idempotent: the first stamp wins.
	first := m.FinishedAt
	time.Sleep(time.Millisecond)
	m.Finish()
	if !m.FinishedAt.Equal(first) {
		t.Fatal("Finish must be idempotent")
	}

	s := m.String()
	for _, want := range []string{"sparseadapt run", "seed=42", "scale=test", "matrix=R12"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(t.TempDir() + "/absent.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}

func TestServePprof(t *testing.T) {
	s, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Nil server is a no-op.
	var nils *PprofServer
	if nils.Addr() != "" || nils.Close() != nil {
		t.Fatal("nil PprofServer must be inert")
	}
}
