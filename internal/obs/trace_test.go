package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixedTrace builds a deterministic two-epoch trace used by the golden and
// Chrome-format tests.
func fixedTrace() *TraceRecorder {
	tr := NewTraceRecorder()
	tr.RecordEpoch(EpochRecord{
		Epoch: 0, Phase: "multiply", StartSec: 0, DurSec: 0.5,
		EnergyJ: 0.25, FPOps: 1000, Config: "cfgA", Predicted: "cfgB", Chosen: "cfgB",
		Counters: map[string]float64{"l1-miss-rate": 0.5},
	})
	tr.RecordEpoch(EpochRecord{
		Epoch: 1, Phase: "merge", StartSec: 0.5, DurSec: 0.25,
		EnergyJ: 0.1, FPOps: 500, Config: "cfgB",
		Reconfigured: true, PenaltyCycles: 120,
		Repairs: 2, Degraded: true, Fallback: true,
	})
	tr.RecordInstant(Instant{
		Name: "reconfig", Cat: "controller", TSSec: 0.5,
		Args: map[string]string{"from": "cfgA", "to": "cfgB"},
	})
	tr.RecordSpan(Span{
		Name: "task 0", Cat: "engine-task", TID: 1, StartSec: 0.01, DurSec: 0.02,
		Args: map[string]string{"cache": "miss"},
	})
	return tr
}

// goldenJSONL pins the JSONL export schema: a renamed or retyped field
// breaks this test, which is the point — downstream tooling (and the
// COGNATE-style training-data consumers the trace feeds) parse these
// lines. Extend the schema only by appending new omitempty fields.
const goldenJSONL = `{"type":"epoch","epoch":{"epoch":0,"phase":"multiply","start_sec":0,"dur_sec":0.5,"energy_j":0.25,"fp_ops":1000,"config":"cfgA","predicted":"cfgB","chosen":"cfgB","counters":{"l1-miss-rate":0.5}}}
{"type":"epoch","epoch":{"epoch":1,"phase":"merge","start_sec":0.5,"dur_sec":0.25,"energy_j":0.1,"fp_ops":500,"config":"cfgB","reconfigured":true,"penalty_cycles":120,"repairs":2,"degraded":true,"fallback":true}}
{"type":"instant","instant":{"name":"reconfig","cat":"controller","ts_sec":0.5,"args":{"from":"cfgA","to":"cfgB"}}}
{"type":"span","span":{"name":"task 0","cat":"engine-task","tid":1,"start_sec":0.01,"dur_sec":0.02,"args":{"cache":"miss"}}}
`

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSONL {
		t.Errorf("JSONL schema drifted.\ngot:\n%s\nwant:\n%s", got, goldenJSONL)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if top.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", top.Unit)
	}
	count := map[string]int{}
	for _, ev := range top.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", ev)
		}
		count[ph]++
		if ph == "X" || ph == "i" || ph == "C" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event without numeric ts: %v", ev)
			}
		}
	}
	// 2 epoch spans + 1 merged-config span per config (2) + 1 engine span.
	if count["X"] != 5 {
		t.Errorf("complete events = %d, want 5", count["X"])
	}
	if count["i"] != 1 {
		t.Errorf("instant events = %d, want 1", count["i"])
	}
	if count["C"] != 4 { // GFLOPS + GFLOPS/W per epoch
		t.Errorf("counter events = %d, want 4", count["C"])
	}
	if count["M"] == 0 {
		t.Error("missing metadata (track name) events")
	}
	// Epoch 0's config track: microseconds on the trace axis.
	found := false
	for _, ev := range top.TraceEvents {
		if ev["name"] == "cfgA" && ev["ph"] == "X" {
			found = true
			if dur := ev["dur"].(float64); dur != 0.5e6 {
				t.Errorf("cfgA config span dur = %v us, want 5e5", dur)
			}
		}
	}
	if !found {
		t.Error("missing config-track span for cfgA")
	}
}

func TestWriteFileByExtension(t *testing.T) {
	dir := t.TempDir()
	tr := fixedTrace()

	jl := dir + "/out.jsonl"
	if err := tr.WriteFile(jl); err != nil {
		t.Fatal(err)
	}
	b := mustRead(t, jl)
	if !strings.HasPrefix(string(b), `{"type":"epoch"`) {
		t.Errorf("jsonl file has wrong leading line: %.60s", b)
	}

	cj := dir + "/out.json"
	if err := tr.WriteFile(cj); err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(mustRead(t, cj), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["traceEvents"]; !ok {
		t.Error(".json file is not a Chrome trace")
	}
}

func TestEpochsCopy(t *testing.T) {
	tr := fixedTrace()
	eps := tr.Epochs()
	if len(eps) != 2 || eps[0].Config != "cfgA" {
		t.Fatalf("unexpected epochs: %+v", eps)
	}
	eps[0].Config = "mutated"
	if tr.Epochs()[0].Config != "cfgA" {
		t.Fatal("Epochs must return a copy")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}
