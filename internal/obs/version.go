package obs

import "fmt"

// Version renders a one-line version string for a binary's --version flag,
// reusing the run manifest's embedded VCS build info so all binaries report
// the same identity the reproducibility manifests record: tool name, VCS
// revision (with a +dirty marker for builds from a modified tree), commit
// time when known, and the Go toolchain/platform.
func Version(tool string) string {
	m := NewManifest(tool, nil)
	rev := m.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "untracked"
	}
	if m.VCSDirty {
		rev += "+dirty"
	}
	when := ""
	if m.VCSTime != "" {
		when = " " + m.VCSTime
	}
	return fmt.Sprintf("%s %s%s (%s %s/%s)", tool, rev, when, m.GoVersion, m.OS, m.Arch)
}
