// Package flagcheck validates command-line flag ranges at startup. Every
// binary funnels its numeric flags through one Check so a zero queue
// depth, negative worker count or nonsensical ring size dies at launch
// with a message naming the flag, instead of surfacing later as a hung
// daemon or a divide-by-zero deep in the scheduler.
package flagcheck

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Check accumulates range violations; Err joins them so an operator sees
// every bad flag in one run, not one per restart.
type Check struct {
	errs []error
}

func (c *Check) fail(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

// Positive requires v > 0.
func (c *Check) Positive(name string, v int) {
	if v <= 0 {
		c.fail("-%s must be positive, got %d", name, v)
	}
}

// NonNegative requires v >= 0 (zero being a "use the default" or
// "disabled" sentinel).
func (c *Check) NonNegative(name string, v int) {
	if v < 0 {
		c.fail("-%s must not be negative, got %d", name, v)
	}
}

// PositiveInt64 requires v > 0.
func (c *Check) PositiveInt64(name string, v int64) {
	if v <= 0 {
		c.fail("-%s must be positive, got %d", name, v)
	}
}

// PositiveFloat requires v > 0.
func (c *Check) PositiveFloat(name string, v float64) {
	if v <= 0 {
		c.fail("-%s must be positive, got %g", name, v)
	}
}

// NonNegativeFloat requires v >= 0.
func (c *Check) NonNegativeFloat(name string, v float64) {
	if v < 0 {
		c.fail("-%s must not be negative, got %g", name, v)
	}
}

// PositiveDuration requires v > 0.
func (c *Check) PositiveDuration(name string, v time.Duration) {
	if v <= 0 {
		c.fail("-%s must be a positive duration, got %v", name, v)
	}
}

// NonNegativeDuration requires v >= 0.
func (c *Check) NonNegativeDuration(name string, v time.Duration) {
	if v < 0 {
		c.fail("-%s must not be a negative duration, got %v", name, v)
	}
}

// OneOf requires v to be one of the allowed names (exact match). Used by
// the enum-valued flags (-dataflow, -format, ...); the violation lists the
// accepted set so a typo is self-correcting.
func (c *Check) OneOf(name, v string, allowed ...string) {
	for _, a := range allowed {
		if v == a {
			return
		}
	}
	c.fail("-%s must be one of %s, got %q", name, strings.Join(allowed, "|"), v)
}

// Err returns all accumulated violations joined, or nil.
func (c *Check) Err() error {
	return errors.Join(c.errs...)
}
