package flagcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckAccumulates(t *testing.T) {
	var c Check
	c.Positive("queue", 0)
	c.NonNegative("workers", -1)
	c.PositiveInt64("max-body", -5)
	c.PositiveFloat("scale", 0)
	c.NonNegativeFloat("rate", -0.5)
	c.PositiveDuration("job-timeout", 0)
	c.NonNegativeDuration("timeout", -time.Second)
	c.OneOf("dataflow", "diagonal", "outer", "inner", "row")
	c.OneOf("format", "ELL", "csr", "csc", "coo")
	err := c.Err()
	if err == nil {
		t.Fatal("all-violations check returned nil")
	}
	for _, flag := range []string{"-queue", "-workers", "-max-body", "-scale", "-rate", "-job-timeout", "-timeout", "-dataflow", "-format"} {
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("joined error does not name %s: %v", flag, err)
		}
	}
}

func TestCheckPasses(t *testing.T) {
	var c Check
	c.Positive("queue", 64)
	c.NonNegative("workers", 0)
	c.PositiveInt64("max-body", 8<<20)
	c.PositiveFloat("scale", 0.3)
	c.NonNegativeFloat("rate", 0)
	c.PositiveDuration("job-timeout", time.Minute)
	c.NonNegativeDuration("timeout", 0)
	c.OneOf("dataflow", "row", "outer", "inner", "row")
	c.OneOf("format", "coo", "csr", "csc", "coo")
	if err := c.Err(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
}

func TestOneOfNamesAcceptedSet(t *testing.T) {
	var c Check
	c.OneOf("dataflow", "bogus", "outer", "inner", "row")
	err := c.Err()
	if err == nil {
		t.Fatal("bad enum value accepted")
	}
	for _, frag := range []string{"outer|inner|row", `"bogus"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("violation missing %q: %v", frag, err)
		}
	}
}
