package config

// CostClass is the reconfiguration-cost taxonomy of Section 3.4.
type CostClass int

const (
	// NoChange means the parameter value is unchanged.
	NoChange CostClass = iota
	// SuperFine parameters (clock, prefetcher, cache-capacity increase)
	// incur a small fixed cost and no cache flush.
	SuperFine
	// Fine parameters (sharing modes, cache-capacity decrease) require at
	// most a cache flush but no code change.
	Fine
	// Coarse parameters (memory type, dataflow) require a code change and a
	// flush; in this work they are fixed at compile time.
	Coarse
)

// String names the cost class.
func (c CostClass) String() string {
	switch c {
	case NoChange:
		return "none"
	case SuperFine:
		return "super-fine"
	case Fine:
		return "fine"
	case Coarse:
		return "coarse"
	default:
		return "unknown"
	}
}

// SuperFineCycles is the fixed cost charged for a super-fine
// reconfiguration (Section 5.2: 100 cycles).
const SuperFineCycles = 100

// TransitionClass returns the cost class of changing parameter p from value
// index from to value index to. Capacity increases are super-fine because
// the sub-banked R-DCache implementation can grow without invalidating
// resident lines (Section 5.2); decreases and sharing-mode changes require
// a flush (fine); the L1 memory type is coarse.
func TransitionClass(p Param, from, to int) CostClass {
	if from == to {
		return NoChange
	}
	switch p {
	case L1Type:
		return Coarse
	case L1Share, L2Share:
		return Fine
	case L1Cap, L2Cap:
		if to > from {
			return SuperFine
		}
		return Fine
	case Clock, Prefetch:
		return SuperFine
	default:
		return Coarse
	}
}

// Transition describes the cost structure of moving between two
// configurations: which levels must be flushed and how many fixed
// super-fine charges apply. The actual cycle/energy cost of a flush depends
// on machine state (dirty lines, clock, bandwidth) and is computed by the
// sim package from this description.
type Transition struct {
	// SuperFineChanges counts parameters reconfigured at fixed cost.
	SuperFineChanges int
	// FlushL1 indicates the L1 banks must be flushed to L2 (L1 sharing
	// change or L1 capacity decrease).
	FlushL1 bool
	// FlushL2 indicates the L2 banks must be flushed to main memory (L2
	// sharing change or L2 capacity decrease).
	FlushL2 bool
	// Coarse indicates a compile-time-only parameter changed; runtime
	// transitions with Coarse set are invalid.
	Coarse bool
	// Changed lists the parameters that differ.
	Changed []Param
}

// Classify computes the Transition between two configurations.
func Classify(from, to Config) Transition {
	var t Transition
	for p := Param(0); p < NumParams; p++ {
		cls := TransitionClass(p, from[p], to[p])
		if cls == NoChange {
			continue
		}
		t.Changed = append(t.Changed, p)
		switch cls {
		case SuperFine:
			t.SuperFineChanges++
		case Fine:
			switch p {
			case L1Share, L1Cap:
				t.FlushL1 = true
			case L2Share, L2Cap:
				t.FlushL2 = true
			}
		case Coarse:
			t.Coarse = true
		}
	}
	return t
}

// IsNoop reports whether the transition changes nothing.
func (t Transition) IsNoop() bool { return len(t.Changed) == 0 }
