package config

// CostClass is the reconfiguration-cost taxonomy of Section 3.4, extended
// with an Algorithmic class for the runtime dataflow/format axes.
type CostClass int

const (
	// NoChange means the parameter value is unchanged.
	NoChange CostClass = iota
	// SuperFine parameters (clock, prefetcher, cache-capacity increase,
	// scheduling policy) incur a small fixed cost and no cache flush.
	SuperFine
	// Fine parameters (sharing modes, cache-capacity decrease) require at
	// most a cache flush but no code change.
	Fine
	// Algorithmic parameters (dataflow, storage format) switch the kernel's
	// execution strategy at runtime: the change costs a fixed swap charge, a
	// data-dependent conversion proportional to the operand's nonzero count,
	// and a full flush of both cache levels — the working set of the old
	// strategy is worthless to the new one.
	Algorithmic
	// Coarse parameters (memory type) require a code change and a flush; in
	// this work they are fixed at compile time.
	Coarse
)

// String names the cost class.
func (c CostClass) String() string {
	switch c {
	case NoChange:
		return "none"
	case SuperFine:
		return "super-fine"
	case Fine:
		return "fine"
	case Algorithmic:
		return "algorithmic"
	case Coarse:
		return "coarse"
	default:
		return "unknown"
	}
}

// SuperFineCycles is the fixed cost charged for a super-fine
// reconfiguration (Section 5.2: 100 cycles).
const SuperFineCycles = 100

// AlgoSwapCycles is the fixed cost of switching the kernel's execution
// strategy (dataflow or format): draining in-flight work units and
// redirecting the LCPs to the new code path.
const AlgoSwapCycles = 400

// ConversionCyclesPerNNZ returns the per-nonzero cycle cost of converting
// the A operand between storage formats. CSR↔CSC is a full counting-sort
// transpose of the index structure (read + histogram + scatter);
// compressed→COO only expands pointers into explicit coordinates;
// COO→compressed must re-bucket every coordinate.
func ConversionCyclesPerNNZ(from, to int) float64 {
	if from == to {
		return 0
	}
	switch {
	case from == FmtCOO:
		return 4 // COO → CSR/CSC: bucket coordinates into compressed rows/cols
	case to == FmtCOO:
		return 2 // CSR/CSC → COO: expand pointer array into coordinates
	default:
		return 6 // CSR ↔ CSC: counting-sort transpose of the index structure
	}
}

// TransitionClass returns the cost class of changing parameter p from value
// index from to value index to. Capacity increases are super-fine because
// the sub-banked R-DCache implementation can grow without invalidating
// resident lines (Section 5.2); decreases and sharing-mode changes require
// a flush (fine); dataflow and format switches are algorithmic; the
// scheduling policy only changes LCP bookkeeping (super-fine); the L1
// memory type is coarse.
func TransitionClass(p Param, from, to int) CostClass {
	if from == to {
		return NoChange
	}
	switch p {
	case L1Type:
		return Coarse
	case L1Share, L2Share:
		return Fine
	case L1Cap, L2Cap:
		if to > from {
			return SuperFine
		}
		return Fine
	case Clock, Prefetch, SchedPolicy:
		return SuperFine
	case Dataflow, Format:
		return Algorithmic
	default:
		return Coarse
	}
}

// Transition describes the cost structure of moving between two
// configurations: which levels must be flushed and how many fixed
// super-fine charges apply. The actual cycle/energy cost of a flush depends
// on machine state (dirty lines, clock, bandwidth) and is computed by the
// sim package from this description.
type Transition struct {
	// SuperFineChanges counts parameters reconfigured at fixed cost.
	SuperFineChanges int
	// FlushL1 indicates the L1 banks must be flushed to L2 (L1 sharing
	// change, L1 capacity decrease, or any algorithmic switch).
	FlushL1 bool
	// FlushL2 indicates the L2 banks must be flushed to main memory (L2
	// sharing change, L2 capacity decrease, or any algorithmic switch).
	FlushL2 bool
	// Algorithmic indicates the dataflow or format changed: the kernel's
	// execution strategy is swapped at runtime.
	Algorithmic bool
	// DataflowChanged indicates the SpMSpM dataflow changed.
	DataflowChanged bool
	// FormatChanged indicates the A-operand storage format changed;
	// FormatFrom/FormatTo record the endpoints for conversion costing.
	FormatChanged        bool
	FormatFrom, FormatTo int
	// Coarse indicates a compile-time-only parameter changed; runtime
	// transitions with Coarse set are invalid.
	Coarse bool
	// Changed lists the parameters that differ.
	Changed []Param
}

// Classify computes the Transition between two configurations.
func Classify(from, to Config) Transition {
	var t Transition
	for p := Param(0); p < NumParams; p++ {
		cls := TransitionClass(p, from[p], to[p])
		if cls == NoChange {
			continue
		}
		t.Changed = append(t.Changed, p)
		switch cls {
		case SuperFine:
			t.SuperFineChanges++
		case Fine:
			switch p {
			case L1Share, L1Cap:
				t.FlushL1 = true
			case L2Share, L2Cap:
				t.FlushL2 = true
			}
		case Algorithmic:
			t.Algorithmic = true
			t.FlushL1 = true
			t.FlushL2 = true
			switch p {
			case Dataflow:
				t.DataflowChanged = true
			case Format:
				t.FormatChanged = true
				t.FormatFrom, t.FormatTo = from[p], to[p]
			}
		case Coarse:
			t.Coarse = true
		}
	}
	return t
}

// ConversionCycles returns the data-dependent cycle cost of the
// transition's algorithmic component for an operand with nnz nonzeros: a
// fixed strategy-swap charge per algorithmic axis changed plus the
// per-nonzero format-conversion work. Zero when nothing algorithmic
// changed.
func (t Transition) ConversionCycles(nnz int) float64 {
	if !t.Algorithmic {
		return 0
	}
	cycles := 0.0
	if t.DataflowChanged {
		cycles += AlgoSwapCycles
	}
	if t.FormatChanged {
		cycles += AlgoSwapCycles
		cycles += ConversionCyclesPerNNZ(t.FormatFrom, t.FormatTo) * float64(nnz)
	}
	return cycles
}

// IsNoop reports whether the transition changes nothing.
func (t Transition) IsNoop() bool { return len(t.Changed) == 0 }
