package config

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceSizeMatchesPaper(t *testing.T) {
	// Table 1's 3600 hardware points × 18 algorithm points (3 dataflows ×
	// 3 formats × 2 scheduling policies).
	if got := SpaceSize(); got != 64800 {
		t.Fatalf("SpaceSize = %d, want 64800", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	f := func(raw uint) bool {
		idx := int(raw % uint(SpaceSize()))
		c := FromIndex(idx)
		return c.Valid() && c.Index() == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexRoundTripExhaustive walks the entire widened space: Index and
// FromIndex must stay exact inverses at the new SpaceSize.
func TestIndexRoundTripExhaustive(t *testing.T) {
	for i, n := 0, SpaceSize(); i < n; i++ {
		c := FromIndex(i)
		if !c.Valid() {
			t.Fatalf("FromIndex(%d) invalid: %v", i, c)
		}
		if got := c.Index(); got != i {
			t.Fatalf("Index(FromIndex(%d)) = %d", i, got)
		}
	}
}

func TestAllUniqueAndValid(t *testing.T) {
	seen := map[int]bool{}
	for _, c := range All() {
		if !c.Valid() {
			t.Fatalf("invalid config %v", c)
		}
		if seen[c.Index()] {
			t.Fatalf("duplicate index %d", c.Index())
		}
		seen[c.Index()] = true
	}
	if len(seen) != 64800 {
		t.Fatalf("enumerated %d configs", len(seen))
	}
}

func TestPhysicalValues(t *testing.T) {
	c := MaxCfg
	if c.L1CapKB() != 64 || c.L2CapKB() != 64 {
		t.Fatalf("MaxCfg capacities %d/%d", c.L1CapKB(), c.L2CapKB())
	}
	if c.ClockMHz() != 1000 || c.PrefetchDegree() != 8 {
		t.Fatalf("MaxCfg clock %v pf %d", c.ClockMHz(), c.PrefetchDegree())
	}
	if !c.L1Shared() || !c.L2Shared() || c.L1IsSPM() {
		t.Fatalf("MaxCfg modes wrong: %v", c)
	}
	b := Baseline
	if b.L1CapKB() != 4 || b.L2CapKB() != 4 || b.ClockMHz() != 1000 || b.PrefetchDegree() != 4 {
		t.Fatalf("Baseline mismatch with Table 4: %v", b)
	}
	s := BestAvgSPM
	if !s.L1IsSPM() || s.L2CapKB() != 32 || s.ClockMHz() != 500 || s.PrefetchDegree() != 8 || s.L2Shared() {
		t.Fatalf("BestAvgSPM mismatch with Table 4: %v", s)
	}
}

func TestWithL1Type(t *testing.T) {
	cache := WithL1Type(CacheMode)
	spm := WithL1Type(SPMMode)
	if len(cache)+len(spm) != 64800 || len(cache) != len(spm) {
		t.Fatalf("split %d/%d", len(cache), len(spm))
	}
	for _, c := range cache {
		if c.L1IsSPM() {
			t.Fatal("SPM config in cache set")
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Sample(rng, 100, CacheMode)
	if len(s) != 100 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, c := range s {
		if c[L1Type] != CacheMode {
			t.Fatal("wrong L1 type sampled")
		}
		if seen[c.Index()] {
			t.Fatal("duplicate sample")
		}
		seen[c.Index()] = true
	}
	// Requesting more than the space yields the whole space.
	if got := Sample(rng, 100000, SPMMode); len(got) != 32400 {
		t.Fatalf("oversized sample %d", len(got))
	}
}

func TestNeighborsAdjacency(t *testing.T) {
	c := Baseline
	for _, n := range Neighbors(c) {
		if !n.Valid() {
			t.Fatalf("invalid neighbor %v", n)
		}
		diff, dist := 0, 0
		for p := Param(0); p < NumParams; p++ {
			if n[p] != c[p] {
				diff++
				d := n[p] - c[p]
				if d < 0 {
					d = -d
				}
				dist += d
			}
		}
		if diff != 1 || dist != 1 {
			t.Fatalf("neighbor %v not unit-adjacent to %v", n, c)
		}
		if n[L1Type] != c[L1Type] {
			t.Fatal("neighbor changed compile-time L1 type")
		}
	}
	// Interior point: binary sharing params contribute one move each, the
	// four interior hardware ordinals two each, dataflow/format (interior at
	// value 1) two each, and the binary scheduler one:
	// 1+1+2+2+2+2 + 2+2+1 = 15.
	interior := Config{CacheMode, Shared, Shared, 2, 2, 2, 1, DFInner, FmtCSC, SchedRR}
	if got := len(Neighbors(interior)); got != 15 {
		t.Fatalf("interior neighbor count %d, want 15", got)
	}
}

func TestSweepCoversDimension(t *testing.T) {
	c := Baseline
	sw := Sweep(c, Clock)
	if len(sw) != 6 {
		t.Fatalf("clock sweep size %d", len(sw))
	}
	seen := map[float64]bool{}
	for _, s := range sw {
		seen[s.ClockMHz()] = true
		for p := Param(0); p < NumParams; p++ {
			if p != Clock && s[p] != c[p] {
				t.Fatal("sweep changed another dimension")
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("sweep values not distinct: %v", seen)
	}
}

func TestTransitionClass(t *testing.T) {
	cases := []struct {
		p        Param
		from, to int
		want     CostClass
	}{
		{Clock, 5, 0, SuperFine},
		{Prefetch, 0, 2, SuperFine},
		{L1Cap, 0, 3, SuperFine}, // increase: no flush
		{L1Cap, 3, 0, Fine},      // decrease: flush
		{L1Share, Shared, Private, Fine},
		{L2Share, Private, Shared, Fine},
		{L1Type, CacheMode, SPMMode, Coarse},
		{Clock, 2, 2, NoChange},
		{Dataflow, DFOuter, DFInner, Algorithmic},
		{Dataflow, DFRow, DFOuter, Algorithmic},
		{Format, FmtCSR, FmtCSC, Algorithmic},
		{Format, FmtCOO, FmtCOO, NoChange},
		{SchedPolicy, SchedRR, SchedLL, SuperFine},
	}
	for _, c := range cases {
		if got := TransitionClass(c.p, c.from, c.to); got != c.want {
			t.Errorf("TransitionClass(%v,%d,%d) = %v, want %v", c.p, c.from, c.to, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	from := Baseline
	to := from
	to[Clock] = 3
	to[L2Cap] = 4 // increase
	tr := Classify(from, to)
	if tr.FlushL1 || tr.FlushL2 || tr.Coarse {
		t.Fatalf("unexpected flush/coarse: %+v", tr)
	}
	if tr.SuperFineChanges != 2 || len(tr.Changed) != 2 {
		t.Fatalf("want 2 super-fine changes: %+v", tr)
	}

	to = from
	to[L1Share] = Private
	to[L2Cap] = 0 // same value → no change
	tr = Classify(from, to)
	if !tr.FlushL1 || tr.FlushL2 {
		t.Fatalf("L1 sharing change must flush L1 only: %+v", tr)
	}

	to = from
	to[L1Type] = SPMMode
	if tr = Classify(from, to); !tr.Coarse {
		t.Fatalf("L1 type change must be coarse: %+v", tr)
	}

	if !Classify(from, from).IsNoop() {
		t.Fatal("identity transition should be a no-op")
	}
}

func TestClassifyAlgorithmic(t *testing.T) {
	from := Baseline

	// Dataflow change alone: algorithmic, flushes both levels, no format
	// conversion component.
	to := from
	to[Dataflow] = DFInner
	tr := Classify(from, to)
	if !tr.Algorithmic || !tr.DataflowChanged || tr.FormatChanged {
		t.Fatalf("dataflow switch misclassified: %+v", tr)
	}
	if !tr.FlushL1 || !tr.FlushL2 {
		t.Fatalf("algorithmic switch must flush both levels: %+v", tr)
	}
	if got := tr.ConversionCycles(1000); got != AlgoSwapCycles {
		t.Fatalf("dataflow-only conversion cycles = %v, want %v", got, float64(AlgoSwapCycles))
	}

	// Format change: swap charge plus per-nonzero conversion.
	to = from
	to[Format] = FmtCSR // Baseline carries FmtCSC
	tr = Classify(from, to)
	if !tr.FormatChanged || tr.FormatFrom != FmtCSC || tr.FormatTo != FmtCSR {
		t.Fatalf("format switch misclassified: %+v", tr)
	}
	want := float64(AlgoSwapCycles) + 6*1000
	if got := tr.ConversionCycles(1000); got != want {
		t.Fatalf("CSC→CSR conversion cycles = %v, want %v", got, want)
	}

	// Scheduling policy is super-fine: no flush, no conversion.
	to = from
	to[SchedPolicy] = SchedLL
	tr = Classify(from, to)
	if tr.Algorithmic || tr.FlushL1 || tr.FlushL2 || tr.SuperFineChanges != 1 {
		t.Fatalf("sched switch must be super-fine: %+v", tr)
	}
	if got := tr.ConversionCycles(1000); got != 0 {
		t.Fatalf("sched switch conversion cycles = %v, want 0", got)
	}
}

func TestConversionCyclesPerNNZ(t *testing.T) {
	cases := []struct {
		from, to int
		want     float64
	}{
		{FmtCSR, FmtCSR, 0},
		{FmtCSR, FmtCSC, 6},
		{FmtCSC, FmtCSR, 6},
		{FmtCSR, FmtCOO, 2},
		{FmtCSC, FmtCOO, 2},
		{FmtCOO, FmtCSR, 4},
		{FmtCOO, FmtCSC, 4},
	}
	for _, c := range cases {
		if got := ConversionCyclesPerNNZ(c.from, c.to); got != c.want {
			t.Errorf("ConversionCyclesPerNNZ(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestCostClassString(t *testing.T) {
	for _, c := range []CostClass{NoChange, SuperFine, Fine, Algorithmic, Coarse} {
		if c.String() == "unknown" {
			t.Fatalf("missing name for %d", c)
		}
	}
}

func TestParamString(t *testing.T) {
	seen := map[string]bool{}
	for p := Param(0); p < NumParams; p++ {
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate param name %s", s)
		}
		seen[s] = true
	}
}

// Property: Classify is symmetric in which parameters changed.
func TestQuickClassifyChangedSet(t *testing.T) {
	f := func(a, b uint) bool {
		ca := FromIndex(int(a % uint(SpaceSize())))
		cb := FromIndex(int(b % uint(SpaceSize())))
		tr := Classify(ca, cb)
		n := 0
		for p := Param(0); p < NumParams; p++ {
			if ca[p] != cb[p] {
				n++
			}
		}
		return n == len(tr.Changed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
