// Package config models the action space of the runtime controller: the
// Transmuter hardware configuration space of Table 1 in the paper (seven
// parameters spanning 3600 discrete configurations) widened with three
// algorithm-level parameters — the SpMSpM dataflow, the storage format of
// the A operand, and the LCP work-scheduling policy — following the
// Misam-style extension of ROADMAP item 3. The package also provides the
// sampling, neighbourhood and per-dimension sweep operations the training
// pipeline uses (Section 4.1) and the reconfiguration-cost taxonomy of
// Section 3.4, extended with an "algorithmic" class for dataflow and
// format switches whose conversion cost scales with the operand's nonzero
// count.
package config

import (
	"fmt"
	"math/rand"
	"strings"
)

// Param identifies one hardware configuration parameter.
type Param int

const (
	// L1Type selects cache vs scratchpad for the L1 R-DCache banks. It is
	// the only parameter fixed at compile time (Table 1 footnote).
	L1Type Param = iota
	// L1Share selects shared vs private L1 across the GPEs of a tile.
	L1Share
	// L2Share selects shared vs private L2 across tiles.
	L2Share
	// L1Cap is the per-bank L1 capacity (4–64 kB in ×2 steps).
	L1Cap
	// L2Cap is the per-bank L2 capacity (4–64 kB in ×2 steps).
	L2Cap
	// Clock is the global DVFS clock (31.25 MHz–1 GHz in ×2 steps).
	Clock
	// Prefetch is the stride-prefetcher aggressiveness (0, 4, 8 lines).
	Prefetch
	// Dataflow selects the SpMSpM formulation (outer/inner/row-wise). For
	// kernels with a single formulation (SpMSpV, graph kernels) the value is
	// accepted but has no effect.
	Dataflow
	// Format selects the storage format of the A operand (CSR/CSC/COO).
	// Accessing A through a format other than the dataflow's natural
	// orientation costs extra index traffic; switching formats mid-run costs
	// a per-nonzero conversion plus a full cache flush.
	Format
	// SchedPolicy selects the LCPs' work-distribution policy (round-robin or
	// least-loaded).
	SchedPolicy

	// NumParams is the number of configuration parameters.
	NumParams
)

// RuntimeParams lists the parameters SparseAdapt predicts at runtime: the
// six hardware knobs of the paper plus the three algorithm-level axes;
// L1Type is chosen by the compiler (Section 3.4).
var RuntimeParams = []Param{L1Share, L2Share, L1Cap, L2Cap, Clock, Prefetch, Dataflow, Format, SchedPolicy}

// paramNames indexes Param for display.
var paramNames = [NumParams]string{
	"l1-type", "l1-share", "l2-share", "l1-cap", "l2-cap", "clock", "prefetch",
	"dataflow", "format", "sched",
}

// String returns the parameter's short name.
func (p Param) String() string {
	if p < 0 || p >= NumParams {
		return fmt.Sprintf("param(%d)", int(p))
	}
	return paramNames[p]
}

// Categorical value indices for the sharing/type parameters.
const (
	CacheMode = 0 // L1Type: cache
	SPMMode   = 1 // L1Type: scratchpad
	Shared    = 0
	Private   = 1
)

// Dataflow value indices (SpMSpM formulations, Misam's action set).
const (
	DFOuter = 0 // outer product: A(CSC) × B(CSR), merge partial products
	DFInner = 1 // inner product: A(CSR) × B(CSC), index intersection
	DFRow   = 2 // row-wise (Gustavson): A(CSR) × B(CSR), sparse accumulator
)

// Format value indices for the A operand's storage format.
const (
	FmtCSR = 0
	FmtCSC = 1
	FmtCOO = 2
)

// SchedPolicy value indices for LCP work distribution.
const (
	SchedRR = 0 // round-robin assignment of work units to GPEs
	SchedLL = 1 // least-loaded: assign to the GPE with the lowest cost so far
)

// dataflowNames, formatNames and schedNames index the algorithm axes for
// display and CLI parsing.
var (
	dataflowNames = []string{"outer", "inner", "row"}
	formatNames   = []string{"csr", "csc", "coo"}
	schedNames    = []string{"rr", "ll"}
)

// DataflowNames returns the dataflow value names in index order.
func DataflowNames() []string { return append([]string(nil), dataflowNames...) }

// FormatNames returns the format value names in index order.
func FormatNames() []string { return append([]string(nil), formatNames...) }

// SchedNames returns the scheduling-policy value names in index order.
func SchedNames() []string { return append([]string(nil), schedNames...) }

func valueByName(axis string, names []string, v string) (int, error) {
	for i, n := range names {
		if n == v {
			return i, nil
		}
	}
	return 0, fmt.Errorf("config: unknown %s %q (%s)", axis, v, strings.Join(names, "|"))
}

// DataflowByName maps a dataflow name ("outer", "inner", "row") to its
// value index, for CLI flag parsing.
func DataflowByName(v string) (int, error) { return valueByName("dataflow", dataflowNames, v) }

// FormatByName maps a storage-format name ("csr", "csc", "coo") to its
// value index.
func FormatByName(v string) (int, error) { return valueByName("format", formatNames, v) }

// SchedByName maps a scheduling-policy name ("rr", "ll") to its value
// index.
func SchedByName(v string) (int, error) { return valueByName("sched", schedNames, v) }

// capKB and clockMHz are the ordinal value tables of Table 1.
var (
	capKB    = []int{4, 8, 16, 32, 64}
	clockMHz = []float64{31.25, 62.5, 125, 250, 500, 1000}
	prefetch = []int{0, 4, 8}
)

// cardinality gives the number of values of each parameter.
var cardinality = [NumParams]int{
	2, 2, 2, len(capKB), len(capKB), len(clockMHz), len(prefetch),
	len(dataflowNames), len(formatNames), len(schedNames),
}

// Cardinality returns the number of discrete values parameter p can take.
func Cardinality(p Param) int { return cardinality[p] }

// Config is one point of the configuration space: a value index for each
// parameter. Using indices (rather than physical values) keeps the ML
// targets, neighbourhood arithmetic and enumeration uniform across
// categorical and ordinal parameters.
type Config [NumParams]int

// Valid reports whether every value index is within its parameter's range.
func (c Config) Valid() bool {
	for p := Param(0); p < NumParams; p++ {
		if c[p] < 0 || c[p] >= cardinality[p] {
			return false
		}
	}
	return true
}

// L1IsSPM reports whether the L1 banks are configured as scratchpad.
func (c Config) L1IsSPM() bool { return c[L1Type] == SPMMode }

// L1Shared reports whether the L1 layer is shared across a tile's GPEs.
func (c Config) L1Shared() bool { return c[L1Share] == Shared }

// L2Shared reports whether the L2 layer is shared across tiles.
func (c Config) L2Shared() bool { return c[L2Share] == Shared }

// L1CapKB returns the per-bank L1 capacity in kB.
func (c Config) L1CapKB() int { return capKB[c[L1Cap]] }

// L2CapKB returns the per-bank L2 capacity in kB.
func (c Config) L2CapKB() int { return capKB[c[L2Cap]] }

// ClockMHz returns the system clock in MHz.
func (c Config) ClockMHz() float64 { return clockMHz[c[Clock]] }

// ClockHz returns the system clock in Hz.
func (c Config) ClockHz() float64 { return clockMHz[c[Clock]] * 1e6 }

// PrefetchDegree returns the number of cache lines prefetched ahead.
func (c Config) PrefetchDegree() int { return prefetch[c[Prefetch]] }

// DataflowName returns the configured SpMSpM dataflow's short name.
func (c Config) DataflowName() string { return dataflowNames[c[Dataflow]] }

// FormatName returns the configured A-operand storage format's short name.
func (c Config) FormatName() string { return formatNames[c[Format]] }

// SchedName returns the configured scheduling policy's short name.
func (c Config) SchedName() string { return schedNames[c[SchedPolicy]] }

// String renders the configuration compactly, e.g.
// "cache L1:4kB/shr L2:64kB/prv 500MHz pf8 outer/csc/rr".
func (c Config) String() string {
	var b strings.Builder
	if c.L1IsSPM() {
		b.WriteString("spm ")
	} else {
		b.WriteString("cache ")
	}
	mode := func(shared bool) string {
		if shared {
			return "shr"
		}
		return "prv"
	}
	fmt.Fprintf(&b, "L1:%dkB/%s L2:%dkB/%s %gMHz pf%d %s/%s/%s",
		c.L1CapKB(), mode(c.L1Shared()), c.L2CapKB(), mode(c.L2Shared()),
		c.ClockMHz(), c.PrefetchDegree(),
		c.DataflowName(), c.FormatName(), c.SchedName())
	return b.String()
}

// SpaceSize returns the total number of configurations: 3600 hardware
// points (Table 1) × 18 algorithm points (3 dataflows × 3 formats × 2
// scheduling policies) = 64800.
func SpaceSize() int {
	n := 1
	for p := Param(0); p < NumParams; p++ {
		n *= cardinality[p]
	}
	return n
}

// Index returns a unique integer in [0, SpaceSize()) for the configuration.
func (c Config) Index() int {
	idx := 0
	for p := Param(0); p < NumParams; p++ {
		idx = idx*cardinality[p] + c[p]
	}
	return idx
}

// FromIndex is the inverse of Index.
func FromIndex(idx int) Config {
	var c Config
	for p := NumParams - 1; p >= 0; p-- {
		c[p] = idx % cardinality[p]
		idx /= cardinality[p]
	}
	return c
}

// All enumerates the configuration space in Index order. With a fixed
// l1Type (the compile-time parameter) pass it via Filter instead.
func All() []Config {
	out := make([]Config, SpaceSize())
	for i := range out {
		out[i] = FromIndex(i)
	}
	return out
}

// WithL1Type returns all configurations whose L1 type matches t
// (CacheMode or SPMMode) — the runtime-reachable space given the
// compiler's choice.
func WithL1Type(t int) []Config {
	var out []Config
	for i, n := 0, SpaceSize(); i < n; i++ {
		c := FromIndex(i)
		if c[L1Type] == t {
			out = append(out, c)
		}
	}
	return out
}

// Sample draws k distinct configurations uniformly at random from the space
// with the given L1 type fixed, the "random sampling" step of the paper's
// best-configuration search (Section 4.1, step 1).
func Sample(rng *rand.Rand, k, l1Type int) []Config {
	space := WithL1Type(l1Type)
	if k >= len(space) {
		return space
	}
	rng.Shuffle(len(space), func(i, j int) { space[i], space[j] = space[j], space[i] })
	return space[:k]
}

// Neighbors returns the configurations adjacent to c: each runtime
// parameter moved by one step (ordinal) or flipped (categorical), one
// parameter at a time — the "m-dimensional hyper-sphere" of the paper's
// neighbour-evaluation step (Section 4.1, step 2). L1Type is never moved.
func Neighbors(c Config) []Config {
	var out []Config
	for _, p := range RuntimeParams {
		for _, d := range []int{-1, +1} {
			n := c
			n[p] += d
			if n[p] >= 0 && n[p] < cardinality[p] {
				out = append(out, n)
			}
		}
	}
	return out
}

// Sweep returns all configurations obtained by varying parameter p across
// its full range while holding every other parameter of c fixed — the
// "dimension sweep" of Section 4.1, step 3.
func Sweep(c Config, p Param) []Config {
	out := make([]Config, cardinality[p])
	for v := 0; v < cardinality[p]; v++ {
		n := c
		n[p] = v
		out[v] = n
	}
	return out
}

// Standard configurations of Table 4. All use the natural algorithm point
// — outer-product dataflow over a CSC-stored A operand with round-robin
// scheduling — which reproduces the paper's hardware-only action space when
// the algorithm axes are held fixed.
var (
	// Baseline is the best-average static configuration across the broad
	// application set of the Transmuter paper.
	Baseline = Config{CacheMode, Shared, Shared, 0 /*4kB*/, 0 /*4kB*/, 5 /*1GHz*/, 1 /*pf4*/, DFOuter, FmtCSC, SchedRR}
	// BestAvgCache is the best-average static configuration for the sparse
	// kernels of this paper with L1 as cache.
	BestAvgCache = Config{CacheMode, Private, Shared, 0, 0, 5, 0, DFOuter, FmtCSC, SchedRR}
	// BestAvgSPM is the best-average static configuration with L1 as SPM.
	BestAvgSPM = Config{SPMMode, Private, Private, 0, 3 /*32kB*/, 4 /*500MHz*/, 2 /*pf8*/, DFOuter, FmtCSC, SchedRR}
	// MaxCfg sets every ordinal parameter to its maximum with shared L1/L2.
	MaxCfg = Config{CacheMode, Shared, Shared, 4 /*64kB*/, 4, 5, 2, DFOuter, FmtCSC, SchedRR}
	// MaxCfgSPM is MaxCfg with the L1 banks as scratchpad.
	MaxCfgSPM = Config{SPMMode, Shared, Shared, 4, 4, 5, 2, DFOuter, FmtCSC, SchedRR}
)
