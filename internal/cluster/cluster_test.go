package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparseadapt/internal/obs"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// serveLater opens a listener whose handler is installed afterwards, so
// a worker can learn its advertise URL before it is constructed.
func serveLater(t *testing.T) (*httptest.Server, func(http.Handler)) {
	t.Helper()
	var h atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hh, ok := h.Load().(http.Handler); ok {
			hh.ServeHTTP(w, r)
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	return ts, func(hh http.Handler) { h.Store(hh) }
}

// metricValue reads one instrument from a registry snapshot.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("registry has no metric %q", name)
	return 0
}

// startWorker builds and starts a worker whose API is already listening.
func startWorker(t *testing.T, id, coordinatorURL string, cfg server.Config) *Worker {
	t.Helper()
	ts, install := serveLater(t)
	w, err := NewWorker(WorkerConfig{
		Server:            cfg,
		ID:                id,
		Advertise:         ts.URL,
		Coordinator:       coordinatorURL,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	install(w.Server().Handler())
	w.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		w.Drain(ctx) //nolint:errcheck // test teardown
	})
	return w
}

// waitAlive polls the coordinator until n workers pass heartbeats.
func waitAlive(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.mem.alive() >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d live workers (have %d)", n, c.mem.alive())
}

// seedOwnedBy scans seeds until the validated request's fingerprint lands
// on the wanted node of a ring holding exactly the given nodes — how the
// tests steer placement without touching the production hash.
func seedOwnedBy(t *testing.T, req server.JobRequest, want string, nodes ...string) server.JobRequest {
	t.Helper()
	ring := NewRing(0)
	for _, n := range nodes {
		ring.Add(n)
	}
	for seed := int64(1); seed < 10000; seed++ {
		r := req
		r.Seed = seed
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if owner, _ := ring.Owner(r.Fingerprint()); owner == want {
			r2 := req
			r2.Seed = seed
			return r2
		}
	}
	t.Fatalf("no seed under 10000 places the job on %s", want)
	return req
}

// TestClusterPeerCacheHit is the cache-peering acceptance scenario: a
// result computed on worker A becomes a cache hit — with the recorded
// epoch trace replayed over SSE — when the same fingerprint later routes
// to a freshly joined worker B, which pulls A's entry over the peer
// protocol instead of recomputing.
func TestClusterPeerCacheHit(t *testing.T) {
	cts, installC := serveLater(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	installC(coord.Server().Handler())
	coord.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Drain(ctx) //nolint:errcheck // test teardown
	}()

	// The job must land on wB once both workers are up.
	req := seedOwnedBy(t, server.JobRequest{Mode: "adaptive", Matrix: "R04", Scale: "test"}, "wB", "wA", "wB")

	wA := startWorker(t, "wA", cts.URL, server.Config{Workers: 1})
	waitAlive(t, coord, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := client.New(cts.URL)

	// First run: only wA exists, so wA computes and caches the result.
	st1, err := cl.SubmitWithRequestID(ctx, req, "rid-cluster-1")
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	fin1, err := cl.Wait(ctx, st1.ID)
	if err != nil || fin1.State != server.StateDone {
		t.Fatalf("first run: %v (state %s: %s)", err, fin1.State, fin1.Error)
	}
	if fin1.CacheHit {
		t.Fatal("first run was a cache hit; the test needs a cold computation")
	}
	// The X-Request-ID crossed the coordinator→worker hop.
	workerJobs, err := client.New(wA.cfg.Advertise).List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(workerJobs) != 1 || workerJobs[0].RequestID != "rid-cluster-1" {
		t.Errorf("worker-side job = %+v, want one job carrying rid-cluster-1", workerJobs)
	}

	// wB joins; the same fingerprint now routes to it.
	wB := startWorker(t, "wB", cts.URL, server.Config{Workers: 1})
	waitAlive(t, coord, 2)

	st2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	epochs := 0
	if err := cl.Stream(ctx, st2.ID, func(ev server.Event) error {
		if ev.Type == "epoch" {
			epochs++
		}
		return nil
	}); err != nil {
		t.Fatalf("stream 2: %v", err)
	}
	fin2, err := cl.Wait(ctx, st2.ID)
	if err != nil || fin2.State != server.StateDone {
		t.Fatalf("second run: %v (state %s: %s)", err, fin2.State, fin2.Error)
	}
	if !fin2.CacheHit {
		t.Error("rebalanced rerun was not served from cache")
	}
	if epochs == 0 || epochs != fin2.Result.Epochs {
		t.Errorf("replayed %d epochs over the relay, result says %d", epochs, fin2.Result.Epochs)
	}
	if hits := metricValue(t, wB.Server().Metrics(), "cluster_peer_cache_hits_total"); hits != 1 {
		t.Errorf("cluster_peer_cache_hits_total on wB = %v, want 1", hits)
	}
	if served := metricValue(t, wA.Server().Metrics(), "cluster_peer_cache_requests_total"); served < 1 {
		t.Errorf("cluster_peer_cache_requests_total on wA = %v, want >= 1", served)
	}

	// Fleet bookkeeping.
	if v := metricValue(t, coord.Server().Metrics(), "cluster_workers_alive"); v != 2 {
		t.Errorf("cluster_workers_alive = %v, want 2", v)
	}
	if v := metricValue(t, coord.Server().Metrics(), "cluster_worker_joins_total"); v != 2 {
		t.Errorf("cluster_worker_joins_total = %v, want 2", v)
	}
}

// TestClusterWorkerDeathRequeue is the deterministic mid-job failover:
// a job streams on a worker that then stops heartbeating; the sweep
// declares it dead, the relay aborts, and the retry path re-places the
// job on the surviving worker — same attempt budget as a local failure.
func TestClusterWorkerDeathRequeue(t *testing.T) {
	cts, installC := serveLater(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Server:            server.Config{RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond},
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	installC(coord.Server().Handler())
	coord.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Drain(ctx) //nolint:errcheck // test teardown
	}()

	// The doomed worker accepts the job, starts the event stream, then
	// hangs forever — a live TCP connection to a wedged (soon dead) node.
	streamStarted := make(chan struct{})
	var once atomic.Bool
	doomed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"job-000001","state":"queued","request_id":%q}`, r.Header.Get("X-Request-ID"))
		case strings.HasSuffix(r.URL.Path, "/events"):
			w.Header().Set("Content-Type", "text/event-stream")
			w.(http.Flusher).Flush()
			if once.CompareAndSwap(false, true) {
				close(streamStarted)
			}
			<-r.Context().Done()
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{}`)
		}
	}))
	t.Cleanup(doomed.Close)

	survivor := startWorker(t, "survivor", cts.URL, server.Config{Workers: 1, RetryBaseDelay: time.Millisecond})
	_ = survivor
	waitAlive(t, coord, 1)

	// Register the doomed worker by hand and keep it "alive" with manual
	// heartbeats until the relay is provably streaming from it.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	beat := func() {
		resp, err := http.Post(cts.URL+"/v1/cluster/join", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":"doomed","base":%q}`, doomed.URL)))
		if err == nil {
			resp.Body.Close()
		}
	}
	beat()
	req := seedOwnedBy(t, server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test"}, "doomed", "doomed", "survivor")

	cl := client.New(cts.URL)
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	keepAlive := time.NewTicker(20 * time.Millisecond)
	defer keepAlive.Stop()
wait:
	for {
		select {
		case <-streamStarted:
			break wait // stop heartbeating: the worker is now "dead"
		case <-keepAlive.C:
			beat()
		case <-ctx.Done():
			t.Fatal("placement never reached the doomed worker")
		}
	}

	fin, err := cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != server.StateDone {
		t.Fatalf("job after failover: %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one on the dead worker, one on the survivor)", fin.Attempts)
	}
	reg := coord.Server().Metrics()
	if v := metricValue(t, reg, "cluster_worker_deaths_total"); v != 1 {
		t.Errorf("cluster_worker_deaths_total = %v, want 1", v)
	}
	if v := metricValue(t, reg, "cluster_jobs_requeued_total"); v != 1 {
		t.Errorf("cluster_jobs_requeued_total = %v, want 1", v)
	}
}

// TestClusterNoWorkersQuarantine: with an empty fleet every placement
// attempt fails and the job exhausts its ordinary quarantine budget —
// the cluster introduces no new terminal states.
func TestClusterNoWorkersQuarantine(t *testing.T) {
	cts, installC := serveLater(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Server: server.Config{MaxAttempts: 2, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	installC(coord.Server().Handler())
	coord.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Drain(ctx) //nolint:errcheck // test teardown
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := client.New(cts.URL)
	st, err := cl.Submit(ctx, server.JobRequest{Matrix: "R04"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != server.StateQuarantined {
		t.Fatalf("state = %s, want quarantined", fin.State)
	}
	if !strings.Contains(fin.Error, "no live workers") {
		t.Errorf("error = %q, want it to name the empty fleet", fin.Error)
	}
	if v := metricValue(t, coord.Server().Metrics(), "cluster_placement_failures_total"); v != 2 {
		t.Errorf("cluster_placement_failures_total = %v, want 2", v)
	}
}

// TestClusterTopologyEndpoints: both roles expose their fleet view on
// GET /v1/cluster.
func TestClusterTopologyEndpoints(t *testing.T) {
	cts, installC := serveLater(t)
	coord, err := NewCoordinator(CoordinatorConfig{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	installC(coord.Server().Handler())
	coord.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Drain(ctx) //nolint:errcheck // test teardown
	}()
	w := startWorker(t, "w-topo", cts.URL, server.Config{Workers: 1})
	waitAlive(t, coord, 1)

	get := func(base string) string {
		resp, err := http.Get(base + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	cbody := get(cts.URL)
	if !strings.Contains(cbody, `"coordinator"`) || !strings.Contains(cbody, `"w-topo"`) {
		t.Errorf("coordinator topology missing role/member: %s", cbody)
	}
	wbody := get(w.cfg.Advertise)
	if !strings.Contains(wbody, `"worker"`) || !strings.Contains(wbody, `"w-topo"`) {
		t.Errorf("worker topology missing role/id: %s", wbody)
	}

	// Malformed and incomplete joins are rejected.
	for _, body := range []string{`{`, `{"id":"x"}`, `{"base":"http://x"}`} {
		resp, err := http.Post(cts.URL+"/v1/cluster/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("join %q = %d, want 400", body, resp.StatusCode)
		}
	}
}
