// Package cluster turns sparseadaptd into a horizontally scalable fleet:
// a coordinator node fronts the HTTP/JSON API, places jobs on worker
// nodes via a consistent-hash ring keyed by the content-addressed job
// fingerprint, forwards their SSE epoch streams, and re-queues in-flight
// jobs when a worker dies. Workers are ordinary standalone servers plus a
// peer-cache endpoint: because placement and cache addressing share the
// same fingerprint key, the worker that owns a job's ring position is
// exactly the worker whose cache holds any earlier result for it, and a
// rebalanced key can pull the old owner's entry instead of recomputing.
// See docs/SERVER.md for the topology and failure matrix.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"sparseadapt/internal/engine"
)

// DefaultRingReplicas is the virtual-node count per worker. 64 vnodes
// keep the expected load imbalance across a handful of workers within a
// few percent while the ring stays tiny (a few KB).
const DefaultRingReplicas = 64

// Ring is a consistent-hash ring mapping content-addressed job
// fingerprints to node IDs. Each node contributes `replicas` virtual
// points, hashed from the node ID, so adding or removing one node moves
// only ~1/n of the key space. Safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	nodes    map[string]struct{}
	points   []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring; replicas <= 0 uses DefaultRingReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// vnodeHash places virtual point i of a node: the first 8 bytes of
// sha256("node#i"), so placement is stable across processes and restarts.
func vnodeHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPoint maps a content-addressed key onto the ring. The key is
// already a sha256 output, so its leading bytes are uniform.
func keyPoint(k engine.Key) uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// Add inserts a node's virtual points; adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points; removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member node IDs in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// VNodes returns the total virtual point count (nodes × replicas).
func (r *Ring) VNodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}

// Owner returns the node owning key k: the first virtual point at or
// clockwise after the key's ring position. ok is false on an empty ring.
func (r *Ring) Owner(k engine.Key) (node string, ok bool) {
	succ := r.Successors(k, 1)
	if len(succ) == 0 {
		return "", false
	}
	return succ[0], true
}

// LoadSpread is the queue-depth slack of load-aware placement: a
// candidate within LoadSpread jobs of the least-loaded candidate keeps its
// ring rank (cache affinity wins small imbalances), while deeper ones are
// deferred behind every light candidate. Small on purpose — the signal is
// a heartbeat old, so aggressive chasing of exact depths would thrash.
const LoadSpread = 2

// OrderByLoad reorders a ring successor walk by reported load: candidates
// split into a light class (within LoadSpread of the least-loaded known
// candidate) and a heavy class, each keeping its internal ring order, and
// the light class goes first. A saturated owner is thereby skipped when a
// later successor is idle, but ties and near-ties preserve cache affinity,
// and a uniformly loaded fleet places exactly as an unweighted one.
// depth reports a candidate's queued+running jobs; ok=false (no heartbeat
// data) counts the candidate as light so placement never stalls on a
// missing signal. The input slice is not modified.
func OrderByLoad(candidates []string, depth func(id string) (int, bool)) []string {
	if len(candidates) < 2 {
		return candidates
	}
	min, known := 0, false
	for _, id := range candidates {
		if d, ok := depth(id); ok && (!known || d < min) {
			min, known = d, true
		}
	}
	if !known {
		return candidates
	}
	light := make([]string, 0, len(candidates))
	var heavy []string
	for _, id := range candidates {
		if d, ok := depth(id); ok && d > min+LoadSpread {
			heavy = append(heavy, id)
			continue
		}
		light = append(light, id)
	}
	return append(light, heavy...)
}

// Successors returns up to n distinct nodes in ring order starting at
// key k's owner — the preference list for placement and peer-cache
// lookup. Fewer than n are returned when the ring has fewer nodes.
func (r *Ring) Successors(k engine.Key, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	point := keyPoint(k)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= point })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
