package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/server"
)

// peerFanout is how many ring successors (after this node) a worker asks
// for a cache entry before computing locally. The owner plus one or two
// ex-owners cover every realistic rebalance; more just adds miss latency.
const peerFanout = 3

// WorkerConfig sizes a worker node. ID, Advertise and Coordinator are
// required; the rest defaults.
type WorkerConfig struct {
	// Server configures the local job server (executes jobs for real).
	Server server.Config
	// ID is this node's stable identity on the placement ring.
	ID string
	// Advertise is the API root peers reach this worker at, e.g.
	// "http://10.0.0.7:8081" — the address it reports in heartbeats.
	Advertise string
	// Coordinator is the coordinator's API root.
	Coordinator string
	// HeartbeatInterval is the initial heartbeat cadence (default 1s); the
	// coordinator's join response may adjust it.
	HeartbeatInterval time.Duration
	// PeerTimeout bounds one peer cache fetch (default 2s).
	PeerTimeout time.Duration
}

func (c *WorkerConfig) defaults() error {
	if c.ID == "" {
		return fmt.Errorf("cluster: worker requires an ID")
	}
	if c.Advertise == "" {
		return fmt.Errorf("cluster: worker requires an advertise address")
	}
	if c.Coordinator == "" {
		return fmt.Errorf("cluster: worker requires a coordinator address")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	return nil
}

// workerMetrics is the worker's slice of the cluster_* family.
type workerMetrics struct {
	peerHits     *obs.Counter
	peerMisses   *obs.Counter
	peerRequests *obs.Counter
	heartbeats   *obs.Counter
	hbFailures   *obs.Counter
}

func newWorkerMetrics(r *obs.Registry) workerMetrics {
	return workerMetrics{
		peerHits:     r.Counter("cluster_peer_cache_hits_total", "result-cache entries fetched from a peer instead of recomputed"),
		peerMisses:   r.Counter("cluster_peer_cache_misses_total", "peer cache lookups that found no holder"),
		peerRequests: r.Counter("cluster_peer_cache_requests_total", "cache entries served to peers over GET /v1/cache/{key}"),
		heartbeats:   r.Counter("cluster_heartbeats_total", "heartbeats delivered to the coordinator"),
		hbFailures:   r.Counter("cluster_heartbeat_failures_total", "heartbeats the coordinator did not acknowledge"),
	}
}

// Worker is a cluster member: an ordinary job server (the coordinator
// submits to it over the plain API) plus the peer-cache protocol — it
// serves its content-addressed result cache to peers on
// GET /v1/cache/{key} and, before computing a job, asks the ring
// successors of the job's fingerprint for an existing entry. The ring
// mirror it consults is refreshed from every heartbeat response.
type Worker struct {
	srv *server.Server
	cfg WorkerConfig
	met workerMetrics

	mu    sync.Mutex
	peers map[string]string // live node ID → base URL, self included
	ring  *Ring

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewWorker builds a worker from cfg. It does not contact the
// coordinator until Start.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.Server.Metrics == nil {
		cfg.Server.Metrics = obs.NewRegistry()
	}
	w := &Worker{
		cfg:   cfg,
		met:   newWorkerMetrics(cfg.Server.Metrics),
		peers: map[string]string{cfg.ID: cfg.Advertise},
		ring:  NewRing(0),
		stop:  make(chan struct{}),
	}
	w.ring.Add(cfg.ID)
	cfg.Server.PeerFetch = w.peerFetch
	srv, err := server.New(cfg.Server)
	if err != nil {
		return nil, err
	}
	w.srv = srv
	srv.HandleFunc("GET /v1/cache/{key}", w.handleCacheGet)
	srv.HandleFunc("GET /v1/cluster", w.handleTopology)
	return w, nil
}

// Server returns the underlying job server.
func (w *Worker) Server() *server.Server { return w.srv }

// Start launches the worker pool and the heartbeat loop.
func (w *Worker) Start() {
	w.srv.Start()
	w.wg.Add(1)
	go w.heartbeatLoop()
}

// Drain shuts the job side down like server.Drain and stops the
// heartbeat loop (the coordinator will declare this worker dead).
func (w *Worker) Drain(ctx context.Context) error {
	err := w.srv.Drain(ctx)
	w.stopOnce.Do(func() { close(w.stop) })
	w.wg.Wait()
	return err
}

// Close closes the durable store. Call after Drain.
func (w *Worker) Close() error { return w.srv.Close() }

// heartbeatLoop reports to the coordinator every interval, mirroring the
// membership table from each response. The first beat fires immediately
// so a fresh worker is placeable within one coordinator sweep.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	interval := w.cfg.HeartbeatInterval
	for {
		if next := w.heartbeat(); next > 0 {
			interval = next
		}
		select {
		case <-w.stop:
			return
		case <-time.After(interval):
		}
	}
}

// heartbeat posts one join/refresh and returns the coordinator's
// requested cadence (0 on failure).
func (w *Worker) heartbeat() time.Duration {
	sch := w.srv.Scheduler()
	body, _ := json.Marshal(JoinRequest{ //nolint:errcheck // static struct
		ID: w.cfg.ID, Base: w.cfg.Advertise,
		// Queued + running jobs: the load signal the coordinator's
		// load-aware placement ranks candidates by.
		QueueDepth: sch.QueueLen() + sch.Inflight(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		w.met.hbFailures.Inc()
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		w.met.hbFailures.Inc()
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.met.hbFailures.Inc()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
		return 0
	}
	var jr JoinResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&jr); err != nil {
		w.met.hbFailures.Inc()
		return 0
	}
	w.met.heartbeats.Inc()
	w.mirror(jr.Members)
	return time.Duration(jr.IntervalSec * float64(time.Second))
}

// mirror rebuilds the worker's peer table and ring from the
// coordinator's membership view. Only live members are placeable peers.
func (w *Worker) mirror(members []MemberInfo) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fresh := NewRing(0)
	peers := make(map[string]string, len(members))
	for _, m := range members {
		if !m.Alive {
			continue
		}
		peers[m.ID] = m.Base
		fresh.Add(m.ID)
	}
	// Never lose self: placeability must not depend on the coordinator's
	// view having caught up with our own registration.
	if _, ok := peers[w.cfg.ID]; !ok {
		peers[w.cfg.ID] = w.cfg.Advertise
		fresh.Add(w.cfg.ID)
	}
	w.peers = peers
	w.ring = fresh
}

// peerFetch is the server's PeerFetch hook: on a local cache miss it
// walks the ring successors of the key (the nodes a previous placement
// of this fingerprint would have computed on), fetches the framed entry
// and verifies its checksum before handing the payload back for
// installation. Every failure path just computes locally.
func (w *Worker) peerFetch(ctx context.Context, key engine.Key) ([]byte, bool) {
	w.mu.Lock()
	ring := w.ring
	peers := w.peers
	w.mu.Unlock()
	// +1: the walk may include self, which is skipped below.
	for _, id := range ring.Successors(key, peerFanout+1) {
		if id == w.cfg.ID {
			continue
		}
		base, ok := peers[id]
		if !ok {
			continue
		}
		if payload, ok := w.fetchFrom(ctx, base, key); ok {
			w.met.peerHits.Inc()
			return payload, true
		}
	}
	w.met.peerMisses.Inc()
	return nil, false
}

// fetchFrom pulls one framed cache entry from a peer and verifies it.
func (w *Worker) fetchFrom(ctx context.Context, base string, key engine.Key) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, w.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cache/"+key.String(), nil)
	if err != nil {
		return nil, false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
		return nil, false
	}
	framed, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false
	}
	// The frame carries its own checksum: a truncated or corrupted
	// transfer is rejected here, never installed.
	payload, err := engine.DecodeEntry(framed)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// handleCacheGet is GET /v1/cache/{key}: the peer-cache serving side.
// The entry ships in the engine's checksummed frame so the fetcher can
// verify integrity end to end.
func (w *Worker) handleCacheGet(rw http.ResponseWriter, r *http.Request) {
	raw, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(raw) != len(engine.Key{}) {
		writeJSONError(rw, http.StatusBadRequest, "malformed cache key %q", r.PathValue("key"))
		return
	}
	var key engine.Key
	copy(key[:], raw)
	w.met.peerRequests.Inc()
	payload, ok := w.srv.Cache().Get(key)
	if !ok {
		writeJSONError(rw, http.StatusNotFound, "no entry for %s", key)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(engine.EncodeEntry(payload)) //nolint:errcheck // client gone; nothing to do
}

// handleTopology is GET /v1/cluster on a worker: its mirrored fleet view.
func (w *Worker) handleTopology(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	peers := make(map[string]string, len(w.peers))
	for k, v := range w.peers {
		peers[k] = v
	}
	ringNodes := w.ring.Len()
	w.mu.Unlock()
	writeJSONStatus(rw, http.StatusOK, map[string]any{
		"role":       "worker",
		"id":         w.cfg.ID,
		"advertise":  w.cfg.Advertise,
		"ring_nodes": ringNodes,
		"peers":      peers,
	})
}
