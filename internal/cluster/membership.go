package cluster

import (
	"sort"
	"sync"
	"time"
)

// JoinRequest is a worker's heartbeat body: POST /v1/cluster/join.
// The first heartbeat registers the worker; later ones refresh its
// liveness. Re-joining after a presumed death reactivates the member.
type JoinRequest struct {
	// ID is the worker's stable node identity (ring placement key).
	ID string `json:"id"`
	// Base is the worker's advertised API root, e.g. "http://10.0.0.7:8081".
	Base string `json:"base"`
	// QueueDepth is the worker's queued-plus-running job count at heartbeat
	// time — the load signal behind the coordinator's load-aware placement.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// JoinResponse acknowledges a heartbeat and carries the coordinator's
// current view of the fleet, which workers mirror into their own ring for
// peer-cache lookups.
type JoinResponse struct {
	// IntervalSec is the heartbeat cadence the coordinator expects.
	IntervalSec float64 `json:"interval_sec"`
	// Members is the full membership table, dead entries included (alive
	// distinguishes them), so a worker can see churn it missed.
	Members []MemberInfo `json:"members"`
}

// MemberInfo is the public view of one fleet member, also served by
// GET /v1/cluster.
type MemberInfo struct {
	ID       string    `json:"id"`
	Base     string    `json:"base"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"last_seen"`
	// QueueDepth is the load the member reported on its last heartbeat.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// member is the coordinator's record of one worker. The down channel is
// closed when the worker is declared dead, waking every placement
// goroutine streaming from it; a re-join replaces it with a fresh one.
type member struct {
	id       string
	base     string
	lastSeen time.Time
	alive    bool
	depth    int // queued+running jobs reported on the last heartbeat
	down     chan struct{}
}

// membership is the coordinator's worker table plus the placement ring.
// The ring holds only alive members; the table keeps dead ones so the
// topology endpoint can report churn.
type membership struct {
	mu      sync.Mutex
	ring    *Ring
	members map[string]*member
}

func newMembership(ringReplicas int) *membership {
	return &membership{ring: NewRing(ringReplicas), members: make(map[string]*member)}
}

// upsert registers or refreshes a member from a heartbeat. It returns
// whether this heartbeat (re)activated the member — i.e. it was new or
// previously declared dead.
func (m *membership) upsert(id, base string, depth int, now time.Time) (joined bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok || !mem.alive {
		m.members[id] = &member{id: id, base: base, lastSeen: now, alive: true, depth: depth, down: make(chan struct{})}
		m.ring.Add(id)
		return true
	}
	mem.lastSeen = now
	mem.base = base
	mem.depth = depth
	return false
}

// depthOf returns the load a live member last reported. ok is false for
// unknown or dead members (the ring walk then keeps their original rank).
func (m *membership) depthOf(id string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem := m.members[id]
	if mem == nil || !mem.alive {
		return 0, false
	}
	return mem.depth, true
}

// sweep declares members dead whose last heartbeat is older than timeout:
// they leave the ring and their down channel closes, aborting every
// in-flight placement on them so the scheduler can retry elsewhere.
// Returns the IDs declared dead this pass.
func (m *membership) sweep(now time.Time, timeout time.Duration) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dead []string
	for id, mem := range m.members {
		if mem.alive && now.Sub(mem.lastSeen) > timeout {
			mem.alive = false
			m.ring.Remove(id)
			close(mem.down)
			dead = append(dead, id)
		}
	}
	return dead
}

// get returns the live member record for id, or nil.
func (m *membership) get(id string) *member {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem := m.members[id]
	if mem == nil || !mem.alive {
		return nil
	}
	return mem
}

// alive counts live members.
func (m *membership) alive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, mem := range m.members {
		if mem.alive {
			n++
		}
	}
	return n
}

// snapshot returns the full member table sorted by ID.
func (m *membership) snapshot() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, MemberInfo{ID: mem.id, Base: mem.base, Alive: mem.alive, LastSeen: mem.lastSeen, QueueDepth: mem.depth})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
