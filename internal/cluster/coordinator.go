package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sparseadapt/internal/obs"
	"sparseadapt/internal/sched"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// CoordinatorConfig sizes a coordinator node. The zero value is usable.
type CoordinatorConfig struct {
	// Server configures the fronting job server (queue, rate limits,
	// durable journal, SSE). Exec is overridden: a coordinator never runs
	// jobs locally.
	Server server.Config
	// HeartbeatInterval is the cadence workers are told to report at
	// (default 1s). HeartbeatTimeout declares a silent worker dead
	// (default 3× the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// RingReplicas is the virtual-node count per worker on the placement
	// ring (default DefaultRingReplicas).
	RingReplicas int
}

func (c *CoordinatorConfig) defaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	if c.RingReplicas <= 0 {
		c.RingReplicas = DefaultRingReplicas
	}
}

// coordMetrics is the coordinator's slice of the cluster_* family
// (catalog in docs/OBSERVABILITY.md).
type coordMetrics struct {
	workersAlive      *obs.Gauge
	ringNodes         *obs.Gauge
	ringVNodes        *obs.Gauge
	workerJoins       *obs.Counter
	workerDeaths      *obs.Counter
	placements        *obs.Counter
	placementFailures *obs.Counter
	loadDeferrals     *obs.Counter
	jobsRequeued      *obs.Counter
	forwardLatency    *obs.Histogram
}

func newCoordMetrics(r *obs.Registry) coordMetrics {
	return coordMetrics{
		workersAlive:      r.Gauge("cluster_workers_alive", "worker nodes currently passing heartbeats"),
		ringNodes:         r.Gauge("cluster_ring_nodes", "nodes on the placement ring"),
		ringVNodes:        r.Gauge("cluster_ring_vnodes", "virtual points on the placement ring"),
		workerJoins:       r.Counter("cluster_worker_joins_total", "worker registrations (first heartbeat or rejoin after death)"),
		workerDeaths:      r.Counter("cluster_worker_deaths_total", "workers declared dead by heartbeat timeout"),
		placements:        r.Counter("cluster_placements_total", "job placement attempts on workers"),
		placementFailures: r.Counter("cluster_placement_failures_total", "placement attempts that failed (submit rejected, worker lost, no workers)"),
		loadDeferrals:     r.Counter("cluster_load_deferrals_total", "placements where load-aware ordering moved the ring owner off the front"),
		jobsRequeued:      r.Counter("cluster_jobs_requeued_total", "in-flight jobs sent back through retry after losing their worker"),
		forwardLatency:    r.Histogram("cluster_forward_latency_seconds", "wall time of one coordinator→worker placement round trip", sched.LatencyBuckets),
	}
}

// Coordinator is the cluster's front door: a full job server (admission,
// durable journal, SSE fan-out, retry/quarantine) whose execution
// function places each job on the worker owning its fingerprint on the
// consistent-hash ring, then relays the worker's epoch stream into the
// local job's event log. Worker death mid-job cancels the relay, and the
// scheduler's ordinary retry path re-places the job on the next ring
// successor — the same backoff and quarantine budget a local execution
// failure would consume.
type Coordinator struct {
	srv *server.Server
	cfg CoordinatorConfig
	mem *membership
	met coordMetrics

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator builds a coordinator from cfg.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.defaults()
	if cfg.Server.Metrics == nil {
		cfg.Server.Metrics = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:  cfg,
		mem:  newMembership(cfg.RingReplicas),
		met:  newCoordMetrics(cfg.Server.Metrics),
		stop: make(chan struct{}),
	}
	cfg.Server.Exec = c.place
	srv, err := server.New(cfg.Server)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	srv.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	srv.HandleFunc("GET /v1/cluster", c.handleTopology)
	return c, nil
}

// Server returns the fronting job server (HTTP handler, drain, journal).
func (c *Coordinator) Server() *server.Server { return c.srv }

// Start launches the worker pool and the heartbeat sweeper.
func (c *Coordinator) Start() {
	c.srv.Start()
	c.wg.Add(1)
	go c.sweepLoop()
}

// Drain shuts the job side down like server.Drain and stops the sweeper.
func (c *Coordinator) Drain(ctx context.Context) error {
	err := c.srv.Drain(ctx)
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	return err
}

// Close closes the durable store. Call after Drain.
func (c *Coordinator) Close() error { return c.srv.Close() }

func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			dead := c.mem.sweep(now, c.cfg.HeartbeatTimeout)
			c.met.workerDeaths.Add(int64(len(dead)))
			c.gauges()
		}
	}
}

func (c *Coordinator) gauges() {
	c.met.workersAlive.Set(float64(c.mem.alive()))
	c.met.ringNodes.Set(float64(c.mem.ring.Len()))
	c.met.ringVNodes.Set(float64(c.mem.ring.VNodes()))
}

// handleJoin is POST /v1/cluster/join — the worker heartbeat. Responds
// with the full membership table so workers can mirror the ring for
// peer-cache lookups.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var jr JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&jr); err != nil {
		writeJSONError(w, http.StatusBadRequest, "invalid join body: %v", err)
		return
	}
	if jr.ID == "" || jr.Base == "" {
		writeJSONError(w, http.StatusBadRequest, "join requires id and base")
		return
	}
	if c.mem.upsert(jr.ID, jr.Base, jr.QueueDepth, time.Now()) {
		c.met.workerJoins.Inc()
	}
	c.gauges()
	writeJSONStatus(w, http.StatusOK, JoinResponse{
		IntervalSec: c.cfg.HeartbeatInterval.Seconds(),
		Members:     c.mem.snapshot(),
	})
}

// handleTopology is GET /v1/cluster — the fleet view.
func (c *Coordinator) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSONStatus(w, http.StatusOK, map[string]any{
		"role":        "coordinator",
		"ring_nodes":  c.mem.ring.Len(),
		"ring_vnodes": c.mem.ring.VNodes(),
		"members":     c.mem.snapshot(),
	})
}

// place is the coordinator's sched.ExecFunc: one execution attempt =
// one placement on one worker. The candidate list is the ring's
// successor walk from the job fingerprint, so attempt 1 goes to the
// owner and each retry advances to the next distinct live worker — a
// dead or rejecting owner never strands a job while any worker lives.
func (c *Coordinator) place(ctx context.Context, j *sched.Job, attempt int) (*sched.JobResult, bool, error) {
	key := j.Request().Fingerprint()
	candidates := c.mem.ring.Successors(key, c.mem.ring.Len())
	if len(candidates) == 0 {
		c.met.placementFailures.Inc()
		return nil, false, fmt.Errorf("no live workers in the cluster")
	}
	// Load-aware ordering: heavily loaded candidates (per their last
	// heartbeat) defer behind lightly loaded ones, so a saturated owner is
	// skipped when a later successor is idle. Near-ties keep ring order —
	// cache affinity still decides when the fleet is evenly loaded.
	reordered := OrderByLoad(candidates, c.mem.depthOf)
	if reordered[0] != candidates[0] {
		c.met.loadDeferrals.Inc()
	}
	candidates = reordered
	mem := c.mem.get(candidates[(attempt-1)%len(candidates)])
	if mem == nil {
		// The sweeper declared it dead between the successor walk and now.
		c.met.placementFailures.Inc()
		return nil, false, fmt.Errorf("placement target died before submit")
	}
	c.met.placements.Inc()
	start := time.Now()

	// wctx aborts the placement the moment the worker is declared dead,
	// unblocking the SSE relay below so the attempt can fail fast and the
	// retry path re-place elsewhere.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-mem.down:
			cancel()
		case <-wctx.Done():
		}
	}()

	cl := client.New(mem.base)
	st, err := cl.SubmitWithRequestID(wctx, j.Request(), j.RequestID())
	if err != nil {
		c.met.placementFailures.Inc()
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		// %v, not %w: a worker-side context error must not read as OUR
		// cancellation, or the scheduler would finalize instead of retry.
		return nil, false, fmt.Errorf("worker %s rejected job: %v", mem.id, err)
	}
	remoteID := st.ID

	// Relay the worker's event stream into the local job: epoch events are
	// re-emitted (the coordinator's own SSE subscribers see them with
	// coordinator-local sequence numbers, so Last-Event-ID resumption keeps
	// working across the hop) and the terminal status is captured.
	var final *server.JobStatus
	serr := cl.Stream(wctx, remoteID, func(ev server.Event) error {
		if ev.Type == "epoch" && ev.Epoch != nil {
			j.Emit(*ev.Epoch)
		}
		if ev.Status != nil && ev.Status.Terminal() {
			final = ev.Status
		}
		return nil
	})
	c.met.forwardLatency.Observe(time.Since(start).Seconds())

	if ctx.Err() != nil {
		// Our side canceled (client DELETE, drain deadline, job timeout):
		// propagate to the worker so it stops burning cycles, then report
		// the cancellation upward.
		c.cancelRemote(mem.base, remoteID)
		return nil, false, ctx.Err()
	}
	if final == nil {
		// The stream broke before a terminal event — worker death or a
		// severed connection. Fail the attempt; retry re-places it.
		c.met.placementFailures.Inc()
		c.met.jobsRequeued.Inc()
		return nil, false, fmt.Errorf("worker %s lost mid-job: %v", mem.id, serr)
	}
	switch final.State {
	case server.StateDone:
		return final.Result, final.CacheHit, nil
	case server.StateCanceled:
		// We did not cancel, so the worker shed it (drain): transient.
		return nil, false, fmt.Errorf("worker %s shed the job: %s", mem.id, final.Error)
	default: // failed, quarantined
		return nil, false, fmt.Errorf("worker %s reported %s: %s", mem.id, final.State, final.Error)
	}
}

// cancelRemote best-effort cancels an orphaned worker-side job.
func (c *Coordinator) cancelRemote(base, id string) {
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	client.New(base).Cancel(ctx, id) //nolint:errcheck // best-effort cleanup
}

// writeJSONStatus and writeJSONError mirror the server's response shape
// for the cluster routes (the server's helpers are unexported).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSONStatus(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
