package cluster

import (
	"fmt"
	"sync"
	"testing"

	"sparseadapt/internal/engine"
)

// testKeys derives n distinct content-style keys (sha256 outputs, like
// real job fingerprints).
func testKeys(n int) []engine.Key {
	keys := make([]engine.Key, n)
	for i := range keys {
		keys[i] = engine.NewHasher("ring-test/v1").Int(i).Sum()
	}
	return keys
}

// TestRingDeterministicPlacement: the same key maps to the same owner on
// two independently built rings, regardless of insertion order.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	nodes := []string{"w1", "w2", "w3"}
	for _, n := range nodes {
		a.Add(n)
	}
	for i := range nodes {
		b.Add(nodes[len(nodes)-1-i]) // reverse order
	}
	for _, k := range testKeys(200) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatal("owner lookup on populated ring failed")
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("placement depends on insertion order: %s vs %s", oa, ob)
		}
	}
	// Double-add and absent-remove are no-ops.
	a.Add("w1")
	a.Remove("nope")
	if a.Len() != 3 || a.VNodes() != 3*DefaultRingReplicas {
		t.Errorf("ring has %d nodes / %d vnodes, want 3 / %d", a.Len(), a.VNodes(), 3*DefaultRingReplicas)
	}
}

// TestRingOwnerEmptyAndSuccessors covers the edge shapes: empty ring,
// successor walk longer than the membership, distinctness of the walk.
func TestRingOwnerEmptyAndSuccessors(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner(testKeys(1)[0]); ok {
		t.Error("empty ring reported an owner")
	}
	if succ := r.Successors(testKeys(1)[0], 3); succ != nil {
		t.Errorf("empty ring successors = %v, want nil", succ)
	}
	r.Add("w1")
	r.Add("w2")
	for _, k := range testKeys(50) {
		succ := r.Successors(k, 5)
		if len(succ) != 2 {
			t.Fatalf("successors = %v, want both nodes", succ)
		}
		if succ[0] == succ[1] {
			t.Fatalf("successor walk repeated a node: %v", succ)
		}
		owner, _ := r.Owner(k)
		if succ[0] != owner {
			t.Fatalf("first successor %s is not the owner %s", succ[0], owner)
		}
	}
}

// TestRingMinimalMovement: adding one node to an n-node ring must move
// roughly 1/(n+1) of the key space and NEVER move a key between two
// pre-existing nodes; removing it must restore the original placement
// exactly.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := testKeys(2000)
	before := make(map[engine.Key]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("w-new")
	moved := 0
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != before[k] {
			if owner != "w-new" {
				t.Fatalf("key moved between pre-existing nodes: %s -> %s", before[k], owner)
			}
			moved++
		}
	}
	// Expectation is 1/5 of the keys; accept a wide band around it to stay
	// robust to vnode placement variance.
	if frac := float64(moved) / float64(len(keys)); frac < 0.08 || frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys, want roughly 20%%", frac*100)
	}

	r.Remove("w-new")
	for _, k := range keys {
		if owner, _ := r.Owner(k); owner != before[k] {
			t.Fatalf("leave did not restore placement: %s -> %s", before[k], owner)
		}
	}
}

// TestRingBalance: with vnode replication no worker should own a wildly
// disproportionate share of the key space.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	const workers = 4
	for i := 0; i < workers; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, k := range keys {
		owner, _ := r.Owner(k)
		counts[owner]++
	}
	want := len(keys) / workers
	for node, got := range counts {
		if got < want/3 || got > want*3 {
			t.Errorf("node %s owns %d of %d keys (fair share %d)", node, got, len(keys), want)
		}
	}
}

// TestRingConcurrentRebalance drives lookups concurrently with joins and
// leaves; run under -race this is the data-race check for the ring, and
// it asserts lookups never fail while at least one stable node remains.
func TestRingConcurrentRebalance(t *testing.T) {
	r := NewRing(16)
	r.Add("stable")
	keys := testKeys(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node := fmt.Sprintf("churn-%d", g)
				if i%2 == 0 {
					r.Add(node)
				} else {
					r.Remove(node)
				}
			}
		}(g)
	}
	for i := 0; i < 500; i++ {
		k := keys[i%len(keys)]
		if _, ok := r.Owner(k); !ok {
			t.Error("lookup failed with the stable node present")
			break
		}
		r.Successors(k, 3)
		r.Nodes()
	}
	close(stop)
	wg.Wait()
}

// depthMap adapts a plain map to OrderByLoad's lookup signature.
func depthMap(m map[string]int) func(string) (int, bool) {
	return func(id string) (int, bool) {
		d, ok := m[id]
		return d, ok
	}
}

// TestOrderByLoadSkewed: a saturated worker is deferred behind idle
// successors, while order within each load class stays the ring walk.
func TestOrderByLoadSkewed(t *testing.T) {
	walk := []string{"owner", "succ1", "succ2", "succ3"}
	got := OrderByLoad(walk, depthMap(map[string]int{
		"owner": 40, "succ1": 0, "succ2": 37, "succ3": 1,
	}))
	want := []string{"succ1", "succ3", "owner", "succ2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("skewed order = %v, want %v", got, want)
		}
	}
	// The input walk must not be reordered in place: retries index into it.
	if walk[0] != "owner" {
		t.Fatalf("input mutated: %v", walk)
	}
}

// TestOrderByLoadTies: balanced and near-balanced fleets keep pure ring
// order, so cache affinity still decides placement.
func TestOrderByLoadTies(t *testing.T) {
	walk := []string{"a", "b", "c"}
	cases := []map[string]int{
		{"a": 3, "b": 3, "c": 3},              // uniform
		{"a": 3 + LoadSpread, "b": 3, "c": 3}, // owner within slack
		{},                                    // no heartbeat data at all
		{"a": 100},                            // only one depth known: nothing to compare down to
	}
	for i, depths := range cases {
		got := OrderByLoad(walk, depthMap(depths))
		for j := range walk {
			if got[j] != walk[j] {
				t.Fatalf("case %d reordered: %v", i, got)
			}
		}
	}
	// One past the slack defers.
	got := OrderByLoad(walk, depthMap(map[string]int{"a": 3 + LoadSpread + 1, "b": 3, "c": 3}))
	if got[0] != "b" || got[2] != "a" {
		t.Fatalf("owner past slack kept rank: %v", got)
	}
}

// TestOrderByLoadUnknownIsLight: candidates without heartbeat data rank as
// light — placement never penalizes a worker for a signal gap.
func TestOrderByLoadUnknownIsLight(t *testing.T) {
	got := OrderByLoad([]string{"a", "b", "c"}, depthMap(map[string]int{"a": 50, "c": 0}))
	if got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("order = %v, want [b c a]", got)
	}
}
