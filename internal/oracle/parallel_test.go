package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/sim"
)

// recordWorkload builds the small deterministic workload + sample the
// parallel tests record.
func recordWorkload(t *testing.T) (kernels.Workload, []config.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	am := matrix.Uniform(rng, 96, 96, 900)
	_, w, err := kernels.SpMSpM(am.ToCSC(), am.ToCSR(), chip.NGPE(), chip.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	return w, SampleConfigs(rng, 12, config.CacheMode)
}

// marshal serializes a recording for byte comparison.
func marshal(t *testing.T, rec *Recording) []byte {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecordDeterministicAcrossWorkers is the paper-methodology guarantee:
// the stitched oracle grid must be byte-identical whether recorded
// serially, with 4 workers, with 8 workers, or re-assembled from a warm
// content-addressed cache. Run under -race in CI.
func TestRecordDeterministicAcrossWorkers(t *testing.T) {
	w, cfgs := recordWorkload(t)
	ref, err := Record(chip, sim.DefaultBandwidth, w, 0.05, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := marshal(t, ref)

	cache, err := engine.NewCache(256, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		eng := engine.New(engine.Options{Workers: workers, Cache: cache})
		rec, err := RecordEngine(context.Background(), eng, chip, sim.DefaultBandwidth, w, 0.05, cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(marshal(t, rec), refBytes) {
			t.Fatalf("recording differs from serial reference at %d workers", workers)
		}
	}
	// The second and third runs above were warm: every row must have come
	// from cache, not re-simulation.
	hits, misses, _ := cache.Counts()
	if misses != int64(len(cfgs)) {
		t.Fatalf("cache misses = %d, want one per config (%d)", misses, len(cfgs))
	}
	if hits != int64(2*len(cfgs)) {
		t.Fatalf("cache hits = %d, want %d (two fully warm reruns)", hits, 2*len(cfgs))
	}
}

// TestRecordCachedAcrossRestart runs the same recording through two engines
// sharing only the disk tier, asserting the second run is near-zero
// recompute and still byte-identical.
func TestRecordCachedAcrossRestart(t *testing.T) {
	w, cfgs := recordWorkload(t)
	dir := t.TempDir()

	c1, err := engine.NewCache(256, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := engine.New(engine.Options{Workers: 4, Cache: c1})
	rec1, err := RecordEngine(context.Background(), e1, chip, sim.DefaultBandwidth, w, 0.05, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := engine.NewCache(256, dir) // fresh process, warm disk
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Options{Workers: 4, Cache: c2})
	rec2, err := RecordEngine(context.Background(), e2, chip, sim.DefaultBandwidth, w, 0.05, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, rec1), marshal(t, rec2)) {
		t.Fatal("disk-cached recording differs from original")
	}
	if hits, misses, _ := c2.Counts(); misses != 0 || hits != int64(len(cfgs)) {
		t.Fatalf("restart run not served from disk: hits=%d misses=%d", hits, misses)
	}
}

// TestRecordEngineCancel verifies recording honours context cancellation.
func TestRecordEngineCancel(t *testing.T) {
	w, cfgs := recordWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RecordEngine(ctx, engine.New(engine.Options{Workers: 2}), chip, sim.DefaultBandwidth, w, 0.05, cfgs); err == nil {
		t.Fatal("cancelled recording returned nil error")
	}
}

// TestTraceFingerprintStability: equal traces agree, perturbed traces
// differ — the workload-identity half of the cache key.
func TestTraceFingerprintStability(t *testing.T) {
	w, _ := recordWorkload(t)
	if w.Trace.Fingerprint() != w.Trace.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	rng := rand.New(rand.NewSource(2)) // different matrix → different trace
	am := matrix.Uniform(rng, 96, 96, 900)
	_, w2, err := kernels.SpMSpM(am.ToCSC(), am.ToCSR(), chip.NGPE(), chip.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	if w.Trace.Fingerprint() == w2.Trace.Fingerprint() {
		t.Fatal("distinct traces share a fingerprint")
	}
}
