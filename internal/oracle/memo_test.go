package oracle

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/sim"
)

// TestRecordEngineMemoByteIdentical: a memoized recording must be
// byte-identical to the memoless reference, both on the filling pass and on
// a fully-memoized second pass. Run under -race in CI, which also covers
// concurrent memo access from the 4-worker pool.
func TestRecordEngineMemoByteIdentical(t *testing.T) {
	w, cfgs := recordWorkload(t)
	ref, err := Record(chip, sim.DefaultBandwidth, w, 0.05, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := marshal(t, ref)

	memo := sim.NewRunMemo(0)
	for pass := 0; pass < 2; pass++ {
		eng := engine.New(engine.Options{Workers: 4})
		rec, err := RecordEngineMemo(context.Background(), eng, memo, chip, sim.DefaultBandwidth, w, 0.05, cfgs)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(marshal(t, rec), refBytes) {
			t.Fatalf("pass %d: memoized recording differs from memoless reference", pass)
		}
	}
	hits, misses := memo.Counts()
	if misses != int64(len(cfgs)) {
		t.Fatalf("memo misses = %d, want one per config (%d)", misses, len(cfgs))
	}
	if hits != int64(len(cfgs)) {
		t.Fatalf("memo hits = %d, want one per config on the second pass (%d)", hits, len(cfgs))
	}
}

// TestEngineParallelSpeedup asserts the worker pool actually speeds up
// oracle recording: workers=4 must beat workers=1 by a real margin on a
// non-trivial grid. Guarded: parallel speedup cannot exist with fewer than
// 4 schedulable CPUs, so the test skips there (single-CPU CI runners, the
// -race scheduler notwithstanding).
func TestEngineParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: parallel speedup unmeasurable below 4", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	w, cfgs := recordWorkload(t)

	record := func(workers int) time.Duration {
		t.Helper()
		eng := engine.New(engine.Options{Workers: workers})
		start := time.Now()
		if _, err := RecordEngine(context.Background(), eng, chip, sim.DefaultBandwidth, w, 0.05, cfgs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	record(1) // warm the trace's epoch aggregates so both timed runs see them

	t1 := record(1)
	t4 := record(4)
	// "Measurably faster": conservative 1.5x so scheduler noise on busy CI
	// machines cannot flake the test, while a re-serialized pool (the ~1.0x
	// regression this PR fixed) still fails it decisively.
	if t4 > t1*2/3 {
		t.Fatalf("workers=4 took %v vs %v at workers=1 (%.2fx); want >= 1.5x speedup",
			t4, t1, float64(t1)/float64(t4))
	}
}
