package oracle

import (
	"math"
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// bruteForceMinEnergy enumerates every configuration sequence of the
// recording and returns the minimum total energy (the exact Energy-
// Efficient-mode optimum, since FP work is sequence-invariant).
func bruteForceMinEnergy(rec *Recording) (float64, []int) {
	S, E := len(rec.Configs), len(rec.Epochs)
	bestE := math.Inf(1)
	var bestSeq []int
	seq := make([]int, E)
	var walk func(e int)
	walk = func(e int) {
		if e == E {
			m := rec.SequenceMetrics(seq)
			if m.EnergyJ < bestE {
				bestE = m.EnergyJ
				bestSeq = append([]int{}, seq...)
			}
			return
		}
		for s := 0; s < S; s++ {
			seq[e] = s
			walk(e + 1)
		}
	}
	walk(0)
	return bestE, bestSeq
}

// TestOracleMatchesBruteForce checks the DAG shortest path against
// exhaustive enumeration on a small instance. Energy-Efficient mode is an
// exact additive objective, so the Oracle must find the true optimum.
func TestOracleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	am := matrix.Uniform(rng, 48, 48, 300)
	x := matrix.RandomVec(rng, 48, 0.5)
	_, w, _ := kernels.SpMSpV(am.ToCSC(), x, chip.NGPE(), chip.Tiles)

	// Keep the instance tiny: 4 configs, and clamp epochs by a coarse
	// epoch scale.
	cfgs := []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg,
		{config.CacheMode, config.Shared, config.Shared, 1, 1, 2, 0}}
	epochScale := 0.3
	for len(w.Epochs(epochScale)) > 7 {
		epochScale *= 2
	}
	rec, err := Record(chip, sim.DefaultBandwidth, w, epochScale, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Epochs) < 2 {
		t.Skip("too few epochs for a meaningful path")
	}

	wantE, wantSeq := bruteForceMinEnergy(rec)
	_, got := rec.Oracle(power.EnergyEfficient)
	if got.EnergyJ > wantE*(1+1e-9) {
		t.Fatalf("oracle energy %v, brute force found %v (seq %v)", got.EnergyJ, wantE, wantSeq)
	}
}

// TestOraclePowerPerfNearBruteForce checks the iteratively re-weighted
// shortest path against enumeration on the non-additive T²E objective; the
// paper itself calls the construction an approximate global optimum, so a
// small slack is allowed.
func TestOraclePowerPerfNearBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	am := matrix.Uniform(rng, 48, 48, 300)
	x := matrix.RandomVec(rng, 48, 0.5)
	_, w, _ := kernels.SpMSpV(am.ToCSC(), x, chip.NGPE(), chip.Tiles)

	cfgs := []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg}
	epochScale := 0.3
	for len(w.Epochs(epochScale)) > 6 {
		epochScale *= 2
	}
	rec, err := Record(chip, sim.DefaultBandwidth, w, epochScale, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Epochs) < 2 {
		t.Skip("too few epochs")
	}

	// Brute force on the true objective.
	S, E := len(rec.Configs), len(rec.Epochs)
	best := -1.0
	seq := make([]int, E)
	var walk func(e int)
	walk = func(e int) {
		if e == E {
			if s := rec.SequenceMetrics(seq).Score(power.PowerPerformance); s > best {
				best = s
			}
			return
		}
		for s := 0; s < S; s++ {
			seq[e] = s
			walk(e + 1)
		}
	}
	walk(0)

	_, got := rec.Oracle(power.PowerPerformance)
	if got.Score(power.PowerPerformance) < best*0.95 {
		t.Fatalf("PP oracle score %v more than 5%% below brute force %v",
			got.Score(power.PowerPerformance), best)
	}
}
