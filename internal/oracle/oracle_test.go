package oracle

import (
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

var chip = power.Chip{Tiles: 2, GPEsPerTile: 8}

func record(t *testing.T, nCfg int) *Recording {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	am := matrix.Uniform(rng, 96, 96, 900)
	_, w, _ := kernels.SpMSpM(am.ToCSC(), am.ToCSR(), chip.NGPE(), chip.Tiles)
	cfgs := SampleConfigs(rng, nCfg, config.CacheMode)
	rec, err := Record(chip, sim.DefaultBandwidth, w, 0.05, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecordShape(t *testing.T) {
	rec := record(t, 10)
	if len(rec.Grid) != len(rec.Configs) {
		t.Fatalf("grid rows %d configs %d", len(rec.Grid), len(rec.Configs))
	}
	for s := range rec.Grid {
		if len(rec.Grid[s]) != len(rec.Epochs) {
			t.Fatalf("row %d has %d epochs, want %d", s, len(rec.Grid[s]), len(rec.Epochs))
		}
		for e, r := range rec.Grid[s] {
			if r.Metrics.TimeSec <= 0 {
				t.Fatalf("cell (%d,%d) has no time", s, e)
			}
		}
	}
}

func TestRecordErrors(t *testing.T) {
	if _, err := Record(chip, sim.DefaultBandwidth, kernels.Workload{}, 1, nil); err == nil {
		t.Fatal("empty config set accepted")
	}
}

func TestSampleConfigsPinsStandards(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfgs := SampleConfigs(rng, 20, config.CacheMode)
	found := map[int]bool{}
	for _, c := range cfgs {
		found[c.Index()] = true
		if c.L1IsSPM() {
			t.Fatal("SPM config in cache sample")
		}
	}
	for _, want := range []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg} {
		if !found[want.Index()] {
			t.Fatalf("standard config %v not pinned", want)
		}
	}
	spm := SampleConfigs(rng, 10, config.SPMMode)
	foundSPM := false
	for _, c := range spm {
		if c.Index() == config.BestAvgSPM.Index() {
			foundSPM = true
		}
	}
	if !foundSPM {
		t.Fatal("BestAvgSPM not pinned in SPM sample")
	}
}

func TestHierarchyOfSchemes(t *testing.T) {
	rec := record(t, 16)
	for _, mode := range []power.Mode{power.EnergyEfficient, power.PowerPerformance} {
		_, statics := rec.IdealStatic(mode)
		greedySeq, greedy := rec.IdealGreedy(mode)
		oracleSeq, orc := rec.Oracle(mode)

		if len(greedySeq) != len(rec.Epochs) || len(oracleSeq) != len(rec.Epochs) {
			t.Fatal("sequence length mismatch")
		}
		// The Oracle must beat or match Ideal Static (it can always hold one
		// config for the whole run).
		if orc.Score(mode) < statics.Score(mode)*0.999 {
			t.Fatalf("%v: oracle (%.4g) worse than ideal static (%.4g)",
				mode, orc.Score(mode), statics.Score(mode))
		}
		// The Oracle accounts transitions; greedy ignores future costs, so
		// oracle ≥ greedy is expected up to scalarization approximation.
		if orc.Score(mode) < greedy.Score(mode)*0.98 {
			t.Fatalf("%v: oracle (%.4g) clearly worse than greedy (%.4g)",
				mode, orc.Score(mode), greedy.Score(mode))
		}
	}
}

func TestSequenceMetricsConsistent(t *testing.T) {
	rec := record(t, 8)
	seq, tot := rec.IdealGreedy(power.EnergyEfficient)
	if re := rec.SequenceMetrics(seq); re != tot {
		t.Fatalf("SequenceMetrics disagrees: %+v vs %+v", re, tot)
	}
	// A constant sequence equals the static sum (no transitions).
	constSeq := make([]int, len(rec.Epochs))
	var want power.Metrics
	for e := range rec.Epochs {
		want.Add(rec.Grid[0][e].Metrics)
	}
	if got := rec.SequenceMetrics(constSeq); got != want {
		t.Fatalf("constant sequence metrics wrong: %+v vs %+v", got, want)
	}
}

func TestOracleBeatsProfileAdapt(t *testing.T) {
	rec := record(t, 16)
	for _, mode := range []power.Mode{power.EnergyEfficient, power.PowerPerformance} {
		_, orc := rec.Oracle(mode)
		naive := rec.ProfileAdapt(mode, true)
		ideal := rec.ProfileAdapt(mode, false)
		if naive.Score(mode) > orc.Score(mode) {
			t.Fatalf("%v: naive ProfileAdapt beat the oracle", mode)
		}
		// The ideal variant switches less, so it should not be worse than
		// the naive one.
		if ideal.Score(mode) < naive.Score(mode)*0.999 {
			t.Fatalf("%v: ideal ProfileAdapt (%.4g) worse than naive (%.4g)",
				mode, ideal.Score(mode), naive.Score(mode))
		}
		// Work is conserved in the stitched schedules.
		if naive.FPOps != orc.FPOps {
			t.Fatalf("FP ops not conserved: %v vs %v", naive.FPOps, orc.FPOps)
		}
	}
}

func TestTransitionPricing(t *testing.T) {
	rec := record(t, 8)
	// Identity transitions are free.
	if tr := rec.transition(3, 3, 1); tr != (power.Metrics{}) {
		t.Fatalf("self transition not free: %+v", tr)
	}
	// Find two configs differing in a flushing parameter.
	for a := range rec.Configs {
		for b := range rec.Configs {
			cls := config.Classify(rec.Configs[a], rec.Configs[b])
			if cls.FlushL1 || cls.FlushL2 {
				tr := rec.transition(a, b, 1)
				if tr.TimeSec <= 0 {
					t.Fatalf("flushing transition has no cost: %v -> %v", rec.Configs[a], rec.Configs[b])
				}
				return
			}
		}
	}
	t.Skip("sample contained no flushing pair")
}

func TestProfileIndexPrefersMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	am := matrix.Uniform(rng, 64, 64, 400)
	x := matrix.RandomVec(rng, 64, 0.5)
	_, w, _ := kernels.SpMSpV(am.ToCSC(), x, chip.NGPE(), chip.Tiles)
	cfgs := []config.Config{config.Baseline, config.MaxCfg, config.BestAvgCache}
	rec, err := Record(chip, sim.DefaultBandwidth, w, 0.1, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.profileIndex(); rec.Configs[got] != config.MaxCfg {
		t.Fatalf("profiling config should be MaxCfg, got %v", rec.Configs[got])
	}
}
