// Package oracle implements the paper's hypothetical comparison schemes
// (Sections 5.3, 6.2, 6.4 and Appendix A.7): Ideal Static, Ideal Greedy,
// the Oracle — a globally optimal configuration sequence found by shortest
// path over the epoch × configuration DAG — and the prior-work ProfileAdapt
// scheme in both its naïve and ideal variants.
//
// All schemes are built by the paper's stitching methodology: the workload
// is simulated in its entirety under each of S sampled configurations,
// per-epoch segments are recorded, and dynamic schemes are assembled by
// stitching segments with reconfiguration penalties charged at the
// boundaries.
package oracle

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// EpochRecord is one (configuration, epoch) cell of the recording.
type EpochRecord struct {
	Metrics power.Metrics
	// Dirty line counts at the end of the epoch, used to price a transition
	// away from this configuration at the boundary.
	DirtyL1, DirtyL2 int
}

// Recording holds the full S × E simulation grid.
type Recording struct {
	Chip    power.Chip
	BW      float64
	Configs []config.Config
	Epochs  []sim.EpochRange
	// NNZ is the nonzero count of the workload's primary operand, used to
	// price format-conversion cycles when a stitched transition crosses the
	// Format axis.
	NNZ int
	// Grid[s][e] is the record of epoch e under configuration s.
	Grid [][]EpochRecord
}

// Record simulates the workload end-to-end under each configuration
// (Appendix A.7 uses S = 256 random samples; callers pick the sample). The
// provided configurations should share one L1 type. It runs serially; use
// RecordEngine to spread the per-configuration simulations across workers.
func Record(chip power.Chip, bw float64, w kernels.Workload, epochScale float64, cfgs []config.Config) (*Recording, error) {
	return RecordEngine(context.Background(), nil, chip, bw, w, epochScale, cfgs)
}

// RecordEngine builds the recording with each configuration's end-to-end
// simulation as one engine task. Rows are independent — every task gets a
// fresh machine over the shared read-only trace — and the grid is assembled
// in configuration order, so the recording is byte-identical at any worker
// count. Rows are content-addressed by (trace fingerprint, epoching, chip,
// bandwidth, configuration), so a warm cache skips re-simulating
// configurations seen in earlier runs. A nil eng runs serially uncached.
func RecordEngine(ctx context.Context, eng *engine.Engine, chip power.Chip, bw float64, w kernels.Workload, epochScale float64, cfgs []config.Config) (*Recording, error) {
	return RecordEngineMemo(ctx, eng, nil, chip, bw, w, epochScale, cfgs)
}

// RecordEngineMemo is RecordEngine with an optional in-process replay memo
// (sim.RunMemo): rows whose (trace, chip, bandwidth, config, epoching) key
// was already replayed this process — by an earlier recording, a trainer
// sweep or another experiment mode — are served from memory without
// re-simulating, and are byte-identical to a cold replay. A nil memo is
// exactly RecordEngine. The engine result cache still operates underneath
// for cross-process reuse.
func RecordEngineMemo(ctx context.Context, eng *engine.Engine, memo *sim.RunMemo, chip power.Chip, bw float64, w kernels.Workload, epochScale float64, cfgs []config.Config) (*Recording, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("oracle: no configurations to record")
	}
	rec := &Recording{Chip: chip, BW: bw, Configs: cfgs, Epochs: w.Epochs(epochScale), NNZ: w.Trace.NNZ}
	if len(rec.Epochs) == 0 {
		return nil, fmt.Errorf("oracle: workload has no epochs")
	}
	fp := w.Trace.Fingerprint()
	tasks := make([]engine.Task[[]EpochRecord], len(cfgs))
	for s, cfg := range cfgs {
		cfg := cfg
		key := engine.NewHasher("sparseadapt/oracle-row/v1").
			U64(fp).Int(w.EpochFPOps).F64(epochScale).
			Int(chip.Tiles, chip.GPEsPerTile).F64(bw).
			Int(cfg.Index()).Sum()
		tasks[s] = engine.Task[[]EpochRecord]{Key: key, Compute: func(ctx context.Context) ([]EpochRecord, error) {
			rs, err := sim.RunEpochs(ctx, memo, chip, bw, cfg, w.Trace, rec.Epochs)
			if err != nil {
				return nil, err
			}
			row := make([]EpochRecord, len(rs))
			for e, r := range rs {
				row[e] = EpochRecord{Metrics: r.Metrics, DirtyL1: r.DirtyL1, DirtyL2: r.DirtyL2}
			}
			return row, nil
		}}
	}
	grid, err := engine.Map(ctx, eng, tasks)
	if err != nil {
		return nil, err
	}
	rec.Grid = grid
	return rec, nil
}

// RecordSource builds the recording over the widened action space: each
// sampled configuration is simulated on the trace of its own kernel
// variant (dataflow × format × scheduling), split into the same number of
// work-aligned epochs as the natural variant (sim.Trace.EpochsN) so rows
// stitch cell-for-cell even though the underlying traces differ. It runs
// serially; RecordSourceEngine spreads rows across workers.
func RecordSource(chip power.Chip, bw float64, src *kernels.Source, epochScale float64, cfgs []config.Config) (*Recording, error) {
	return RecordSourceEngine(context.Background(), nil, nil, chip, bw, src, epochScale, cfgs)
}

// RecordSourceEngine is the engine-parallel, memoizable form of
// RecordSource. Rows are content-addressed by (variant trace fingerprint,
// epoch grid, chip, bandwidth, configuration), so variants shared by many
// configurations are traced once (the Source caches builds) and replayed
// per configuration, byte-identical at any worker count. A nil eng runs
// serially uncached; a nil memo disables in-process replay reuse.
func RecordSourceEngine(ctx context.Context, eng *engine.Engine, memo *sim.RunMemo, chip power.Chip, bw float64, src *kernels.Source, epochScale float64, cfgs []config.Config) (*Recording, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("oracle: no configurations to record")
	}
	nEpochs, nat, err := src.GridEpochs(epochScale)
	if err != nil {
		return nil, err
	}
	if nEpochs == 0 {
		return nil, fmt.Errorf("oracle: source %s has no epochs", src.Name())
	}
	rec := &Recording{Chip: chip, BW: bw, Configs: cfgs, Epochs: nat.Trace.EpochsN(nEpochs), NNZ: nat.Trace.NNZ}
	// Resolve every variant up front (cached in the Source) so tasks only
	// replay, and so a build error surfaces before any simulation runs.
	variants := make([]kernels.Workload, len(cfgs))
	for s, cfg := range cfgs {
		w, err := src.Variant(cfg)
		if err != nil {
			return nil, err
		}
		eps := w.Trace.EpochsN(nEpochs)
		if len(eps) != nEpochs {
			return nil, fmt.Errorf("oracle: variant %s splits into %d epochs, grid has %d", w.Name, len(eps), nEpochs)
		}
		variants[s] = w
	}
	tasks := make([]engine.Task[[]EpochRecord], len(cfgs))
	for s, cfg := range cfgs {
		cfg, w := cfg, variants[s]
		key := engine.NewHasher("sparseadapt/oracle-srcrow/v1").
			U64(w.Trace.Fingerprint()).Int(nEpochs).F64(epochScale).
			Int(chip.Tiles, chip.GPEsPerTile).F64(bw).
			Int(cfg.Index()).Sum()
		tasks[s] = engine.Task[[]EpochRecord]{Key: key, Compute: func(ctx context.Context) ([]EpochRecord, error) {
			rs, err := sim.RunEpochs(ctx, memo, chip, bw, cfg, w.Trace, w.Trace.EpochsN(nEpochs))
			if err != nil {
				return nil, err
			}
			row := make([]EpochRecord, len(rs))
			for e, r := range rs {
				row[e] = EpochRecord{Metrics: r.Metrics, DirtyL1: r.DirtyL1, DirtyL2: r.DirtyL2}
			}
			return row, nil
		}}
	}
	grid, err := engine.Map(ctx, eng, tasks)
	if err != nil {
		return nil, err
	}
	rec.Grid = grid
	return rec, nil
}

// SampleConfigs draws the S-config sample for a recording, always including
// the standard comparison points with the same L1 type so Ideal Static is
// at least as good as any of them.
func SampleConfigs(rng *rand.Rand, s, l1Type int) []config.Config {
	pinned := []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg}
	if l1Type == config.SPMMode {
		pinned = []config.Config{config.BestAvgSPM, config.MaxCfgSPM}
	}
	seen := map[int]bool{}
	out := make([]config.Config, 0, s+len(pinned))
	for _, c := range pinned {
		if !seen[c.Index()] {
			out = append(out, c)
			seen[c.Index()] = true
		}
	}
	for _, c := range config.Sample(rng, s, l1Type) {
		if len(out) >= s {
			break
		}
		if !seen[c.Index()] {
			out = append(out, c)
			seen[c.Index()] = true
		}
	}
	return out
}

// transition prices the boundary between config indices a→b entering epoch
// e (no cost for a == b).
func (r *Recording) transition(a, b, e int) power.Metrics {
	if a == b {
		return power.Metrics{}
	}
	prev := r.Grid[a][e-1]
	t, en := sim.TransitionPenalty(r.Chip, r.Configs[a], r.Configs[b], prev.DirtyL1, prev.DirtyL2, r.NNZ, r.BW)
	return power.Metrics{TimeSec: t, EnergyJ: en}
}

// IdealStatic returns the sampled configuration with the best whole-run
// score — the gain an ideal compile-time predictor could reach (§6.2).
func (r *Recording) IdealStatic(mode power.Mode) (config.Config, power.Metrics) {
	bestS, bestM, bestScore := 0, power.Metrics{}, math.Inf(-1)
	for s := range r.Configs {
		var tot power.Metrics
		for e := range r.Epochs {
			tot.Add(r.Grid[s][e].Metrics)
		}
		if sc := tot.Score(mode); sc > bestScore {
			bestS, bestM, bestScore = s, tot, sc
		}
	}
	return r.Configs[bestS], bestM
}

// IdealGreedy stitches the per-epoch best configurations — SparseAdapt with
// a perfect single-step predictor (§6.2). It returns the config sequence
// and total metrics including transition penalties.
func (r *Recording) IdealGreedy(mode power.Mode) ([]int, power.Metrics) {
	seq := make([]int, len(r.Epochs))
	var tot power.Metrics
	prev := -1
	for e := range r.Epochs {
		best, bestScore := 0, math.Inf(-1)
		for s := range r.Configs {
			if sc := r.Grid[s][e].Metrics.Score(mode); sc > bestScore {
				best, bestScore = s, sc
			}
		}
		seq[e] = best
		if prev >= 0 {
			tot.Add(r.transition(prev, best, e))
		}
		tot.Add(r.Grid[best][e].Metrics)
		prev = best
	}
	return seq, tot
}

// Oracle computes the globally optimal configuration sequence by dynamic
// programming over the epoch × configuration DAG (the paper's
// Dijkstra-style construction, Appendix A.7 step 7). Energy-Efficient mode
// minimizes total energy exactly (work is fixed); Power-Performance mode
// minimizes T²·E via iteratively re-weighted shortest paths, matching the
// paper's "approximate global optimum".
func (r *Recording) Oracle(mode power.Mode) ([]int, power.Metrics) {
	// Initial weights from the Ideal Static totals.
	_, ref := r.IdealStatic(mode)
	wT, wE := weights(mode, ref)
	var seq []int
	var tot power.Metrics
	for iter := 0; iter < 6; iter++ {
		seq, tot = r.shortestPath(wT, wE)
		nwT, nwE := weights(mode, tot)
		if math.Abs(nwT-wT) < 1e-9*math.Abs(wT)+1e-30 && math.Abs(nwE-wE) < 1e-9*math.Abs(wE)+1e-30 {
			break
		}
		wT, wE = nwT, nwE
	}
	return seq, tot
}

// weights returns the scalarization d(objective)/d(t,e) around the totals:
// EE minimizes E (∂ log E); PP minimizes T²E (∂ log = 2dT/T + dE/E).
func weights(mode power.Mode, tot power.Metrics) (wT, wE float64) {
	if mode == power.EnergyEfficient {
		return 0, 1
	}
	t, e := tot.TimeSec, tot.EnergyJ
	if t <= 0 || e <= 0 {
		return 1, 1
	}
	return 2 / t, 1 / e
}

// shortestPath runs the DAG DP with per-epoch cost wT·t + wE·e.
func (r *Recording) shortestPath(wT, wE float64) ([]int, power.Metrics) {
	S, E := len(r.Configs), len(r.Epochs)
	cost := func(m power.Metrics) float64 { return wT*m.TimeSec + wE*m.EnergyJ }
	dist := make([][]float64, E)
	from := make([][]int, E)
	for e := range dist {
		dist[e] = make([]float64, S)
		from[e] = make([]int, S)
	}
	for s := 0; s < S; s++ {
		dist[0][s] = cost(r.Grid[s][0].Metrics)
		from[0][s] = -1
	}
	for e := 1; e < E; e++ {
		for s := 0; s < S; s++ {
			best, bestC := -1, math.Inf(1)
			for sp := 0; sp < S; sp++ {
				c := dist[e-1][sp] + cost(r.transition(sp, s, e))
				if c < bestC {
					best, bestC = sp, c
				}
			}
			dist[e][s] = bestC + cost(r.Grid[s][e].Metrics)
			from[e][s] = best
		}
	}
	// Backtrack from the best terminal state.
	last, bestC := 0, math.Inf(1)
	for s := 0; s < S; s++ {
		if dist[E-1][s] < bestC {
			last, bestC = s, dist[E-1][s]
		}
	}
	seq := make([]int, E)
	seq[E-1] = last
	for e := E - 1; e > 0; e-- {
		seq[e-1] = from[e][seq[e]]
	}
	var tot power.Metrics
	prev := -1
	for e, s := range seq {
		if prev >= 0 {
			tot.Add(r.transition(prev, s, e))
		}
		tot.Add(r.Grid[s][e].Metrics)
		prev = s
	}
	return seq, tot
}

// SequenceMetrics totals an arbitrary configuration-index sequence with
// transition penalties — used to price externally chosen sequences.
func (r *Recording) SequenceMetrics(seq []int) power.Metrics {
	var tot power.Metrics
	prev := -1
	for e, s := range seq {
		if prev >= 0 {
			tot.Add(r.transition(prev, s, e))
		}
		tot.Add(r.Grid[s][e].Metrics)
		prev = s
	}
	return tot
}

// ProfileAdapt models the prior-work scheme of Dubach et al. on top of the
// Ideal Greedy sequence (Appendix A.7 step 8): before each adaptation the
// hardware first switches to a profiling configuration in which every
// parameter takes its maximum value, executes part of the epoch there, and
// only then moves to the selected configuration. naive switches at every
// epoch; the ideal variant (naive=false) only at epochs where the selected
// configuration changes, which presumes an external phase detector.
func (r *Recording) ProfileAdapt(mode power.Mode, naive bool) power.Metrics {
	seq, _ := r.IdealGreedy(mode)
	profile := r.profileIndex()
	var tot power.Metrics
	prev := -1
	for e, s := range seq {
		switchNow := naive || prev < 0 || s != prev
		if switchNow {
			if prev >= 0 {
				tot.Add(r.transition(prev, profile, e))
			}
			// First half of the epoch runs in the profiling configuration,
			// second half in the selected one; the profiling section still
			// performs useful work (A.7).
			tot.Add(scale(r.Grid[profile][e].Metrics, 0.5))
			if e > 0 {
				tot.Add(r.transition(profile, s, e))
			}
			tot.Add(scale(r.Grid[s][e].Metrics, 0.5))
		} else {
			tot.Add(r.Grid[s][e].Metrics)
		}
		prev = s
	}
	return tot
}

// profileIndex returns the index of the profiling configuration (max
// ordinals, shared everything), recording it on demand is not possible, so
// the closest sampled configuration is used.
func (r *Recording) profileIndex() int {
	want := config.MaxCfg
	if r.Configs[0].L1IsSPM() {
		want = config.MaxCfgSPM
	}
	best, bestD := 0, math.MaxInt
	for s, c := range r.Configs {
		d := 0
		for p := config.Param(0); p < config.NumParams; p++ {
			dd := c[p] - want[p]
			if dd < 0 {
				dd = -dd
			}
			d += dd
		}
		if d < bestD {
			best, bestD = s, d
		}
	}
	return best
}

func scale(m power.Metrics, f float64) power.Metrics {
	return power.Metrics{TimeSec: m.TimeSec * f, EnergyJ: m.EnergyJ * f, FPOps: m.FPOps * f}
}
