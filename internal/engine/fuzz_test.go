package engine

import (
	"bytes"
	"testing"
)

// FuzzDecodeCacheEntry hardens the on-disk cache entry codec: encode→decode
// must be the identity, and DecodeEntry must reject arbitrary corruption
// (truncation, magic damage, checksum flips) without panicking.
func FuzzDecodeCacheEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(EncodeEntry(nil))
	f.Add(EncodeEntry([]byte("payload")))
	f.Add([]byte(diskMagic))
	corrupt := EncodeEntry([]byte("payload"))
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round-trip: any payload encodes and decodes to itself.
		enc := EncodeEntry(data)
		got, err := DecodeEntry(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip changed payload: %d bytes -> %d bytes", len(data), len(got))
		}
		// Arbitrary bytes: either rejected, or the checksum held — in which
		// case the payload must re-encode to the identical entry.
		if p, err := DecodeEntry(data); err == nil {
			if !bytes.Equal(EncodeEntry(p), data) {
				t.Fatalf("accepted entry does not re-encode identically")
			}
		}
	})
}
