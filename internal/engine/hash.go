package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is a 256-bit content address. The zero Key means "uncacheable".
type Key [32]byte

// IsZero reports whether k is the zero (uncacheable) key.
func (k Key) IsZero() bool { return k == Key{} }

// String returns the lowercase hex form, used as the on-disk file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher builds content-addressed keys from typed fields. Every field is
// written with a type tag and a length prefix, so distinct field sequences
// can never collide by concatenation ("ab","c" vs "a","bc"), and the
// resulting key is stable across processes, platforms and runs — it depends
// only on the domain string and the field values, never on pointers, map
// order or time.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key for one cache domain. Bump the domain's version
// suffix (e.g. "oracle-row/v1" → "/v2") whenever the computation it
// addresses changes meaning, so stale on-disk entries are never reused.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.write('D', []byte(domain))
	return h
}

func (h *Hasher) write(tag byte, b []byte) {
	var hdr [9]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(b)))
	h.h.Write(hdr[:])
	h.h.Write(b)
}

// Str appends a string field.
func (h *Hasher) Str(s string) *Hasher {
	h.write('S', []byte(s))
	return h
}

// I64 appends an integer field.
func (h *Hasher) I64(v int64) *Hasher {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.write('I', b[:])
	return h
}

// Int appends int fields.
func (h *Hasher) Int(vs ...int) *Hasher {
	for _, v := range vs {
		h.I64(int64(v))
	}
	return h
}

// U64 appends an unsigned integer field.
func (h *Hasher) U64(v uint64) *Hasher {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.write('U', b[:])
	return h
}

// F64 appends a float field by IEEE-754 bit pattern.
func (h *Hasher) F64(v float64) *Hasher {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.write('F', b[:])
	return h
}

// Bytes appends a raw byte-slice field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.write('B', b)
	return h
}

// Sum finalizes the key. The Hasher may keep accumulating fields after a
// Sum (each Sum addresses the fields written so far).
func (h *Hasher) Sum() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// DeriveSeed derives an independent RNG seed from a base seed and a salt
// path via splitmix64 mixing. Parallel consumers give every task its own
// seed (base + task coordinates) instead of sharing one math/rand stream,
// which is what makes 1-worker and N-worker runs produce identical output.
func DeriveSeed(base int64, salt ...int64) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, s := range salt {
		x = splitmix64(x ^ splitmix64(uint64(s)))
	}
	return int64(splitmix64(x))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
