package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sparseadapt/internal/obs"
)

// latBounds are the upper edges of the per-task latency histogram buckets;
// the final bucket is unbounded.
var latBounds = []time.Duration{
	time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond,
	64 * time.Millisecond, 256 * time.Millisecond, time.Second, 4 * time.Second,
}

// latBoundsSec mirrors latBounds in seconds, the unit of the registry
// histograms.
var latBoundsSec = func() []float64 {
	out := make([]float64, len(latBounds))
	for i, d := range latBounds {
		out[i] = d.Seconds()
	}
	return out
}()

// Stats is the engine's per-run observability surface, backed by obs
// instruments: every count it renders in Line/Report is simultaneously
// exported through the engine's metrics registry as the engine_* family
// (see docs/OBSERVABILITY.md). All instruments are atomic, so tasks update
// them without coordination; Line and Report read a consistent-enough
// snapshot for progress display.
type Stats struct {
	queued  *obs.Counter // tasks submitted
	done    *obs.Counter // tasks completed (failures included)
	failed  *obs.Counter
	hits    *obs.Counter // cache hits (tasks answered without simulation)
	misses  *obs.Counter // tasks that computed
	running *obs.Gauge   // pool occupancy
	workers *obs.Gauge   // configured bound

	lat     *obs.Histogram // all tasks
	hitLat  *obs.Histogram // cache-hit latency
	missLat *obs.Histogram // compute latency

	cpuNanos  atomic.Int64 // summed task latencies ≈ CPU time
	wallStart atomic.Int64 // unix nanos of the first batch
	wallNanos atomic.Int64 // running wall clock, updated at task completion
}

// newStats creates the engine_* instrument family in reg. New always passes
// a non-nil registry (private when the caller did not supply one), so the
// progress surface works even with metrics export off.
func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		queued:  reg.Counter("engine_tasks_submitted_total", "tasks submitted to the engine"),
		done:    reg.Counter("engine_tasks_completed_total", "tasks completed, failures included"),
		failed:  reg.Counter("engine_task_failures_total", "tasks that returned an error or panicked"),
		hits:    reg.Counter("engine_cache_hits_total", "tasks answered from the result cache"),
		misses:  reg.Counter("engine_cache_misses_total", "tasks that computed"),
		running: reg.Gauge("engine_running_tasks", "tasks currently executing (pool occupancy)"),
		workers: reg.Gauge("engine_workers", "configured worker-pool bound"),
		lat:     reg.Histogram("engine_task_seconds", "per-task latency, cache hits included", latBoundsSec),
		hitLat:  reg.Histogram("engine_cache_hit_seconds", "latency of tasks answered from the cache", latBoundsSec),
		missLat: reg.Histogram("engine_task_compute_seconds", "latency of tasks that computed", latBoundsSec),
	}
}

func (s *Stats) batchStart(n int) {
	s.queued.Add(int64(n))
	s.wallStart.CompareAndSwap(0, time.Now().UnixNano())
}

func (s *Stats) taskStart() { s.running.Add(1) }

func (s *Stats) taskDone(lat time.Duration, hit, failed bool) {
	s.running.Add(-1)
	s.done.Inc()
	if failed {
		s.failed.Inc()
	}
	sec := lat.Seconds()
	if hit {
		s.hits.Inc()
		s.hitLat.Observe(sec)
	} else {
		s.misses.Inc()
		s.missLat.Observe(sec)
	}
	s.lat.Observe(sec)
	s.cpuNanos.Add(int64(lat))
	if start := s.wallStart.Load(); start != 0 {
		s.wallNanos.Store(time.Now().UnixNano() - start)
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Queued, Running, Done and Failed count tasks by lifecycle state;
	// Done includes Failed.
	Queued, Running, Done, Failed int64
	// CacheHits and CacheMisses split completed tasks by whether the
	// result cache answered them.
	CacheHits, CacheMisses int64
	// Wall is elapsed time since the engine started; CPU is the summed
	// per-task compute time (their ratio is the parallel speedup).
	Wall, CPU time.Duration
	// Latency is the per-task latency histogram, one count per latBounds
	// bucket (non-cumulative).
	Latency [8]int64
}

// HitRate returns the fraction of completed tasks served from cache.
func (s Snapshot) HitRate() float64 {
	if t := s.CacheHits + s.CacheMisses; t > 0 {
		return float64(s.CacheHits) / float64(t)
	}
	return 0
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	out := Snapshot{
		Queued: s.queued.Load(), Running: int64(s.running.Load()),
		Done: s.done.Load(), Failed: s.failed.Load(),
		CacheHits: s.hits.Load(), CacheMisses: s.misses.Load(),
		Wall: time.Duration(s.wallNanos.Load()), CPU: time.Duration(s.cpuNanos.Load()),
	}
	for i, n := range s.lat.BucketCounts() {
		if i < len(out.Latency) {
			out.Latency[i] = n
		}
	}
	return out
}

// Line renders a one-line progress report for periodic display.
func (s *Stats) Line() string {
	sn := s.Snapshot()
	return fmt.Sprintf("engine: %d/%d done (%d running, %d failed), cache %.0f%% hit, %.1fs elapsed",
		sn.Done, sn.Queued, sn.Running, sn.Failed, sn.HitRate()*100, sn.Wall.Seconds())
}

// Report renders the full multi-line end-of-run summary: task totals, cache
// effectiveness, wall vs summed-CPU time (their ratio is the achieved
// parallel speedup) and the latency histogram.
func (s *Stats) Report() string {
	sn := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d tasks (%d done, %d failed)\n", sn.Queued, sn.Done, sn.Failed)
	fmt.Fprintf(&b, "cache:  %d hits, %d misses (%.1f%% hit rate)\n",
		sn.CacheHits, sn.CacheMisses, sn.HitRate()*100)
	speedup := 0.0
	if sn.Wall > 0 {
		speedup = sn.CPU.Seconds() / sn.Wall.Seconds()
	}
	fmt.Fprintf(&b, "time:   %.2fs wall, %.2fs task CPU (%.2fx parallel speedup)\n",
		sn.Wall.Seconds(), sn.CPU.Seconds(), speedup)
	b.WriteString("latency:")
	for i, n := range sn.Latency {
		if n == 0 {
			continue
		}
		if i < len(latBounds) {
			fmt.Fprintf(&b, " ≤%s:%d", latBounds[i], n)
		} else {
			fmt.Fprintf(&b, " >%s:%d", latBounds[len(latBounds)-1], n)
		}
	}
	b.WriteByte('\n')
	return b.String()
}
