package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// latBounds are the upper edges of the per-task latency histogram buckets;
// the final bucket is unbounded.
var latBounds = []time.Duration{
	time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond,
	64 * time.Millisecond, 256 * time.Millisecond, time.Second, 4 * time.Second,
}

// Stats is the engine's per-run observability surface. All counters are
// atomics, so tasks update them without coordination; Line and Report read
// a consistent-enough snapshot for progress display.
type Stats struct {
	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	hits    atomic.Int64 // cache hits (tasks answered without simulation)
	misses  atomic.Int64 // tasks that computed

	cpuNanos  atomic.Int64 // summed task latencies ≈ CPU time
	wallStart atomic.Int64 // unix nanos of the first batch
	wallNanos atomic.Int64 // running wall clock, updated at task completion

	buckets [8]atomic.Int64
}

func (s *Stats) batchStart(n int) {
	s.queued.Add(int64(n))
	s.wallStart.CompareAndSwap(0, time.Now().UnixNano())
}

func (s *Stats) taskStart() { s.running.Add(1) }

func (s *Stats) taskDone(lat time.Duration, hit, failed bool) {
	s.running.Add(-1)
	s.done.Add(1)
	if failed {
		s.failed.Add(1)
	}
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	s.cpuNanos.Add(int64(lat))
	if start := s.wallStart.Load(); start != 0 {
		s.wallNanos.Store(time.Now().UnixNano() - start)
	}
	b := len(latBounds)
	for i, edge := range latBounds {
		if lat <= edge {
			b = i
			break
		}
	}
	s.buckets[b].Add(1)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Queued, Running, Done, Failed int64
	CacheHits, CacheMisses        int64
	Wall, CPU                     time.Duration
	Latency                       [8]int64
}

// HitRate returns the fraction of completed tasks served from cache.
func (s Snapshot) HitRate() float64 {
	if t := s.CacheHits + s.CacheMisses; t > 0 {
		return float64(s.CacheHits) / float64(t)
	}
	return 0
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	out := Snapshot{
		Queued: s.queued.Load(), Running: s.running.Load(),
		Done: s.done.Load(), Failed: s.failed.Load(),
		CacheHits: s.hits.Load(), CacheMisses: s.misses.Load(),
		Wall: time.Duration(s.wallNanos.Load()), CPU: time.Duration(s.cpuNanos.Load()),
	}
	for i := range s.buckets {
		out.Latency[i] = s.buckets[i].Load()
	}
	return out
}

// Line renders a one-line progress report for periodic display.
func (s *Stats) Line() string {
	sn := s.Snapshot()
	return fmt.Sprintf("engine: %d/%d done (%d running, %d failed), cache %.0f%% hit, %.1fs elapsed",
		sn.Done, sn.Queued, sn.Running, sn.Failed, sn.HitRate()*100, sn.Wall.Seconds())
}

// Report renders the full multi-line end-of-run summary: task totals, cache
// effectiveness, wall vs summed-CPU time (their ratio is the achieved
// parallel speedup) and the latency histogram.
func (s *Stats) Report() string {
	sn := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d tasks (%d done, %d failed)\n", sn.Queued, sn.Done, sn.Failed)
	fmt.Fprintf(&b, "cache:  %d hits, %d misses (%.1f%% hit rate)\n",
		sn.CacheHits, sn.CacheMisses, sn.HitRate()*100)
	speedup := 0.0
	if sn.Wall > 0 {
		speedup = sn.CPU.Seconds() / sn.Wall.Seconds()
	}
	fmt.Fprintf(&b, "time:   %.2fs wall, %.2fs task CPU (%.2fx parallel speedup)\n",
		sn.Wall.Seconds(), sn.CPU.Seconds(), speedup)
	b.WriteString("latency:")
	for i, n := range sn.Latency {
		if n == 0 {
			continue
		}
		if i < len(latBounds) {
			fmt.Fprintf(&b, " ≤%s:%d", latBounds[i], n)
		} else {
			fmt.Fprintf(&b, " >%s:%d", latBounds[len(latBounds)-1], n)
		}
	}
	b.WriteByte('\n')
	return b.String()
}
