package engine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/fault"
)

// TestKeyStability pins the key derivation to a recorded constant: the same
// field sequence must hash to the same address in every process, on every
// platform, forever — that is what lets on-disk caches survive restarts.
// If this test fails the derivation changed and every persisted cache is
// silently stale: bump the Hasher domain versions instead.
func TestKeyStability(t *testing.T) {
	k := NewHasher("sparseadapt/test/v1").Str("spmspm").Int(3, 7).F64(1e9).U64(42).I64(-5).Sum()
	const want = "865e70819166c5d636f583b90a07d2416b40d8b7d85b36aa8e1fb451d06236ba"
	if k.String() != want {
		t.Fatalf("key derivation drifted:\n got %s\nwant %s", k, want)
	}
	if k2 := NewHasher("sparseadapt/test/v1").Str("spmspm").Int(3, 7).F64(1e9).U64(42).I64(-5).Sum(); k2 != k {
		t.Fatal("same fields produced different keys")
	}
}

// TestKeyFraming asserts the length-prefixed framing prevents
// concatenation collisions between different field splits.
func TestKeyFraming(t *testing.T) {
	a := NewHasher("d").Str("ab").Str("c").Sum()
	b := NewHasher("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("field framing collides on concatenation")
	}
	if NewHasher("d1").Str("x").Sum() == NewHasher("d2").Str("x").Sum() {
		t.Fatal("domain is not part of the key")
	}
	if NewHasher("d").I64(1).Sum() == NewHasher("d").U64(1).Sum() {
		t.Fatal("field type tag is not part of the key")
	}
}

// TestKeyCollisionResistanceOverConfigs derives a key for every one of the
// 3600 hardware configurations, under two chips and two bandwidths each,
// the way oracle recording does, and requires them all distinct.
func TestKeyCollisionResistanceOverConfigs(t *testing.T) {
	seen := map[Key]string{}
	for _, chip := range [][2]int{{2, 8}, {4, 16}} {
		for _, bw := range []float64{1e9, 1e10} {
			for _, c := range config.All() {
				k := NewHasher("sparseadapt/oracle-row/v1").
					U64(0xfeed).Int(5000).F64(1).
					Int(chip[0], chip[1]).F64(bw).
					Int(c.Index()).Sum()
				id := c.String()
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision between %q and %q", prev, id)
				}
				seen[k] = id
			}
		}
	}
	if len(seen) != 2*2*config.SpaceSize() {
		t.Fatalf("expected %d distinct keys, got %d", 2*2*config.SpaceSize(), len(seen))
	}
}

// TestCacheLRUEviction checks the memory tier evicts least-recently-used
// entries and that a Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k := func(i int) Key { return NewHasher("t").Int(i).Sum() }
	c.Put(k(1), []byte("a"))
	c.Put(k(2), []byte("b"))
	if _, ok := c.Get(k(1)); !ok { // refresh 1 → 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(k(3), []byte("c")) // evicts 2
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Fatal("newest entry 3 missing")
	}
	if c.MemLen() != 2 {
		t.Fatalf("mem tier holds %d entries, want 2", c.MemLen())
	}
}

// TestCacheDiskTierSurvivesRestart writes through one Cache and reads from
// a fresh one over the same directory — the process-restart scenario the
// content addressing exists for.
func TestCacheDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	k := NewHasher("t").Str("row").Sum()
	val := []byte("simulated epoch records")

	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(k, val)

	c2, err := NewCache(8, dir) // fresh process: empty memory tier
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("disk tier lost the entry across restart: ok=%v val=%q", ok, got)
	}
	// The disk hit must have promoted into memory.
	if c2.MemLen() != 1 {
		t.Fatalf("disk hit not promoted to memory tier (len %d)", c2.MemLen())
	}
}

// TestCacheCorruptEntryRecomputed flips bits in an on-disk entry with the
// fault-injection helpers and verifies the checksum catches it: the Get
// misses, the bad file is removed, and an engine task recomputes and
// re-persists the value.
func TestCacheCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	key := NewHasher("t").Str("row").Sum()

	cache, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	task := Task[[]int]{Key: key, Compute: func(ctx context.Context) ([]int, error) {
		computed.Add(1)
		return []int{1, 2, 3}, nil
	}}
	e := New(Options{Workers: 1, Cache: cache})
	if _, err := Map(context.Background(), e, []Task[[]int]{task}); err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d, want 1", computed.Load())
	}

	// Corrupt the persisted entry, then start a "new process".
	path := filepath.Join(dir, key.String()+".bin")
	if err := fault.CorruptFile(path, 7, 4); err != nil {
		t.Fatal(err)
	}
	cache2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache2.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, _, corrupt := cache2.Counts(); corrupt != 1 {
		t.Fatalf("corruption not counted: %d", corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file not removed")
	}

	e2 := New(Options{Workers: 1, Cache: cache2})
	got, err := Map(context.Background(), e2, []Task[[]int]{task})
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 2 {
		t.Fatalf("corrupt entry was not recomputed (computed=%d)", computed.Load())
	}
	if len(got[0]) != 3 || got[0][2] != 3 {
		t.Fatalf("recomputed value wrong: %v", got[0])
	}
	// And the rewrite must be intact again.
	cache3, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache3.Get(key); !ok {
		t.Fatal("recomputed entry not re-persisted")
	}
}

// TestCacheTruncatedEntryRecovered covers the interrupted-write model: a
// file cut short must read as a miss, not a crash.
func TestCacheTruncatedEntryRecovered(t *testing.T) {
	dir := t.TempDir()
	k := NewHasher("t").Str("x").Sum()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(k, bytes.Repeat([]byte("v"), 100))
	if err := fault.TruncateFile(filepath.Join(dir, k.String()+".bin"), 0.2); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); ok {
		t.Fatal("truncated entry served as a hit")
	}
}
