// Package engine is the parallel execution subsystem of the reproduction:
// a bounded worker pool that runs independent simulation tasks concurrently
// with cancellation and panic-to-error recovery, a content-addressed result
// cache (in-memory LRU tier plus an optional on-disk tier) so repeated
// sweeps skip redundant simulation, and per-run observability (task counts,
// cache hit rate, wall/CPU time, a per-task latency histogram).
//
// The package is domain-agnostic: consumers (oracle recording, trainer
// dataset generation, experiment sweeps, host batch offload) describe work
// as an ordered slice of tasks and get results back in task order, so
// output is byte-identical at any worker count. Caching is opt-in per task
// via a content-addressed Key; cached values are gob-serialized, and a
// value that fails to decode is treated as a miss and recomputed.
package engine

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sparseadapt/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds task concurrency; <= 0 means one worker per CPU.
	Workers int
	// Cache is the shared result cache; nil disables caching.
	Cache *Cache
	// Progress, when non-nil, receives a one-line status report every
	// ProgressEvery while a Map call is running.
	Progress io.Writer
	// ProgressEvery defaults to 2s.
	ProgressEvery time.Duration
	// Metrics, when non-nil, receives the engine_* instrument family (task
	// counts, pool occupancy, cache hit/miss latency histograms). When nil
	// the engine keeps a private registry so Stats still works.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one wall-clock Span per executed task,
	// keyed by worker, so Perfetto shows pool occupancy over time.
	Trace *obs.TraceRecorder
}

// Engine executes task batches. It is safe for concurrent use; nested Map
// calls (a task that itself fans out) each get their own worker set, so the
// bound is per batch, not global.
type Engine struct {
	workers  int
	cache    *Cache
	progress io.Writer
	every    time.Duration

	// Stats is the run's observability surface, created by New over the
	// configured (or a private) metrics registry.
	Stats *Stats

	trace     *obs.TraceRecorder
	traceBase time.Time // wall-clock origin of task spans

	reporting sync.Mutex // at most one progress reporter at a time
}

// New builds an Engine from opts.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		workers: w, cache: opts.Cache, progress: opts.Progress, every: every,
		Stats: newStats(reg), trace: opts.Trace, traceBase: time.Now(),
	}
	e.Stats.workers.Set(float64(w))
	return e
}

// Serial returns a one-worker engine with no cache — the drop-in
// replacement for the old strictly-serial code paths.
func Serial() *Engine { return New(Options{Workers: 1}) }

// Workers returns the configured concurrency bound.
func (e *Engine) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// Cache returns the engine's cache (nil when caching is disabled).
func (e *Engine) Cache() *Cache {
	if e == nil {
		return nil
	}
	return e.cache
}

// Task is one unit of work producing a T. A zero Key marks the task
// uncacheable; otherwise Key must be a content address of everything that
// determines the result (see Hasher).
type Task[T any] struct {
	// Key is the content address of the result; zero disables caching.
	Key Key
	// Compute produces the result; it must be pure with respect to Key.
	Compute func(ctx context.Context) (T, error)
}

// Map runs tasks under the engine's worker bound and returns their results
// in task order — result[i] always corresponds to tasks[i], regardless of
// completion order, so assembly is deterministic at any worker count. The
// first task error (lowest task index) cancels the remaining tasks and is
// returned; a panicking task is converted to an error with its stack. A nil
// engine runs serially without caching.
func Map[T any](ctx context.Context, e *Engine, tasks []Task[T]) ([]T, error) {
	if e == nil {
		e = Serial()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}
	e.Stats.batchStart(len(tasks))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopProgress := e.startReporter(ctx)

	workers := e.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Tasks are claimed with an atomic counter rather than fed through a
	// channel: an unbuffered channel serializes dispatch through the feeding
	// goroutine (one rendezvous per task), which profiles as a real
	// bottleneck once the per-task compute is fast (memo/cache hits). The
	// counter makes claiming a single uncontended atomic add, and the
	// single-task case (the daemon exec path maps one task per job) runs
	// inline on the calling goroutine with no spawn at all.
	run := func(worker, i int) {
		if ctx.Err() != nil {
			errs[i] = ctx.Err()
			return
		}
		results[i], errs[i] = runOne(e, ctx, worker, i, tasks[i])
		if errs[i] != nil {
			cancel()
		}
	}
	if workers == 1 {
		for i := range tasks {
			run(0, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					run(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}
	stopProgress()

	// Report the lowest-index root-cause failure. Plain cancellations are
	// secondary: once any task fails, tasks its cancel caught before they
	// started record context.Canceled regardless of index, so they only
	// win when nothing else failed (i.e. the caller canceled the batch).
	first := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first < 0 || (errors.Is(errs[first], context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = i
		}
	}
	if first >= 0 {
		return results, fmt.Errorf("engine: task %d/%d: %w", first, len(tasks), errs[first])
	}
	return results, nil
}

// runOne executes a single task: cache probe, compute with panic recovery,
// cache fill, stats accounting and span emission. worker and i identify the
// executing worker and task index for the trace.
func runOne[T any](e *Engine, ctx context.Context, worker, i int, t Task[T]) (T, error) {
	e.Stats.taskStart()
	start := time.Now()
	var zero T
	if e.cache != nil && !t.Key.IsZero() {
		if raw, ok := e.cache.Get(t.Key); ok {
			var v T
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err == nil {
				e.finishTask(worker, i, start, true, false)
				return v, nil
			}
			// Undecodable (e.g. schema drift): drop and recompute.
			e.cache.Delete(t.Key)
		}
	}
	v, err := protect(ctx, t.Compute)
	if err != nil {
		e.finishTask(worker, i, start, false, true)
		return zero, err
	}
	if e.cache != nil && !t.Key.IsZero() {
		var buf bytes.Buffer
		if gob.NewEncoder(&buf).Encode(&v) == nil {
			e.cache.Put(t.Key, buf.Bytes())
		}
	}
	e.finishTask(worker, i, start, false, false)
	return v, nil
}

// finishTask records a task's completion in the stats and, when tracing is
// on, emits its wall-clock span on the executing worker's track.
func (e *Engine) finishTask(worker, i int, start time.Time, hit, failed bool) {
	lat := time.Since(start)
	e.Stats.taskDone(lat, hit, failed)
	if e.trace == nil {
		return
	}
	args := map[string]string{}
	if hit {
		args["cache"] = "hit"
	}
	if failed {
		args["failed"] = "true"
	}
	e.trace.RecordSpan(obs.Span{
		Name: fmt.Sprintf("task-%d", i), Cat: "engine-task", TID: worker + 1,
		StartSec: start.Sub(e.traceBase).Seconds(), DurSec: lat.Seconds(),
		Args: args,
	})
}

// protect invokes fn, converting a panic into an error carrying the stack.
func protect[T any](ctx context.Context, fn func(context.Context) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return fn(ctx)
}

// startReporter launches the periodic progress printer for one Map call if
// a progress writer is configured and no reporter is already running. The
// returned stop function blocks until the reporter exits.
func (e *Engine) startReporter(ctx context.Context) func() {
	if e.progress == nil || !e.reporting.TryLock() {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		defer e.reporting.Unlock()
		tick := time.NewTicker(e.every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				fmt.Fprintln(e.progress, e.Stats.Line())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
