package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedResults verifies result[i] corresponds to tasks[i] no
// matter how completion interleaves across workers.
func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		e := New(Options{Workers: workers})
		tasks := make([]Task[int], 64)
		for i := range tasks {
			i := i
			tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) {
				if i%3 == 0 {
					time.Sleep(time.Millisecond) // shuffle completion order
				}
				return i * i, nil
			}}
		}
		got, err := Map(context.Background(), e, tasks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapNilEngineSerial checks the nil engine runs every task exactly once.
func TestMapNilEngineSerial(t *testing.T) {
	var ran atomic.Int64
	tasks := make([]Task[int], 10)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) {
			ran.Add(1)
			return i, nil
		}}
	}
	got, err := Map(context.Background(), nil, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 || got[7] != 7 {
		t.Fatalf("ran %d tasks, got[7]=%d", ran.Load(), got[7])
	}
}

// TestMapFirstErrorWins asserts the reported error is the lowest-index
// failure and that it cancels the remaining tasks.
func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	e := New(Options{Workers: 4})
	var started atomic.Int64
	tasks := make([]Task[int], 100)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			time.Sleep(500 * time.Microsecond)
			return i, nil
		}}
	}
	_, err := Map(context.Background(), e, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "task 3/") {
		t.Fatalf("error does not name the first failing task: %v", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not skip any queued task")
	}
}

// TestMapPanicBecomesError asserts a panicking task surfaces as an error
// carrying the panic value, not a crashed process.
func TestMapPanicBecomesError(t *testing.T) {
	e := New(Options{Workers: 2})
	tasks := []Task[int]{
		{Compute: func(ctx context.Context) (int, error) { return 1, nil }},
		{Compute: func(ctx context.Context) (int, error) { panic("kaboom") }},
	}
	_, err := Map(context.Background(), e, tasks)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

// TestMapContextCancel verifies an external cancellation stops the batch.
func TestMapContextCancel(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	tasks := make([]Task[int], 50)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) {
			if i == 0 {
				cancel()
			}
			done.Add(1)
			return i, nil
		}}
	}
	_, err := Map(ctx, e, tasks)
	if err == nil {
		t.Fatal("cancelled map returned nil error")
	}
	if done.Load() == 50 {
		t.Error("cancellation did not stop the batch early")
	}
}

// TestMapCachedRoundTrip checks that a cached task computes once and the
// second batch is served from memory with an identical value.
func TestMapCachedRoundTrip(t *testing.T) {
	cache, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 4, Cache: cache})
	var computed atomic.Int64
	mk := func() []Task[[]float64] {
		tasks := make([]Task[[]float64], 8)
		for i := range tasks {
			i := i
			tasks[i] = Task[[]float64]{
				Key: NewHasher("t/v1").Int(i).Sum(),
				Compute: func(ctx context.Context) ([]float64, error) {
					computed.Add(1)
					return []float64{float64(i), float64(i) / 3}, nil
				},
			}
		}
		return tasks
	}
	first, err := Map(context.Background(), e, mk())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Map(context.Background(), e, mk())
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 8 {
		t.Fatalf("computed %d times, want 8 (second batch should be all hits)", computed.Load())
	}
	for i := range first {
		if fmt.Sprint(first[i]) != fmt.Sprint(second[i]) {
			t.Fatalf("cached value differs at %d: %v vs %v", i, first[i], second[i])
		}
	}
	sn := e.Stats.Snapshot()
	if sn.CacheHits != 8 || sn.CacheMisses != 8 {
		t.Fatalf("stats hits=%d misses=%d, want 8/8", sn.CacheHits, sn.CacheMisses)
	}
}

// TestStatsReport sanity-checks the observability surface.
func TestStatsReport(t *testing.T) {
	e := New(Options{Workers: 2})
	tasks := make([]Task[int], 5)
	for i := range tasks {
		tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) { return 0, nil }}
	}
	if _, err := Map(context.Background(), e, tasks); err != nil {
		t.Fatal(err)
	}
	sn := e.Stats.Snapshot()
	if sn.Queued != 5 || sn.Done != 5 || sn.Failed != 0 || sn.Running != 0 {
		t.Fatalf("snapshot %+v", sn)
	}
	var lat int64
	for _, n := range sn.Latency {
		lat += n
	}
	if lat != 5 {
		t.Fatalf("latency histogram holds %d samples, want 5", lat)
	}
	rep := e.Stats.Report()
	for _, want := range []string{"5 tasks", "hit rate", "wall"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if line := e.Stats.Line(); !strings.Contains(line, "5/5 done") {
		t.Fatalf("line: %s", line)
	}
}

// TestProgressReporter checks progress lines reach the writer while a slow
// batch runs.
func TestProgressReporter(t *testing.T) {
	var buf syncBuffer
	e := New(Options{Workers: 2, Progress: &buf, ProgressEvery: 5 * time.Millisecond})
	tasks := make([]Task[int], 4)
	for i := range tasks {
		tasks[i] = Task[int]{Compute: func(ctx context.Context) (int, error) {
			time.Sleep(20 * time.Millisecond)
			return 0, nil
		}}
	}
	if _, err := Map(context.Background(), e, tasks); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "engine:") {
		t.Fatalf("no progress lines emitted: %q", buf.String())
	}
}

// TestDeriveSeedIndependence spot-checks that derived seeds differ across
// salt paths and are order-sensitive.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		for j := int64(0); j < 10; j++ {
			s := DeriveSeed(1, i, j)
			if seen[s] {
				t.Fatalf("duplicate derived seed at (%d,%d)", i, j)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("derived seed ignores salt order")
	}
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("derived seed is not deterministic")
	}
}

// syncBuffer is a concurrency-safe strings.Builder for the reporter test.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
