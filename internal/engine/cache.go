package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// diskMagic heads every on-disk cache entry; the version digit guards the
// file layout itself (payload semantics are guarded by the Hasher domain).
const diskMagic = "SAENG1\n"

// cacheShards is the memory-tier shard count for large caches. Keys are
// sha256 content addresses, so the leading byte distributes uniformly.
const cacheShards = 16

// Cache is a two-tier content-addressed result store: a bounded in-memory
// LRU tier for hot entries and an optional on-disk tier (one checksummed
// file per key) that survives process restarts. Both tiers are keyed by the
// same content address, so a warm disk cache re-populates the memory tier
// on first touch. All methods are safe for concurrent use.
//
// The memory tier is sharded by the key's leading byte: under a parallel
// sweep every task Get/Put serializes on the cache, and one lock was a
// measurable contention point at 8 workers. Small caches (where per-shard
// capacity would drop below lruShardMin) use a single shard so eviction
// order stays exactly global LRU.
type Cache struct {
	shards []*cacheShard
	mask   uint32
	dir    string // "" = memory-only

	hits, misses, corrupt atomic.Int64
}

// lruShardMin is the smallest per-shard capacity worth sharding for: below
// this the cache is small enough that lock contention is irrelevant and
// exact global LRU order is worth keeping (tests rely on it).
const lruShardMin = 64

type cacheShard struct {
	mu     sync.Mutex
	maxMem int
	ll     *list.List // front = most recent
	idx    map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	val []byte
}

// NewCache builds a cache holding up to maxMem entries in memory (minimum
// 1) and, when dir is non-empty, persisting every entry under dir.
func NewCache(maxMem int, dir string) (*Cache, error) {
	if maxMem < 1 {
		maxMem = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: cache dir: %w", err)
		}
	}
	n := 1
	if maxMem >= cacheShards*lruShardMin {
		n = cacheShards
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint32(n - 1), dir: dir}
	for i := range c.shards {
		per := maxMem / n
		// Distribute the remainder so total capacity is exactly maxMem.
		if i < maxMem%n {
			per++
		}
		c.shards[i] = &cacheShard{maxMem: per, ll: list.New(), idx: map[Key]*list.Element{}}
	}
	return c, nil
}

// shard maps a key to its memory-tier shard. Key is a sha256 sum, so any
// byte is uniform; the mask is 0 for single-shard caches.
func (c *Cache) shard(k Key) *cacheShard {
	return c.shards[uint32(k[0])&c.mask]
}

// Get returns the value stored under k. A disk hit promotes the entry into
// the memory tier; a corrupt disk entry (checksum mismatch, truncation) is
// deleted and reported as a miss, so the caller recomputes it.
func (c *Cache) Get(k Key) ([]byte, bool) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.idx[k]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	if c.dir != "" {
		if v, ok := c.readDisk(k); ok {
			s.mu.Lock()
			s.insertMem(k, v)
			s.mu.Unlock()
			c.hits.Add(1)
			return v, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores v under k in both tiers. The stored slice must not be mutated
// by the caller afterwards.
func (c *Cache) Put(k Key, v []byte) {
	s := c.shard(k)
	s.mu.Lock()
	s.insertMem(k, v)
	s.mu.Unlock()
	if c.dir != "" {
		c.writeDisk(k, v)
	}
}

// Delete removes k from both tiers (used when an entry turns out to be
// undecodable despite an intact checksum, e.g. after a schema change).
func (c *Cache) Delete(k Key) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.idx[k]; ok {
		s.ll.Remove(el)
		delete(s.idx, k)
	}
	s.mu.Unlock()
	if c.dir != "" {
		os.Remove(c.path(k))
	}
}

// insertMem adds or refreshes a memory-tier entry, evicting from the LRU
// tail. Caller holds s.mu.
func (s *cacheShard) insertMem(k Key, v []byte) {
	if el, ok := s.idx[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.idx[k] = s.ll.PushFront(&cacheEntry{key: k, val: v})
	for s.ll.Len() > s.maxMem {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.idx, tail.Value.(*cacheEntry).key)
	}
}

// DiskPath returns the on-disk file backing k, or "" for a memory-only
// cache. Exposed for the chaos harness, which corrupts entries in place to
// exercise the checksum-verified read path.
func (c *Cache) DiskPath(k Key) string {
	if c.dir == "" {
		return ""
	}
	return c.path(k)
}

// DropMemory evicts k from the memory tier only, leaving any disk entry in
// place, so the next Get must go through the checksummed disk read.
// Chaos-harness hook.
func (c *Cache) DropMemory(k Key) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[k]; ok {
		s.ll.Remove(el)
		delete(s.idx, k)
	}
}

// MemLen returns the number of memory-tier entries.
func (c *Cache) MemLen() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Counts returns (hits, misses, corrupt-entries-detected).
func (c *Cache) Counts() (hits, misses, corrupt int64) {
	return c.hits.Load(), c.misses.Load(), c.corrupt.Load()
}

func (c *Cache) path(k Key) string { return filepath.Join(c.dir, k.String()+".bin") }

// EncodeEntry frames a payload in the on-disk cache entry format:
// magic ∥ sha256(payload) ∥ payload.
func EncodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(diskMagic)+len(sum)+len(payload))
	buf = append(buf, diskMagic...)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}

// DecodeEntry verifies a framed on-disk cache entry and returns its payload.
// Truncation, a wrong magic or a checksum mismatch (torn write, bit rot,
// foreign file) all return an error; the payload is only returned when the
// checksum proves it is exactly what EncodeEntry stored.
func DecodeEntry(data []byte) ([]byte, error) {
	hdr := len(diskMagic) + sha256.Size
	if len(data) < hdr {
		return nil, fmt.Errorf("engine: cache entry truncated (%d bytes, header is %d)", len(data), hdr)
	}
	if string(data[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("engine: cache entry has wrong magic")
	}
	payload := data[hdr:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[len(diskMagic):hdr]) {
		return nil, fmt.Errorf("engine: cache entry checksum mismatch")
	}
	return payload, nil
}

// writeDisk persists one entry atomically (temp file + rename) in
// EncodeEntry framing.
func (c *Cache) writeDisk(k Key, v []byte) {
	tmp := c.path(k) + ".tmp"
	if err := os.WriteFile(tmp, EncodeEntry(v), 0o644); err != nil {
		return // disk tier is best-effort
	}
	if err := os.Rename(tmp, c.path(k)); err != nil {
		os.Remove(tmp)
	}
}

// readDisk loads and verifies one entry; corruption removes the file.
func (c *Cache) readDisk(k Key) ([]byte, bool) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	if payload, err := DecodeEntry(data); err == nil {
		return payload, true
	}
	// Torn write, bit rot or foreign file: drop it and recompute.
	c.corrupt.Add(1)
	os.Remove(c.path(k))
	return nil, false
}
