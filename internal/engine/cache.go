package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// diskMagic heads every on-disk cache entry; the version digit guards the
// file layout itself (payload semantics are guarded by the Hasher domain).
const diskMagic = "SAENG1\n"

// Cache is a two-tier content-addressed result store: a bounded in-memory
// LRU tier for hot entries and an optional on-disk tier (one checksummed
// file per key) that survives process restarts. Both tiers are keyed by the
// same content address, so a warm disk cache re-populates the memory tier
// on first touch. All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	maxMem int
	ll     *list.List // front = most recent
	idx    map[Key]*list.Element
	dir    string // "" = memory-only

	hits, misses, corrupt int64
}

type cacheEntry struct {
	key Key
	val []byte
}

// NewCache builds a cache holding up to maxMem entries in memory (minimum
// 1) and, when dir is non-empty, persisting every entry under dir.
func NewCache(maxMem int, dir string) (*Cache, error) {
	if maxMem < 1 {
		maxMem = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: cache dir: %w", err)
		}
	}
	return &Cache{maxMem: maxMem, ll: list.New(), idx: map[Key]*list.Element{}, dir: dir}, nil
}

// Get returns the value stored under k. A disk hit promotes the entry into
// the memory tier; a corrupt disk entry (checksum mismatch, truncation) is
// deleted and reported as a miss, so the caller recomputes it.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.idx[k]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.hits++
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if v, ok := c.readDisk(k); ok {
			c.mu.Lock()
			c.insertMem(k, v)
			c.hits++
			c.mu.Unlock()
			return v, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores v under k in both tiers. The stored slice must not be mutated
// by the caller afterwards.
func (c *Cache) Put(k Key, v []byte) {
	c.mu.Lock()
	c.insertMem(k, v)
	c.mu.Unlock()
	if c.dir != "" {
		c.writeDisk(k, v)
	}
}

// Delete removes k from both tiers (used when an entry turns out to be
// undecodable despite an intact checksum, e.g. after a schema change).
func (c *Cache) Delete(k Key) {
	c.mu.Lock()
	if el, ok := c.idx[k]; ok {
		c.ll.Remove(el)
		delete(c.idx, k)
	}
	c.mu.Unlock()
	if c.dir != "" {
		os.Remove(c.path(k))
	}
}

// insertMem adds or refreshes a memory-tier entry, evicting from the LRU
// tail. Caller holds c.mu.
func (c *Cache) insertMem(k Key, v []byte) {
	if el, ok := c.idx[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.idx[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.maxMem {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.idx, tail.Value.(*cacheEntry).key)
	}
}

// DiskPath returns the on-disk file backing k, or "" for a memory-only
// cache. Exposed for the chaos harness, which corrupts entries in place to
// exercise the checksum-verified read path.
func (c *Cache) DiskPath(k Key) string {
	if c.dir == "" {
		return ""
	}
	return c.path(k)
}

// DropMemory evicts k from the memory tier only, leaving any disk entry in
// place, so the next Get must go through the checksummed disk read.
// Chaos-harness hook.
func (c *Cache) DropMemory(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		c.ll.Remove(el)
		delete(c.idx, k)
	}
}

// MemLen returns the number of memory-tier entries.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counts returns (hits, misses, corrupt-entries-detected).
func (c *Cache) Counts() (hits, misses, corrupt int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.corrupt
}

func (c *Cache) path(k Key) string { return filepath.Join(c.dir, k.String()+".bin") }

// EncodeEntry frames a payload in the on-disk cache entry format:
// magic ∥ sha256(payload) ∥ payload.
func EncodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(diskMagic)+len(sum)+len(payload))
	buf = append(buf, diskMagic...)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}

// DecodeEntry verifies a framed on-disk cache entry and returns its payload.
// Truncation, a wrong magic or a checksum mismatch (torn write, bit rot,
// foreign file) all return an error; the payload is only returned when the
// checksum proves it is exactly what EncodeEntry stored.
func DecodeEntry(data []byte) ([]byte, error) {
	hdr := len(diskMagic) + sha256.Size
	if len(data) < hdr {
		return nil, fmt.Errorf("engine: cache entry truncated (%d bytes, header is %d)", len(data), hdr)
	}
	if string(data[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("engine: cache entry has wrong magic")
	}
	payload := data[hdr:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[len(diskMagic):hdr]) {
		return nil, fmt.Errorf("engine: cache entry checksum mismatch")
	}
	return payload, nil
}

// writeDisk persists one entry atomically (temp file + rename) in
// EncodeEntry framing.
func (c *Cache) writeDisk(k Key, v []byte) {
	tmp := c.path(k) + ".tmp"
	if err := os.WriteFile(tmp, EncodeEntry(v), 0o644); err != nil {
		return // disk tier is best-effort
	}
	if err := os.Rename(tmp, c.path(k)); err != nil {
		os.Remove(tmp)
	}
}

// readDisk loads and verifies one entry; corruption removes the file.
func (c *Cache) readDisk(k Key) ([]byte, bool) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	if payload, err := DecodeEntry(data); err == nil {
		return payload, true
	}
	// Torn write, bit rot or foreign file: drop it and recompute.
	c.mu.Lock()
	c.corrupt++
	c.mu.Unlock()
	os.Remove(c.path(k))
	return nil, false
}
