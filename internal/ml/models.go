package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Forest is a random-forest classifier: bagged CART trees over random
// feature subsets, majority vote.
type Forest struct {
	trees     []*Tree
	nFeatures int
	nClasses  int
}

// ForestParams configure random-forest training.
type ForestParams struct {
	Trees       int
	Tree        TreeParams
	FeatureFrac float64 // fraction of features considered per tree (0 = sqrt)
	Seed        int64
}

// TrainForest fits a random forest.
func TrainForest(x [][]float64, y []int, p ForestParams) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: bad training set")
	}
	if p.Trees < 1 {
		p.Trees = 10
	}
	nf := len(x[0])
	sub := int(p.FeatureFrac * float64(nf))
	if p.FeatureFrac <= 0 {
		sub = int(math.Sqrt(float64(nf))) + 1
	}
	if sub < 1 {
		sub = 1
	}
	if sub > nf {
		sub = nf
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := &Forest{nFeatures: nf}
	for _, yy := range y {
		if yy+1 > f.nClasses {
			f.nClasses = yy + 1
		}
	}
	for k := 0; k < p.Trees; k++ {
		// Bootstrap sample.
		bx := make([][]float64, len(x))
		by := make([]int, len(y))
		for i := range bx {
			j := rng.Intn(len(x))
			// Mask out non-selected features so splits ignore them, while
			// keeping the feature-vector shape for prediction.
			feats := rng.Perm(nf)[:sub]
			row := make([]float64, nf)
			for _, ff := range feats {
				row[ff] = x[j][ff]
			}
			bx[i] = row
			by[i] = y[j]
		}
		t, err := TrainTree(bx, by, p.Tree)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}

// Predict returns the majority vote across trees.
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.nClasses)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	return majority(votes)
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// LinearClassifier predicts by rounding a least-squares regression of the
// class index onto the features — the linear-regression baseline of the
// paper's model comparison (Section 4.3).
type LinearClassifier struct {
	w        []float64 // nFeatures + 1 (bias last)
	nClasses int
}

// TrainLinear fits the least-squares classifier via the normal equations
// (ridge-stabilized Gaussian elimination).
func TrainLinear(x [][]float64, y []int) (*LinearClassifier, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: bad training set")
	}
	nf := len(x[0])
	d := nf + 1
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	atb := make([]float64, d)
	row := make([]float64, d)
	nc := 0
	for i := range x {
		copy(row, x[i])
		row[nf] = 1
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				ata[a][b] += row[a] * row[b]
			}
			atb[a] += row[a] * float64(y[i])
		}
		if y[i]+1 > nc {
			nc = y[i] + 1
		}
	}
	for a := 0; a < d; a++ {
		ata[a][a] += 1e-6 // ridge term for rank-deficient designs
	}
	w, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	return &LinearClassifier{w: w, nClasses: nc}, nil
}

// Predict rounds the regression output to the nearest valid class.
func (l *LinearClassifier) Predict(x []float64) int {
	s := l.w[len(l.w)-1]
	for i, v := range x {
		s += l.w[i] * v
	}
	c := int(math.Round(s))
	if c < 0 {
		c = 0
	}
	if c >= l.nClasses {
		c = l.nClasses - 1
	}
	return c
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular system")
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// LogisticClassifier is a one-vs-rest logistic-regression classifier
// trained with gradient descent — the logistic baseline of Section 4.3.
type LogisticClassifier struct {
	w        [][]float64 // per class: nFeatures + 1 (bias last)
	mean     []float64
	scale    []float64
	nClasses int
}

// LogisticParams configure gradient-descent training.
type LogisticParams struct {
	Epochs int
	LR     float64
}

// TrainLogistic fits one sigmoid per class on standardized features.
func TrainLogistic(x [][]float64, y []int, p LogisticParams) (*LogisticClassifier, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: bad training set")
	}
	if p.Epochs <= 0 {
		p.Epochs = 100
	}
	if p.LR <= 0 {
		p.LR = 0.1
	}
	nf := len(x[0])
	nc := 0
	for _, yy := range y {
		if yy+1 > nc {
			nc = yy + 1
		}
	}
	lc := &LogisticClassifier{nClasses: nc, mean: make([]float64, nf), scale: make([]float64, nf)}
	for _, row := range x {
		for f, v := range row {
			lc.mean[f] += v
		}
	}
	for f := range lc.mean {
		lc.mean[f] /= float64(len(x))
	}
	for _, row := range x {
		for f, v := range row {
			d := v - lc.mean[f]
			lc.scale[f] += d * d
		}
	}
	for f := range lc.scale {
		lc.scale[f] = math.Sqrt(lc.scale[f]/float64(len(x))) + 1e-9
	}
	std := make([][]float64, len(x))
	for i, row := range x {
		std[i] = make([]float64, nf)
		for f, v := range row {
			std[i][f] = (v - lc.mean[f]) / lc.scale[f]
		}
	}
	lc.w = make([][]float64, nc)
	for c := 0; c < nc; c++ {
		w := make([]float64, nf+1)
		for ep := 0; ep < p.Epochs; ep++ {
			for i, row := range std {
				z := w[nf]
				for f, v := range row {
					z += w[f] * v
				}
				pred := 1 / (1 + math.Exp(-z))
				target := 0.0
				if y[i] == c {
					target = 1
				}
				g := pred - target
				for f, v := range row {
					w[f] -= p.LR * g * v
				}
				w[nf] -= p.LR * g
			}
		}
		lc.w[c] = w
	}
	return lc, nil
}

// Predict returns the class with the highest sigmoid response.
func (l *LogisticClassifier) Predict(x []float64) int {
	nf := len(l.mean)
	best, bs := 0, math.Inf(-1)
	for c, w := range l.w {
		z := w[nf]
		for f := 0; f < nf; f++ {
			z += w[f] * (x[f] - l.mean[f]) / l.scale[f]
		}
		if z > bs {
			best, bs = c, z
		}
	}
	return best
}
