// Package ml is the machine-learning substrate of the reproduction,
// standing in for scikit-learn (Section 5.1): CART decision-tree
// classifiers with pruning and Gini feature importance, random forests,
// linear and logistic regression (the four model families the paper
// compared in Section 4.3), k-fold cross-validation and hyperparameter
// grid search.
package ml

import (
	"fmt"
	"math"
	"sort"
)

// Classifier predicts a class label from a feature vector.
type Classifier interface {
	Predict(x []float64) int
}

// Criterion selects the impurity function used to score splits.
type Criterion int

const (
	// Gini impurity (CART default).
	Gini Criterion = iota
	// Entropy (information gain).
	Entropy
)

// String names the criterion.
func (c Criterion) String() string {
	if c == Entropy {
		return "entropy"
	}
	return "gini"
}

// TreeParams are the hyperparameters the paper sweeps with 3-fold
// cross-validation: criterion, max_depth and min_samples_leaf.
type TreeParams struct {
	Criterion      Criterion
	MaxDepth       int // 0 = unlimited
	MinSamplesLeaf int // minimum samples per leaf (≥1)
}

// DefaultTreeParams mirror a pruned scikit-learn DecisionTreeClassifier.
func DefaultTreeParams() TreeParams {
	return TreeParams{Criterion: Gini, MaxDepth: 10, MinSamplesLeaf: 5}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // child indices into Tree.nodes
	right     int
	label     int // majority class (used at leaves)
	samples   int
}

// Tree is a CART decision-tree classifier over continuous features.
type Tree struct {
	nodes      []node
	nFeatures  int
	nClasses   int
	importance []float64 // un-normalized Gini importance per feature
	params     TreeParams
}

// TrainTree fits a decision tree to X (n×f) with integer class labels Y.
func TrainTree(x [][]float64, y []int, p TreeParams) (*Tree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: bad training set: %d samples, %d labels", len(x), len(y))
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	nf := len(x[0])
	nc := 0
	for _, yy := range y {
		if yy < 0 {
			return nil, fmt.Errorf("ml: negative class label %d", yy)
		}
		if yy+1 > nc {
			nc = yy + 1
		}
	}
	t := &Tree{nFeatures: nf, nClasses: nc, importance: make([]float64, nf), params: p}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.build(x, y, idx, 0)
	return t, nil
}

// impurity computes the node impurity from class counts.
func impurity(counts []int, total int, c Criterion) float64 {
	if total == 0 {
		return 0
	}
	switch c {
	case Entropy:
		e := 0.0
		for _, n := range counts {
			if n == 0 {
				continue
			}
			p := float64(n) / float64(total)
			e -= p * math.Log2(p)
		}
		return e
	default:
		g := 1.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			g -= p * p
		}
		return g
	}
}

func majority(counts []int) int {
	best, bn := 0, -1
	for c, n := range counts {
		if n > bn {
			best, bn = c, n
		}
	}
	return best
}

// build grows the subtree over the samples in idx and returns its node id.
func (t *Tree) build(x [][]float64, y []int, idx []int, depth int) int {
	counts := make([]int, t.nClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, label: majority(counts), samples: len(idx)})

	imp := impurity(counts, len(idx), t.params.Criterion)
	if imp == 0 || len(idx) < 2*t.params.MinSamplesLeaf ||
		(t.params.MaxDepth > 0 && depth >= t.params.MaxDepth) {
		return id
	}

	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	sorted := make([]int, len(idx))
	leftCnt := make([]int, t.nClasses)
	for f := 0; f < t.nFeatures; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })
		for c := range leftCnt {
			leftCnt[c] = 0
		}
		for k := 0; k < len(sorted)-1; k++ {
			leftCnt[y[sorted[k]]]++
			nl := k + 1
			nr := len(sorted) - nl
			if nl < t.params.MinSamplesLeaf || nr < t.params.MinSamplesLeaf {
				continue
			}
			v, vn := x[sorted[k]][f], x[sorted[k+1]][f]
			if v == vn {
				continue // cannot split between equal values
			}
			rightCnt := make([]int, t.nClasses)
			for c := range rightCnt {
				rightCnt[c] = counts[c] - leftCnt[c]
			}
			gain := imp -
				(float64(nl)*impurity(leftCnt, nl, t.params.Criterion)+
					float64(nr)*impurity(rightCnt, nr, t.params.Criterion))/float64(len(sorted))
			if gain > bestGain {
				bestFeat, bestThr, bestGain = f, (v+vn)/2, gain
			}
		}
	}
	if bestFeat < 0 {
		return id
	}

	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return id
	}
	t.importance[bestFeat] += float64(len(idx)) * bestGain
	l := t.build(x, y, li, depth+1)
	r := t.build(x, y, ri, depth+1)
	t.nodes[id].feature = bestFeat
	t.nodes[id].threshold = bestThr
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

// Predict returns the predicted class of x.
func (t *Tree) Predict(x []float64) int {
	id := 0
	for {
		n := t.nodes[id]
		if n.feature < 0 {
			return n.label
		}
		if x[n.feature] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var d func(id int) int
	d = func(id int) int {
		n := t.nodes[id]
		if n.feature < 0 {
			return 0
		}
		l, r := d(n.left), d(n.right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	return d(0)
}

// NodeCount returns the total node count.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// NumFeatures returns the feature-vector width the tree was trained on.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// NumClasses returns the number of classes the tree predicts.
func (t *Tree) NumClasses() int { return t.nClasses }

// Validate checks the structural invariants Predict depends on, so a tree
// deserialized from an untrusted (possibly corrupted) file cannot read out
// of bounds, loop forever, or emit labels outside [0, NumClasses). Trees
// built by TrainTree always pass.
func (t *Tree) Validate() error {
	if t.nFeatures < 1 || t.nClasses < 1 {
		return fmt.Errorf("ml: tree declares %d features, %d classes", t.nFeatures, t.nClasses)
	}
	if len(t.nodes) == 0 {
		return fmt.Errorf("ml: tree has no nodes")
	}
	if t.importance != nil && len(t.importance) != t.nFeatures {
		return fmt.Errorf("ml: importance length %d != %d features", len(t.importance), t.nFeatures)
	}
	if t.params.MaxDepth < 0 || t.params.MinSamplesLeaf < 0 {
		return fmt.Errorf("ml: negative hyperparameters (max depth %d, min leaf %d)", t.params.MaxDepth, t.params.MinSamplesLeaf)
	}
	for i, n := range t.nodes {
		if n.feature < 0 {
			// Leaf: Predict returns its label directly.
			if n.label < 0 || n.label >= t.nClasses {
				return fmt.Errorf("ml: leaf %d labels class %d of %d", i, n.label, t.nClasses)
			}
			continue
		}
		if n.feature >= t.nFeatures {
			return fmt.Errorf("ml: node %d splits on feature %d of %d", i, n.feature, t.nFeatures)
		}
		if math.IsNaN(n.threshold) || math.IsInf(n.threshold, 0) {
			return fmt.Errorf("ml: node %d has non-finite threshold", i)
		}
		// Children must point strictly forward: this single invariant makes
		// the structure acyclic, so Predict terminates on any input.
		if n.left <= i || n.left >= len(t.nodes) || n.right <= i || n.right >= len(t.nodes) {
			return fmt.Errorf("ml: node %d has out-of-order children (%d, %d)", i, n.left, n.right)
		}
	}
	return nil
}

// FeatureImportance returns the normalized Gini importance per feature
// (total impurity reduction contributed by splits on that feature), the
// quantity Figure 10 reports.
func (t *Tree) FeatureImportance() []float64 {
	out := make([]float64, t.nFeatures)
	total := 0.0
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

// Prune performs reduced-error pruning against a validation set: any
// internal node whose collapse does not reduce validation accuracy becomes
// a leaf. It returns the number of collapsed nodes.
func (t *Tree) Prune(xVal [][]float64, yVal []int) int {
	if len(xVal) == 0 {
		return 0
	}
	pruned := 0
	for {
		base := Accuracy(t, xVal, yVal)
		improved := false
		for id := range t.nodes {
			n := &t.nodes[id]
			if n.feature < 0 {
				continue
			}
			save := *n
			n.feature = -1
			if Accuracy(t, xVal, yVal) >= base {
				pruned++
				improved = true
			} else {
				*n = save
			}
		}
		if !improved {
			return pruned
		}
	}
}

// Accuracy computes classification accuracy of any classifier on a set.
func Accuracy(c Classifier, x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	ok := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(x))
}
