package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthAxis generates a dataset whose label is determined by thresholding
// feature 0 (with the remaining features as noise).
func synthAxis(rng *rand.Rand, n, nf, classes int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = rng.Float64()
		}
		x[i] = row
		y[i] = int(row[0] * float64(classes))
		if y[i] >= classes {
			y[i] = classes - 1
		}
	}
	return x, y
}

// synthXOR generates a dataset no linear model can fit.
func synthXOR(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b, rng.Float64()}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return x, y
}

func TestTreeLearnsAxisSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthAxis(rng, 600, 4, 3)
	tr, err := TrainTree(x, y, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synthAxis(rng, 300, 4, 3)
	if acc := Accuracy(tr, tx, ty); acc < 0.9 {
		t.Fatalf("tree accuracy %v on trivially separable data", acc)
	}
}

func TestTreeXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synthXOR(rng, 800)
	tr, err := TrainTree(x, y, TreeParams{Criterion: Gini, MaxDepth: 10, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synthXOR(rng, 300)
	if acc := Accuracy(tr, tx, ty); acc < 0.85 {
		t.Fatalf("tree accuracy %v on XOR", acc)
	}
	// The linear model must fail here (≈ chance).
	lin, err := TrainLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(lin, tx, ty); acc > 0.7 {
		t.Fatalf("linear model should not solve XOR, got %v", acc)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthXOR(rng, 500)
	for _, d := range []int{1, 2, 4, 8} {
		tr, err := TrainTree(x, y, TreeParams{MaxDepth: d, MinSamplesLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Depth() > d {
			t.Fatalf("depth %d exceeds limit %d", tr.Depth(), d)
		}
	}
}

func TestTreePureLeafStops(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{1, 1, 1, 1}
	tr, err := TrainTree(x, y, TreeParams{MinSamplesLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Fatalf("pure dataset should yield a single leaf, got %d nodes", tr.NodeCount())
	}
	if tr.Predict([]float64{9}) != 1 {
		t.Fatal("leaf label wrong")
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := TrainTree(nil, nil, DefaultTreeParams()); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := TrainTree([][]float64{{1}}, []int{-1}, DefaultTreeParams()); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestFeatureImportanceConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthAxis(rng, 800, 6, 4)
	tr, err := TrainTree(x, y, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances must sum to 1, got %v", sum)
	}
	if imp[0] < 0.8 {
		t.Fatalf("feature 0 should dominate: %v", imp)
	}
}

func TestPruneReducesNodesKeepsAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthAxis(rng, 600, 4, 2)
	// Add label noise so the unpruned tree overfits.
	for i := range y {
		if rng.Float64() < 0.15 {
			y[i] = 1 - y[i]
		}
	}
	tr, err := TrainTree(x, y, TreeParams{MaxDepth: 0, MinSamplesLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	vx, vy := synthAxis(rng, 400, 4, 2)
	before := Accuracy(tr, vx, vy)
	pruned := tr.Prune(vx, vy)
	if pruned == 0 {
		t.Fatal("overfit tree should prune")
	}
	if after := Accuracy(tr, vx, vy); after < before {
		t.Fatalf("pruning reduced validation accuracy: %v -> %v", before, after)
	}
}

func TestForestBeatsChance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := synthXOR(rng, 700)
	f, err := TrainForest(x, y, ForestParams{Trees: 15, Tree: TreeParams{MaxDepth: 8, MinSamplesLeaf: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 15 {
		t.Fatalf("forest size %d", f.Trees())
	}
	tx, ty := synthXOR(rng, 300)
	if acc := Accuracy(f, tx, ty); acc < 0.75 {
		t.Fatalf("forest accuracy %v", acc)
	}
}

func TestLinearOnLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := synthAxis(rng, 800, 3, 4)
	l, err := TrainLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synthAxis(rng, 300, 3, 4)
	if acc := Accuracy(l, tx, ty); acc < 0.7 {
		t.Fatalf("linear accuracy %v on linear data", acc)
	}
}

func TestLogisticBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := synthAxis(rng, 600, 3, 2)
	l, err := TrainLogistic(x, y, LogisticParams{Epochs: 60, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synthAxis(rng, 300, 3, 2)
	if acc := Accuracy(l, tx, ty); acc < 0.85 {
		t.Fatalf("logistic accuracy %v", acc)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	w, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]-3) > 1e-9 {
		t.Fatalf("solve = %v, want [1 3]", w)
	}
	if _, err := solve([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestKFoldPartition(t *testing.T) {
	folds := KFold(10, 3, 1)
	if len(folds) != 3 {
		t.Fatalf("folds %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f[0])+len(f[1]) != 10 {
			t.Fatalf("fold sizes %d+%d", len(f[0]), len(f[1]))
		}
		for _, i := range f[1] {
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times across test folds", i, seen[i])
		}
	}
}

// Property: each fold's train and test sets are disjoint.
func TestQuickKFoldDisjoint(t *testing.T) {
	f := func(rawN, rawK uint8, seed int64) bool {
		n := 5 + int(rawN)%100
		k := 2 + int(rawK)%5
		for _, fold := range KFold(n, k, seed) {
			inTest := map[int]bool{}
			for _, i := range fold[1] {
				inTest[i] = true
			}
			for _, i := range fold[0] {
				if inTest[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateAndGridSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := synthAxis(rng, 400, 3, 2)
	acc, err := CrossValidateTree(x, y, DefaultTreeParams(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("CV accuracy %v", acc)
	}
	p, best, err := GridSearchTree(x, y, []int{2, 6}, []int{1, 10}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best < acc-0.1 {
		t.Fatalf("grid search found worse params (%v) than default (%v): %+v", best, acc, p)
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() == Entropy.String() {
		t.Fatal("criterion names must differ")
	}
}

// Property: tree prediction is piecewise constant — predicting a training
// point yields a label that appeared in training.
func TestQuickTreePredictsSeenLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		x := make([][]float64, n)
		y := make([]int, n)
		classes := 2 + rng.Intn(4)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.Intn(classes)
		}
		tr, err := TrainTree(x, y, TreeParams{MaxDepth: 5, MinSamplesLeaf: 2})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tr.Predict([]float64{rng.Float64(), rng.Float64()})
			if p < 0 || p >= classes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
