package ml

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthXOR(rng, 400)
	tr, err := TrainTree(x, y, TreeParams{Criterion: Entropy, MaxDepth: 8, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got Tree
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Depth() != tr.Depth() || got.NodeCount() != tr.NodeCount() {
		t.Fatalf("shape changed: depth %d->%d nodes %d->%d",
			tr.Depth(), got.Depth(), tr.NodeCount(), got.NodeCount())
	}
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if got.Predict(p) != tr.Predict(p) {
			t.Fatalf("prediction changed at %v", p)
		}
	}
	ia, ib := tr.FeatureImportance(), got.FeatureImportance()
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("importance changed")
		}
	}
}

// Property: any trained tree survives a JSON round trip with identical
// predictions on its own training data.
func TestQuickTreeJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := synthAxis(rng, 50+rng.Intn(100), 2+rng.Intn(3), 2+rng.Intn(3))
		tr, err := TrainTree(x, y, TreeParams{MaxDepth: 6, MinSamplesLeaf: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		data, err := json.Marshal(tr)
		if err != nil {
			return false
		}
		var got Tree
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		for i := range x {
			if got.Predict(x[i]) != tr.Predict(x[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"nodes":[],"n_features":1,"n_classes":1}`,                                         // no nodes
		`{"nodes":[{"f":5,"l":0,"r":0}],"n_features":2,"n_classes":1}`,                      // feature out of range
		`{"nodes":[{"f":0,"l":9,"r":9},{"f":-1}],"n_features":2,"n_classes":1}`,             // child out of range
		`{"nodes":[{"f":0,"l":0,"r":1},{"f":-1}],"n_features":2,"n_classes":1}`,             // self-loop child
		`{"nodes":[{"f":-1,"y":0},{"f":0,"l":0,"r":0}],"n_features":2,"n_classes":1}`,       // backward child pointers
		`{"nodes":[{"f":-1,"y":5}],"n_features":2,"n_classes":3}`,                           // leaf label out of range
		`{"nodes":[{"f":-1,"y":0}],"n_features":0,"n_classes":1}`,                           // no features declared
		`{"nodes":[{"f":-1,"y":0}],"n_features":2,"n_classes":1,"importance":[0.5]}`,        // importance length mismatch
		`{"nodes":[{"f":-1,"y":0}],"n_features":1,"n_classes":1,"params":{"max_depth":-2}}`, // negative hyperparameter
		`{"nodes":[{"f":-1,"y":0}],"n_feat`,                                                 // truncated mid-write
		`not json at all`,
	}
	for i, c := range cases {
		var tr Tree
		if err := json.Unmarshal([]byte(c), &tr); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}
