package ml

import (
	"encoding/json"
	"fmt"
)

// treeJSON is the serialized form of a Tree.
type treeJSON struct {
	Nodes      []nodeJSON `json:"nodes"`
	NFeatures  int        `json:"n_features"`
	NClasses   int        `json:"n_classes"`
	Importance []float64  `json:"importance"`
	Params     paramsJSON `json:"params"`
}

type nodeJSON struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Label     int     `json:"y"`
	Samples   int     `json:"n"`
}

type paramsJSON struct {
	Criterion      int `json:"criterion"`
	MaxDepth       int `json:"max_depth"`
	MinSamplesLeaf int `json:"min_samples_leaf"`
}

// MarshalJSON serializes the tree (model persistence for the CLI tools).
func (t *Tree) MarshalJSON() ([]byte, error) {
	out := treeJSON{
		NFeatures:  t.nFeatures,
		NClasses:   t.nClasses,
		Importance: t.importance,
		Params: paramsJSON{
			Criterion:      int(t.params.Criterion),
			MaxDepth:       t.params.MaxDepth,
			MinSamplesLeaf: t.params.MinSamplesLeaf,
		},
	}
	for _, n := range t.nodes {
		out.Nodes = append(out.Nodes, nodeJSON{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Label: n.label, Samples: n.samples,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a serialized tree.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var in treeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Nodes) == 0 {
		return fmt.Errorf("ml: serialized tree has no nodes")
	}
	t.nFeatures = in.NFeatures
	t.nClasses = in.NClasses
	t.importance = in.Importance
	t.params = TreeParams{
		Criterion:      Criterion(in.Params.Criterion),
		MaxDepth:       in.Params.MaxDepth,
		MinSamplesLeaf: in.Params.MinSamplesLeaf,
	}
	t.nodes = t.nodes[:0]
	for _, n := range in.Nodes {
		t.nodes = append(t.nodes, node{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, label: n.Label, samples: n.Samples,
		})
	}
	// Full structural validation: bit flips in a model file must surface as
	// a load error, never as an out-of-bounds read or a Predict that loops.
	if err := t.Validate(); err != nil {
		return fmt.Errorf("ml: serialized tree is malformed: %w", err)
	}
	return nil
}
