package ml

import (
	"fmt"
	"math/rand"
)

// KFold yields k (train, test) index splits after a deterministic shuffle,
// mirroring the paper's 3-fold cross-validation (Section 5.1).
func KFold(n, k int, seed int64) [][2][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	out := make([][2][]int, 0, k)
	for f := 0; f < k; f++ {
		lo, hi := f*n/k, (f+1)*n/k
		test := append([]int{}, idx[lo:hi]...)
		train := append(append([]int{}, idx[:lo]...), idx[hi:]...)
		out = append(out, [2][]int{train, test})
	}
	return out
}

func gather(x [][]float64, y []int, idx []int) ([][]float64, []int) {
	gx := make([][]float64, len(idx))
	gy := make([]int, len(idx))
	for i, j := range idx {
		gx[i] = x[j]
		gy[i] = y[j]
	}
	return gx, gy
}

// CrossValidateTree returns the mean k-fold accuracy of tree parameters p.
func CrossValidateTree(x [][]float64, y []int, p TreeParams, k int, seed int64) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("ml: empty dataset")
	}
	acc := 0.0
	folds := KFold(len(x), k, seed)
	for _, fold := range folds {
		tx, ty := gather(x, y, fold[0])
		vx, vy := gather(x, y, fold[1])
		t, err := TrainTree(tx, ty, p)
		if err != nil {
			return 0, err
		}
		acc += Accuracy(t, vx, vy)
	}
	return acc / float64(len(folds)), nil
}

// GridSearchTree sweeps criterion, max_depth and min_samples_leaf with
// k-fold cross-validation (the paper's hyperparameter methodology,
// Section 5.1) and returns the best parameters with their CV accuracy.
func GridSearchTree(x [][]float64, y []int, depths, minLeafs []int, k int, seed int64) (TreeParams, float64, error) {
	if len(depths) == 0 {
		depths = []int{4, 8, 12, 16}
	}
	if len(minLeafs) == 0 {
		minLeafs = []int{1, 5, 20}
	}
	best := TreeParams{}
	bestAcc := -1.0
	for _, crit := range []Criterion{Gini, Entropy} {
		for _, d := range depths {
			for _, ml := range minLeafs {
				p := TreeParams{Criterion: crit, MaxDepth: d, MinSamplesLeaf: ml}
				acc, err := CrossValidateTree(x, y, p, k, seed)
				if err != nil {
					return best, 0, err
				}
				if acc > bestAcc {
					best, bestAcc = p, acc
				}
			}
		}
	}
	return best, bestAcc, nil
}
