package tenant

import (
	"math"
	"reflect"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

var chip = power.Chip{Tiles: 2, GPEsPerTile: 8}

// streamTrace: each GPE streams its own array once (memory-bound, no reuse).
func streamTrace(perGPE int) *sim.Trace {
	b := sim.NewBuilder(chip.NGPE(), chip.Tiles)
	regions := make([]sim.Region, chip.NGPE())
	for g := range regions {
		regions[g] = b.AllocRegion("stream", perGPE*8, sim.RegionStream, 1)
	}
	b.Phase("stream")
	for i := 0; i < perGPE; i++ {
		for g := 0; g < chip.NGPE(); g++ {
			b.On(g)
			b.LoadF(1, regions[g].Lo+uint32(i*8))
			b.FP(1)
		}
	}
	return b.Build()
}

// reuseTrace: every GPE loops over one small hot set (cache-friendly once
// warm, expensive when cold — the trace shape that makes tenant switches
// visible to the watchdog).
func reuseTrace(wsBytes, iters int) *sim.Trace {
	b := sim.NewBuilder(chip.NGPE(), chip.Tiles)
	r := b.AllocRegion("hot", wsBytes, sim.RegionReuse, 0)
	b.Phase("reuse")
	for it := 0; it < iters; it++ {
		for g := 0; g < chip.NGPE(); g++ {
			b.On(g)
			b.LoadF(2, r.Lo+uint32((it*64+g*8)%wsBytes))
			b.FP(2)
		}
	}
	return b.Build()
}

// job builds a tenant job over the trace's work-aligned epoch grid.
func job(id string, class Class, tr *sim.Trace, cfg config.Config, epochFP int) Job {
	return Job{ID: id, Class: class, Trace: tr, Epochs: tr.Epochs(epochFP), Start: cfg}
}

// threeTenants is the canonical mixed workload: an interactive reuse
// kernel, a batch stream kernel, and a scavenger reuse kernel on a
// different configuration.
func threeTenants() []Job {
	cfgB := config.Baseline
	cfgC := config.Baseline
	cfgC[config.Clock] = 2
	return []Job{
		job("alice", Interactive, reuseTrace(4096, 600), config.Baseline, 100),
		job("bob", Batch, streamTrace(600), cfgB, 100),
		job("carol", Scavenger, reuseTrace(8192, 400), cfgC, 100),
	}
}

func runMux(t *testing.T, jobs []Job, opts Options) MuxResult {
	t.Helper()
	x := New(chip, sim.DefaultBandwidth, opts)
	for _, j := range jobs {
		if err := x.Add(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Two runs with identical inputs must produce identical schedules and
// ledgers — the mux loop is strictly sequential and seed-free.
func TestMuxDeterministicReplay(t *testing.T) {
	for _, q := range []int{1, 3, 7} {
		a := runMux(t, threeTenants(), Options{Quantum: q})
		b := runMux(t, threeTenants(), Options{Quantum: q})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("quantum %d: replay diverged", q)
		}
	}
}

// The determinism contract across quantum lengths: scheduling may change
// WHEN a tenant's epochs run and what they cost (cold caches after
// resume), but never the work itself — epoch partition and FP-op totals
// are quantum-invariant and match the solo run exactly.
func TestMuxWorkInvariantAcrossQuanta(t *testing.T) {
	solo := map[string]TenantResult{}
	for _, j := range threeTenants() {
		r, err := Isolated(chip, sim.DefaultBandwidth, j)
		if err != nil {
			t.Fatal(err)
		}
		solo[j.ID] = r
	}
	for _, q := range []int{1, 2, 5, 50} {
		res := runMux(t, threeTenants(), Options{Quantum: q})
		for _, tr := range res.Tenants {
			s := solo[tr.ID]
			if tr.EpochsRun != s.EpochsRun {
				t.Fatalf("q=%d %s: %d epochs vs solo %d", q, tr.ID, tr.EpochsRun, s.EpochsRun)
			}
			if tr.Metrics.FPOps != s.Metrics.FPOps {
				t.Fatalf("q=%d %s: FP ops %v vs solo %v", q, tr.ID, tr.Metrics.FPOps, s.Metrics.FPOps)
			}
		}
	}
}

// With a quantum long enough that every tenant runs to completion in one
// stretch, each tenant's entire ledger is byte-identical to its solo run:
// a context switch hands over a machine state-identical to a fresh one.
func TestMuxSoloEquivalenceAtFullQuantum(t *testing.T) {
	res := runMux(t, threeTenants(), Options{Quantum: 1 << 20})
	if res.Switches != 2 {
		t.Fatalf("3 tenants at full quantum: %d switches, want 2", res.Switches)
	}
	for _, tr := range res.Tenants {
		j := jobByID(t, tr.ID)
		s, err := Isolated(chip, sim.DefaultBandwidth, j)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Metrics != s.Metrics {
			t.Fatalf("%s: mux metrics %+v != solo %+v", tr.ID, tr.Metrics, s.Metrics)
		}
	}
}

func jobByID(t *testing.T, id string) Job {
	t.Helper()
	for _, j := range threeTenants() {
		if j.ID == id {
			return j
		}
	}
	t.Fatalf("no job %s", id)
	return Job{}
}

// Conservation: the fabric makespan equals the sum of every tenant's
// accounted service (own epochs + attributed switch costs) — nothing is
// double-charged or dropped — and the last finisher's completion time is
// the makespan.
func TestMuxConservation(t *testing.T) {
	res := runMux(t, threeTenants(), Options{Quantum: 2})
	var sum, switches, lastFinish float64
	for _, tr := range res.Tenants {
		sum += tr.Metrics.TimeSec + tr.SwitchTimeSec
		switches += tr.SwitchTimeSec
		if tr.FinishSec > lastFinish {
			lastFinish = tr.FinishSec
		}
		if tr.ServiceSec != tr.Metrics.TimeSec+tr.SwitchTimeSec {
			t.Fatalf("%s: service %v != epochs %v + switch %v", tr.ID, tr.ServiceSec, tr.Metrics.TimeSec, tr.SwitchTimeSec)
		}
	}
	if relDiff(sum, res.TotalSec) > 1e-9 {
		t.Fatalf("Σ service %v != makespan %v", sum, res.TotalSec)
	}
	if relDiff(lastFinish, res.TotalSec) > 1e-9 {
		t.Fatalf("last finish %v != makespan %v", lastFinish, res.TotalSec)
	}
	if switches <= 0 {
		t.Fatal("interleaving three tenants must charge switch time")
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// WDRR proportionality: while every tenant is backlogged, each round
// serves exactly Quantum × weight epochs per tenant, in admission order.
func TestWDRRServiceProportionalToWeight(t *testing.T) {
	jobs := []Job{
		job("i", Interactive, streamTrace(2000), config.Baseline, 20),
		job("b", Batch, streamTrace(2000), config.Baseline, 20),
		job("s", Scavenger, streamTrace(2000), config.Baseline, 20),
	}
	const q = 2
	res := runMux(t, jobs, Options{Quantum: q})
	want := map[string]int{"i": q * 8, "b": q * 4, "s": q * 1}
	// Check the first two full rounds (all tenants have plenty of work).
	if len(res.Schedule) < 6 {
		t.Fatalf("schedule too short: %v", res.Schedule)
	}
	order := []string{"i", "b", "s"}
	for round := 0; round < 2; round++ {
		for k, id := range order {
			e := res.Schedule[round*3+k]
			if e.Tenant != id || e.Epochs != want[id] {
				t.Fatalf("round %d slot %d: got %+v, want %s×%d", round, k, e, id, want[id])
			}
		}
	}
}

// Flat policy ignores class weights: every backlogged tenant gets exactly
// Quantum epochs per round.
func TestMuxFlatPolicy(t *testing.T) {
	jobs := []Job{
		job("i", Interactive, streamTrace(800), config.Baseline, 20),
		job("s", Scavenger, streamTrace(800), config.Baseline, 20),
	}
	res := runMux(t, jobs, Options{Quantum: 3, Flat: true})
	for k := 0; k < 4; k++ {
		if res.Schedule[k].Epochs != 3 {
			t.Fatalf("flat schedule entry %d: %+v", k, res.Schedule[k])
		}
	}
}

// The golden interference scenario end-to-end through the mux: a tenant
// running an interference-aware control loop sees cost spikes only at
// tenant-switch boundaries (cold caches), classifies them as interference
// and never trips into fallback.
func TestMuxInterferenceClassifiedNoFallback(t *testing.T) {
	opts := core.DefaultResilientOptions()
	opts.WatchdogWindow = 6
	opts.DegradeFactor = 1.5
	opts.DegradeEpochs = 3

	// Working set of 16 lines: one epoch's walk re-touches all of it, so
	// exactly the first epoch after each resume runs cold.
	hot := job("hot", Interactive, reuseTrace(1024, 2500), config.Baseline, 100)
	hot.Control = core.NewResilientStepper(nil, opts)
	noisy := job("noisy", Batch, streamTrace(1500), config.Baseline, 100)

	x := New(chip, sim.DefaultBandwidth, Options{Quantum: 8, Flat: true})
	if err := x.Add(hot); err != nil {
		t.Fatal(err)
	}
	if err := x.Add(noisy); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	var hotRes TenantResult
	for _, tr := range res.Tenants {
		if tr.ID == "hot" {
			hotRes = tr
		}
	}
	rep := hotRes.Resilience
	if rep.InterferenceEpochs == 0 {
		t.Fatalf("cold resumes must classify as interference: %+v (switches=%d)", rep, hotRes.Switches)
	}
	if rep.Fallbacks != 0 || rep.PermanentFallback {
		t.Fatalf("interference must not trip the watchdog: %+v", rep)
	}
	if hotRes.Switches == 0 {
		t.Fatal("expected context switches into the hot tenant")
	}
}

// Metrics surface: the tenant_* family is populated after a run.
func TestMuxMetricsFamily(t *testing.T) {
	reg := obs.NewRegistry()
	x := New(chip, sim.DefaultBandwidth, Options{Quantum: 2, Metrics: reg})
	for _, j := range threeTenants() {
		if err := x.Add(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"tenant_epochs_total":   false,
		"tenant_switches_total": false,
		"tenant_active":         false,
	}
	for _, ms := range reg.Snapshot() {
		if _, ok := want[ms.Name]; ok {
			if ms.Value <= 0 {
				t.Fatalf("%s = %v, want > 0", ms.Name, ms.Value)
			}
			want[ms.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("metric %s not registered", name)
		}
	}
}

func TestMuxValidation(t *testing.T) {
	x := New(chip, sim.DefaultBandwidth, Options{})
	if err := x.Add(Job{}); err == nil {
		t.Fatal("empty job must be rejected")
	}
	j := job("a", Batch, streamTrace(50), config.Baseline, 10)
	if err := x.Add(j); err != nil {
		t.Fatal(err)
	}
	if err := x.Add(j); err == nil {
		t.Fatal("duplicate tenant ID must be rejected")
	}
	wrong := sim.NewBuilder(4, 1).Build()
	if err := x.Add(Job{ID: "b", Trace: wrong, Epochs: []sim.EpochRange{{}}, Start: config.Baseline}); err == nil {
		t.Fatal("core-count mismatch must be rejected")
	}
	empty := New(chip, sim.DefaultBandwidth, Options{})
	if _, err := empty.Run(); err == nil {
		t.Fatal("empty mux must refuse to run")
	}
}

func TestJainIndex(t *testing.T) {
	if j := Jain([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %v", j)
	}
	if j := Jain([]float64{1, 0, 0}); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("one-taker: %v", j)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
	if Slowdown(2, 1) != 2 || Slowdown(1, 0) != 0 {
		t.Fatal("slowdown arithmetic")
	}
}

func BenchmarkMuxInterleave(b *testing.B) {
	jobs := threeTenants()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := New(chip, sim.DefaultBandwidth, Options{Quantum: 4})
		for _, j := range jobs {
			if err := x.Add(j); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := x.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
