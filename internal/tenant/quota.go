package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sparseadapt/internal/obs"
)

// Admission errors. The server maps both to 429; Retry-After comes from the
// tenant's own accounting, never the global queue hint (a tenant at its
// quota says nothing about the queue, and vice versa).
var (
	// ErrQuota means the tenant is at its inflight-job quota.
	ErrQuota = errors.New("tenant inflight quota exceeded")
	// ErrRate means the tenant's token bucket is empty.
	ErrRate = errors.New("tenant rate limit exceeded")
)

// Quota bounds one tenant's use of the admission queue. Zero fields mean
// unlimited on that axis.
type Quota struct {
	// MaxInflight caps a tenant's jobs that are queued or running at once.
	MaxInflight int
	// RatePerSec and Burst are the tenant's submission token bucket.
	RatePerSec float64
	Burst      float64
}

// Enabled reports whether the quota restricts anything.
func (q Quota) Enabled() bool { return q.MaxInflight > 0 || q.RatePerSec > 0 }

// TenantSnapshot is one tenant's admission state as /v1/tenants reports it.
type TenantSnapshot struct {
	ID            string  `json:"id"`
	Class         string  `json:"class"`
	Inflight      int     `json:"inflight"`
	Admitted      int64   `json:"admitted"`
	Finished      int64   `json:"finished"`
	RejectedQuota int64   `json:"rejected_quota,omitempty"`
	RejectedRate  int64   `json:"rejected_rate,omitempty"`
	AvgJobSec     float64 `json:"avg_job_sec,omitempty"`
}

// tenantState is one tenant's live admission accounting.
type tenantState struct {
	class    Class
	inflight int
	tokens   float64
	last     time.Time

	admitted      int64
	finished      int64
	rejectedQuota int64
	rejectedRate  int64
	// ewmaSec tracks job residence time (accept → terminal), the basis of
	// the tenant's honest Retry-After hint.
	ewmaSec float64
}

// Tracker is the admission-side half of multi-tenancy: per-tenant inflight
// quotas and submission token buckets layered on top of the scheduler's
// global queue. Admit runs before the scheduler reserves a global slot, so
// a tenant-level rejection never consumes global admission capacity. All
// methods are safe for concurrent use; a nil *Tracker admits everything.
type Tracker struct {
	mu      sync.Mutex
	quota   Quota
	reg     *obs.Registry
	tenants map[string]*tenantState
	jobs    map[string]string // job ID → tenant, for idempotent release
}

// NewTracker builds a tracker enforcing q for every tenant. reg (optional)
// receives the tenant_* admission metrics.
func NewTracker(q Quota, reg *obs.Registry) *Tracker {
	return &Tracker{quota: q, reg: reg, tenants: make(map[string]*tenantState), jobs: make(map[string]string)}
}

func (t *Tracker) state(id string) *tenantState {
	s := t.tenants[id]
	if s == nil {
		s = &tenantState{tokens: t.quota.Burst, class: Batch}
		t.tenants[id] = s
	}
	return s
}

// Admit reserves an inflight slot for one job of the tenant, or rejects
// with ErrQuota/ErrRate and the tenant's own Retry-After hint. A granted
// slot must be balanced by Bind+Release (job accepted) or Cancel (the
// submission failed downstream of admission). A nil tracker admits.
func (t *Tracker) Admit(tenantID string, class Class, now time.Time) (time.Duration, error) {
	if t == nil || tenantID == "" {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(tenantID)
	s.class = class

	if r := t.quota.RatePerSec; r > 0 {
		if !s.last.IsZero() {
			s.tokens = math.Min(t.quota.Burst, s.tokens+now.Sub(s.last).Seconds()*r)
		}
		s.last = now
		if s.tokens < 1 {
			s.rejectedRate++
			t.count("tenant_rejected_rate_total", "submissions rejected by a tenant token bucket")
			return time.Duration((1 - s.tokens) / r * float64(time.Second)), ErrRate
		}
		s.tokens--
	}
	if max := t.quota.MaxInflight; max > 0 && s.inflight >= max {
		s.rejectedQuota++
		t.count("tenant_rejected_quota_total", "submissions rejected by a tenant inflight quota")
		return s.retryHint(), ErrQuota
	}
	s.inflight++
	s.admitted++
	t.count("tenant_admitted_total", "submissions admitted through tenant quotas")
	t.gaugeInflightLocked()
	return 0, nil
}

// Bind associates an accepted job with the tenant whose slot it holds, so
// terminal hooks can Release it by job ID alone.
func (t *Tracker) Bind(jobID, tenantID string) {
	if t == nil || tenantID == "" || jobID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs[jobID] = tenantID
}

// Cancel returns an admitted-but-never-bound slot (the submission failed
// between Admit and scheduler commit).
func (t *Tracker) Cancel(tenantID string) {
	if t == nil || tenantID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.tenants[tenantID]; s != nil && s.inflight > 0 {
		s.inflight--
		s.admitted--
		t.gaugeInflightLocked()
	}
}

// Release frees the slot held by a terminal job and feeds its residence
// time into the tenant's Retry-After EWMA. Idempotent: releasing an
// unknown or already-released job is a no-op, so every terminal path
// (finished, canceled while queued, evicted) may call it safely.
func (t *Tracker) Release(jobID string, residence time.Duration) {
	if t == nil || jobID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tenantID, ok := t.jobs[jobID]
	if !ok {
		return
	}
	delete(t.jobs, jobID)
	s := t.tenants[tenantID]
	if s == nil {
		return
	}
	if s.inflight > 0 {
		s.inflight--
	}
	s.finished++
	if sec := residence.Seconds(); sec > 0 {
		if s.ewmaSec == 0 {
			s.ewmaSec = sec
		} else {
			s.ewmaSec = 0.8*s.ewmaSec + 0.2*sec
		}
	}
	t.gaugeInflightLocked()
}

// RetryHint returns the tenant's own Retry-After estimate: the EWMA of its
// job residence times, clamped to [1s, 60s] — how long until an inflight
// slot plausibly frees.
func (t *Tracker) RetryHint(tenantID string) time.Duration {
	if t == nil {
		return time.Second
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.tenants[tenantID]; s != nil {
		return s.retryHint()
	}
	return time.Second
}

// retryHint is the per-tenant hint for callers already holding the lock.
func (s *tenantState) retryHint() time.Duration { return clampHint(s.ewmaSec) }

func clampHint(ewmaSec float64) time.Duration {
	d := time.Duration(ewmaSec * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	if d > time.Minute {
		return time.Minute
	}
	return d
}

// Snapshot returns every tenant's admission state, sorted by ID.
func (t *Tracker) Snapshot() []TenantSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(t.tenants))
	for id, s := range t.tenants {
		out = append(out, TenantSnapshot{
			ID: id, Class: s.class.String(),
			Inflight: s.inflight, Admitted: s.admitted, Finished: s.finished,
			RejectedQuota: s.rejectedQuota, RejectedRate: s.rejectedRate,
			AvgJobSec: s.ewmaSec,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns how many tenants currently hold inflight jobs.
func (t *Tracker) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.tenants {
		if s.inflight > 0 {
			n++
		}
	}
	return n
}

func (t *Tracker) count(name, help string) {
	if t.reg != nil {
		t.reg.Counter(name, help).Inc()
	}
}

func (t *Tracker) gaugeInflightLocked() {
	if t.reg == nil {
		return
	}
	n := 0
	for _, s := range t.tenants {
		n += s.inflight
	}
	t.reg.Gauge("tenant_inflight_jobs", "jobs currently holding tenant inflight slots").Set(float64(n))
	active := 0
	for _, s := range t.tenants {
		if s.inflight > 0 {
			active++
		}
	}
	t.reg.Gauge("tenant_active", "tenants with at least one inflight job").Set(float64(active))
}

// String renders the quota for the daemon's startup log.
func (q Quota) String() string {
	if !q.Enabled() {
		return "tenant quotas off"
	}
	return fmt.Sprintf("tenant quota: max-inflight=%d rate=%.3g/s burst=%.3g", q.MaxInflight, q.RatePerSec, q.Burst)
}
