package tenant

// Jain computes Jain's fairness index over a vector of per-tenant
// allocations: (Σx)² / (n·Σx²). It is 1 when every tenant received the
// same allocation and 1/n when one tenant received everything. Feed it
// virtual-time service (service normalized by class weight) to measure
// weighted fairness. Empty or all-zero input returns 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Slowdown returns how much longer a tenant took to finish under
// multiplexing than alone: muxFinishSec / soloSec. 1 means no slowdown;
// values below 1 cannot occur with honest accounting. Returns 0 when the
// solo run took no time.
func Slowdown(muxFinishSec, soloSec float64) float64 {
	if soloSec <= 0 {
		return 0
	}
	return muxFinishSec / soloSec
}
