package tenant

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sparseadapt/internal/obs"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestTrackerInflightQuota(t *testing.T) {
	tr := NewTracker(Quota{MaxInflight: 2}, nil)
	for i := 0; i < 2; i++ {
		if _, err := tr.Admit("acme", Batch, t0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tr.Bind(fmt.Sprintf("job-%d", i), "acme")
	}
	hint, err := tr.Admit("acme", Batch, t0)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("third admit: %v", err)
	}
	if hint < time.Second || hint > time.Minute {
		t.Fatalf("quota hint out of clamp range: %v", hint)
	}
	// Another tenant is unaffected by acme's quota.
	if _, err := tr.Admit("zeta", Interactive, t0); err != nil {
		t.Fatalf("independent tenant rejected: %v", err)
	}
	// Releasing frees the slot; double release stays idempotent.
	tr.Release("job-0", 5*time.Second)
	tr.Release("job-0", 5*time.Second)
	if _, err := tr.Admit("acme", Batch, t0); err != nil {
		t.Fatalf("post-release admit: %v", err)
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].ID != "acme" || snap[1].ID != "zeta" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[0].Inflight != 2 || snap[0].Finished != 1 {
		t.Fatalf("acme state: %+v", snap[0])
	}
}

func TestTrackerRateBucket(t *testing.T) {
	tr := NewTracker(Quota{RatePerSec: 1, Burst: 2}, nil)
	now := t0
	for i := 0; i < 2; i++ {
		if _, err := tr.Admit("acme", Batch, now); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	hint, err := tr.Admit("acme", Batch, now)
	if !errors.Is(err, ErrRate) {
		t.Fatalf("over-burst admit: %v", err)
	}
	if hint <= 0 || hint > time.Second {
		t.Fatalf("rate hint %v, want exact bucket wait in (0, 1s]", hint)
	}
	// Tokens refill with time.
	if _, err := tr.Admit("acme", Batch, now.Add(1500*time.Millisecond)); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
}

func TestTrackerRetryHintEWMA(t *testing.T) {
	tr := NewTracker(Quota{MaxInflight: 1}, nil)
	if h := tr.RetryHint("acme"); h != time.Second {
		t.Fatalf("no-history hint %v, want 1s floor", h)
	}
	for i := 0; i < 5; i++ {
		if _, err := tr.Admit("acme", Batch, t0); err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("j%d", i)
		tr.Bind(id, "acme")
		tr.Release(id, 10*time.Second)
	}
	h := tr.RetryHint("acme")
	if h < 5*time.Second || h > 15*time.Second {
		t.Fatalf("EWMA hint %v, want near 10s", h)
	}
	// The hint clamps at 60s even for pathological residence times.
	tr.Admit("acme", Batch, t0)
	tr.Bind("long", "acme")
	tr.Release("long", 24*time.Hour)
	tr.Admit("acme", Batch, t0)
	tr.Bind("long2", "acme")
	tr.Release("long2", 24*time.Hour)
	if h := tr.RetryHint("acme"); h > time.Minute {
		t.Fatalf("hint %v exceeds 60s clamp", h)
	}
}

func TestTrackerCancelReturnsSlot(t *testing.T) {
	tr := NewTracker(Quota{MaxInflight: 1}, nil)
	if _, err := tr.Admit("acme", Batch, t0); err != nil {
		t.Fatal(err)
	}
	tr.Cancel("acme") // submission failed downstream of admission
	if _, err := tr.Admit("acme", Batch, t0); err != nil {
		t.Fatalf("slot not returned by cancel: %v", err)
	}
	if snap := tr.Snapshot(); snap[0].Admitted != 1 {
		t.Fatalf("canceled admit must not count: %+v", snap[0])
	}
}

func TestTrackerNilIsOpen(t *testing.T) {
	var tr *Tracker
	if _, err := tr.Admit("a", Batch, t0); err != nil {
		t.Fatal("nil tracker must admit")
	}
	tr.Bind("j", "a")
	tr.Release("j", time.Second)
	tr.Cancel("a")
	if tr.Snapshot() != nil || tr.Active() != 0 {
		t.Fatal("nil tracker must be empty")
	}
}

func TestTrackerMetricsAndActive(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker(Quota{MaxInflight: 1, RatePerSec: 100, Burst: 100}, reg)
	tr.Admit("a", Interactive, t0)
	tr.Bind("ja", "a")
	tr.Admit("b", Scavenger, t0)
	tr.Bind("jb", "b")
	tr.Admit("a", Interactive, t0) // quota reject
	if tr.Active() != 2 {
		t.Fatalf("active %d, want 2", tr.Active())
	}
	tr.Release("jb", time.Second)
	if tr.Active() != 1 {
		t.Fatalf("active %d after release, want 1", tr.Active())
	}
	vals := map[string]float64{}
	for _, ms := range reg.Snapshot() {
		vals[ms.Name] = ms.Value
	}
	if vals["tenant_admitted_total"] != 2 || vals["tenant_rejected_quota_total"] != 1 {
		t.Fatalf("counters: %+v", vals)
	}
	if vals["tenant_inflight_jobs"] != 1 || vals["tenant_active"] != 1 {
		t.Fatalf("gauges: %+v", vals)
	}
}

// Quota conservation under concurrency: admitted slots all come back.
func TestTrackerConcurrentConservation(t *testing.T) {
	tr := NewTracker(Quota{MaxInflight: 4}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t%d-j%d", g, i)
				if _, err := tr.Admit("shared", Batch, t0.Add(time.Duration(i)*time.Millisecond)); err != nil {
					continue
				}
				tr.Bind(id, "shared")
				tr.Release(id, time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Inflight != 0 {
		t.Fatalf("slots leaked: %+v", snap)
	}
	if snap[0].Admitted != snap[0].Finished {
		t.Fatalf("admitted %d != finished %d", snap[0].Admitted, snap[0].Finished)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Batch, "batch": Batch, "interactive": Interactive, "scavenger": Scavenger} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Fatal("unknown class must error")
	}
	if Interactive.Weight() <= Batch.Weight() || Batch.Weight() <= Scavenger.Weight() {
		t.Fatal("weights must order by class")
	}
	if (Quota{}).Enabled() || !(Quota{MaxInflight: 1}).Enabled() {
		t.Fatal("Enabled")
	}
}

func BenchmarkTenantTrackerAdmit(b *testing.B) {
	tr := NewTracker(Quota{MaxInflight: 1 << 30, RatePerSec: 1e12, Burst: 1e12}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("j%d", i)
		tr.Admit("bench", Batch, t0)
		tr.Bind(id, "bench")
		tr.Release(id, time.Millisecond)
	}
}
