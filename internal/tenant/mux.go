package tenant

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Options configure a Mux.
type Options struct {
	// Quantum is the base scheduling quantum in epochs: one WDRR round
	// grants each backlogged tenant Quantum × class-weight epochs of
	// service (default 4).
	Quantum int
	// Flat disables class weighting — every tenant gets Quantum epochs per
	// round regardless of class. The fairness baseline the mux experiment
	// compares WDRR against.
	Flat bool
	// Metrics receives the tenant_* metric family (nil = metrics off).
	Metrics *obs.Registry
}

// ScheduleEntry is one scheduling decision: which tenant ran and for how
// many epochs. The sequence is deterministic for a given job set and
// options, which the determinism property tests rely on.
type ScheduleEntry struct {
	Tenant string
	Epochs int
}

// TenantResult is one tenant's ledger after a multiplexed run.
type TenantResult struct {
	ID    string
	Class Class
	// Metrics aggregates the tenant's own epochs — byte-identical to a
	// solo run of the same job (the determinism contract).
	Metrics power.Metrics
	// EpochsRun counts epochs executed.
	EpochsRun int
	// Switches counts context switches into this tenant; SwitchCycles,
	// SwitchTimeSec and SwitchEnergyJ are their attributed cost (the
	// incoming tenant pays for taking over the fabric).
	Switches      int
	SwitchCycles  float64
	SwitchTimeSec float64
	SwitchEnergyJ float64
	// ServiceSec is total fabric occupancy: own epochs plus attributed
	// switch time. VirtualTimeSec is ServiceSec normalized by class weight
	// — equal virtual times mean weighted-fair service.
	ServiceSec     float64
	VirtualTimeSec float64
	// FinishSec is the fabric clock when the tenant's last epoch
	// completed; slowdown vs an isolated run is FinishSec / solo TimeSec.
	FinishSec float64
	// Reconfigs counts in-quantum reconfigurations the tenant's own
	// control loop applied.
	Reconfigs int
	// Resilience is the tenant's control-loop report (zero without
	// Control); interference classifications land here.
	Resilience core.ResilienceReport
	// Final is the configuration the tenant ended in.
	Final config.Config
}

// MuxResult is the outcome of one multiplexed run.
type MuxResult struct {
	// Tenants are the per-tenant ledgers, in admission order.
	Tenants []TenantResult
	// TotalSec and TotalEnergyJ are the fabric makespan and energy:
	// every tenant's epochs plus every switch.
	TotalSec     float64
	TotalEnergyJ float64
	// Switches counts tenant context switches performed.
	Switches int
	// Schedule is the full election sequence.
	Schedule []ScheduleEntry
}

// Jain returns Jain's fairness index over the tenants' virtual-time
// service: 1 means perfectly weighted-fair, 1/n means one tenant got
// everything.
func (r MuxResult) Jain() float64 {
	xs := make([]float64, 0, len(r.Tenants))
	for _, t := range r.Tenants {
		xs = append(xs, t.VirtualTimeSec)
	}
	return Jain(xs)
}

// Mux time-multiplexes one simulated machine between tenants. Build with
// New, Add jobs, then Run once. A Mux is single-use and not safe for
// concurrent use; determinism comes from its strictly sequential loop.
type Mux struct {
	chip power.Chip
	bw   float64
	opts Options
	jobs []*runJob
}

type runJob struct {
	job     Job
	cur     config.Config // config to resume under (tracks in-quantum reconfigs)
	next    int           // next epoch index
	deficit int
	res     TenantResult
}

func (r *runJob) done() bool { return r.next >= len(r.job.Epochs) }

// New builds an empty multiplexer for one simulated machine shape.
func New(chip power.Chip, bw float64, opts Options) *Mux {
	if opts.Quantum < 1 {
		opts.Quantum = 4
	}
	return &Mux{chip: chip, bw: bw, opts: opts}
}

// Add admits a tenant job. All jobs must share the machine's GPE count.
func (x *Mux) Add(j Job) error {
	if err := j.validate(); err != nil {
		return err
	}
	if j.Trace.NCores != x.chip.NGPE() {
		return fmt.Errorf("tenant %s: trace generated for %d cores, machine has %d", j.ID, j.Trace.NCores, x.chip.NGPE())
	}
	for _, r := range x.jobs {
		if r.job.ID == j.ID {
			return fmt.Errorf("tenant: duplicate ID %q", j.ID)
		}
	}
	x.jobs = append(x.jobs, &runJob{
		job: j, cur: j.Start,
		res: TenantResult{ID: j.ID, Class: j.Class},
	})
	return nil
}

// weight returns the WDRR weight the options assign the job.
func (x *Mux) weight(r *runJob) int {
	if x.opts.Flat {
		return 1
	}
	return r.job.Class.Weight()
}

// Run interleaves every admitted job to completion and returns the
// per-tenant ledgers. Election is weighted deficit round-robin: each round
// credits every unfinished tenant Quantum × weight epochs of deficit, then
// serves tenants in admission order, each running down its deficit (or its
// remaining work) before the next is elected. A tenant switch charges
// sim.ContextSwitch through the machine and attributes the cost to the
// incoming tenant.
func (x *Mux) Run() (MuxResult, error) {
	if len(x.jobs) == 0 {
		return MuxResult{}, fmt.Errorf("tenant: no jobs admitted")
	}
	var (
		out   MuxResult
		m     *sim.Machine
		cur   *runJob // tenant currently bound to the machine
		clock float64 // fabric simulated-time cursor
	)
	reg := x.opts.Metrics

	for remaining := len(x.jobs); remaining > 0; {
		for _, r := range x.jobs {
			if r.done() {
				continue
			}
			r.deficit += x.opts.Quantum * x.weight(r)
			served, err := x.serve(&m, &cur, r, &clock, &out)
			if err != nil {
				return MuxResult{}, err
			}
			if served > 0 {
				out.Schedule = append(out.Schedule, ScheduleEntry{Tenant: r.job.ID, Epochs: served})
			}
			if r.done() {
				r.deficit = 0
				r.res.FinishSec = clock
				if c := r.job.Control; c != nil {
					r.res.Resilience = c.Report()
					c.Flush()
				}
				r.res.Final = r.cur
				remaining--
			}
		}
	}

	for _, r := range x.jobs {
		r.res.ServiceSec = r.res.Metrics.TimeSec + r.res.SwitchTimeSec
		r.res.VirtualTimeSec = r.res.ServiceSec / float64(x.weight(r))
		out.Tenants = append(out.Tenants, r.res)
		out.TotalSec += r.res.ServiceSec
		out.TotalEnergyJ += r.res.Metrics.EnergyJ + r.res.SwitchEnergyJ
		if reg != nil {
			reg.Counter("tenant_epochs_total", "epochs executed across all tenants of the multiplexed fabric").Add(int64(r.res.EpochsRun))
			reg.Counter("tenant_interference_epochs_total", "epochs classified as co-tenant interference by tenant control loops").Add(int64(r.res.Resilience.InterferenceEpochs))
		}
	}
	if reg != nil {
		reg.Counter("tenant_switches_total", "tenant context switches on the multiplexed fabric").Add(int64(out.Switches))
		reg.Gauge("tenant_active", "tenants admitted to the last multiplexed run").Set(float64(len(x.jobs)))
	}
	return out, nil
}

// serve runs tenant r until its deficit or its work is exhausted,
// performing the context switch in if another tenant holds the machine.
func (x *Mux) serve(m **sim.Machine, cur **runJob, r *runJob, clock *float64, out *MuxResult) (int, error) {
	if r.deficit <= 0 || r.done() {
		return 0, nil
	}
	if *cur != r {
		if err := x.switchTo(m, cur, r, clock, out); err != nil {
			return 0, err
		}
	}
	served := 0
	for r.deficit > 0 && !r.done() {
		er := (*m).RunEpoch(r.job.Epochs[r.next])
		r.next++
		r.deficit--
		served++
		r.res.Metrics.Add(er.Metrics)
		r.res.EpochsRun++
		*clock += er.Metrics.TimeSec
		if c := r.job.Control; c != nil {
			before := (*m).Config()
			c.Step(*m, er)
			if (*m).Config() != before {
				r.res.Reconfigs++
			}
		}
	}
	r.cur = (*m).Config()
	return served, nil
}

// switchTo binds the machine to tenant r, charging the context switch to r
// (the incoming tenant pays for taking over the fabric, including any
// penalty the outgoing tenant's last-epoch reconfiguration left pending —
// ContextSwitch sweeps it so it cannot distort r's own epoch accounting).
// The first tenant of a run gets a fresh machine for free: the fabric was
// idle.
func (x *Mux) switchTo(m **sim.Machine, cur **runJob, r *runJob, clock *float64, out *MuxResult) error {
	if *m == nil {
		*m = sim.New(x.chip, x.bw, r.cur)
	} else {
		rc, err := (*m).ContextSwitch(r.cur)
		if err != nil {
			return fmt.Errorf("tenant %s: context switch: %w", r.job.ID, err)
		}
		ts, ej := sim.SwitchPenalty(x.chip, r.cur, rc, x.bw)
		r.res.Switches++
		r.res.SwitchCycles += rc.Cycles
		r.res.SwitchTimeSec += ts
		r.res.SwitchEnergyJ += ej
		*clock += ts
		out.Switches++
		if reg := x.opts.Metrics; reg != nil {
			reg.Counter("tenant_switch_cycles_total", "cycles spent on tenant context switches").Add(int64(rc.Cycles))
		}
		if c := r.job.Control; c != nil {
			c.NoteSwitch()
		}
	}
	(*m).BindTrace(r.job.Trace)
	*cur = r
	return nil
}

// Isolated runs one job solo on a fresh machine of the same shape — the
// baseline for slowdown accounting. The job's Control (if any) is stepped
// exactly as the mux would, so the comparison is control-for-control.
func Isolated(chip power.Chip, bw float64, j Job) (TenantResult, error) {
	if err := j.validate(); err != nil {
		return TenantResult{}, err
	}
	m := sim.New(chip, bw, j.Start)
	m.BindTrace(j.Trace)
	res := TenantResult{ID: j.ID, Class: j.Class}
	for _, ep := range j.Epochs {
		er := m.RunEpoch(ep)
		res.Metrics.Add(er.Metrics)
		res.EpochsRun++
		if c := j.Control; c != nil {
			before := m.Config()
			c.Step(m, er)
			if m.Config() != before {
				res.Reconfigs++
			}
		}
	}
	if c := j.Control; c != nil {
		res.Resilience = c.Report()
		c.Flush()
	}
	res.ServiceSec = res.Metrics.TimeSec
	res.VirtualTimeSec = res.ServiceSec / float64(j.Class.Weight())
	res.FinishSec = res.Metrics.TimeSec
	res.Final = m.Config()
	return res, nil
}
