// Package tenant time-multiplexes the simulated fabric between concurrent
// jobs, the way Aspros-style time-multiplexed CGRA deployments share one
// array between kernels. A Mux interleaves the epoch streams of N tenants
// on a single sim.Machine, electing one tenant per scheduling quantum by
// weighted deficit round-robin over priority classes and charging every
// tenant switch a real cost through sim.ContextSwitch: the outgoing
// tenant's cached state is flushed (dirty lines written back through the
// hierarchy) and the resuming tenant pays its cold-cache misses in its own
// epoch accounting. Because a context switch leaves the machine
// state-identical to a fresh one, each tenant's simulated epochs are
// byte-identical to a solo run at any quantum length — the determinism
// contract the property tests pin.
//
// Fairness is accounted per tenant: service received (fabric occupancy
// including attributed switch costs), virtual time (service normalized by
// class weight), slowdown versus an isolated run, and Jain's fairness
// index over the class-weighted service shares.
//
// The package also provides the admission-side half of multi-tenancy: a
// Tracker that layers per-tenant quotas and token-bucket rates on top of
// internal/sched's global admission queue, with honest per-tenant
// Retry-After hints (see quota.go and internal/server).
package tenant

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/sim"
)

// Class is a tenant priority class. Higher classes receive proportionally
// more fabric time per WDRR round.
type Class int

const (
	// Scavenger soaks up leftover capacity (weight 1).
	Scavenger Class = iota
	// Batch is the default throughput class (weight 4).
	Batch
	// Interactive is the latency-sensitive class (weight 8).
	Interactive
)

// Weight returns the WDRR weight of the class: epochs of service granted
// per unit quantum relative to a scavenger.
func (c Class) Weight() int {
	switch c {
	case Interactive:
		return 8
	case Batch:
		return 4
	default:
		return 1
	}
}

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return "scavenger"
	}
}

// ParseClass parses a priority-class name as it appears in job requests.
// The empty string is Batch, the default class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "batch":
		return Batch, nil
	case "interactive":
		return Interactive, nil
	case "scavenger":
		return Scavenger, nil
	default:
		return Batch, fmt.Errorf("tenant: unknown priority class %q (want interactive|batch|scavenger)", s)
	}
}

// Job is one tenant's workload as the multiplexer sees it: a bound trace
// cut into epochs, a starting configuration, and an optional per-tenant
// control loop.
type Job struct {
	// ID names the tenant; must be unique within a Mux.
	ID string
	// Class is the priority class electing the tenant's WDRR weight.
	Class Class
	// Trace is the tenant's execution trace (its NCores must match every
	// other tenant's — they share one machine).
	Trace *sim.Trace
	// Epochs is the tenant's epoch grid over Trace.
	Epochs []sim.EpochRange
	// Start is the configuration the tenant's first epoch runs under.
	Start config.Config
	// Control, when non-nil, drives per-tenant adaptive control: the mux
	// feeds it every epoch and reports tenant-switch boundaries so
	// switch-coincident telemetry shifts classify as interference. A nil
	// Control holds Start for the whole run.
	Control *core.ResilientStepper
}

func (j Job) validate() error {
	if j.ID == "" {
		return fmt.Errorf("tenant: job needs an ID")
	}
	if j.Trace == nil || len(j.Epochs) == 0 {
		return fmt.Errorf("tenant %s: job needs a trace and a non-empty epoch grid", j.ID)
	}
	if !j.Start.Valid() {
		return fmt.Errorf("tenant %s: invalid start configuration", j.ID)
	}
	return nil
}
