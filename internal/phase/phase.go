// Package phase implements SimPoint-style program-phase detection over
// telemetry sequences: online boundary detection and offline k-means phase
// classification. The paper's central motivating argument (Sections 2.2,
// 4) is that such detectors, which prior work like ProfileAdapt depends
// on, capture explicit (code-driven) phases but miss the short-lived
// implicit (data-driven) phases of sparse computation; the `phasedet`
// experiment quantifies that with this package.
package phase

import (
	"fmt"
	"math"
	"math/rand"
)

// Normalize z-scores each feature column across the sequence (constant
// columns become zero), so distances weight features comparably.
func Normalize(features [][]float64) [][]float64 {
	if len(features) == 0 {
		return nil
	}
	nf := len(features[0])
	mean := make([]float64, nf)
	std := make([]float64, nf)
	for _, row := range features {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(features))
	}
	for _, row := range features {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(features)))
	}
	out := make([][]float64, len(features))
	for i, row := range features {
		out[i] = make([]float64, nf)
		for j, v := range row {
			if std[j] > 1e-12 {
				out[i][j] = (v - mean[j]) / std[j]
			}
		}
	}
	return out
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Detector finds phase boundaries online: a boundary is declared when the
// distance between the running phase centroid and the current observation
// exceeds Threshold (in normalized feature units), with at least MinLen
// observations between boundaries (phase detectors assume phases are
// long-lived — exactly the assumption implicit phases violate).
type Detector struct {
	// Threshold is the RMS feature distance that starts a new phase.
	Threshold float64
	// MinLen is the minimum phase length in observations.
	MinLen int
	// Window is the number of recent observations averaged before the
	// distance test (smooths single-epoch noise; phases shorter than the
	// window are invisible — the implicit-phase blind spot).
	Window int
}

// DefaultDetector returns a detector tuned for the Table 2 telemetry.
func DefaultDetector() Detector { return Detector{Threshold: 0.9, MinLen: 4, Window: 3} }

// Boundaries returns the indices at which new phases start (always
// including 0). Input features should be raw; normalization is applied
// internally over the whole sequence (the offline profile a SimPoint-like
// tool would have).
func (d Detector) Boundaries(features [][]float64) []int {
	if len(features) == 0 {
		return nil
	}
	if d.MinLen < 1 {
		d.MinLen = 1
	}
	if d.Window < 1 {
		d.Window = 1
	}
	norm := Normalize(features)
	nf := len(norm[0])
	out := []int{0}
	centroid := append([]float64{}, norm[0]...)
	n := 1
	since := 1
	winMean := make([]float64, nf)
	for i := 1; i < len(norm); i++ {
		// Mean of the trailing window ending at i.
		lo := i - d.Window + 1
		if lo < 0 {
			lo = 0
		}
		for j := range winMean {
			winMean[j] = 0
		}
		for w := lo; w <= i; w++ {
			for j, v := range norm[w] {
				winMean[j] += v
			}
		}
		for j := range winMean {
			winMean[j] /= float64(i - lo + 1)
		}
		rms := math.Sqrt(dist2(centroid, winMean) / float64(nf))
		if rms > d.Threshold && since >= d.MinLen {
			out = append(out, i)
			centroid = append(centroid[:0], norm[i]...)
			n = 1
			since = 1
			continue
		}
		// Fold the observation into the running centroid.
		n++
		for j := range centroid {
			centroid[j] += (norm[i][j] - centroid[j]) / float64(n)
		}
		since++
	}
	return out
}

// KMeans clusters observations into k phases (SimPoint's classification
// step) and returns per-observation assignments plus the centroids, using
// deterministic k-means++ seeding.
func KMeans(features [][]float64, k, iters int, seed int64) ([]int, [][]float64, error) {
	n := len(features)
	if n == 0 {
		return nil, nil, fmt.Errorf("phase: empty sequence")
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("phase: k must be positive")
	}
	if k > n {
		k = n
	}
	if iters < 1 {
		iters = 20
	}
	norm := Normalize(features)
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64{}, norm[rng.Intn(n)]...))
	for len(centroids) < k {
		weights := make([]float64, n)
		total := 0.0
		for i, row := range norm {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := dist2(row, c); d < best {
					best = d
				}
			}
			weights[i] = best
			total += best
		}
		if total <= 0 {
			// All points identical: duplicate the first centroid.
			centroids = append(centroids, append([]float64{}, norm[0]...))
			continue
		}
		r := rng.Float64() * total
		pick := 0
		for i, w := range weights {
			r -= w
			if r <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64{}, norm[pick]...))
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, row := range norm {
			best, bd := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(row, centroids[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, len(centroids))
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, row := range norm {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return assign, centroids, nil
}

// BoundaryRecall reports the fraction of reference boundaries that have a
// detected boundary within tol observations — how well a detector finds
// the *explicit* phases.
func BoundaryRecall(detected, reference []int, tol int) float64 {
	if len(reference) == 0 {
		return 1
	}
	hit := 0
	for _, r := range reference {
		for _, d := range detected {
			if abs(d-r) <= tol {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(reference))
}

// IntraPhaseChanges counts, given a per-observation "best configuration"
// sequence, how many configuration changes fall strictly inside detected
// phases (not at boundaries) — the adaptation opportunities a
// phase-boundary-driven scheme like ProfileAdapt-ideal cannot see.
func IntraPhaseChanges(bestSeq []int, boundaries []int) (intra, total int) {
	isBoundary := map[int]bool{}
	for _, b := range boundaries {
		isBoundary[b] = true
	}
	for i := 1; i < len(bestSeq); i++ {
		if bestSeq[i] == bestSeq[i-1] {
			continue
		}
		total++
		if !isBoundary[i] {
			intra++
		}
	}
	return intra, total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
