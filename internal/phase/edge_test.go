package phase

import (
	"testing"
)

// Table-driven edge cases for the phase toolkit: empty histories,
// single-epoch sequences and constant telemetry are all states a short or
// degenerate run produces, and none may crash or invent phases.

func constRows(n, nf int, v float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, nf)
		for j := range out[i] {
			out[i][j] = v
		}
	}
	return out
}

func TestNormalizeEdges(t *testing.T) {
	cases := []struct {
		name string
		in   [][]float64
		want [][]float64
	}{
		{"empty", nil, nil},
		{"single-epoch", [][]float64{{3, -1}}, [][]float64{{0, 0}}},
		{"all-identical", constRows(5, 2, 7), constRows(5, 2, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Normalize(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d rows, want %d", len(got), len(tc.want))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != tc.want[i][j] {
						t.Fatalf("row %d: got %v, want %v", i, got[i], tc.want[i])
					}
				}
			}
		})
	}
}

func TestBoundariesEdges(t *testing.T) {
	cases := []struct {
		name string
		det  Detector
		in   [][]float64
		want []int
	}{
		{"empty-history", DefaultDetector(), nil, nil},
		{"single-epoch", DefaultDetector(), [][]float64{{1, 2}}, []int{0}},
		{"all-identical", DefaultDetector(), constRows(20, 3, 5), []int{0}},
		// Zero MinLen/Window are clamped to 1, not divided by.
		{"zero-detector", Detector{Threshold: 0.5}, constRows(4, 2, 1), []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.det.Boundaries(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("boundaries %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("boundaries %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestKMeansEdges(t *testing.T) {
	// Single observation: k collapses to 1 and the centroid is the point.
	assign, cents, err := KMeans([][]float64{{2, 4}}, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 1 || assign[0] != 0 || len(cents) != 1 {
		t.Fatalf("assign %v centroids %v", assign, cents)
	}

	// All-identical observations: every assignment is one cluster and no
	// centroid is NaN.
	assign, cents, err = KMeans(constRows(8, 2, 3), 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assign {
		if a != assign[0] {
			t.Fatalf("identical observations split across clusters: %v", assign)
		}
	}
	for _, c := range cents {
		for _, v := range c {
			if v != v {
				t.Fatalf("NaN centroid: %v", cents)
			}
		}
	}
}

func TestRecallAndChangesEdges(t *testing.T) {
	if r := BoundaryRecall(nil, nil, 2); r != 1 {
		t.Fatalf("empty reference recall = %v, want 1 (vacuous)", r)
	}
	if r := BoundaryRecall(nil, []int{0, 5}, 2); r != 0 {
		t.Fatalf("no detections recall = %v, want 0", r)
	}
	intra, total := IntraPhaseChanges(nil, nil)
	if intra != 0 || total != 0 {
		t.Fatalf("empty sequence changes = %d/%d, want 0/0", intra, total)
	}
	intra, total = IntraPhaseChanges([]int{3}, []int{0})
	if intra != 0 || total != 0 {
		t.Fatalf("single-epoch changes = %d/%d, want 0/0", intra, total)
	}
}
