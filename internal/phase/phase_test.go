package phase

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthSeq builds a sequence with two clearly different regimes separated
// at index cut.
func synthSeq(rng *rand.Rand, n, cut, nf int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, nf)
		base := 0.0
		if i >= cut {
			base = 10
		}
		for j := range row {
			row[j] = base + rng.NormFloat64()*0.3
		}
		out[i] = row
	}
	return out
}

func TestNormalize(t *testing.T) {
	in := [][]float64{{1, 5}, {3, 5}, {5, 5}}
	n := Normalize(in)
	// Column 0: mean 3, std sqrt(8/3); column 1 constant → zeros.
	if n[0][1] != 0 || n[1][1] != 0 {
		t.Fatal("constant column must normalize to zero")
	}
	if math.Abs(n[1][0]) > 1e-12 {
		t.Fatalf("mean row should be 0, got %v", n[1][0])
	}
	if n[0][0] >= 0 || n[2][0] <= 0 {
		t.Fatal("normalized signs wrong")
	}
	if Normalize(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestDetectorFindsExplicitBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := synthSeq(rng, 60, 30, 5)
	b := DefaultDetector().Boundaries(seq)
	if len(b) < 2 {
		t.Fatalf("no boundary detected: %v", b)
	}
	if BoundaryRecall(b, []int{0, 30}, 2) < 1 {
		t.Fatalf("explicit boundary missed: detected %v", b)
	}
}

func TestDetectorIgnoresNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := make([][]float64, 50)
	for i := range seq {
		seq[i] = []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
	}
	b := DefaultDetector().Boundaries(seq)
	if len(b) > 3 {
		t.Fatalf("stationary noise produced %d phases", len(b))
	}
}

func TestDetectorMinLen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Rapidly alternating regimes every 2 observations: with MinLen 4 the
	// detector cannot track them (the implicit-phase failure mode).
	seq := make([][]float64, 40)
	for i := range seq {
		base := 0.0
		if (i/2)%2 == 1 {
			base = 10
		}
		seq[i] = []float64{base + rng.NormFloat64()*0.2}
	}
	d := Detector{Threshold: 1.0, MinLen: 8}
	b := d.Boundaries(seq)
	// 20 regime switches exist; the detector sees at most a handful.
	if len(b) > 6 {
		t.Fatalf("MinLen not enforced: %d boundaries", len(b))
	}
}

func TestKMeansSeparatesRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := synthSeq(rng, 80, 40, 4)
	assign, centroids, err := KMeans(seq, 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 2 {
		t.Fatalf("centroids %d", len(centroids))
	}
	// All of regime A in one cluster, regime B in the other.
	for i := 1; i < 40; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("regime A split at %d", i)
		}
	}
	for i := 41; i < 80; i++ {
		if assign[i] != assign[40] {
			t.Fatalf("regime B split at %d", i)
		}
	}
	if assign[0] == assign[40] {
		t.Fatal("regimes merged")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, _, err := KMeans(nil, 2, 10, 1); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, _, err := KMeans([][]float64{{1}}, 0, 10, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than n clamps.
	assign, _, err := KMeans([][]float64{{1}, {2}}, 5, 10, 1)
	if err != nil || len(assign) != 2 {
		t.Fatalf("clamped k failed: %v %v", assign, err)
	}
}

func TestBoundaryRecall(t *testing.T) {
	if r := BoundaryRecall([]int{0, 10, 20}, []int{0, 11}, 1); r != 1 {
		t.Fatalf("recall %v, want 1", r)
	}
	if r := BoundaryRecall([]int{0}, []int{0, 50}, 2); r != 0.5 {
		t.Fatalf("recall %v, want 0.5", r)
	}
	if r := BoundaryRecall(nil, nil, 1); r != 1 {
		t.Fatal("empty reference must be perfect recall")
	}
}

func TestIntraPhaseChanges(t *testing.T) {
	best := []int{0, 0, 1, 1, 2, 2}
	// Boundaries at 0 and 2: the 0→1 change (index 2) is at a boundary,
	// the 1→2 change (index 4) is inside a phase.
	intra, total := IntraPhaseChanges(best, []int{0, 2})
	if total != 2 || intra != 1 {
		t.Fatalf("intra %d total %d", intra, total)
	}
}

// Property: k-means assignments are within range and every index appears.
func TestQuickKMeansAssignmentsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		seq := make([][]float64, n)
		for i := range seq {
			seq[i] = []float64{rng.Float64(), rng.Float64()}
		}
		assign, centroids, err := KMeans(seq, k, 15, seed)
		if err != nil || len(assign) != n {
			return false
		}
		for _, a := range assign {
			if a < 0 || a >= len(centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
