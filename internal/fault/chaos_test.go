package fault

import (
	"strings"
	"testing"
)

func TestChaosSpecParseRoundTrip(t *testing.T) {
	text := "cache-corrupt=0.3,exec-panic=0.2,fail-first=1,journal-err=0.05,kill-epoch=0.1,poison=0.15,seed=7"
	spec, err := ParseChaosSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if spec.ExecPanic != 0.2 || spec.Poison != 0.15 || spec.FailFirst != 1 || spec.Seed != 7 {
		t.Errorf("parsed spec = %+v", spec)
	}
	if got := spec.String(); got != text {
		t.Errorf("String() = %q, want %q", got, text)
	}
	if got, err := ParseChaosSpec(""); err != nil || !got.IsZero() {
		t.Errorf("empty spec = %+v, %v", got, err)
	}
}

func TestChaosSpecParseRejects(t *testing.T) {
	for _, text := range []string{
		"exec-panic",        // no value
		"nope=0.1",          // unknown class
		"exec-panic=2",      // probability > 1
		"exec-panic=-0.1",   // negative
		"exec-panic=NaN",    // not finite
		"seed=abc",          // bad seed
		"exec-panic=0.1,,x", // malformed clause
	} {
		if _, err := ParseChaosSpec(text); err == nil {
			t.Errorf("ParseChaosSpec(%q) accepted, want error", text)
		}
	}
}

// TestChaosDeterminism is the property the soak test stands on: every
// decision is a pure function of (seed, job, attempt), so two injectors
// with the same spec agree on everything.
func TestChaosDeterminism(t *testing.T) {
	spec := ChaosSpec{ExecPanic: 0.3, Poison: 0.2, KillEpoch: 0.25, CacheCorrupt: 0.4, Seed: 42}
	a, b := NewChaos(spec), NewChaos(spec)
	for i := 0; i < 64; i++ {
		id := jobID(i)
		for attempt := 1; attempt <= 3; attempt++ {
			if a.ExecPanic(id, attempt) != b.ExecPanic(id, attempt) {
				t.Fatalf("ExecPanic(%s, %d) disagrees", id, attempt)
			}
			ea, oka := a.KillAtEpoch(id, attempt)
			eb, okb := b.KillAtEpoch(id, attempt)
			if oka != okb || ea != eb {
				t.Fatalf("KillAtEpoch(%s, %d) disagrees: (%d,%v) vs (%d,%v)", id, attempt, ea, oka, eb, okb)
			}
		}
		if a.Poisoned(id) != b.Poisoned(id) || a.CorruptCache(id) != b.CorruptCache(id) {
			t.Fatalf("per-job decisions disagree for %s", id)
		}
	}
	// A different seed must not reproduce the same poison set.
	c := NewChaos(ChaosSpec{Poison: 0.2, Seed: 43})
	same := true
	for i := 0; i < 64; i++ {
		if a.Poisoned(jobID(i)) != c.Poisoned(jobID(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical poison sets")
	}
}

func jobID(i int) string {
	return "job-" + strings.Repeat("0", 5) + string(rune('a'+i%26)) + string(rune('a'+i/26))
}

// TestChaosPoisonImpliesEveryAttemptPanics: the quarantine guarantee.
func TestChaosPoisonImpliesEveryAttemptPanics(t *testing.T) {
	c := NewChaos(ChaosSpec{Poison: 0.5, Seed: 9})
	poisoned := 0
	for i := 0; i < 64; i++ {
		id := jobID(i)
		if !c.Poisoned(id) {
			continue
		}
		poisoned++
		for attempt := 1; attempt <= 10; attempt++ {
			if !c.ExecPanic(id, attempt) {
				t.Fatalf("poisoned job %s survived attempt %d", id, attempt)
			}
		}
	}
	if poisoned == 0 {
		t.Fatal("poison=0.5 over 64 jobs poisoned none; hash stream is broken")
	}
}

// TestChaosFailFirst forces exactly the first N attempts to fail.
func TestChaosFailFirst(t *testing.T) {
	c := NewChaos(ChaosSpec{FailFirst: 2, Seed: 3})
	id := "job-000001"
	if c.Poisoned(id) {
		t.Fatal("poison must be off")
	}
	for attempt := 1; attempt <= 2; attempt++ {
		if !c.ExecPanic(id, attempt) {
			t.Errorf("attempt %d must panic under fail-first=2", attempt)
		}
	}
	if c.ExecPanic(id, 3) {
		t.Error("attempt 3 must succeed under fail-first=2")
	}
}

// TestChaosNilIsNoOp: a nil injector must be safe everywhere.
func TestChaosNilIsNoOp(t *testing.T) {
	var c *Chaos
	if c.ExecPanic("x", 1) || c.Poisoned("x") || c.CorruptCache("x") {
		t.Error("nil chaos fired")
	}
	if _, ok := c.KillAtEpoch("x", 1); ok {
		t.Error("nil chaos killed an epoch")
	}
	if err := c.JournalFault("append"); err != nil {
		t.Error("nil chaos failed a journal write")
	}
	if c.Counts() != (ChaosCounts{}) {
		t.Error("nil chaos counted fires")
	}
	if NewChaos(ChaosSpec{}) != nil {
		t.Error("zero spec must build a nil injector")
	}
}

// TestChaosJournalFault fires deterministically by write ordinal.
func TestChaosJournalFault(t *testing.T) {
	c := NewChaos(ChaosSpec{JournalErr: 0.5, Seed: 11})
	errs := 0
	for i := 0; i < 64; i++ {
		if err := c.JournalFault("append"); err != nil {
			if !strings.Contains(err.Error(), "chaos:") {
				t.Fatalf("injected error %v lacks the chaos: prefix", err)
			}
			errs++
		}
	}
	if errs == 0 || errs == 64 {
		t.Fatalf("journal-err=0.5 fired %d/64 times", errs)
	}
	if got := c.Counts().JournalErrs; got != int64(errs) {
		t.Errorf("counted %d journal errors, observed %d", got, errs)
	}
}
