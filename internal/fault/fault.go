// Package fault is the fault-injection harness for the SparseAdapt
// feedback loop. It perturbs the three places a real deployment fails —
// telemetry (the counters the controller reads), the model (its
// predictions, or the file it was loaded from) and reconfiguration (a knob
// write that silently doesn't take, or takes at a multiple of its cost) —
// so the resilience layer in internal/core can be exercised under every
// failure class the paper's "no worse than the best static config" claim
// must survive.
//
// Every decision is a pure hash of (seed, epoch, channel): the injector
// carries no RNG stream, so replaying a prefix of a run (the
// checkpoint/resume path) reproduces exactly the same faults without any
// injector state in the checkpoint.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sparseadapt/internal/config"
	"sparseadapt/internal/sim"
)

// Spec declares which fault classes to inject and how hard. Telemetry and
// reconfiguration fields are per-epoch (or per-attempt) probabilities in
// [0, 1]; Noise is a multiplicative amplitude applied every epoch.
type Spec struct {
	// Telemetry faults.
	NaN   float64 `json:"nan,omitempty"`   // whole counter frame reads NaN
	Inf   float64 `json:"inf,omitempty"`   // whole counter frame reads +Inf
	Zero  float64 `json:"zero,omitempty"`  // counters read zero (torn reset)
	Stuck float64 `json:"stuck,omitempty"` // counters frozen at the previous epoch's values
	Drop  float64 `json:"drop,omitempty"`  // the telemetry message never arrives
	Noise float64 `json:"noise,omitempty"` // ±amplitude multiplicative noise on every counter

	// Model faults.
	Wild float64 `json:"wild,omitempty"` // prediction replaced with out-of-range config levels

	// Reconfiguration faults.
	RcDrop      float64 `json:"rc-drop,omitempty"`    // a knob change silently doesn't take
	RcPenalty   float64 `json:"rc-penalty,omitempty"` // a knob change takes at PenaltyMult× its cost
	PenaltyMult float64 `json:"mult,omitempty"`       // multiplier for RcPenalty faults (default 8)

	// Seed fixes the injector's PRNG stream so runs are reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// IsZero reports whether the spec injects nothing.
func (s Spec) IsZero() bool {
	return s.NaN == 0 && s.Inf == 0 && s.Zero == 0 && s.Stuck == 0 &&
		s.Drop == 0 && s.Noise == 0 && s.Wild == 0 && s.RcDrop == 0 && s.RcPenalty == 0
}

// specFields maps spec keys to their destinations, shared by ParseSpec and
// String so the two cannot drift.
func specFields(s *Spec) map[string]*float64 {
	return map[string]*float64{
		"nan":        &s.NaN,
		"inf":        &s.Inf,
		"zero":       &s.Zero,
		"stuck":      &s.Stuck,
		"drop":       &s.Drop,
		"noise":      &s.Noise,
		"wild":       &s.Wild,
		"rc-drop":    &s.RcDrop,
		"rc-penalty": &s.RcPenalty,
		"mult":       &s.PenaltyMult,
	}
}

// ParseSpec parses the CLI fault spec: comma-separated key=value pairs,
// e.g. "nan=0.1,stuck=0.05,rc-drop=0.3,mult=8,seed=7". Unknown keys and
// out-of-range probabilities are errors.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	fields := specFields(&s)
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return Spec{}, fmt.Errorf("fault: bad spec clause %q (want key=value)", part)
		}
		key := strings.TrimSpace(kv[0])
		if key == "seed" {
			seed, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad seed %q: %v", kv[1], err)
			}
			s.Seed = seed
			continue
		}
		dst, ok := fields[key]
		if !ok {
			return Spec{}, fmt.Errorf("fault: unknown fault class %q", key)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad value for %s: %v", key, err)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Spec{}, fmt.Errorf("fault: %s=%v out of range", key, v)
		}
		if key != "mult" && key != "noise" && v > 1 {
			return Spec{}, fmt.Errorf("fault: probability %s=%v exceeds 1", key, v)
		}
		*dst = v
	}
	return s, nil
}

// String renders the spec in ParseSpec syntax (round-trippable).
func (s Spec) String() string {
	fields := specFields(&s)
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		if v := *fields[k]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Hash channels: every (epoch, channel) pair yields an independent
// deterministic random stream.
const (
	chNaN = iota + 1
	chInf
	chZero
	chStuck
	chDrop
	chNoise
	chWild
	chWildParam
	chWildLevel
	chRcDrop
	chRcPenalty
)

// Injector injects the spec's faults into a controller run. All decisions
// derive from hashes of (seed, epoch, channel); the only mutable state is
// the previous telemetry frame for stuck-at faults, which is rebuilt
// naturally when a run prefix is replayed.
type Injector struct {
	spec    Spec
	prev    sim.Counters
	hasPrev bool
}

// New builds an injector for the spec.
func New(spec Spec) *Injector {
	if spec.PenaltyMult <= 0 {
		spec.PenaltyMult = 8
	}
	return &Injector{spec: spec}
}

// Spec returns the injector's fault specification.
func (in *Injector) Spec() Spec { return in.spec }

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform derives a deterministic value in [0, 1) for (epoch, channel, lane).
func (in *Injector) uniform(epoch, channel, lane int) float64 {
	h := splitmix64(uint64(in.spec.Seed))
	h = splitmix64(h ^ uint64(epoch)<<16 ^ uint64(channel))
	h = splitmix64(h ^ uint64(lane))
	return float64(h>>11) / float64(1<<53)
}

func (in *Injector) hit(p float64, epoch, channel, lane int) bool {
	return p > 0 && in.uniform(epoch, channel, lane) < p
}

// PerturbTelemetry returns the counter frame the controller observes at the
// given epoch, possibly corrupted, plus the names of the fault classes that
// fired. The incoming (true) frame always becomes the stuck-at reference
// for the next epoch, so replaying a run prefix rebuilds injector state.
func (in *Injector) PerturbTelemetry(epoch int, c sim.Counters) (sim.Counters, []string) {
	true_ := c
	var tags []string
	// Frame-level faults are mutually exclusive; the first that fires wins.
	switch {
	case in.hit(in.spec.Stuck, epoch, chStuck, 0) && in.hasPrev:
		c = in.prev
		tags = append(tags, "stuck")
	case in.hit(in.spec.Zero, epoch, chZero, 0):
		c = sim.Counters{}
		tags = append(tags, "zero")
	case in.hit(in.spec.NaN, epoch, chNaN, 0):
		c = fillCounters(math.NaN())
		tags = append(tags, "nan")
	case in.hit(in.spec.Inf, epoch, chInf, 0):
		c = fillCounters(math.Inf(1))
		tags = append(tags, "inf")
	}
	if in.spec.Noise > 0 {
		f := c.Features()
		for i := range f {
			// Uniform multiplicative noise in [1-a, 1+a].
			f[i] *= 1 + in.spec.Noise*(2*in.uniform(epoch, chNoise, i)-1)
		}
		c = sim.CountersFromFeatures(f)
		tags = append(tags, "noise")
	}
	in.prev, in.hasPrev = true_, true
	return c, tags
}

// DropTelemetry reports whether the epoch's telemetry message is lost
// entirely (the controller sees nothing, not even a corrupt frame).
func (in *Injector) DropTelemetry(epoch int) bool {
	return in.hit(in.spec.Drop, epoch, chDrop, 0)
}

// PerturbPrediction corrupts the model's predicted configuration with
// out-of-range levels — the garbage a torn model file or a buggy tree
// produces — returning the corrupted prediction and whether it fired.
func (in *Injector) PerturbPrediction(epoch int, pred config.Config) (config.Config, bool) {
	if !in.hit(in.spec.Wild, epoch, chWild, 0) {
		return pred, false
	}
	// Corrupt one to three runtime parameters.
	n := 1 + int(in.uniform(epoch, chWildParam, 0)*3)
	for k := 0; k < n; k++ {
		p := config.RuntimeParams[int(in.uniform(epoch, chWildParam, k+1)*float64(len(config.RuntimeParams)))%len(config.RuntimeParams)]
		if in.uniform(epoch, chWildLevel, k) < 0.5 {
			pred[p] = config.Cardinality(p) + 1 + k
		} else {
			pred[p] = -1 - k
		}
	}
	return pred, true
}

// ReconfigFault reports, for the attempt-th try of an epoch-boundary
// reconfiguration, whether the knob write is silently lost and what
// multiplier applies to its transition cost when it does take (1 = clean).
func (in *Injector) ReconfigFault(epoch, attempt int) (drop bool, penaltyMult float64) {
	penaltyMult = 1
	if in.hit(in.spec.RcDrop, epoch, chRcDrop, attempt) {
		return true, 1
	}
	if in.hit(in.spec.RcPenalty, epoch, chRcPenalty, attempt) {
		penaltyMult = in.spec.PenaltyMult
	}
	return false, penaltyMult
}

// fillCounters builds a frame with every feature set to v.
func fillCounters(v float64) sim.Counters {
	f := make([]float64, sim.NumFeatures)
	for i := range f {
		f[i] = v
	}
	return sim.CountersFromFeatures(f)
}
