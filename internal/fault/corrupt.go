package fault

import (
	"fmt"
	"os"
)

// CorruptFile flips nFlips deterministically-chosen bits in the file — the
// torn-write / bit-rot model for on-disk artifacts like serialized models.
// Positions derive from seed, so a given corruption is reproducible.
func CorruptFile(path string, seed int64, nFlips int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("fault: %s is empty, nothing to corrupt", path)
	}
	if nFlips < 1 {
		nFlips = 1
	}
	h := splitmix64(uint64(seed))
	for i := 0; i < nFlips; i++ {
		h = splitmix64(h)
		pos := int(h % uint64(len(data)))
		bit := byte(1) << ((h >> 32) % 8)
		data[pos] ^= bit
	}
	return os.WriteFile(path, data, 0o644)
}

// TruncateFile keeps only the leading keepFrac of the file — the
// interrupted-write model (a save that died partway).
func TruncateFile(path string, keepFrac float64) error {
	if keepFrac < 0 || keepFrac >= 1 {
		return fmt.Errorf("fault: truncation fraction %v out of [0, 1)", keepFrac)
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, int64(float64(info.Size())*keepFrac))
}
