package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ChaosSpec extends the fault harness beyond the simulated machine into
// the service layer: it declares failures of the *infrastructure* running
// jobs — the executor, the journal, the result cache — rather than of the
// simulated hardware. Like Spec, every decision is a pure hash of
// (seed, job, attempt, channel), so a chaos run is replayable: the same
// seed and job IDs produce the same panics, the same journal errors and
// the same mid-epoch kills, which is what lets the soak test assert exact
// outcomes instead of distributions.
type ChaosSpec struct {
	// ExecPanic is the per-attempt probability that a job execution panics
	// at the top of its compute function.
	ExecPanic float64 `json:"exec-panic,omitempty"`
	// FailFirst forces the first N attempts of every job to panic — the
	// deterministic transient failure that exercises retry-then-succeed.
	FailFirst float64 `json:"fail-first,omitempty"`
	// Poison is the per-job probability that a job panics on *every*
	// attempt — the poison job the quarantine exists for.
	Poison float64 `json:"poison,omitempty"`
	// KillEpoch is the per-attempt probability that execution is killed
	// mid-epoch (a panic from inside the epoch stream).
	KillEpoch float64 `json:"kill-epoch,omitempty"`
	// JournalErr and JournalSlow are per-write probabilities that a journal
	// append fails or stalls for SlowMs milliseconds (default 5).
	JournalErr  float64 `json:"journal-err,omitempty"`
	JournalSlow float64 `json:"journal-slow,omitempty"`
	SlowMs      float64 `json:"slow-ms,omitempty"`
	// CacheCorrupt is the per-job probability that, after a successful run,
	// the job's on-disk cache entry is flipped — the bit-rot model for the
	// content-addressed result store.
	CacheCorrupt float64 `json:"cache-corrupt,omitempty"`
	// Seed fixes the decision stream.
	Seed int64 `json:"seed,omitempty"`
}

// IsZero reports whether the spec injects nothing.
func (s ChaosSpec) IsZero() bool {
	return s.ExecPanic == 0 && s.FailFirst == 0 && s.Poison == 0 && s.KillEpoch == 0 &&
		s.JournalErr == 0 && s.JournalSlow == 0 && s.CacheCorrupt == 0
}

// chaosFields maps spec keys to destinations, shared by ParseChaosSpec and
// String so the two cannot drift (same pattern as Spec).
func chaosFields(s *ChaosSpec) map[string]*float64 {
	return map[string]*float64{
		"exec-panic":    &s.ExecPanic,
		"fail-first":    &s.FailFirst,
		"poison":        &s.Poison,
		"kill-epoch":    &s.KillEpoch,
		"journal-err":   &s.JournalErr,
		"journal-slow":  &s.JournalSlow,
		"slow-ms":       &s.SlowMs,
		"cache-corrupt": &s.CacheCorrupt,
	}
}

// ParseChaosSpec parses the CLI chaos spec: comma-separated key=value
// pairs, e.g. "exec-panic=0.2,journal-err=0.05,poison=0.1,seed=7".
func ParseChaosSpec(text string) (ChaosSpec, error) {
	var s ChaosSpec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	fields := chaosFields(&s)
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return ChaosSpec{}, fmt.Errorf("fault: bad chaos clause %q (want key=value)", part)
		}
		key := strings.TrimSpace(kv[0])
		if key == "seed" {
			seed, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
			if err != nil {
				return ChaosSpec{}, fmt.Errorf("fault: bad chaos seed %q: %v", kv[1], err)
			}
			s.Seed = seed
			continue
		}
		dst, ok := fields[key]
		if !ok {
			return ChaosSpec{}, fmt.Errorf("fault: unknown chaos class %q", key)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return ChaosSpec{}, fmt.Errorf("fault: bad value for %s: %v", key, err)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return ChaosSpec{}, fmt.Errorf("fault: %s=%v out of range", key, v)
		}
		if key != "slow-ms" && key != "fail-first" && v > 1 {
			return ChaosSpec{}, fmt.Errorf("fault: probability %s=%v exceeds 1", key, v)
		}
		*dst = v
	}
	return s, nil
}

// String renders the spec in ParseChaosSpec syntax (round-trippable).
func (s ChaosSpec) String() string {
	fields := chaosFields(&s)
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		if v := *fields[k]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Chaos hash channels, disjoint from the Injector's epoch channels.
const (
	ccExec = iota + 64
	ccPoison
	ccKill
	ccKillEpoch
	ccJournalErr
	ccJournalSlow
	ccCache
)

// ChaosCounts reports how often each chaos class has fired — the soak
// test's ledger for asserting injected damage actually happened.
type ChaosCounts struct {
	ExecPanics, KillEpochs, JournalErrs, JournalSlows, CacheCorrupts int64
}

// Chaos makes the deterministic injection decisions a ChaosSpec declares.
// A nil *Chaos is a valid no-op injector, so call sites need no guards.
// All methods are safe for concurrent use: decisions are pure hashes and
// the only mutable state is atomic fire counters (plus the journal-write
// ordinal, which is the one intentionally order-dependent stream — journal
// faults depend on write order, which a concurrent server does not fix).
type Chaos struct {
	spec ChaosSpec

	journalOps atomic.Int64
	counts     struct {
		execPanics, killEpochs, journalErrs, journalSlows, cacheCorrupts atomic.Int64
	}
}

// NewChaos builds an injector for the spec (nil when the spec is zero, so
// `fault.NewChaos(spec)` wires straight into an optional config field).
func NewChaos(spec ChaosSpec) *Chaos {
	if spec.IsZero() {
		return nil
	}
	if spec.SlowMs <= 0 {
		spec.SlowMs = 5
	}
	return &Chaos{spec: spec}
}

// Spec returns the injector's spec (zero for a nil injector).
func (c *Chaos) Spec() ChaosSpec {
	if c == nil {
		return ChaosSpec{}
	}
	return c.spec
}

// Counts returns how often each class has fired.
func (c *Chaos) Counts() ChaosCounts {
	if c == nil {
		return ChaosCounts{}
	}
	return ChaosCounts{
		ExecPanics:    c.counts.execPanics.Load(),
		KillEpochs:    c.counts.killEpochs.Load(),
		JournalErrs:   c.counts.journalErrs.Load(),
		JournalSlows:  c.counts.journalSlows.Load(),
		CacheCorrupts: c.counts.cacheCorrupts.Load(),
	}
}

// fnv1a hashes a job ID into the decision stream.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// uniform derives a deterministic value in [0, 1) for (job, channel, lane).
func (c *Chaos) uniform(job string, channel, lane int) float64 {
	h := splitmix64(uint64(c.spec.Seed))
	h = splitmix64(h ^ fnv1a(job))
	h = splitmix64(h ^ uint64(channel)<<32 ^ uint64(lane))
	return float64(h>>11) / float64(1<<53)
}

func (c *Chaos) hit(p float64, job string, channel, lane int) bool {
	return p > 0 && c.uniform(job, channel, lane) < p
}

// Poisoned reports whether the job is a poison job: every one of its
// attempts will panic, so it must end up quarantined. The decision hashes
// the job ID alone, making the poisoned set queryable by tests.
func (c *Chaos) Poisoned(jobID string) bool {
	if c == nil {
		return false
	}
	return c.hit(c.spec.Poison, jobID, ccPoison, 0)
}

// ExecPanic reports whether this attempt of the job must panic: poison
// jobs always do, FailFirst forces the first N attempts of every job, and
// ExecPanic adds per-attempt randomness on top.
func (c *Chaos) ExecPanic(jobID string, attempt int) bool {
	if c == nil {
		return false
	}
	fire := c.Poisoned(jobID) ||
		attempt <= int(c.spec.FailFirst) ||
		c.hit(c.spec.ExecPanic, jobID, ccExec, attempt)
	if fire {
		c.counts.execPanics.Add(1)
	}
	return fire
}

// KillAtEpoch decides whether this attempt is killed mid-epoch and, if so,
// at which epoch ordinal (1-based, within the first 8 epochs).
func (c *Chaos) KillAtEpoch(jobID string, attempt int) (epoch int, ok bool) {
	if c == nil || !c.hit(c.spec.KillEpoch, jobID, ccKill, attempt) {
		return 0, false
	}
	c.counts.killEpochs.Add(1)
	return 1 + int(c.uniform(jobID, ccKillEpoch, attempt)*8), true
}

// JournalFault is the store's FaultHook: it stalls and/or fails journal
// writes by their global ordinal. Returned errors carry the "chaos:"
// prefix so logs distinguish injected failures from real ones.
func (c *Chaos) JournalFault(op string) error {
	if c == nil {
		return nil
	}
	n := int(c.journalOps.Add(1))
	if c.hit(c.spec.JournalSlow, op, ccJournalSlow, n) {
		c.counts.journalSlows.Add(1)
		time.Sleep(time.Duration(c.spec.SlowMs * float64(time.Millisecond)))
	}
	if c.hit(c.spec.JournalErr, op, ccJournalErr, n) {
		c.counts.journalErrs.Add(1)
		return fmt.Errorf("chaos: injected journal %s error (write %d)", op, n)
	}
	return nil
}

// CorruptCache reports whether the job's on-disk cache entry should be
// corrupted after a successful run.
func (c *Chaos) CorruptCache(jobID string) bool {
	if c == nil || !c.hit(c.spec.CacheCorrupt, jobID, ccCache, 0) {
		return false
	}
	c.counts.cacheCorrupts.Add(1)
	return true
}
