package fault

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "drop=0.05,inf=0.1,mult=8,nan=0.1,noise=0.3,rc-drop=0.2,rc-penalty=0.1,stuck=0.05,wild=0.15,zero=0.02,seed=7"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != in {
		t.Fatalf("round trip: %q -> %q", in, got)
	}
	again, err := ParseSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != s {
		t.Fatalf("re-parse differs: %+v vs %+v", again, s)
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	s, err := ParseSpec("  ")
	if err != nil || !s.IsZero() {
		t.Fatalf("blank spec should be zero, got %+v, %v", s, err)
	}
	if s.String() != "none" {
		t.Fatalf("zero spec renders %q", s.String())
	}
	for _, bad := range []string{
		"nan",       // no value
		"bogus=0.1", // unknown class
		"nan=x",     // unparsable
		"nan=1.5",   // probability > 1
		"nan=-0.1",  // negative
		"drop=NaN",  // non-finite
		"=0.1",      // empty key
		"nan=0.1,,x=silly",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
	// Noise and mult may exceed 1.
	if _, err := ParseSpec("noise=2,mult=16"); err != nil {
		t.Fatal(err)
	}
}

// The injector must be a pure function of (seed, epoch): two injectors with
// the same spec produce identical faults, which is what makes
// checkpoint/resume replay exact.
func TestInjectorDeterminism(t *testing.T) {
	spec, err := ParseSpec("nan=0.2,zero=0.1,stuck=0.2,drop=0.1,noise=0.2,wild=0.3,rc-drop=0.3,rc-penalty=0.2,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(spec), New(spec)
	frame := sim.Counters{ClockMHz: 1000, L1CapKB: 32, GPEIPC: 1.5}
	for e := 0; e < 200; e++ {
		ca, _ := a.PerturbTelemetry(e, frame)
		cb, _ := b.PerturbTelemetry(e, frame)
		// NaN != NaN, so compare feature-wise with NaN equivalence.
		fa, fb := ca.Features(), cb.Features()
		for i := range fa {
			same := fa[i] == fb[i] || (math.IsNaN(fa[i]) && math.IsNaN(fb[i]))
			if !same {
				t.Fatalf("epoch %d feature %d: %v vs %v", e, i, fa[i], fb[i])
			}
		}
		if a.DropTelemetry(e) != b.DropTelemetry(e) {
			t.Fatalf("drop differs at epoch %d", e)
		}
		pa, oka := a.PerturbPrediction(e, config.Baseline)
		pb, okb := b.PerturbPrediction(e, config.Baseline)
		if pa != pb || oka != okb {
			t.Fatalf("prediction fault differs at epoch %d", e)
		}
		da, ma := a.ReconfigFault(e, 0)
		db, mb := b.ReconfigFault(e, 0)
		if da != db || ma != mb {
			t.Fatalf("reconfig fault differs at epoch %d", e)
		}
	}
}

func TestInjectorSeedChangesFaults(t *testing.T) {
	s1, _ := ParseSpec("drop=0.5,seed=1")
	s2, _ := ParseSpec("drop=0.5,seed=2")
	a, b := New(s1), New(s2)
	same := true
	for e := 0; e < 64; e++ {
		if a.DropTelemetry(e) != b.DropTelemetry(e) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestPerturbTelemetryClasses(t *testing.T) {
	frame := sim.Counters{ClockMHz: 1000, L1CapKB: 32}
	// Certain NaN: every epoch's frame is all-NaN.
	nanInj := New(Spec{NaN: 1})
	c, tags := nanInj.PerturbTelemetry(0, frame)
	if !math.IsNaN(c.ClockMHz) {
		t.Fatalf("nan fault did not fire: %+v", c)
	}
	if len(tags) != 1 || tags[0] != "nan" {
		t.Fatalf("tags %v", tags)
	}
	// Certain Inf.
	c, _ = New(Spec{Inf: 1}).PerturbTelemetry(0, frame)
	if !math.IsInf(c.ClockMHz, 1) {
		t.Fatalf("inf fault did not fire: %+v", c)
	}
	// Certain zero.
	c, _ = New(Spec{Zero: 1}).PerturbTelemetry(0, frame)
	if c != (sim.Counters{}) {
		t.Fatalf("zero fault did not fire: %+v", c)
	}
	// Stuck-at: first epoch has no previous frame, so the true frame passes;
	// the second epoch re-serves epoch 0's true values.
	stuck := New(Spec{Stuck: 1})
	c0, _ := stuck.PerturbTelemetry(0, frame)
	if c0 != frame {
		t.Fatal("stuck-at with no history must pass the frame through")
	}
	f2 := frame
	f2.ClockMHz = 500
	c1, tags := stuck.PerturbTelemetry(1, f2)
	if c1 != frame {
		t.Fatalf("stuck-at should re-serve the previous frame, got %+v", c1)
	}
	if len(tags) == 0 || tags[0] != "stuck" {
		t.Fatalf("tags %v", tags)
	}
	// Noise perturbs every feature multiplicatively.
	c, _ = New(Spec{Noise: 0.5}).PerturbTelemetry(3, frame)
	if c.ClockMHz == frame.ClockMHz {
		t.Fatal("noise did not perturb the clock reading")
	}
	if c.ClockMHz < 500 || c.ClockMHz > 1500 {
		t.Fatalf("noise amplitude out of range: %v", c.ClockMHz)
	}
}

func TestPerturbPredictionOutOfRange(t *testing.T) {
	inj := New(Spec{Wild: 1})
	for e := 0; e < 32; e++ {
		pred, fired := inj.PerturbPrediction(e, config.Baseline)
		if !fired {
			t.Fatalf("wild=1 must fire every epoch (epoch %d)", e)
		}
		bad := 0
		for _, p := range config.RuntimeParams {
			if pred[p] < 0 || pred[p] >= config.Cardinality(p) {
				bad++
			}
		}
		if bad == 0 {
			t.Fatalf("epoch %d: wild prediction %v has no out-of-range level", e, pred)
		}
	}
}

func TestReconfigFault(t *testing.T) {
	drop, mult := New(Spec{RcDrop: 1}).ReconfigFault(0, 0)
	if !drop || mult != 1 {
		t.Fatalf("rc-drop=1 must drop: %v %v", drop, mult)
	}
	drop, mult = New(Spec{RcPenalty: 1, PenaltyMult: 5}).ReconfigFault(0, 0)
	if drop || mult != 5 {
		t.Fatalf("rc-penalty must multiply cost: %v %v", drop, mult)
	}
	// Default multiplier applies when unset.
	_, mult = New(Spec{RcPenalty: 1}).ReconfigFault(0, 0)
	if mult != 8 {
		t.Fatalf("default penalty multiplier = %v, want 8", mult)
	}
	// Attempts draw independent lanes: with p=0.5, some epoch must differ
	// between attempt 0 and attempt 1.
	inj := New(Spec{RcDrop: 0.5})
	differ := false
	for e := 0; e < 64 && !differ; e++ {
		d0, _ := inj.ReconfigFault(e, 0)
		d1, _ := inj.ReconfigFault(e, 1)
		differ = d0 != d1
	}
	if !differ {
		t.Fatal("retry attempts see identical drop decisions")
	}
}

func TestCorruptAndTruncateFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	data := []byte(strings.Repeat("sparseadapt", 100))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(path, 3, 5); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) == string(data) {
		t.Fatal("corruption changed nothing")
	}
	if len(got) != len(data) {
		t.Fatal("corruption must not change length")
	}
	// Deterministic: same seed, same flips.
	path2 := filepath.Join(dir, "model2.json")
	os.WriteFile(path2, data, 0o644)
	CorruptFile(path2, 3, 5)
	got2, _ := os.ReadFile(path2)
	if string(got) != string(got2) {
		t.Fatal("corruption is not deterministic for a fixed seed")
	}

	if err := TruncateFile(path, 0.5); err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(path)
	if info.Size() != int64(len(data)/2) {
		t.Fatalf("truncated size %d, want %d", info.Size(), len(data)/2)
	}
	if err := TruncateFile(path, 1.5); err == nil {
		t.Fatal("keepFrac >= 1 must be rejected")
	}
	if err := CorruptFile(filepath.Join(dir, "missing"), 1, 1); err == nil {
		t.Fatal("corrupting a missing file must fail")
	}
}
