package experiments

import (
	"sparseadapt/internal/plot"
)

// WriteSVG renders the report as an SVG figure: reports with many rows
// (timelines, sweeps) become line charts over the row index with one
// series per column; compact reports become grouped bar charts (the shape
// of the paper's gain figures).
func (r *Report) WriteSVG(path string) error {
	if len(r.Rows) > 20 {
		c := &plot.Chart{
			Title:  r.ID + ": " + r.Title,
			XLabel: "epoch / series index",
			YLabel: "value",
		}
		for j, col := range r.Columns {
			s := plot.Series{Name: col}
			for i, row := range r.Rows {
				if j < len(row.Values) {
					s.Points = append(s.Points, plot.Point{X: float64(i), Y: row.Values[j]})
				}
			}
			c.Series = append(c.Series, s)
		}
		return c.WriteFile(path)
	}
	b := &plot.BarChart{
		Title:  r.ID + ": " + r.Title,
		YLabel: "value",
	}
	for _, row := range r.Rows {
		b.Groups = append(b.Groups, row.Label)
	}
	b.Series = r.Columns
	b.Values = make([][]float64, len(r.Columns))
	for j := range r.Columns {
		b.Values[j] = make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			if j < len(row.Values) {
				b.Values[j][i] = row.Values[j]
			}
		}
	}
	return b.WriteFile(path)
}
