package experiments

import (
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/phase"
	"sparseadapt/internal/power"
)

func init() {
	register("phasedet", "Motivation §2: SimPoint-style phase detection vs implicit phases", PhaseDetection)
}

// PhaseDetection quantifies the paper's motivating claim that external
// phase detection (the mechanism prior work like ProfileAdapt relies on)
// catches explicit phases but misses implicit ones. For each workload it:
//
//  1. runs the workload statically and feeds the per-epoch telemetry to a
//     SimPoint-style detector, measuring recall of the *explicit* phase
//     boundaries;
//  2. computes the Oracle's per-epoch configuration sequence and counts
//     how many of its configuration changes fall strictly *inside*
//     detected phases — adaptation opportunities invisible to any scheme
//     that only reconfigures at detected phase boundaries.
func PhaseDetection(sc Scale) (*Report, error) {
	rep := &Report{ID: "phasedet", Title: "Phase-detector recall vs intra-phase adaptation opportunities",
		Columns: []string{"epochs", "detected", "explicit-recall", "oracle-changes", "intra-phase", "missed-frac"}}

	rng := rand.New(rand.NewSource(sc.Seed))
	stripDim := int(128 * maxF(sc.Matrix*8, 1))
	am := matrix.DenseStrips(rng, stripDim, 0.2, 8)
	_, strips, err := kernels.SpMSpM(am.ToCSC(), am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return nil, err
	}
	strips.Name = "spmspm/strips"

	spmspv, err := buildSpMSpV(sc, "P3")
	if err != nil {
		return nil, err
	}

	for _, wl := range []kernels.Workload{strips, spmspv} {
		// Telemetry sequence under the static Baseline.
		static := core.RunStatic(sc.Chip, sc.BW, config.Baseline, wl, sc.Epoch)
		features := make([][]float64, len(static.Epochs))
		for i, ep := range static.Epochs {
			features[i] = ep.Counters.Features()
		}

		// Ground-truth explicit boundaries: first epoch of each phase.
		var explicit []int
		last := ""
		for i, ep := range static.Epochs {
			if ep.Phase != last {
				explicit = append(explicit, i)
				last = ep.Phase
			}
		}

		detected := phase.DefaultDetector().Boundaries(features)
		recall := phase.BoundaryRecall(detected, explicit, 2)

		// The Oracle's configuration sequence over the same epochs.
		rec, err := recordFor(sc, wl, config.CacheMode, sc.Epoch)
		if err != nil {
			return nil, err
		}
		seq, _ := rec.Oracle(power.EnergyEfficient)
		intra, total := phase.IntraPhaseChanges(seq, detected)
		missed := 0.0
		if total > 0 {
			missed = float64(intra) / float64(total)
		}
		rep.Add(wl.Name,
			float64(len(static.Epochs)), float64(len(detected)), recall,
			float64(total), float64(intra), missed)
	}
	rep.Note("high explicit recall with a large missed fraction = implicit phases are invisible to phase detectors (the paper's case for epoch-granular prediction)")
	return rep, nil
}
