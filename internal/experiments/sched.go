package experiments

import (
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
)

func init() {
	register("sched", "LCP work-scheduling ablation: round-robin vs least-loaded on skewed inputs", SchedAblation)
}

// SchedAblation compares the LCPs' scheduling policies (Section 3.1: LCPs
// "are responsible for scheduling work and load-balancing") on inputs with
// increasing degree skew. Round-robin leaves the GPE that drew the hub
// columns on the critical path; the least-loaded policy evens per-GPE work
// and shortens it. The effect grows with the skew of the input.
func SchedAblation(sc Scale) (*Report, error) {
	rep := &Report{ID: "sched", Title: "Least-loaded vs round-robin scheduling (SpMSpV, Baseline config, 50 GB/s)",
		Columns: []string{"rr-ms", "ll-ms", "speedup", "rr-imbalance", "ll-imbalance"}}
	rng := rand.New(rand.NewSource(sc.Seed + 5))
	dim := int(2048 * maxF(sc.Matrix, 0.02))
	if dim < 64 {
		dim = 64
	}
	nnz := dim * 12

	type input struct {
		name string
		m    *matrix.COO
	}
	inputs := []input{
		{"uniform", matrix.Uniform(rng, dim, dim, nnz)},
		{"power-law", matrix.RMATDefault(rng, dim, nnz)},
		{"hub", matrix.Bipartitish(rng, dim, nnz, 4)},
	}
	for _, in := range inputs {
		a := in.m.ToCSC()
		x := matrix.RandomVec(rng, dim, 0.5)
		_, rr, err := kernels.SpMSpVSched(a, x, sc.Chip.NGPE(), sc.Chip.Tiles, kernels.NewRoundRobin(sc.Chip.NGPE()))
		if err != nil {
			return nil, err
		}
		_, ll, err := kernels.SpMSpVSched(a, x, sc.Chip.NGPE(), sc.Chip.Tiles, kernels.NewLeastLoaded(sc.Chip.NGPE()))
		if err != nil {
			return nil, err
		}
		// Timing at high bandwidth, where the critical path is the loaded
		// GPE rather than the memory bus.
		const bw = 50e9
		tRR := core.RunStatic(sc.Chip, bw, config.Baseline, rr, sc.Epoch).Total.TimeSec
		tLL := core.RunStatic(sc.Chip, bw, config.Baseline, ll, sc.Epoch).Total.TimeSec
		rep.Add(in.name, tRR*1e3, tLL*1e3, ratio(tRR, tLL),
			fpImbalance(rr, sc.Chip.NGPE()), fpImbalance(ll, sc.Chip.NGPE()))
	}
	rep.Note("imbalance reduction grows with input skew (uniform → power-law → hub); end-to-end time moves little because epoch-quantized replay re-synchronizes GPEs at every epoch boundary")
	return rep, nil
}

// fpImbalance returns max/mean per-GPE FP-op counts of a workload trace.
func fpImbalance(w kernels.Workload, nGPE int) float64 {
	per := make([]int, nGPE)
	for _, e := range w.Trace.Events {
		if int(e.Core) < nGPE && e.Kind.IsFP() {
			per[e.Core]++
		}
	}
	max, sum := 0, 0
	for _, p := range per {
		if p > max {
			max = p
		}
		sum += p
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(nGPE))
}
