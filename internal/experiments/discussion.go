package experiments

import (
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func init() {
	register("disc7", "Discussion §7: regular kernels (GeMM, Conv) — Ideal Static vs Oracle gap", Discussion7)
	register("hist", "Extension §7: history-based controller (telemetry window ablation)", HistoryAblation)
}

// Discussion7 reproduces the paper's offline observation that for regular
// kernels (GeMM and Conv) the gap between Ideal Static and the Oracle is
// small (< 5%), i.e. dynamic control is overkill for regular workloads,
// while the sparse kernels leave a much larger dynamic-adaptation headroom.
func Discussion7(sc Scale) (*Report, error) {
	rep := &Report{ID: "disc7", Title: "Oracle headroom over Ideal Static per kernel",
		Columns: []string{"ee-static", "ee-oracle", "ee-headroom", "pp-static", "pp-oracle", "pp-headroom"}}

	rng := rand.New(rand.NewSource(sc.Seed))
	dim := int(256 * maxF(sc.Matrix*4, 0.25))
	if dim < 24 {
		dim = 24
	}

	// Regular workloads.
	a := randDense(rng, dim/4, dim/4)
	b := randDense(rng, dim/4, dim/4)
	_, gemm, err := kernels.GeMM(a, b, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return nil, err
	}
	in := randDense(rng, dim/2, dim/2)
	k3 := randDense(rng, 3, 3)
	_, conv, err := kernels.Conv2D(in, k3, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return nil, err
	}

	// Sparse counterparts: the dense-strip matrix of Figure 1 (alternating
	// implicit phases — the paper's showcase for dynamic headroom) and a
	// power-law SpMSpV.
	stripDim := int(128 * maxF(sc.Matrix*8, 1))
	am := matrix.DenseStrips(rng, stripDim, 0.2, 8)
	_, spmspm, err := kernels.SpMSpM(am.ToCSC(), am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return nil, err
	}
	spmspm.Name = "spmspm/strips"
	spmspv, err := buildSpMSpV(sc, "P3")
	if err != nil {
		return nil, err
	}

	for _, wl := range []kernels.Workload{gemm, conv, spmspm, spmspv} {
		rec, err := recordFor(sc, wl, config.CacheMode, sc.Epoch)
		if err != nil {
			return nil, err
		}
		base := baselineOf(rec, config.CacheMode)
		_, stEE := rec.IdealStatic(power.EnergyEfficient)
		_, orEE := rec.Oracle(power.EnergyEfficient)
		_, stPP := rec.IdealStatic(power.PowerPerformance)
		_, orPP := rec.Oracle(power.PowerPerformance)
		eeS := ratio(stEE.GFLOPSPerW(), base.GFLOPSPerW())
		eeO := ratio(orEE.GFLOPSPerW(), base.GFLOPSPerW())
		ppS := ratio(stPP.Score(power.PowerPerformance), base.Score(power.PowerPerformance))
		ppO := ratio(orPP.Score(power.PowerPerformance), base.Score(power.PowerPerformance))
		rep.Add(wl.Name, eeS, eeO, ratio(eeO, eeS), ppS, ppO, ratio(ppO, ppS))
	}
	rep.Note("paper: <5%% Oracle headroom for GeMM/Conv, large headroom for sparse kernels")
	return rep, nil
}

// HistoryAblation evaluates the paper's proposed future-work extension
// (Section 7, "Bridging the Gap with Oracle"): feeding telemetry from the
// last H epochs to the model instead of one. It trains history-augmented
// ensembles for H ∈ {1, 2, 4} and reports gains over Baseline for SpMSpV
// on P3 in both modes.
func HistoryAblation(sc Scale) (*Report, error) {
	rep := &Report{ID: "hist", Title: "History window ablation, SpMSpV on P3, gains over Baseline",
		Columns: []string{"ee-eff", "ee-reconfigs", "pp-gflops", "pp-eff"}}
	w, err := buildSpMSpV(sc, "P3")
	if err != nil {
		return nil, err
	}
	baseRun := core.RunStatic(sc.Chip, sc.BW, config.Baseline, w, sc.Epoch).Total

	for _, h := range []int{1, 2, 4} {
		eeEns, err := HistoryModel(sc, "spmspv", config.CacheMode, power.EnergyEfficient, h)
		if err != nil {
			return nil, err
		}
		ppEns, err := HistoryModel(sc, "spmspv", config.CacheMode, power.PowerPerformance, h)
		if err != nil {
			return nil, err
		}
		mEE := sim.New(sc.Chip, sc.BW, config.Baseline)
		ee := core.NewHistoryController(eeEns, policyFor("spmspv", sc.Epoch), h).Run(mEE, w)
		mPP := sim.New(sc.Chip, sc.BW, config.Baseline)
		pp := core.NewHistoryController(ppEns, policyFor("spmspv", sc.Epoch), h).Run(mPP, w)
		rep.Add(labelH(h),
			ratio(ee.Total.GFLOPSPerW(), baseRun.GFLOPSPerW()),
			float64(ee.Reconfig),
			ratio(pp.Total.GFLOPS(), baseRun.GFLOPS()),
			ratio(pp.Total.GFLOPSPerW(), baseRun.GFLOPSPerW()))
	}
	rep.Note("H=1 is the published SparseAdapt; larger windows are the paper's proposed extension")
	return rep, nil
}

func labelH(h int) string {
	return "H=" + string(rune('0'+h))
}

func randDense(rng *rand.Rand, r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}
