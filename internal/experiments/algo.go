package experiments

import (
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
)

func init() {
	register("algo", "Host algorithmic selection: outer- vs inner-product SpMSpM across density", AlgoSelection)
}

// AlgoSelection reproduces the host runtime's kernel-dispatch decision
// (Section 3.1): across a density sweep it measures both SpMSpM
// formulations under the Baseline configuration and reports which one the
// cost-estimator picks, demonstrating the outer product's dominance at the
// paper's density levels (Section 5.4) and the inner product's takeover on
// small dense operands.
func AlgoSelection(sc Scale) (*Report, error) {
	rep := &Report{ID: "algo", Title: "SpMSpM formulation crossover (time under Baseline config)",
		Columns: []string{"outer-ms", "inner-ms", "inner/outer", "picked-inner"}}
	rng := rand.New(rand.NewSource(sc.Seed))
	dim := int(256 * maxF(sc.Matrix*4, 0.125))
	if dim < 24 {
		dim = 24
	}
	for _, density := range []float64{0.005, 0.02, 0.08, 0.3} {
		am := matrix.UniformDensity(rng, dim, dim, density)
		a := am.ToCSC()
		b := am.ToCSR()

		_, wOuter, err := kernels.SpMSpM(a, b, sc.Chip.NGPE(), sc.Chip.Tiles)
		if err != nil {
			return nil, err
		}
		_, wInner, err := kernels.SpMSpMInner(am.ToCSR(), am.ToCSC(), sc.Chip.NGPE(), sc.Chip.Tiles)
		if err != nil {
			return nil, err
		}
		tOuter := core.RunStatic(sc.Chip, sc.BW, config.Baseline, wOuter, sc.Epoch).Total.TimeSec
		tInner := core.RunStatic(sc.Chip, sc.BW, config.Baseline, wInner, sc.Epoch).Total.TimeSec

		picked := 0.0
		if kernels.ChooseSpMSpM(a, b) == kernels.InnerProduct {
			picked = 1
		}
		rep.Add(fmt.Sprintf("d=%.3f", density),
			tOuter*1e3, tInner*1e3, ratio(tInner, tOuter), picked)
	}
	rep.Note("paper evaluates OP-SpMSpM because it wins at the studied densities (Section 5.4)")
	return rep, nil
}
