// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the Go reproduction stack: each experiment is a
// named function over a Scale that builds the workloads, trains or reuses
// the predictive models, runs SparseAdapt and its comparison points, and
// returns a printable report whose rows mirror the paper's series.
//
// Absolute numbers differ from the paper (the substrate is an analytic
// machine model, not gem5 — see DESIGN.md); the reported *shapes* (who
// wins, by roughly what factor, where crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

// Scale bounds experiment cost while preserving structure. Matrix, epoch
// and training-sweep scales of 1 approximate the paper's setup (CPU-days);
// the test scale runs in seconds.
type Scale struct {
	Matrix        float64 // dataset dimension/NNZ scale
	Epoch         float64 // epoch-size scale (paper sizes at 1)
	Train         float64 // training-sweep scale
	OracleSamples int     // S for recordings (paper: 256)
	Seed          int64
	Chip          power.Chip
	BW            float64
	// Eng is the parallel execution engine used for oracle recordings and
	// training-sweep generation; nil runs everything serially and uncached.
	// Results are identical either way — the engine only changes wall time.
	Eng *engine.Engine
	// Memo, when non-nil, memoizes whole epoch replays in memory
	// (sim.RunMemo), so recordings whose rows were already simulated this
	// process — by another experiment, mode or daemon job over the same
	// workload — are served without re-simulating. Byte-identical results
	// either way; nil disables it (benchmarks do, to measure the raw pool).
	Memo *sim.RunMemo
}

// TestScale is small enough for unit tests and benchmarks.
func TestScale() Scale {
	return Scale{
		Matrix: 0.05, Epoch: 0.02, Train: 0.15, OracleSamples: 10,
		Seed: 42, Chip: power.Chip{Tiles: 2, GPEsPerTile: 8}, BW: sim.DefaultBandwidth,
	}
}

// SmallScale is a heavier setting for command-line runs (minutes).
func SmallScale() Scale {
	s := TestScale()
	s.Matrix, s.Epoch, s.Train, s.OracleSamples = 0.12, 0.05, 0.4, 32
	return s
}

// PaperScale approximates the paper's full configuration (very slow).
func PaperScale() Scale {
	s := TestScale()
	s.Matrix, s.Epoch, s.Train, s.OracleSamples = 1, 1, 1, 256
	return s
}

// Report is a printable experiment result.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (r *Report) Add(label string, values ...float64) {
	r.Rows = append(r.Rows, Row{Label: label, Values: values})
}

// Note appends a free-text annotation.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns)+1)
	widths[0] = len("series")
	for _, row := range r.Rows {
		if len(row.Label) > widths[0] {
			widths[0] = len(row.Label)
		}
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row.Values))
		for j, v := range row.Values {
			cells[i][j] = fmt.Sprintf("%.3g", v)
		}
	}
	for j, c := range r.Columns {
		widths[j+1] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "series")
	for j, c := range r.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	b.WriteByte('\n')
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], row.Label)
		for j := range r.Columns {
			s := ""
			if j < len(cells[i]) {
				s = cells[i][j]
			}
			fmt.Fprintf(&b, "  %*s", widths[j+1], s)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Scale) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Get looks up an experiment by ID (e.g. "fig6").
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- Shared model cache -------------------------------------------------

type modelKey struct {
	kernel string
	l1Type int
	mode   power.Mode
	scale  float64
	tiles  int
	gpes   int
	hist   int
}

var (
	modelMu    sync.Mutex
	modelCache = map[modelKey]*core.Ensemble{}
)

// Model trains (or returns the cached) per-parameter ensemble for a kernel,
// L1 type and optimization mode at the given training scale.
func Model(sc Scale, kernel string, l1Type int, mode power.Mode) (*core.Ensemble, error) {
	return HistoryModel(sc, kernel, l1Type, mode, 1)
}

// HistoryModel is Model with an H-epoch telemetry window (H = 1 is the
// published feature layout; larger windows are the Section 7 extension).
func HistoryModel(sc Scale, kernel string, l1Type int, mode power.Mode, h int) (*core.Ensemble, error) {
	if h < 1 {
		h = 1
	}
	key := modelKey{kernel, l1Type, mode, sc.Train, sc.Chip.Tiles, sc.Chip.GPEsPerTile, h}
	modelMu.Lock()
	defer modelMu.Unlock()
	if m, ok := modelCache[key]; ok {
		return m, nil
	}
	sw := trainer.DefaultSweep(kernel, l1Type, sc.Train)
	sw.Chip = sc.Chip
	sw.Seed = sc.Seed
	if h > 1 && sw.Measure < h {
		sw.Measure = h
	}
	ds, err := trainer.GenerateEngine(context.Background(), sc.Eng, sw, mode, h)
	if err != nil {
		return nil, err
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		return nil, err
	}
	modelCache[key] = ens
	return ens, nil
}

// --- Shared workload builders --------------------------------------------

// buildSpMSpM returns the C = A·Aᵀ workload of a dataset entry (Section
// 6.1.2) at the experiment scale.
func buildSpMSpM(sc Scale, id string) (kernels.Workload, error) {
	e, err := matrix.Entry(id)
	if err != nil {
		return kernels.Workload{}, err
	}
	am := e.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	at := am.ToCSR().Transpose()
	_, w, err := kernels.SpMSpM(a, at, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return kernels.Workload{}, err
	}
	w.Name = "spmspm/" + id
	return w, nil
}

// buildSpMSpV returns the y = A·x workload with a 50%-dense random vector
// (Section 6.1.1).
func buildSpMSpV(sc Scale, id string) (kernels.Workload, error) {
	e, err := matrix.Entry(id)
	if err != nil {
		return kernels.Workload{}, err
	}
	am := e.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	x := matrix.RandomVec(randFor(sc.Seed, id), a.Cols, 0.5)
	_, w, err := kernels.SpMSpV(a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return kernels.Workload{}, err
	}
	w.Name = "spmspv/" + id
	return w, nil
}

// policyFor returns the paper's default policy per kernel (Section 5.4):
// conservative for SpMSpM, hybrid with 40% tolerance for SpMSpV.
func policyFor(kernel string, epochScale float64) core.Options {
	if kernel == "spmspm" {
		return core.Options{Policy: core.Conservative, EpochScale: epochScale}
	}
	return core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale}
}

// runSparseAdapt executes a workload under the trained controller and
// returns the run result.
func runSparseAdapt(sc Scale, w kernels.Workload, kernel string, l1Type int, mode power.Mode) (core.RunResult, error) {
	ens, err := Model(sc, kernel, l1Type, mode)
	if err != nil {
		return core.RunResult{}, err
	}
	start := startConfig(l1Type)
	m := sim.New(sc.Chip, sc.BW, start)
	ctl := core.NewController(ens, policyFor(kernel, sc.Epoch))
	return ctl.Run(m, w), nil
}

// startConfig is the configuration the device boots in before the first
// epoch's telemetry arrives.
func startConfig(l1Type int) config.Config {
	if l1Type == config.SPMMode {
		return config.BestAvgSPM
	}
	return config.Baseline
}

// staticFor returns the Table 4 static comparison points for an L1 type.
func staticFor(l1Type int) (baseline, bestAvg, maxCfg config.Config) {
	if l1Type == config.SPMMode {
		base := config.BestAvgSPM // no SPM baseline in Table 4; Best Avg doubles
		return base, config.BestAvgSPM, config.MaxCfgSPM
	}
	return config.Baseline, config.BestAvgCache, config.MaxCfg
}

// randFor derives a deterministic RNG from the experiment seed and a
// string salt (matrix ID), so workloads are stable across runs.
func randFor(seed int64, salt string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, c := range salt {
		h ^= int64(c)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}

// geomean returns the geometric mean of positive values (the paper's GM
// rows); zero/negative values are skipped.
func geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
