package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"sparseadapt/internal/engine"
)

// WriteCSV exports the report's rows as a CSV file (the artifact's raw
// result format, Appendix A.6): a header of "series" plus the column
// names, one row per series.
func (r *Report) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := append([]string{"series"}, r.Columns...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, row.Label)
		for j := range r.Columns {
			if j < len(row.Values) {
				rec = append(rec, strconv.FormatFloat(row.Values[j], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// RunAll executes every registered experiment at the given scale and
// writes one CSV per experiment into dir (created if needed), mirroring
// the paper artifact's rep_data/ output. When sc.Eng is set, experiments
// run concurrently (each experiment is one engine task, and its internal
// recordings and training sweeps fan out further on the same engine);
// reports are still returned and written in ID order. The first failure
// cancels the run.
func RunAll(sc Scale, dir string) ([]*Report, error) {
	return RunAllContext(context.Background(), sc, dir)
}

// RunAllContext is RunAll with cooperative cancellation: cancelling the
// context (e.g. on SIGINT) stops the engine batch and returns the reports
// completed so far together with the context's error.
func RunAllContext(ctx context.Context, sc Scale, dir string) ([]*Report, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	ids := IDs()
	tasks := make([]engine.Task[*Report], len(ids))
	for i, id := range ids {
		id := id
		// Whole experiments are never cached: they depend on the full Scale
		// and are cheap relative to the recordings/sweeps inside them, which
		// carry their own content-addressed caching.
		tasks[i] = engine.Task[*Report]{Compute: func(ctx context.Context) (*Report, error) {
			e, err := Get(id)
			if err != nil {
				return nil, err
			}
			rep, err := e.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			return rep, nil
		}}
	}
	out, err := engine.Map(ctx, sc.Eng, tasks)
	if err != nil {
		// Preserve the partial-prefix contract of the serial version.
		var done []*Report
		for _, r := range out {
			if r == nil {
				break
			}
			done = append(done, r)
		}
		return done, err
	}
	if dir != "" {
		for i, rep := range out {
			if err := rep.WriteCSV(filepath.Join(dir, ids[i]+".csv")); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
