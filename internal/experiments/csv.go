package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV exports the report's rows as a CSV file (the artifact's raw
// result format, Appendix A.6): a header of "series" plus the column
// names, one row per series.
func (r *Report) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := append([]string{"series"}, r.Columns...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, row.Label)
		for j := range r.Columns {
			if j < len(row.Values) {
				rec = append(rec, strconv.FormatFloat(row.Values[j], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// RunAll executes every registered experiment at the given scale and
// writes one CSV per experiment into dir (created if needed), mirroring
// the paper artifact's rep_data/ output. It returns the reports in ID
// order and stops at the first failure.
func RunAll(sc Scale, dir string) ([]*Report, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	var out []*Report
	for _, id := range IDs() {
		e, err := Get(id)
		if err != nil {
			return out, err
		}
		rep, err := e.Run(sc)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
		if dir != "" {
			if err := rep.WriteCSV(filepath.Join(dir, id+".csv")); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
