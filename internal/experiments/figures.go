package experiments

import (
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/graph"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func init() {
	register("fig1", "Motivation: dynamic reconfiguration on OP-SpMSpM with a dense-strip matrix", Figure1)
	register("fig5", "SpMSpV on synthetic matrices vs standard configs (L1 cache)", Figure5)
	register("fig6", "SpMSpM on real-world matrices vs standard configs (L1 cache)", Figure6)
	register("fig7", "SpMSpV on real-world matrices, Power-Performance mode, L1 cache & SPM", Figure7)
	register("tab6", "Graph algorithms (BFS, SSSP): TEPS/W gains, Energy-Efficient mode", Table6)
}

// standards holds the static comparison runs for one workload.
type standards struct {
	base, best, max power.Metrics
}

func runStandards(sc Scale, w kernels.Workload, l1Type int) standards {
	b, ba, mx := staticFor(l1Type)
	return standards{
		base: core.RunStatic(sc.Chip, sc.BW, b, w, sc.Epoch).Total,
		best: core.RunStatic(sc.Chip, sc.BW, ba, w, sc.Epoch).Total,
		max:  core.RunStatic(sc.Chip, sc.BW, mx, w, sc.Epoch).Total,
	}
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Figure1 reproduces the motivating timeline: OP-SpMSpM on a 128×128, 20%
// dense matrix with dense columns separating sparse strips, dynamic
// adaptation vs the best static configuration. The report carries one row
// per epoch (efficiency, clock, L2 capacity, bandwidth utilization) plus
// headline speedup and energy-gain rows.
func Figure1(sc Scale) (*Report, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	dim := int(128 * maxF(sc.Matrix*8, 1)) // fig-1 matrix is small already
	am := matrix.DenseStrips(rng, dim, 0.2, 8)
	a := am.ToCSC()
	at := am.ToCSR().Transpose()
	_, w, err := kernels.SpMSpM(a, at, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		return nil, err
	}

	static := core.RunStatic(sc.Chip, sc.BW, config.BestAvgCache, w, sc.Epoch)
	dyn, err := runSparseAdapt(sc, w, "spmspm", config.CacheMode, power.PowerPerformance)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "fig1", Title: "Dynamic vs best-static on dense-strip OP-SpMSpM (Power-Performance mode)",
		Columns: []string{"gflopsw-dyn", "gflopsw-static", "clock-mhz", "l2-kb", "bw-util"}}
	n := len(dyn.Epochs)
	if len(static.Epochs) < n {
		n = len(static.Epochs)
	}
	for i := 0; i < n; i++ {
		d, s := dyn.Epochs[i], static.Epochs[i]
		rep.Add(d.Phase,
			d.Metrics.GFLOPSPerW(), s.Metrics.GFLOPSPerW(),
			d.Config.ClockMHz(), float64(d.Config.L2CapKB()),
			d.Counters.MemReadUtil+d.Counters.MemWriteUtil)
	}
	speedup := ratio(static.Total.TimeSec, dyn.Total.TimeSec)
	egain := ratio(static.Total.EnergyJ, dyn.Total.EnergyJ)
	rep.Add("speedup-vs-static", speedup)
	rep.Add("energy-gain-vs-static", egain)
	rep.Note("paper reports 22.6%% faster and 1.5x less energy; reconfigurations: %d", dyn.Reconfig)
	return rep, nil
}

// Figure5 compares SpMSpV against Baseline / Best Avg / Max Cfg on the
// synthetic suite (U1–U3, P1–P3) in both optimization modes, L1 as cache.
// Values are gains over Baseline; the pp-gflops columns correspond to the
// left panel, pp-eff to the middle, ee-eff to the right.
func Figure5(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "SpMSpV, synthetic dataset, gains over Baseline",
		Columns: []string{
			"pp-gflops-best", "pp-gflops-max", "pp-gflops-sa",
			"pp-eff-best", "pp-eff-max", "pp-eff-sa",
			"ee-eff-best", "ee-eff-max", "ee-eff-sa",
		}}
	ids := []string{"U1", "U2", "U3", "P1", "P2", "P3"}
	cols := make([][]float64, len(rep.Columns))
	for _, id := range ids {
		w, err := buildSpMSpV(sc, id)
		if err != nil {
			return nil, err
		}
		std := runStandards(sc, w, config.CacheMode)
		pp, err := runSparseAdapt(sc, w, "spmspv", config.CacheMode, power.PowerPerformance)
		if err != nil {
			return nil, err
		}
		ee, err := runSparseAdapt(sc, w, "spmspv", config.CacheMode, power.EnergyEfficient)
		if err != nil {
			return nil, err
		}
		vals := []float64{
			ratio(std.best.GFLOPS(), std.base.GFLOPS()),
			ratio(std.max.GFLOPS(), std.base.GFLOPS()),
			ratio(pp.Total.GFLOPS(), std.base.GFLOPS()),
			ratio(std.best.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.max.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(pp.Total.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.best.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.max.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(ee.Total.GFLOPSPerW(), std.base.GFLOPSPerW()),
		}
		rep.Add(id, vals...)
		for c, v := range vals {
			cols[c] = append(cols[c], v)
		}
	}
	gm := make([]float64, len(cols))
	for c := range cols {
		gm[c] = geomean(cols[c])
	}
	rep.Add("GM", gm...)
	return rep, nil
}

// realWorldCompare runs one kernel over a matrix list with the standard
// comparison set in both modes (the Figure 6 layout).
func realWorldCompare(sc Scale, id string, ids []string, kernel string, title string,
	build func(Scale, string) (kernels.Workload, error)) (*Report, error) {
	rep := &Report{ID: id, Title: title,
		Columns: []string{
			"pp-gflops-best", "pp-gflops-max", "pp-gflops-sa",
			"pp-eff-best", "pp-eff-max", "pp-eff-sa",
			"ee-eff-best", "ee-eff-max", "ee-eff-sa",
		}}
	cols := make([][]float64, len(rep.Columns))
	for _, mid := range ids {
		w, err := build(sc, mid)
		if err != nil {
			return nil, err
		}
		std := runStandards(sc, w, config.CacheMode)
		pp, err := runSparseAdapt(sc, w, kernel, config.CacheMode, power.PowerPerformance)
		if err != nil {
			return nil, err
		}
		ee, err := runSparseAdapt(sc, w, kernel, config.CacheMode, power.EnergyEfficient)
		if err != nil {
			return nil, err
		}
		vals := []float64{
			ratio(std.best.GFLOPS(), std.base.GFLOPS()),
			ratio(std.max.GFLOPS(), std.base.GFLOPS()),
			ratio(pp.Total.GFLOPS(), std.base.GFLOPS()),
			ratio(std.best.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.max.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(pp.Total.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.best.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(std.max.GFLOPSPerW(), std.base.GFLOPSPerW()),
			ratio(ee.Total.GFLOPSPerW(), std.base.GFLOPSPerW()),
		}
		rep.Add(mid, vals...)
		for c, v := range vals {
			cols[c] = append(cols[c], v)
		}
	}
	gm := make([]float64, len(cols))
	for c := range cols {
		gm[c] = geomean(cols[c])
	}
	rep.Add("GM", gm...)
	return rep, nil
}

// Figure6 is the SpMSpM real-world comparison (R01–R08, C = A·Aᵀ).
func Figure6(sc Scale) (*Report, error) {
	return realWorldCompare(sc, "fig6",
		[]string{"R01", "R02", "R03", "R04", "R05", "R06", "R07", "R08"},
		"spmspm", "SpMSpM, real-world dataset, gains over Baseline", buildSpMSpM)
}

// Figure7 is the SpMSpV real-world comparison in Power-Performance mode
// with the L1 configured as cache and as scratchpad.
func Figure7(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig7", Title: "SpMSpV, real-world dataset, Power-Performance mode, gains over Baseline",
		Columns: []string{
			"cache-gflops-best", "cache-gflops-max", "cache-gflops-sa", "cache-eff-sa",
			"spm-gflops-best", "spm-gflops-max", "spm-gflops-sa", "spm-eff-sa",
		}}
	ids := []string{"R09", "R10", "R11", "R12", "R13", "R14", "R15", "R16"}
	cols := make([][]float64, len(rep.Columns))
	for _, mid := range ids {
		w, err := buildSpMSpV(sc, mid)
		if err != nil {
			return nil, err
		}
		// Gains are relative to the global Baseline config of Table 4.
		base := core.RunStatic(sc.Chip, sc.BW, config.Baseline, w, sc.Epoch).Total
		var vals []float64
		for _, l1 := range []int{config.CacheMode, config.SPMMode} {
			_, bestCfg, maxCfg := staticFor(l1)
			best := core.RunStatic(sc.Chip, sc.BW, bestCfg, w, sc.Epoch).Total
			max := core.RunStatic(sc.Chip, sc.BW, maxCfg, w, sc.Epoch).Total
			sa, err := runSparseAdapt(sc, w, "spmspv", l1, power.PowerPerformance)
			if err != nil {
				return nil, err
			}
			vals = append(vals,
				ratio(best.GFLOPS(), base.GFLOPS()),
				ratio(max.GFLOPS(), base.GFLOPS()),
				ratio(sa.Total.GFLOPS(), base.GFLOPS()),
				ratio(sa.Total.GFLOPSPerW(), base.GFLOPSPerW()),
			)
		}
		rep.Add(mid, vals...)
		for c, v := range vals {
			cols[c] = append(cols[c], v)
		}
	}
	gm := make([]float64, len(cols))
	for c := range cols {
		gm[c] = geomean(cols[c])
	}
	rep.Add("GM", gm...)
	return rep, nil
}

// Table6 reproduces the graph-algorithm table: TEPS/W gains over Baseline
// for Best Avg and SparseAdapt on BFS and SSSP, Energy-Efficient mode,
// L1 as cache.
func Table6(sc Scale) (*Report, error) {
	rep := &Report{ID: "tab6", Title: "BFS and SSSP TEPS/W gains over Baseline (Energy-Efficient mode)",
		Columns: []string{"bestavg", "sparseadapt"}}
	ids := []string{"R09", "R10", "R11", "R12", "R13", "R14", "R15", "R16"}
	ens, err := Model(sc, "spmspv", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		return nil, err
	}
	for _, algo := range []string{"bfs", "sssp"} {
		var gBest, gSA []float64
		for _, mid := range ids {
			e, err := matrix.Entry(mid)
			if err != nil {
				return nil, err
			}
			g := e.Generate(sc.Matrix, sc.Seed).ToCSC()
			src := hubVertex(g)
			var res graph.Result
			var w kernels.Workload
			if algo == "bfs" {
				res, w, err = graph.BFS(g, src, sc.Chip.NGPE(), sc.Chip.Tiles)
			} else {
				res, w, err = graph.SSSP(g, src, sc.Chip.NGPE(), sc.Chip.Tiles)
			}
			if err != nil {
				return nil, err
			}
			if res.Traversed == 0 {
				continue
			}
			base := core.RunStatic(sc.Chip, sc.BW, config.Baseline, w, sc.Epoch).Total
			best := core.RunStatic(sc.Chip, sc.BW, config.BestAvgCache, w, sc.Epoch).Total
			m := sim.New(sc.Chip, sc.BW, config.Baseline)
			sa := core.NewController(ens, policyFor("spmspv", sc.Epoch)).Run(m, w)
			// TEPS/W = traversed / energy; traversed cancels in the gain.
			bestGain := ratio(base.EnergyJ, best.EnergyJ)
			saGain := ratio(base.EnergyJ, sa.Total.EnergyJ)
			rep.Add(algo+"/"+mid, bestGain, saGain)
			gBest = append(gBest, bestGain)
			gSA = append(gSA, saGain)
		}
		rep.Add(algo+"/GM", geomean(gBest), geomean(gSA))
	}
	return rep, nil
}

// hubVertex picks the highest out-degree vertex as traversal source so
// power-law graphs produce meaningful frontiers.
func hubVertex(g *matrix.CSC) int {
	best, bn := 0, -1
	for c := 0; c < g.Cols; c++ {
		if n := g.ColPtr[c+1] - g.ColPtr[c]; n > bn {
			best, bn = c, n
		}
	}
	return best
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
