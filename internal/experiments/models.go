package experiments

import (
	"context"

	"sparseadapt/internal/config"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/trainer"
)

func init() {
	register("models", "Choice of predictive model (§4.3): per-parameter CV accuracy of four model families", ModelChoice)
}

// ModelChoice reproduces the model-selection study of Section 4.3: the
// paper compared decision trees, random forests, linear regression and
// logistic regression, found trees and forests similarly accurate with the
// regressions clearly worse, and chose pruned decision trees for their
// accuracy/overhead/explainability balance. The report gives 3-fold
// cross-validated accuracy per configuration parameter and family, plus a
// majority-class floor.
func ModelChoice(sc Scale) (*Report, error) {
	rep := &Report{ID: "models", Title: "Per-parameter 3-fold CV accuracy by model family",
		Columns: []string{"tree", "forest", "linear", "logistic", "majority"}}

	sw := trainer.DefaultSweep("spmspv", config.CacheMode, sc.Train)
	sw.Chip = sc.Chip
	sw.Seed = sc.Seed
	ds, err := trainer.GenerateEngine(context.Background(), sc.Eng, sw, power.EnergyEfficient, 1)
	if err != nil {
		return nil, err
	}
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}

	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		hist := map[int]int{}
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
			hist[y[i]]++
		}
		maj := 0
		for _, n := range hist {
			if n > maj {
				maj = n
			}
		}
		majority := float64(maj) / float64(len(y))

		accs := make([]float64, 4)
		folds := ml.KFold(len(x), 3, sc.Seed)
		for _, fold := range folds {
			tx, ty := gatherXY(x, y, fold[0])
			vx, vy := gatherXY(x, y, fold[1])

			if t, err := ml.TrainTree(tx, ty, ml.DefaultTreeParams()); err == nil {
				accs[0] += ml.Accuracy(t, vx, vy)
			}
			if f, err := ml.TrainForest(tx, ty, ml.ForestParams{
				Trees: 10, Tree: ml.DefaultTreeParams(), Seed: sc.Seed}); err == nil {
				accs[1] += ml.Accuracy(f, vx, vy)
			}
			if l, err := ml.TrainLinear(tx, ty); err == nil {
				accs[2] += ml.Accuracy(l, vx, vy)
			}
			if lg, err := ml.TrainLogistic(tx, ty, ml.LogisticParams{Epochs: 40, LR: 0.2}); err == nil {
				accs[3] += ml.Accuracy(lg, vx, vy)
			}
		}
		n := float64(len(folds))
		rep.Add(p.String(), accs[0]/n, accs[1]/n, accs[2]/n, accs[3]/n, majority)
	}
	rep.Note("paper: trees ≈ forests, regressions clearly worse; pruned trees chosen (§4.3)")
	return rep, nil
}

func gatherXY(x [][]float64, y []int, idx []int) ([][]float64, []int) {
	gx := make([][]float64, len(idx))
	gy := make([]int, len(idx))
	for i, j := range idx {
		gx[i] = x[j]
		gy[i] = y[j]
	}
	return gx, gy
}
