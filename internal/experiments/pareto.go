package experiments

import (
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/power"
)

func init() {
	register("pareto", "Configuration design space: performance/power Pareto frontier vs SparseAdapt", Pareto)
}

// Pareto maps the static configuration design space for one workload
// (SpMSpV on P2): a random sample of configurations is run end-to-end and
// placed on the (GFLOPS, Watts) plane, the Pareto-efficient points are
// marked, and the Table 4 standards plus the SparseAdapt dynamic run are
// located relative to the frontier. The paper's premise is precisely that
// no single static point serves all phases — the dynamic run should sit
// at or beyond the static frontier on its optimization objective.
func Pareto(sc Scale) (*Report, error) {
	rep := &Report{ID: "pareto", Title: "Static design space for SpMSpV on P2 (GFLOPS vs W)",
		Columns: []string{"gflops", "watts", "gflops-per-w", "pareto"}}
	w, err := buildSpMSpV(sc, "P2")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed + 99))
	n := sc.OracleSamples * 3
	if n < 24 {
		n = 24
	}
	cfgs := config.Sample(rng, n, config.CacheMode)
	cfgs = append(cfgs, config.Baseline, config.BestAvgCache, config.MaxCfg)

	type pt struct {
		label   string
		metrics power.Metrics
	}
	var pts []pt
	for i, cfg := range cfgs {
		m := core.RunStatic(sc.Chip, sc.BW, cfg, w, sc.Epoch).Total
		label := fmt.Sprintf("cfg%03d", i)
		switch cfg.Index() {
		case config.Baseline.Index():
			label = "baseline"
		case config.BestAvgCache.Index():
			label = "best-avg"
		case config.MaxCfg.Index():
			label = "max-cfg"
		}
		pts = append(pts, pt{label, m})
	}

	// Pareto dominance: more GFLOPS and fewer Watts.
	pareto := make([]bool, len(pts))
	for i := range pts {
		pareto[i] = true
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].metrics.GFLOPS() >= pts[i].metrics.GFLOPS() &&
				pts[j].metrics.Watts() <= pts[i].metrics.Watts() &&
				(pts[j].metrics.GFLOPS() > pts[i].metrics.GFLOPS() ||
					pts[j].metrics.Watts() < pts[i].metrics.Watts()) {
				pareto[i] = false
				break
			}
		}
	}
	for i, p := range pts {
		flag := 0.0
		if pareto[i] {
			flag = 1
		}
		rep.Add(p.label, p.metrics.GFLOPS(), p.metrics.Watts(), p.metrics.GFLOPSPerW(), flag)
	}

	// The dynamic run in both modes.
	for _, mode := range []power.Mode{power.EnergyEfficient, power.PowerPerformance} {
		sa, err := runSparseAdapt(sc, w, "spmspv", config.CacheMode, mode)
		if err != nil {
			return nil, err
		}
		name := "sparseadapt-ee"
		if mode == power.PowerPerformance {
			name = "sparseadapt-pp"
		}
		rep.Add(name, sa.Total.GFLOPS(), sa.Total.Watts(), sa.Total.GFLOPSPerW(), 1)
	}
	nPareto := 0
	for _, p := range pareto {
		if p {
			nPareto++
		}
	}
	rep.Note("%d of %d static configurations are Pareto-efficient; the dynamic runs should sit at or beyond the frontier on their objective", nPareto, len(pts))
	return rep, nil
}
