package experiments

import (
	"strings"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/power"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11L", "fig11R", "fig12", "tab6", "sec64", "disc7", "hist", "algo", "models", "phasedet", "pareto", "sched", "fmt", "mux"}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Fatalf("experiment %s missing: %v", id, err)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	r.Add("row1", 1.5, 2.25)
	r.Add("row2", 3)
	r.Note("hello %d", 7)
	s := r.String()
	for _, frag := range []string{"demo", "row1", "1.5", "2.25", "hello 7"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered report missing %q:\n%s", frag, s)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, -1}) != 0 {
		t.Fatal("degenerate geomeans must be 0")
	}
}

func TestModelCache(t *testing.T) {
	sc := TestScale()
	a, err := Model(sc, "spmspv", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Model(sc, "spmspv", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("model not cached")
	}
}

// checkReport validates an experiment report: non-empty, finite values, and
// a sensible number of populated rows.
func checkReport(t *testing.T, rep *Report, minRows int) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Rows) < minRows {
		t.Fatalf("%s: only %d rows (want ≥%d)", rep.ID, len(rep.Rows), minRows)
	}
	for _, row := range rep.Rows {
		for j, v := range row.Values {
			if v != v || v < 0 { // NaN or negative gain
				t.Fatalf("%s: row %q column %d has bad value %v", rep.ID, row.Label, j, v)
			}
		}
	}
	if rep.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestAllExperimentsAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	sc := TestScale()
	mins := map[string]int{
		"fig1": 4, "fig5": 7, "fig6": 9, "fig7": 9, "fig8": 9,
		"fig9": 6, "fig10": 12, "fig11L": 6, "fig11R": 5, "fig12": 4,
		"tab6": 4, "sec64": 9, "disc7": 4, "hist": 3, "algo": 4, "models": 6, "phasedet": 2, "pareto": 20, "sched": 3, "mux": 6,
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, rep, mins[id])
			t.Log("\n" + rep.String())
		})
	}
}

// TestHeadlineShapes asserts the qualitative reproduction targets on the
// figure-6-style comparison: SparseAdapt must be clearly more
// energy-efficient than Max Cfg while keeping comparable performance.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sc := TestScale()
	rep, err := Figure6(sc)
	if err != nil {
		t.Fatal(err)
	}
	gm := rep.Rows[len(rep.Rows)-1]
	if gm.Label != "GM" {
		t.Fatal("missing GM row")
	}
	cols := map[string]float64{}
	for i, c := range rep.Columns {
		cols[c] = gm.Values[i]
	}
	// Max Cfg is fast; SparseAdapt should reach a meaningful fraction of
	// its performance while clearly beating its efficiency.
	if cols["pp-gflops-sa"] < 0.5*cols["pp-gflops-max"] {
		t.Fatalf("SparseAdapt perf %.3g far below Max Cfg %.3g", cols["pp-gflops-sa"], cols["pp-gflops-max"])
	}
	if cols["pp-eff-sa"] < 1.5*cols["pp-eff-max"] {
		t.Fatalf("SparseAdapt efficiency %.3g should beat Max Cfg %.3g by a wide margin",
			cols["pp-eff-sa"], cols["pp-eff-max"])
	}
	if cols["ee-eff-sa"] < 1.0 {
		t.Fatalf("EE-mode SparseAdapt below Baseline efficiency: %.3g", cols["ee-eff-sa"])
	}
}
