package experiments

import (
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"

	"sparseadapt/internal/kernels"
)

func init() {
	register("fmt", "Format selection: mid-run CSR→CSC conversion cost vs locality win across density", FormatSwitch)
}

// FormatSwitch opens the format-conversion-cost-vs-locality-win family the
// widened action space enables: a kernel launched on the wrong storage
// format can either keep paying the per-epoch overlay penalty (extra index
// loads on every A-operand access) or stop, convert the matrix and flush
// the hierarchy — a one-time algorithmic reconfiguration charge — then run
// the rest on the natural format. Across a density sweep the experiment
// prices both strategies end-to-end and reports where conversion pays for
// itself, the decision the runtime controller's Format axis automates.
func FormatSwitch(sc Scale) (*Report, error) {
	rep := &Report{ID: "fmt", Title: "Mid-run CSR→CSC conversion vs staying on the wrong format (OP-SpMSpM, Baseline config)",
		Columns: []string{"stay-csr-ms", "switch-ms", "natural-ms", "conv-kcyc", "switch/stay"}}
	rng := rand.New(rand.NewSource(sc.Seed))
	dim := int(256 * maxF(sc.Matrix*4, 0.125))
	if dim < 24 {
		dim = 24
	}
	for _, density := range []float64{0.005, 0.02, 0.08} {
		am := matrix.UniformDensity(rng, dim, dim, density)
		src := kernels.NewSpMSpMSource(fmt.Sprintf("fmt-d%.3f", density), am.ToCSC(), am.ToCSR(), sc.Chip.NGPE(), sc.Chip.Tiles)
		nEpochs, _, err := src.GridEpochs(sc.Epoch)
		if err != nil {
			return nil, err
		}
		cfgCSR := config.Baseline
		cfgCSR[config.Format] = config.FmtCSR

		stay, _, err := runFormatSchedule(sc, src, nEpochs, cfgCSR, -1, config.Baseline)
		if err != nil {
			return nil, err
		}
		// Convert a third of the way in: enough wrong-format epochs to make
		// the overlay cost visible, enough remaining run to amortize.
		conv, convCycles, err := runFormatSchedule(sc, src, nEpochs, cfgCSR, nEpochs/3, config.Baseline)
		if err != nil {
			return nil, err
		}
		natural, _, err := runFormatSchedule(sc, src, nEpochs, config.Baseline, -1, config.Baseline)
		if err != nil {
			return nil, err
		}
		rep.Add(fmt.Sprintf("d=%.3f", density),
			stay.TimeSec*1e3, conv.TimeSec*1e3, natural.TimeSec*1e3,
			convCycles/1e3, ratio(conv.TimeSec, stay.TimeSec))
	}
	rep.Note("switch/stay < 1: paying the conversion + flush beats running on in the wrong format")
	rep.Note("the controller's Format axis makes this trade at runtime (see internal/core.RunSource)")
	return rep, nil
}

// runFormatSchedule executes the source for nEpochs on its work-aligned
// grid, starting in cfg and — when switchAt >= 0 — reconfiguring to
// target at that epoch boundary (rebinding onto the target variant's
// trace). It returns the total metrics and the conversion cycles charged.
func runFormatSchedule(sc Scale, src *kernels.Source, nEpochs int, cfg config.Config, switchAt int, target config.Config) (power.Metrics, float64, error) {
	w, err := src.Variant(cfg)
	if err != nil {
		return power.Metrics{}, 0, err
	}
	m := sim.New(sc.Chip, sc.BW, cfg)
	m.BindTrace(w.Trace)
	eps := w.Trace.EpochsN(nEpochs)
	var tot power.Metrics
	conv := 0.0
	for i := 0; i < nEpochs && i < len(eps); i++ {
		r := m.RunEpoch(eps[i])
		tot.Add(r.Metrics)
		if switchAt >= 0 && i == switchAt && m.Config() != target {
			rc, err := m.Reconfigure(target)
			if err != nil {
				return power.Metrics{}, 0, err
			}
			conv += rc.ConvCycles
			w, err = src.Variant(target)
			if err != nil {
				return power.Metrics{}, 0, err
			}
			m.BindTrace(w.Trace)
			eps = w.Trace.EpochsN(nEpochs)
		}
	}
	return tot, conv, nil
}
