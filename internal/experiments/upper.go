package experiments

import (
	"context"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/oracle"
	"sparseadapt/internal/power"
)

func init() {
	register("fig8", "Upper bounds: Ideal Static / Ideal Greedy / Oracle vs SparseAdapt (SpMSpM)", Figure8)
	register("sec64", "Comparison with ProfileAdapt (SpMSpV, L1 cache)", Section64)
}

// recordFor builds the S-sample recording for a workload. The sample is
// drawn serially (one RNG, before any parallel work) and the grid is filled
// through the scale's engine.
func recordFor(sc Scale, w kernels.Workload, l1Type int, epochScale float64) (*oracle.Recording, error) {
	rng := rand.New(rand.NewSource(sc.Seed + 7))
	cfgs := oracle.SampleConfigs(rng, sc.OracleSamples, l1Type)
	return oracle.RecordEngineMemo(context.Background(), sc.Eng, sc.Memo, sc.Chip, sc.BW, w, epochScale, cfgs)
}

// baselineOf extracts the static-Baseline totals from a recording.
func baselineOf(rec *oracle.Recording, l1Type int) power.Metrics {
	want := config.Baseline
	if l1Type == config.SPMMode {
		want = config.BestAvgSPM
	}
	for s, c := range rec.Configs {
		if c.Index() == want.Index() {
			var tot power.Metrics
			for e := range rec.Epochs {
				tot.Add(rec.Grid[s][e].Metrics)
			}
			return tot
		}
	}
	return power.Metrics{}
}

// Figure8 compares SparseAdapt against the hypothetical Ideal Static,
// Ideal Greedy and Oracle schemes on SpMSpM over R01–R08, reporting gains
// over Baseline in both modes (performance for Power-Performance mode,
// efficiency for both).
func Figure8(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "SpMSpM upper-bound study, gains over Baseline",
		Columns: []string{
			"pp-gflops-static", "pp-gflops-greedy", "pp-gflops-oracle", "pp-gflops-sa",
			"pp-eff-static", "pp-eff-greedy", "pp-eff-oracle", "pp-eff-sa",
			"ee-eff-static", "ee-eff-greedy", "ee-eff-oracle", "ee-eff-sa",
		}}
	ids := []string{"R01", "R02", "R03", "R04", "R05", "R06", "R07", "R08"}
	cols := make([][]float64, len(rep.Columns))
	for _, mid := range ids {
		w, err := buildSpMSpM(sc, mid)
		if err != nil {
			return nil, err
		}
		rec, err := recordFor(sc, w, config.CacheMode, sc.Epoch)
		if err != nil {
			return nil, err
		}
		base := baselineOf(rec, config.CacheMode)

		_, stPP := rec.IdealStatic(power.PowerPerformance)
		_, grPP := rec.IdealGreedy(power.PowerPerformance)
		_, orPP := rec.Oracle(power.PowerPerformance)
		saPP, err := runSparseAdapt(sc, w, "spmspm", config.CacheMode, power.PowerPerformance)
		if err != nil {
			return nil, err
		}
		_, stEE := rec.IdealStatic(power.EnergyEfficient)
		_, grEE := rec.IdealGreedy(power.EnergyEfficient)
		_, orEE := rec.Oracle(power.EnergyEfficient)
		saEE, err := runSparseAdapt(sc, w, "spmspm", config.CacheMode, power.EnergyEfficient)
		if err != nil {
			return nil, err
		}
		vals := []float64{
			ratio(stPP.GFLOPS(), base.GFLOPS()),
			ratio(grPP.GFLOPS(), base.GFLOPS()),
			ratio(orPP.GFLOPS(), base.GFLOPS()),
			ratio(saPP.Total.GFLOPS(), base.GFLOPS()),
			ratio(stPP.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(grPP.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(orPP.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(saPP.Total.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(stEE.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(grEE.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(orEE.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(saEE.Total.GFLOPSPerW(), base.GFLOPSPerW()),
		}
		rep.Add(mid, vals...)
		for c, v := range vals {
			cols[c] = append(cols[c], v)
		}
	}
	gm := make([]float64, len(cols))
	for c := range cols {
		gm[c] = geomean(cols[c])
	}
	rep.Add("GM", gm...)
	rep.Note("paper: SparseAdapt within 13%% of Oracle performance and 5%% efficiency")
	return rep, nil
}

// Section64 compares SparseAdapt with ProfileAdapt (naïve: profiling switch
// at every epoch; ideal: only at configuration-change boundaries, assuming
// an external phase detector). ProfileAdapt operates at a larger epoch size
// (the paper sweeps and picks ~6k FLOPS vs SparseAdapt's 500), modelled by
// an 8× epoch scale when the trace is long enough.
func Section64(sc Scale) (*Report, error) {
	rep := &Report{ID: "sec64", Title: "SparseAdapt gains over ProfileAdapt (SpMSpV, real-world, L1 cache)",
		Columns: []string{
			"pp-gflops-vs-naive", "pp-eff-vs-naive", "pp-eff-vs-ideal",
			"ee-eff-vs-naive", "ee-eff-vs-ideal",
		}}
	ids := []string{"R09", "R10", "R11", "R12", "R13", "R14", "R15", "R16"}
	cols := make([][]float64, len(rep.Columns))
	for _, mid := range ids {
		w, err := buildSpMSpV(sc, mid)
		if err != nil {
			return nil, err
		}
		paScale := sc.Epoch * 8
		if len(w.Epochs(paScale)) < 3 {
			paScale = sc.Epoch
		}
		recPA, err := recordFor(sc, w, config.CacheMode, paScale)
		if err != nil {
			return nil, err
		}
		naivePP := recPA.ProfileAdapt(power.PowerPerformance, true)
		idealPP := recPA.ProfileAdapt(power.PowerPerformance, false)
		naiveEE := recPA.ProfileAdapt(power.EnergyEfficient, true)
		idealEE := recPA.ProfileAdapt(power.EnergyEfficient, false)

		saPP, err := runSparseAdapt(sc, w, "spmspv", config.CacheMode, power.PowerPerformance)
		if err != nil {
			return nil, err
		}
		saEE, err := runSparseAdapt(sc, w, "spmspv", config.CacheMode, power.EnergyEfficient)
		if err != nil {
			return nil, err
		}
		vals := []float64{
			ratio(saPP.Total.GFLOPS(), naivePP.GFLOPS()),
			ratio(saPP.Total.GFLOPSPerW(), naivePP.GFLOPSPerW()),
			ratio(saPP.Total.GFLOPSPerW(), idealPP.GFLOPSPerW()),
			ratio(saEE.Total.GFLOPSPerW(), naiveEE.GFLOPSPerW()),
			ratio(saEE.Total.GFLOPSPerW(), idealEE.GFLOPSPerW()),
		}
		rep.Add(mid, vals...)
		for c, v := range vals {
			cols[c] = append(cols[c], v)
		}
	}
	gm := make([]float64, len(cols))
	for c := range cols {
		gm[c] = geomean(cols[c])
	}
	rep.Add("GM", gm...)
	rep.Note("paper: 2.8x GFLOPS / 2.0x GFLOPS/W over naive (PP), 2.9x GFLOPS/W (EE); 1.1-2.4x over ideal")
	return rep, nil
}
