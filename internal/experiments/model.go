package experiments

import (
	"context"
	"strconv"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func init() {
	register("fig9", "Effect of decision-tree depth on SparseAdapt gains (SpMSpV, P1/P3)", Figure9)
	register("fig10", "Feature importance of counter groups per parameter model", Figure10)
}

// Figure9 sweeps the depth of the decision tree of each configuration
// parameter one at a time (using the originally trained trees for the
// rest) and reports Power-Performance-mode gains over Baseline for SpMSpV
// on matrices P1 and P3 with a 50%-dense vector.
func Figure9(sc Scale) (*Report, error) {
	depths := []int{2, 6, 10, 14, 18, 22, 26}
	if sc.Train < 0.3 {
		depths = []int{2, 8, 14}
	}
	rep := &Report{ID: "fig9", Title: "SparseAdapt gains vs per-parameter tree depth (Power-Performance mode)",
		Columns: []string{"p1-gflops", "p1-eff", "p3-gflops", "p3-eff"}}

	// Regenerate the training dataset once so trees can be re-fit per depth.
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, sc.Train)
	sw.Chip = sc.Chip
	sw.Seed = sc.Seed
	ds, err := trainer.GenerateEngine(context.Background(), sc.Eng, sw, power.PowerPerformance, 1)
	if err != nil {
		return nil, err
	}
	base, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		return nil, err
	}
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}

	type workloadRef struct {
		id   string
		w    kernels.Workload
		base power.Metrics
	}
	var refs []workloadRef
	for _, id := range []string{"P1", "P3"} {
		w, err := buildSpMSpV(sc, id)
		if err != nil {
			return nil, err
		}
		bm := core.RunStatic(sc.Chip, sc.BW, config.Baseline, w, sc.Epoch).Total
		refs = append(refs, workloadRef{id: id, w: w, base: bm})
	}

	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
		}
		for _, d := range depths {
			t, err := ml.TrainTree(x, y, ml.TreeParams{Criterion: ml.Gini, MaxDepth: d, MinSamplesLeaf: 5})
			if err != nil {
				return nil, err
			}
			ens := &core.Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: power.PowerPerformance}
			for _, q := range config.RuntimeParams {
				ens.Trees[q] = base.Trees[q]
			}
			ens.Trees[p] = t

			var vals []float64
			for _, ref := range refs {
				m := sim.New(sc.Chip, sc.BW, config.Baseline)
				ctl := core.NewController(ens, policyFor("spmspv", sc.Epoch))
				res := ctl.Run(m, ref.w)
				vals = append(vals,
					ratio(res.Total.GFLOPS(), ref.base.GFLOPS()),
					ratio(res.Total.GFLOPSPerW(), ref.base.GFLOPSPerW()))
			}
			rep.Add(p.String()+"/d"+strconv.Itoa(d), vals...)
		}
	}
	rep.Note("paper: GFLOPS is more sensitive to model complexity than GFLOPS/W in this mode")
	return rep, nil
}

// Figure10 reports the Gini importance of each feature group for every
// per-parameter model in both optimization modes.
func Figure10(sc Scale) (*Report, error) {
	groups := []string{"Config", "L1 R-DCache", "L2 R-DCache", "R-XBar", "GPE", "LCP", "Clock", "Mem Ctrl"}
	rep := &Report{ID: "fig10", Title: "Feature-group Gini importance per trained parameter model",
		Columns: groups}
	for _, mode := range []power.Mode{power.PowerPerformance, power.EnergyEfficient} {
		ens, err := Model(sc, "spmspv", config.CacheMode, mode)
		if err != nil {
			return nil, err
		}
		prefix := "pp/"
		if mode == power.EnergyEfficient {
			prefix = "ee/"
		}
		for _, p := range config.RuntimeParams {
			gi := ens.GroupImportance(p)
			vals := make([]float64, len(groups))
			for i, g := range groups {
				vals[i] = gi[g]
			}
			rep.Add(prefix+p.String(), vals...)
		}
	}
	return rep, nil
}
