package experiments

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/power"
	"sparseadapt/internal/tenant"
)

func init() {
	register("mux", "Multi-tenant time-multiplexing: tenant mixes × quantum lengths × priority policies", Mux)
}

// muxTenant is one tenant of the sweep: a workload, a priority class, and
// whether its controller carries a trained model (the others hold their
// start configuration, isolating the watchdog/interference path).
type muxTenant struct {
	id      string
	class   tenant.Class
	kernel  string
	matrix  string
	spmspm  bool
	modeled bool
}

// Mux sweeps tenant mixes × quantum lengths × priority policies on the
// time-multiplexed fabric (internal/tenant): three tenants of mixed class
// and kernel share one simulated machine, every tenant switch is priced
// through sim.ReconfigCost (config swap + full hierarchy flush, with the
// resuming tenant paying its cold-cache misses inside its own epoch
// accounting), and each cell reports per-tenant EDP, slowdown versus an
// isolated run, and Jain's fairness index over virtual-time service.
// The interference column counts post-switch cost spikes the watchdog
// classified as co-tenant interference; fallbacks stays zero because those
// spikes never feed the degradation streak (the fault path would trip it).
func Mux(sc Scale) (*Report, error) {
	mix := []muxTenant{
		{id: "interactive", class: tenant.Interactive, kernel: "spmspv", matrix: "R04", modeled: true},
		{id: "batch", class: tenant.Batch, kernel: "spmspm", matrix: "R02", spmspm: true},
		{id: "scavenger", class: tenant.Scavenger, kernel: "spmspv", matrix: "R07"},
	}
	rep := &Report{
		ID:    "mux",
		Title: "Time-multiplexed fabric: per-tenant EDP/slowdown and fairness across quantum × policy",
		Columns: []string{
			"jain",
			"slow-int", "slow-bat", "slow-scv",
			"edp-int", "edp-bat", "edp-scv",
			"switches", "interf", "fallbk",
		},
	}

	// jobFor builds a fresh Job for one tenant: traces and epoch grids are
	// deterministic, but controller state is not reusable across runs, so
	// every mux (and every solo baseline) gets its own stepper.
	jobFor := func(mt muxTenant) (tenant.Job, error) {
		var j tenant.Job
		if mt.spmspm {
			wl, e := buildSpMSpM(sc, mt.matrix)
			if e != nil {
				return j, e
			}
			j.Trace, j.Epochs = wl.Trace, wl.Epochs(sc.Epoch)
		} else {
			wl, e := buildSpMSpV(sc, mt.matrix)
			if e != nil {
				return j, e
			}
			j.Trace, j.Epochs = wl.Trace, wl.Epochs(sc.Epoch)
		}
		j.ID = mt.id
		j.Class = mt.class
		// Every tenant starts in a cache-mode configuration: the multiplexer
		// context-switches at runtime, and cache↔SPM is a coarse (recompile)
		// transition ContextSwitch correctly refuses.
		j.Start = startConfig(config.CacheMode)
		var model *core.Ensemble
		if mt.modeled {
			var err error
			model, err = Model(sc, mt.kernel, config.CacheMode, power.EnergyEfficient)
			if err != nil {
				return j, err
			}
		}
		j.Control = core.NewResilientStepper(model, core.DefaultResilientOptions())
		return j, nil
	}

	// Solo baselines: each tenant alone on the fabric, same controller
	// stack, no switches — the slowdown denominators.
	solo := map[string]tenant.TenantResult{}
	soloFallbacks := 0
	for _, mt := range mix {
		j, err := jobFor(mt)
		if err != nil {
			return nil, err
		}
		res, err := tenant.Isolated(sc.Chip, sc.BW, j)
		if err != nil {
			return nil, err
		}
		solo[mt.id] = res
		soloFallbacks += res.Resilience.Fallbacks
	}

	for _, flat := range []bool{false, true} {
		policy := "wdrr"
		if flat {
			policy = "flat"
		}
		for _, q := range []int{1, 4, 16} {
			mx := tenant.New(sc.Chip, sc.BW, tenant.Options{Quantum: q, Flat: flat})
			for _, mt := range mix {
				j, err := jobFor(mt)
				if err != nil {
					return nil, err
				}
				if err := mx.Add(j); err != nil {
					return nil, err
				}
			}
			res, err := mx.Run()
			if err != nil {
				return nil, err
			}
			slow := map[string]float64{}
			edp := map[string]float64{}
			interf, fallbacks := 0, 0
			for _, tr := range res.Tenants {
				slow[tr.ID] = tenant.Slowdown(tr.FinishSec, solo[tr.ID].Metrics.TimeSec)
				// EDP over the tenant's own accounting (its epochs plus the
				// switch costs attributed to it), in nJ·s for legible digits.
				edp[tr.ID] = (tr.Metrics.TimeSec + tr.SwitchTimeSec) * (tr.Metrics.EnergyJ + tr.SwitchEnergyJ) * 1e9
				interf += tr.Resilience.InterferenceEpochs
				fallbacks += tr.Resilience.Fallbacks
			}
			rep.Add(fmt.Sprintf("%s/q=%d", policy, q),
				res.Jain(),
				slow["interactive"], slow["batch"], slow["scavenger"],
				edp["interactive"], edp["batch"], edp["scavenger"],
				float64(res.Switches), float64(interf), float64(fallbacks))
		}
	}
	rep.Note("slowdown = multiplexed finish time / isolated run time; 1 = no interference cost")
	rep.Note("jain is Jain's index over virtual-time service (service / class weight); 1 = weight-proportional sharing")
	rep.Note("every tenant switch is priced through sim.ReconfigCost (config swap + hierarchy flush); the resuming tenant pays its cold-cache misses in its own epochs")
	rep.Note("interf counts post-switch cost spikes classified as co-tenant interference; those epochs bypass the watchdog's degradation streak, so multiplexing never adds trips beyond the %d workload-intrinsic fallback(s) of the isolated baselines", soloFallbacks)
	return rep, nil
}
