package experiments

import (
	"fmt"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func init() {
	register("fig11L", "Cost-aware policy sweep (SpMSpV on P3 and R12, Power-Performance mode)", Figure11Policies)
	register("fig11R", "External memory bandwidth sweep (SpMSpV, Energy-Efficient mode)", Figure11Bandwidth)
	register("fig12", "System-size scaling (SpMSpM R01-R08, Energy-Efficient mode)", Figure12)
}

// Figure11Policies evaluates the conservative, aggressive and hybrid
// (tolerance sweep) reconfiguration policies of Section 4.4 on SpMSpV.
func Figure11Policies(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig11L", Title: "Policy sweep, gains over Baseline (Power-Performance mode)",
		Columns: []string{"p3-gflops", "p3-eff", "r12-gflops", "r12-eff"}}
	ens, err := Model(sc, "spmspv", config.CacheMode, power.PowerPerformance)
	if err != nil {
		return nil, err
	}
	type scheme struct {
		label string
		opts  core.Options
	}
	schemes := []scheme{
		{"conservative", core.Options{Policy: core.Conservative, EpochScale: sc.Epoch}},
		{"aggressive", core.Options{Policy: core.Aggressive, EpochScale: sc.Epoch}},
	}
	for _, tol := range []float64{0.1, 0.2, 0.4, 0.8} {
		schemes = append(schemes, scheme{
			fmt.Sprintf("hybrid-%d%%", int(tol*100)),
			core.Options{Policy: core.Hybrid, Tolerance: tol, EpochScale: sc.Epoch},
		})
	}
	type ref struct {
		w    kernels.Workload
		base power.Metrics
	}
	var refs []ref
	for _, id := range []string{"P3", "R12"} {
		w, err := buildSpMSpV(sc, id)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref{w: w, base: core.RunStatic(sc.Chip, sc.BW, config.Baseline, w, sc.Epoch).Total})
	}
	for _, s := range schemes {
		var vals []float64
		for _, r := range refs {
			m := sim.New(sc.Chip, sc.BW, config.Baseline)
			res := core.NewController(ens, s.opts).Run(m, r.w)
			vals = append(vals,
				ratio(res.Total.GFLOPS(), r.base.GFLOPS()),
				ratio(res.Total.GFLOPSPerW(), r.base.GFLOPSPerW()))
		}
		rep.Add(s.label, vals...)
	}
	rep.Note("paper: ideal hybrid tolerance lies between 10-40%% at this epoch size")
	return rep, nil
}

// Figure11Bandwidth sweeps the external memory bandwidth and reports
// Energy-Efficient-mode gains over Baseline and Best Avg for SpMSpV on P3,
// reusing the model trained at the default bandwidth (the paper deploys
// without retraining).
func Figure11Bandwidth(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig11R", Title: "Bandwidth sweep, SpMSpV on P3, Energy-Efficient mode",
		Columns: []string{"vs-baseline", "vs-bestavg"}}
	ens, err := Model(sc, "spmspv", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		return nil, err
	}
	w, err := buildSpMSpV(sc, "P3")
	if err != nil {
		return nil, err
	}
	for _, bwGB := range []float64{0.01, 0.1, 1, 10, 100} {
		bw := bwGB * 1e9
		base := core.RunStatic(sc.Chip, bw, config.Baseline, w, sc.Epoch).Total
		best := core.RunStatic(sc.Chip, bw, config.BestAvgCache, w, sc.Epoch).Total
		m := sim.New(sc.Chip, bw, config.Baseline)
		res := core.NewController(ens, policyFor("spmspv", sc.Epoch)).Run(m, w)
		rep.Add(fmt.Sprintf("%gGB/s", bwGB),
			ratio(res.Total.GFLOPSPerW(), base.GFLOPSPerW()),
			ratio(res.Total.GFLOPSPerW(), best.GFLOPSPerW()))
	}
	rep.Note("paper: >3x gains in the memory-bound regime, ~1.1x over Best Avg when compute-bound")
	return rep, nil
}

// Figure12 scales the machine (tiles × GPEs/tile) while keeping the model
// trained on the 2×8 system, reporting Energy-Efficient GFLOPS/W gains over
// Baseline on SpMSpM R01–R08 at a fixed 1 GB/s.
func Figure12(sc Scale) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "System-size scaling, SpMSpM GFLOPS/W gains over Baseline (Energy-Efficient mode)",
		Columns: []string{"R01", "R02", "R03", "R04", "R05", "R06", "R07", "R08", "GM"}}
	// Model trained once on the base 2×8 chip.
	ens, err := Model(sc, "spmspm", config.CacheMode, power.EnergyEfficient)
	if err != nil {
		return nil, err
	}
	systems := []power.Chip{
		{Tiles: 1, GPEsPerTile: 8},
		{Tiles: 2, GPEsPerTile: 8},
		{Tiles: 2, GPEsPerTile: 16},
		{Tiles: 4, GPEsPerTile: 16},
	}
	ids := []string{"R01", "R02", "R03", "R04", "R05", "R06", "R07", "R08"}
	for _, chip := range systems {
		scSys := sc
		scSys.Chip = chip
		var vals []float64
		for _, mid := range ids {
			w, err := buildSpMSpM(scSys, mid)
			if err != nil {
				return nil, err
			}
			base := core.RunStatic(chip, sc.BW, config.Baseline, w, sc.Epoch).Total
			m := sim.New(chip, sc.BW, config.Baseline)
			res := core.NewController(ens, policyFor("spmspm", sc.Epoch)).Run(m, w)
			vals = append(vals, ratio(res.Total.GFLOPSPerW(), base.GFLOPSPerW()))
		}
		vals = append(vals, geomean(vals))
		rep.Add(fmt.Sprintf("%dx%d", chip.Tiles, chip.GPEsPerTile), vals...)
	}
	rep.Note("paper: 1.7-2.0x mean gains across system sizes without retraining")
	return rep, nil
}
