package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChartSVGStructure(t *testing.T) {
	c := &Chart{
		Title:  "demo <chart>",
		XLabel: "bandwidth",
		YLabel: "gain",
		Series: []Series{
			{Name: "sparseadapt", Points: []Point{{1, 1}, {10, 2}, {100, 3}}},
			{Name: "baseline", Points: []Point{{1, 1}, {10, 1}, {100, 1}}},
		},
		LogX: true,
	}
	svg := c.SVG()
	for _, frag := range []string{"<svg", "</svg>", "demo &lt;chart&gt;", "sparseadapt", "baseline", "<path", "<circle"} {
		if !strings.Contains(svg, frag) {
			t.Fatalf("SVG missing %q", frag)
		}
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("SVG contains non-finite coordinates")
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart must still render")
	}
}

func TestChartWriteFile(t *testing.T) {
	c := &Chart{Title: "f", Series: []Series{{Name: "s", Points: []Point{{0, 0}, {1, 1}}}}}
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("file is not SVG")
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title:  "gains",
		YLabel: "x over baseline",
		Groups: []string{"R01", "R02"},
		Series: []string{"best-avg", "sparseadapt"},
		Values: [][]float64{{1.1, 0.9}, {1.4, 1.5}},
	}
	svg := c.SVG()
	if strings.Count(svg, "<rect") < 5 { // background + legend + 4 bars
		t.Fatalf("missing bars:\n%s", svg)
	}
	for _, frag := range []string{"R01", "R02", "best-avg", "sparseadapt"} {
		if !strings.Contains(svg, frag) {
			t.Fatalf("missing %q", frag)
		}
	}
	path := filepath.Join(t.TempDir(), "bars.svg")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	c := &BarChart{Title: "none"}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("degenerate bar chart must render")
	}
}

func TestScalerLog(t *testing.T) {
	s := scaler{min: 1, max: 100, lo: 0, hi: 200, log: true}
	mid := s.pos(10)
	if mid < 99 || mid > 101 {
		t.Fatalf("log midpoint %v, want ~100", mid)
	}
	// Degenerate range centers.
	d := scaler{min: 5, max: 5, lo: 0, hi: 10}
	if p := d.pos(5); p != 5 {
		t.Fatalf("degenerate pos %v", p)
	}
}

func TestDistinctTicks(t *testing.T) {
	vs := []float64{5, 1, 3, 1, 5, 2, 4}
	got := distinct(vs, 8)
	if len(got) != 5 {
		t.Fatalf("distinct %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("ticks not sorted")
		}
	}
	many := make([]float64, 50)
	for i := range many {
		many[i] = float64(i)
	}
	if got := distinct(many, 8); len(got) != 8 {
		t.Fatalf("cap not applied: %d", len(got))
	}
}
