// Package plot renders experiment reports as standalone SVG line/bar
// charts — the reproduction's equivalent of the artifact's PDF figures
// (Appendix A.6). Pure stdlib, deterministic output, one file per figure.
package plot

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample.
type Point struct{ X, Y float64 }

// Chart is a simple line chart with linear or log₁₀ x-axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	LogX   bool
	// Width and Height default to 720×420.
	Width, Height int
}

// palette holds distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

const (
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 48
)

type scaler struct {
	min, max   float64
	lo, hi     float64 // pixel range
	log        bool
	descending bool
}

func (s scaler) pos(v float64) float64 {
	x := v
	if s.log {
		x = math.Log10(math.Max(v, 1e-300))
	}
	mn, mx := s.min, s.max
	if s.log {
		mn, mx = math.Log10(math.Max(s.min, 1e-300)), math.Log10(math.Max(s.max, 1e-300))
	}
	if mx == mn {
		return (s.lo + s.hi) / 2
	}
	f := (x - mn) / (mx - mn)
	if s.descending {
		f = 1 - f
	}
	return s.lo + f*(s.hi-s.lo)
}

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	var xs, ys []float64
	for _, s := range c.Series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		xs, ys = []float64{0, 1}, []float64{0, 1}
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if ymin > 0 {
		ymin = 0 // anchor gains at zero
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	sx := scaler{min: xmin, max: xmax, lo: marginL, hi: float64(w - marginR), log: c.LogX}
	sy := scaler{min: ymin, max: ymax, lo: float64(h - marginB), hi: marginT}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, h-marginB, w-marginR, h-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, h-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		(marginL+w-marginR)/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		(marginT+h-marginB)/2, (marginT+h-marginB)/2, esc(c.YLabel))

	// Y ticks (5).
	for i := 0; i <= 4; i++ {
		v := ymin + (ymax-ymin)*float64(i)/4
		y := sy.pos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, w-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", marginL-6, y+4, v)
	}
	// X ticks from distinct xs (≤8).
	ticks := distinct(xs, 8)
	for _, v := range ticks {
		x := sx.pos(v)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.3g</text>`+"\n", x, h-marginB+16, v)
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		for i, p := range s.Points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx.pos(p.X), sy.pos(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				sx.pos(p.X), sy.pos(p.Y), color)
		}
		// Legend.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			w-marginR-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", w-marginR-135, ly+9, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// WriteFile renders the chart to an SVG file.
func (c *Chart) WriteFile(path string) error {
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

// BarChart renders labelled value groups as grouped vertical bars.
type BarChart struct {
	Title  string
	YLabel string
	// Groups are the x-axis categories; Series are the bar colors within
	// each group. Values[s][g] is series s at group g.
	Groups        []string
	Series        []string
	Values        [][]float64
	Width, Height int
}

// SVG renders the bar chart.
func (c *BarChart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	ymax := 1.0
	for _, row := range c.Values {
		for _, v := range row {
			if v > ymax {
				ymax = v
			}
		}
	}
	sy := scaler{min: 0, max: ymax, lo: float64(h - marginB), hi: marginT}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, h-marginB, w-marginR, h-marginB)
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := sy.pos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, w-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", marginL-6, y+4, v)
	}
	ng, ns := len(c.Groups), len(c.Series)
	if ng == 0 || ns == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	groupW := float64(w-marginL-marginR) / float64(ng)
	barW := groupW * 0.8 / float64(ns)
	for g, label := range c.Groups {
		gx := float64(marginL) + groupW*float64(g)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, h-marginB+16, esc(label))
		for s := 0; s < ns; s++ {
			if s >= len(c.Values) || g >= len(c.Values[s]) {
				continue
			}
			v := c.Values[s][g]
			y := sy.pos(v)
			x := gx + groupW*0.1 + barW*float64(s)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, float64(h-marginB)-y, palette[s%len(palette)])
		}
	}
	for s, name := range c.Series {
		ly := marginT + 16*s
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			w-marginR-150, ly, palette[s%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", w-marginR-135, ly+9, esc(name))
	}
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		(marginT+h-marginB)/2, (marginT+h-marginB)/2, esc(c.YLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

// WriteFile renders the bar chart to an SVG file.
func (c *BarChart) WriteFile(path string) error {
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minMax(vs []float64) (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func distinct(vs []float64, max int) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	if len(out) > max {
		step := float64(len(out)-1) / float64(max-1)
		picked := make([]float64, 0, max)
		for i := 0; i < max; i++ {
			picked = append(picked, out[int(float64(i)*step+0.5)])
		}
		out = picked
	}
	return out
}
