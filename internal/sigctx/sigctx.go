// Package sigctx provides the shared shutdown plumbing of the binaries: a
// context cancelled on SIGINT/SIGTERM so long-running work (experiment
// sweeps, training, the job server's drain) can wind down cleanly, with a
// second signal escalating to an immediate exit for the operator who has
// stopped waiting.
package sigctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// WithSignals returns a copy of parent that is cancelled when the process
// receives SIGINT or SIGTERM. The first signal cancels the context and
// prints a one-line notice to w (nil silences it); a second signal calls
// os.Exit(1) immediately, so a hung drain can always be escaped. The
// returned stop function releases the signal handler and the watcher
// goroutine; call it once shutdown has completed.
func WithSignals(parent context.Context, w io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if w != nil {
				fmt.Fprintf(w, "received %s: shutting down (send again to force exit)\n", sig)
			}
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			if w != nil {
				fmt.Fprintln(w, "second signal: forcing exit")
			}
			os.Exit(1)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	return ctx, stop
}
