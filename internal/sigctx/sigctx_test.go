package sigctx

import (
	"context"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSignalCancels delivers a real SIGINT to the test process and checks
// that the context cancels and the notice is printed. The escalation path
// (second signal → exit) is exercised end-to-end by the daemon test, where
// it can kill a child process instead of the test runner.
func TestSignalCancels(t *testing.T) {
	var buf strings.Builder
	ctx, stop := WithSignals(context.Background(), &buf)
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGINT")
	}
	if !strings.Contains(buf.String(), "interrupt") {
		t.Fatalf("expected signal notice, got %q", buf.String())
	}
}

// TestStopIdempotent checks stop can be called repeatedly and releases the
// handler without cancelling anyone else's signals.
func TestStopIdempotent(t *testing.T) {
	ctx, stop := WithSignals(context.Background(), nil)
	stop()
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop should cancel the context")
	}
}

// TestParentCancellationPropagates checks the returned context follows its
// parent like any derived context.
func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithSignals(parent, nil)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
