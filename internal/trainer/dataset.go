package trainer

import (
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
)

// Example is one training row: model inputs (current configuration +
// telemetry under it) and the target best configuration for the phase
// (Figure 4b).
type Example struct {
	X []float64
	Y config.Config
}

// Dataset is a labelled training set for one optimization mode and L1 type.
type Dataset struct {
	Mode     power.Mode
	L1Type   int
	Examples []Example
}

// SweepSpec describes a Table 3 training-data sweep. The paper sweeps
// matrix dimension ×2, density ×2 and bandwidth ×10 over uniform-random
// inputs; Scale shrinks the grid for bounded runtimes while keeping its
// structure.
type SweepSpec struct {
	Kernel         string // "spmspm" or "spmspv"
	L1Type         int
	Dims           []int
	Densities      []float64
	BandwidthsGBps []float64
	K              int // random samples per phase (step 1 of the search)
	Seed           int64
	Chip           power.Chip
	EpochScale     float64
	Warmup         int
	Measure        int
}

// DefaultSweep returns a scaled version of the paper's Table 3 sweep.
// scale 1 approximates the paper's grid; smaller values shrink dimensions
// and grid points proportionally.
func DefaultSweep(kernel string, l1Type int, scale float64) SweepSpec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	sw := SweepSpec{
		Kernel: kernel,
		L1Type: l1Type,
		K:      maxI(6, int(24*scale)),
		Seed:   1,
		Chip:   power.Chip{Tiles: 2, GPEsPerTile: 8},
		Warmup: 1, Measure: 2,
	}
	switch kernel {
	case "spmspm":
		sw.Dims = scaleDims([]int{128, 256, 512, 1024}, scale)
		sw.EpochScale = scale
	case "spmspv":
		sw.Dims = scaleDims([]int{256, 1024, 4096, 8192}, scale)
		sw.EpochScale = scale
	default:
		sw.Dims = scaleDims([]int{256, 512}, scale)
		sw.EpochScale = scale
	}
	sw.Densities = []float64{0.002, 0.008, 0.032, 0.13}
	// The paper sweeps 0.01→100 GB/s in ×10 steps; the grid here adds
	// mid-band points so the deployment regime (~1 GB/s) is as well covered
	// as the extremes.
	sw.BandwidthsGBps = []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100}
	if scale < 0.5 {
		sw.Dims = sw.Dims[:2]
		sw.Densities = []float64{0.008, 0.05}
		sw.BandwidthsGBps = []float64{0.1, 0.5, 1, 2, 10}
	}
	return sw
}

func scaleDims(dims []int, scale float64) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		v := int(float64(d) * scale)
		if v < 32 {
			v = 32
		}
		out[i] = v
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildWorkload constructs the kernel workload for one sweep point.
func buildWorkload(sw SweepSpec, rng *rand.Rand, dim int, density float64) (kernels.Workload, error) {
	nnz := int(density * float64(dim) * float64(dim))
	if nnz < dim {
		nnz = dim
	}
	am := matrix.Uniform(rng, dim, dim, nnz)
	a := am.ToCSC()
	switch sw.Kernel {
	case "spmspm":
		_, w, err := kernels.SpMSpM(a, am.ToCSR(), sw.Chip.NGPE(), sw.Chip.Tiles)
		return w, err
	case "spmspv":
		x := matrix.RandomVec(rng, dim, 0.5)
		_, w, err := kernels.SpMSpV(a, x, sw.Chip.NGPE(), sw.Chip.Tiles)
		return w, err
	default:
		return kernels.Workload{}, fmt.Errorf("trainer: unknown kernel %q", sw.Kernel)
	}
}

// Generate runs the sweep and constructs the training dataset for one
// optimization mode: for every (input, bandwidth, phase) it finds the
// phase's best configuration and emits one example per configuration
// evaluated during the search — the insight of Section 4.2 that yields K×
// more training data than profiling-configuration approaches and teaches
// the model to predict from *any* configuration.
func Generate(sw SweepSpec, mode power.Mode) (*Dataset, error) {
	return GenerateH(sw, mode, 1)
}

// GenerateH builds a history-augmented dataset whose inputs carry the last
// h telemetry frames (the Section 7 extension); h = 1 is the published
// SparseAdapt feature layout.
func GenerateH(sw SweepSpec, mode power.Mode, h int) (*Dataset, error) {
	if h < 1 {
		h = 1
	}
	ds := &Dataset{Mode: mode, L1Type: sw.L1Type}
	rng := rand.New(rand.NewSource(sw.Seed))
	for _, dim := range sw.Dims {
		for _, density := range sw.Densities {
			w, err := buildWorkload(sw, rng, dim, density)
			if err != nil {
				return nil, err
			}
			for _, bwGB := range sw.BandwidthsGBps {
				ev := NewEvaluator(sw.Chip, bwGB*1e9, w, sw.EpochScale, sw.Warmup, sw.Measure)
				for _, phase := range ev.Phases() {
					best, evals, err := ev.BestConfig(rng, sw.K, sw.L1Type, phase, mode)
					if err != nil {
						return nil, err
					}
					for _, e := range evals {
						var x []float64
						if h == 1 {
							x = core.BuildFeatures(e.Config, e.Counters)
						} else {
							x = core.BuildHistoryFeatures(e.Config, e.Window, h)
						}
						ds.Examples = append(ds.Examples, Example{X: x, Y: best})
					}
				}
			}
		}
	}
	if len(ds.Examples) == 0 {
		return nil, fmt.Errorf("trainer: sweep produced no examples")
	}
	return ds, nil
}

// Train fits one decision tree per runtime parameter on the dataset and
// returns the ensemble.
func Train(ds *Dataset, params ml.TreeParams) (*core.Ensemble, error) {
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}
	ens := &core.Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: ds.Mode}
	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
		}
		t, err := ml.TrainTree(x, y, params)
		if err != nil {
			return nil, fmt.Errorf("trainer: parameter %v: %w", p, err)
		}
		ens.Trees[p] = t
	}
	return ens, nil
}

// TrainCV grid-searches tree hyperparameters with k-fold cross-validation
// per parameter (the paper's methodology, Section 5.1) before fitting.
func TrainCV(ds *Dataset, depths, minLeafs []int, folds int) (*core.Ensemble, error) {
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}
	ens := &core.Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: ds.Mode}
	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
		}
		best, _, err := ml.GridSearchTree(x, y, depths, minLeafs, folds, 1)
		if err != nil {
			return nil, err
		}
		t, err := ml.TrainTree(x, y, best)
		if err != nil {
			return nil, err
		}
		ens.Trees[p] = t
	}
	return ens, nil
}
