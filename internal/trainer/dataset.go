package trainer

import (
	"context"
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Example is one training row: model inputs (current configuration +
// telemetry under it) and the target best configuration for the phase
// (Figure 4b).
type Example struct {
	X []float64
	Y config.Config
}

// Dataset is a labelled training set for one optimization mode and L1 type.
type Dataset struct {
	Mode     power.Mode
	L1Type   int
	Examples []Example
}

// SweepSpec describes a Table 3 training-data sweep. The paper sweeps
// matrix dimension ×2, density ×2 and bandwidth ×10 over uniform-random
// inputs; Scale shrinks the grid for bounded runtimes while keeping its
// structure.
type SweepSpec struct {
	Kernel         string // "spmspm" or "spmspv"
	L1Type         int
	Dims           []int
	Densities      []float64
	BandwidthsGBps []float64
	K              int // random samples per phase (step 1 of the search)
	// PinDataflow / PinFormat, when non-empty, pin the corresponding
	// algorithm axis for the whole sweep ("outer"/"inner"/"row",
	// "csr"/"csc"/"coo"): every candidate the search evaluates is projected
	// onto the pinned variant. Empty = the search roams the axis.
	PinDataflow string
	PinFormat   string
	Seed        int64
	Chip        power.Chip
	EpochScale  float64
	Warmup      int
	Measure     int
}

// DefaultSweep returns a scaled version of the paper's Table 3 sweep.
// scale 1 approximates the paper's grid; smaller values shrink dimensions
// and grid points proportionally.
func DefaultSweep(kernel string, l1Type int, scale float64) SweepSpec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	sw := SweepSpec{
		Kernel: kernel,
		L1Type: l1Type,
		K:      maxI(6, int(24*scale)),
		Seed:   1,
		Chip:   power.Chip{Tiles: 2, GPEsPerTile: 8},
		Warmup: 1, Measure: 2,
	}
	switch kernel {
	case "spmspm":
		sw.Dims = scaleDims([]int{128, 256, 512, 1024}, scale)
		sw.EpochScale = scale
	case "spmspv":
		sw.Dims = scaleDims([]int{256, 1024, 4096, 8192}, scale)
		sw.EpochScale = scale
	default:
		sw.Dims = scaleDims([]int{256, 512}, scale)
		sw.EpochScale = scale
	}
	sw.Densities = []float64{0.002, 0.008, 0.032, 0.13}
	// The paper sweeps 0.01→100 GB/s in ×10 steps; the grid here adds
	// mid-band points so the deployment regime (~1 GB/s) is as well covered
	// as the extremes.
	sw.BandwidthsGBps = []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100}
	if scale < 0.5 {
		sw.Dims = sw.Dims[:2]
		sw.Densities = []float64{0.008, 0.05}
		sw.BandwidthsGBps = []float64{0.1, 0.5, 1, 2, 10}
	}
	return sw
}

func scaleDims(dims []int, scale float64) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		v := int(float64(d) * scale)
		if v < 32 {
			v = 32
		}
		out[i] = v
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildSource constructs the kernel source for one sweep input; the
// source lazily traces each algorithm variant (dataflow/format/sched) the
// configuration searches touch.
func buildSource(sw SweepSpec, rng *rand.Rand, dim int, density float64) (*kernels.Source, error) {
	nnz := int(density * float64(dim) * float64(dim))
	if nnz < dim {
		nnz = dim
	}
	am := matrix.Uniform(rng, dim, dim, nnz)
	a := am.ToCSC()
	name := fmt.Sprintf("%s-%dx%d", sw.Kernel, dim, dim)
	switch sw.Kernel {
	case "spmspm":
		return kernels.NewSpMSpMSource(name, a, am.ToCSR(), sw.Chip.NGPE(), sw.Chip.Tiles), nil
	case "spmspv":
		x := matrix.RandomVec(rng, dim, 0.5)
		return kernels.NewSpMSpVSource(name, a, x, sw.Chip.NGPE(), sw.Chip.Tiles), nil
	default:
		return nil, fmt.Errorf("trainer: unknown kernel %q", sw.Kernel)
	}
}

// sweepPins resolves the sweep's algorithm-axis pins to evaluator pins.
func sweepPins(sw SweepSpec) (map[config.Param]int, error) {
	pins := map[config.Param]int{}
	if sw.PinDataflow != "" {
		v, err := config.DataflowByName(sw.PinDataflow)
		if err != nil {
			return nil, err
		}
		pins[config.Dataflow] = v
	}
	if sw.PinFormat != "" {
		v, err := config.FormatByName(sw.PinFormat)
		if err != nil {
			return nil, err
		}
		pins[config.Format] = v
	}
	if len(pins) == 0 {
		return nil, nil
	}
	return pins, nil
}

// Generate runs the sweep and constructs the training dataset for one
// optimization mode: for every (input, bandwidth, phase) it finds the
// phase's best configuration and emits one example per configuration
// evaluated during the search — the insight of Section 4.2 that yields K×
// more training data than profiling-configuration approaches and teaches
// the model to predict from *any* configuration.
func Generate(sw SweepSpec, mode power.Mode) (*Dataset, error) {
	return GenerateH(sw, mode, 1)
}

// GenerateH builds a history-augmented dataset whose inputs carry the last
// h telemetry frames (the Section 7 extension); h = 1 is the published
// SparseAdapt feature layout. It runs serially; use GenerateEngine to run
// the sweep points in parallel.
func GenerateH(sw SweepSpec, mode power.Mode, h int) (*Dataset, error) {
	return GenerateEngine(context.Background(), nil, sw, mode, h)
}

// sweepPoint is one independent unit of dataset generation: a (matrix
// dimension, density, bandwidth) cell of the Table 3 grid.
type sweepPoint struct {
	di, fi, bi int
}

// GenerateEngine runs the Table 3 sweep on the execution engine: kernel
// sources are built in parallel (one task per (dim, density) input), then
// every (input, bandwidth) sweep point searches its phases' best
// configurations over the widened action space — each candidate
// configuration measured on its own dataflow/format/scheduling variant —
// as one task. Each task derives its own RNG from the sweep seed and its
// grid coordinates rather than advancing a shared math/rand stream, and
// examples are concatenated in grid order — both are what make the dataset
// byte-identical at 1 and N workers. Sweep-point results are
// content-addressed by the full sweep parameters, so warmed caches skip
// the configuration searches entirely. A nil eng runs serially uncached.
func GenerateEngine(ctx context.Context, eng *engine.Engine, sw SweepSpec, mode power.Mode, h int) (*Dataset, error) {
	if h < 1 {
		h = 1
	}
	pins, err := sweepPins(sw)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Mode: mode, L1Type: sw.L1Type}

	// Phase 1: build the sweep inputs, one task per (dim, density). The
	// workload RNG is derived from the grid coordinates so the matrix is
	// independent of generation order. Traces are large and cheap to rebuild
	// relative to the searches, so workload tasks are not cached. Each task
	// also traces the source's natural variant so the phase-2 cache keys can
	// be computed without serial trace builds.
	type input struct{ di, fi int }
	var inputs []input
	for di := range sw.Dims {
		for fi := range sw.Densities {
			inputs = append(inputs, input{di, fi})
		}
	}
	wtasks := make([]engine.Task[*kernels.Source], len(inputs))
	for i, in := range inputs {
		in := in
		wtasks[i] = engine.Task[*kernels.Source]{Compute: func(ctx context.Context) (*kernels.Source, error) {
			rng := rand.New(rand.NewSource(engine.DeriveSeed(sw.Seed, 0x11, int64(in.di), int64(in.fi))))
			src, err := buildSource(sw, rng, sw.Dims[in.di], sw.Densities[in.fi])
			if err != nil {
				return nil, err
			}
			if _, err := src.Natural(); err != nil {
				return nil, err
			}
			return src, nil
		}}
	}
	sources, err := engine.Map(ctx, eng, wtasks)
	if err != nil {
		return nil, err
	}
	byInput := map[input]*kernels.Source{}
	for i, in := range inputs {
		byInput[in] = sources[i]
	}

	// Phase 2: run the best-configuration searches, one task per sweep
	// point, and stitch the example chunks back in grid order.
	var pts []sweepPoint
	for di := range sw.Dims {
		for fi := range sw.Densities {
			for bi := range sw.BandwidthsGBps {
				pts = append(pts, sweepPoint{di, fi, bi})
			}
		}
	}
	tasks := make([]engine.Task[[]Example], len(pts))
	for i, pt := range pts {
		pt := pt
		src := byInput[input{pt.di, pt.fi}]
		nat, err := src.Natural() // cached: traced by the phase-1 task
		if err != nil {
			return nil, err
		}
		key := engine.NewHasher("sparseadapt/trainer-point/v2").
			Str(sw.Kernel).Str(sw.PinDataflow).Str(sw.PinFormat).
			Int(sw.L1Type, int(mode), h).
			Int(sw.Chip.Tiles, sw.Chip.GPEsPerTile).
			F64(sw.EpochScale).Int(sw.Warmup, sw.Measure, sw.K).
			I64(sw.Seed).
			Int(sw.Dims[pt.di]).F64(sw.Densities[pt.fi]).F64(sw.BandwidthsGBps[pt.bi]).
			U64(nat.Trace.Fingerprint()).Sum()
		tasks[i] = engine.Task[[]Example]{Key: key, Compute: func(ctx context.Context) ([]Example, error) {
			rng := rand.New(rand.NewSource(engine.DeriveSeed(sw.Seed, 0x22, int64(pt.di), int64(pt.fi), int64(pt.bi))))
			ev, err := NewSourceEvaluator(sw.Chip, sw.BandwidthsGBps[pt.bi]*1e9, src, sw.EpochScale, sw.Warmup, sw.Measure)
			if err != nil {
				return nil, err
			}
			ev.Pins = pins
			// The search RNG seed does not depend on the mode, so the PP and
			// EE passes over one sweep point evaluate the same configurations;
			// the shared replay memo lets the second pass reuse the first
			// pass's simulations (results are byte-identical either way).
			ev.Memo = sim.SharedRunMemo()
			var out []Example
			for _, phase := range ev.Phases() {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				best, evals, err := ev.BestConfig(rng, sw.K, sw.L1Type, phase, mode)
				if err != nil {
					return nil, err
				}
				for _, e := range evals {
					var x []float64
					if h == 1 {
						x = core.BuildFeatures(e.Config, e.Counters)
					} else {
						x = core.BuildHistoryFeatures(e.Config, e.Window, h)
					}
					out = append(out, Example{X: x, Y: best})
				}
			}
			return out, nil
		}}
	}
	chunks, err := engine.Map(ctx, eng, tasks)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		ds.Examples = append(ds.Examples, c...)
	}
	if len(ds.Examples) == 0 {
		return nil, fmt.Errorf("trainer: sweep produced no examples")
	}
	return ds, nil
}

// Train fits one decision tree per runtime parameter on the dataset and
// returns the ensemble.
func Train(ds *Dataset, params ml.TreeParams) (*core.Ensemble, error) {
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}
	ens := &core.Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: ds.Mode}
	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
		}
		t, err := ml.TrainTree(x, y, params)
		if err != nil {
			return nil, fmt.Errorf("trainer: parameter %v: %w", p, err)
		}
		ens.Trees[p] = t
	}
	return ens, nil
}

// TrainCV grid-searches tree hyperparameters with k-fold cross-validation
// per parameter (the paper's methodology, Section 5.1) before fitting.
func TrainCV(ds *Dataset, depths, minLeafs []int, folds int) (*core.Ensemble, error) {
	x := make([][]float64, len(ds.Examples))
	for i, e := range ds.Examples {
		x[i] = e.X
	}
	ens := &core.Ensemble{Trees: map[config.Param]*ml.Tree{}, Mode: ds.Mode}
	for _, p := range config.RuntimeParams {
		y := make([]int, len(ds.Examples))
		for i, e := range ds.Examples {
			y[i] = e.Y[p]
		}
		best, _, err := ml.GridSearchTree(x, y, depths, minLeafs, folds, 1)
		if err != nil {
			return nil, err
		}
		t, err := ml.TrainTree(x, y, best)
		if err != nil {
			return nil, err
		}
		ens.Trees[p] = t
	}
	return ens, nil
}
