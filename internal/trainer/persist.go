package trainer

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
)

// SaveDataset writes the dataset to a JSON file.
func SaveDataset(path string, ds *Dataset) error {
	data, err := json.Marshal(ds)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDataset reads a dataset from a JSON file.
func LoadDataset(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{}
	if err := json.Unmarshal(data, ds); err != nil {
		return nil, fmt.Errorf("trainer: parsing %s: %w", path, err)
	}
	return ds, nil
}

// WriteCSV exports the dataset in the artifact's CSV layout (feature
// columns followed by one label column per runtime parameter).
func WriteCSV(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := core.FeatureNames()
	for _, p := range config.RuntimeParams {
		header = append(header, "best-"+p.String())
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, e := range ds.Examples {
		for i, v := range e.X {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		for j, p := range config.RuntimeParams {
			row[len(e.X)+j] = strconv.Itoa(e.Y[p])
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
