package trainer

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/power"
)

// gridSweep is a 2x2x1 grid small enough to simulate under -race but large
// enough to exercise multi-point stitching across workers.
func gridSweep() SweepSpec {
	return SweepSpec{
		Kernel:         "spmspv",
		L1Type:         config.CacheMode,
		Dims:           []int{64, 96},
		Densities:      []float64{0.08, 0.12},
		BandwidthsGBps: []float64{64},
		K:              4,
		Seed:           3,
		Chip:           chip,
		EpochScale:     0.2,
		Warmup:         1,
		Measure:        1,
	}
}

// TestGenerateDeterministicAcrossWorkers asserts dataset bytes are
// identical whether generated serially, with the nil engine, or with 4 or
// 8 workers — the per-task seed derivation must make worker count
// invisible. Run under -race in CI.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	sw := gridSweep()
	ref, err := GenerateEngine(context.Background(), nil, sw, power.EnergyEfficient, 1)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Examples) == 0 {
		t.Fatal("empty reference dataset")
	}
	for _, workers := range []int{1, 4, 8} {
		eng := engine.New(engine.Options{Workers: workers})
		ds, err := GenerateEngine(context.Background(), eng, sw, power.EnergyEfficient, 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refBytes) {
			t.Fatalf("dataset differs from serial reference at %d workers", workers)
		}
	}
}

// TestGenerateWarmCacheIdentical reruns generation against a warm cache and
// requires the stitched dataset to be byte-identical with zero misses on
// the second pass.
func TestGenerateWarmCacheIdentical(t *testing.T) {
	sw := gridSweep()
	cache, err := engine.NewCache(256, "")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 4, Cache: cache})
	cold, err := GenerateEngine(context.Background(), eng, sw, power.EnergyEfficient, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses, _ := cache.Counts()
	warm, err := GenerateEngine(context.Background(), eng, sw, power.EnergyEfficient, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cold)
	b, _ := json.Marshal(warm)
	if !bytes.Equal(a, b) {
		t.Fatal("warm-cache dataset differs from cold run")
	}
	if _, misses, _ := cache.Counts(); misses != coldMisses {
		t.Fatalf("warm run recomputed points: misses %d -> %d", coldMisses, misses)
	}
}

// TestGenerateEngineCancel verifies generation honours context cancellation.
func TestGenerateEngineCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateEngine(ctx, engine.New(engine.Options{Workers: 2}), gridSweep(), power.EnergyEfficient, 1); err == nil {
		t.Fatal("cancelled generation returned nil error")
	}
}
