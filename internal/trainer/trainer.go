// Package trainer implements the offline training pipeline of Sections 4.1,
// 4.2 and 5.1: it sweeps workload parameters (Table 3), searches for the
// "best" configuration of each program phase with the three-step
// random-sample → neighbour → dimension-sweep procedure, constructs the
// training dataset whose inputs include the current configuration (the
// paper's key departure from ProfileAdapt), and trains the per-parameter
// decision-tree ensemble.
package trainer

import (
	"context"
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Eval is the outcome of executing one program phase under one
// configuration: the objective metrics and the telemetry observed.
type Eval struct {
	Config   config.Config
	Metrics  power.Metrics
	Counters sim.Counters
	// Window holds the per-epoch telemetry of the measured window in
	// execution order, used by the history-based extension.
	Window []sim.Counters
}

// Evaluator runs a workload's phases under arbitrary configurations. Each
// evaluation uses a fresh (cold) machine, runs Warmup epochs to stabilize
// behaviour — the paper runs "until the program behavior stabilizes" — and
// measures the next Measure epochs.
type Evaluator struct {
	Chip       power.Chip
	BW         float64
	Workload   kernels.Workload
	EpochScale float64
	Warmup     int
	Measure    int

	// Pins, when non-empty, forces the given parameters to fixed values on
	// every configuration evaluated: the search still proposes candidates
	// over the full space, but each is projected onto the pinned axes
	// before simulation (and before caching), so e.g. a -dataflow/-format
	// sweep never leaves the requested kernel variant.
	Pins map[config.Param]int

	// Memo, when non-nil, memoizes the underlying epoch replays across
	// evaluators and callers (see sim.RunMemo). The per-instance cache
	// below already dedups identical (config, phase) queries within one
	// evaluator; the memo additionally dedups across evaluator instances —
	// e.g. the PP and EE dataset passes over one sweep point — with
	// byte-identical results.
	Memo *sim.RunMemo

	phases     []string
	epsByPhase map[string][]sim.EpochRange
	cache      map[cacheKey]Eval

	// Source-aware mode (NewSourceEvaluator): each configuration is
	// measured on its own kernel variant's trace, with phases mapped by
	// epoch index on the natural variant's work-aligned grid.
	src       *kernels.Source
	nEpochs   int
	phaseIdxs map[string][]int
}

type cacheKey struct {
	cfgIdx int
	phase  string
}

// NewEvaluator prepares an evaluator for one workload.
func NewEvaluator(chip power.Chip, bw float64, w kernels.Workload, epochScale float64, warmup, measure int) *Evaluator {
	if warmup < 0 {
		warmup = 0
	}
	if measure < 1 {
		measure = 1
	}
	ev := &Evaluator{
		Chip: chip, BW: bw, Workload: w, EpochScale: epochScale,
		Warmup: warmup, Measure: measure,
		epsByPhase: map[string][]sim.EpochRange{},
		cache:      map[cacheKey]Eval{},
	}
	for _, ep := range w.Epochs(epochScale) {
		if _, ok := ev.epsByPhase[ep.Phase]; !ok {
			ev.phases = append(ev.phases, ep.Phase)
		}
		ev.epsByPhase[ep.Phase] = append(ev.epsByPhase[ep.Phase], ep)
	}
	return ev
}

// NewSourceEvaluator prepares an evaluator over the widened action space:
// each configuration is measured on the trace of its own kernel variant
// (dataflow × format × scheduling), with phases and the epoch grid
// anchored to the source's natural variant so a phase covers the same
// fraction of the arithmetic work in every variant (sim.Trace.EpochsN).
func NewSourceEvaluator(chip power.Chip, bw float64, src *kernels.Source, epochScale float64, warmup, measure int) (*Evaluator, error) {
	nat, err := src.Natural()
	if err != nil {
		return nil, err
	}
	n := len(nat.Epochs(epochScale))
	if n == 0 {
		return nil, fmt.Errorf("trainer: source %s has no epochs", src.Name())
	}
	ev := NewEvaluator(chip, bw, nat, epochScale, warmup, measure)
	ev.src = src
	ev.nEpochs = n
	ev.phaseIdxs = map[string][]int{}
	// Phase names and ordering come from the natural variant's aligned
	// grid, replacing the budget-based grid built by NewEvaluator.
	ev.phases = nil
	for i, ep := range nat.Trace.EpochsN(n) {
		if _, ok := ev.phaseIdxs[ep.Phase]; !ok {
			ev.phases = append(ev.phases, ep.Phase)
		}
		ev.phaseIdxs[ep.Phase] = append(ev.phaseIdxs[ep.Phase], i)
	}
	return ev, nil
}

// Phases returns the workload's explicit phases in execution order.
func (ev *Evaluator) Phases() []string { return ev.phases }

// Eval measures phase under cfg (cached per configuration).
func (ev *Evaluator) Eval(cfg config.Config, phase string) (Eval, error) {
	for p, v := range ev.Pins {
		cfg[p] = v
	}
	key := cacheKey{cfg.Index(), phase}
	if e, ok := ev.cache[key]; ok {
		return e, nil
	}
	trace := ev.Workload.Trace
	var eps []sim.EpochRange
	if ev.src != nil {
		idxs, ok := ev.phaseIdxs[phase]
		if !ok {
			return Eval{}, fmt.Errorf("trainer: unknown phase %q", phase)
		}
		w, err := ev.src.Variant(cfg)
		if err != nil {
			return Eval{}, err
		}
		trace = w.Trace
		veps := trace.EpochsN(ev.nEpochs)
		for _, i := range idxs {
			if i < len(veps) {
				eps = append(eps, veps[i])
			}
		}
		if len(eps) == 0 {
			return Eval{}, fmt.Errorf("trainer: variant %s has no epochs for phase %q", w.Name, phase)
		}
	} else {
		var ok bool
		eps, ok = ev.epsByPhase[phase]
		if !ok {
			return Eval{}, fmt.Errorf("trainer: unknown phase %q", phase)
		}
	}
	warm := ev.Warmup
	if warm >= len(eps) {
		warm = len(eps) - 1
	}
	limit := warm + ev.Measure
	if limit > len(eps) {
		limit = len(eps)
	}
	rs, err := sim.RunEpochs(context.Background(), ev.Memo, ev.Chip, ev.BW, cfg, trace, eps[:limit])
	if err != nil {
		return Eval{}, err
	}
	var met power.Metrics
	cs := make([]sim.Counters, 0, limit-warm)
	for _, r := range rs[warm:] {
		met.Add(r.Metrics)
		cs = append(cs, r.Counters)
	}
	e := Eval{Config: cfg, Metrics: met, Counters: sim.AverageCounters(cs), Window: cs}
	ev.cache[key] = e
	return e, nil
}

// BestConfig performs the three-step search of Section 4.1 for the given
// phase: (1) evaluate K random configurations, (2) evaluate the best one's
// hyper-sphere neighbours, (3) sweep each runtime dimension independently
// from the neighbourhood optimum and combine the per-dimension winners
// under the conditional-independence assumption. It returns the final
// configuration and every evaluation performed along the way.
func (ev *Evaluator) BestConfig(rng *rand.Rand, k, l1Type int, phase string, mode power.Mode) (config.Config, []Eval, error) {
	score := func(e Eval) float64 { return e.Metrics.Score(mode) }
	var all []Eval

	evalOne := func(cfg config.Config) (Eval, error) {
		e, err := ev.Eval(cfg, phase)
		if err != nil {
			return Eval{}, err
		}
		all = append(all, e)
		return e, nil
	}

	// Step 1: random sampling.
	best := Eval{Metrics: power.Metrics{}}
	bestSet := false
	for _, cfg := range config.Sample(rng, k, l1Type) {
		e, err := evalOne(cfg)
		if err != nil {
			return config.Config{}, nil, err
		}
		if !bestSet || score(e) > score(best) {
			best, bestSet = e, true
		}
	}
	if !bestSet {
		return config.Config{}, nil, fmt.Errorf("trainer: empty sample")
	}

	// Step 2: neighbour evaluation.
	for _, cfg := range config.Neighbors(best.Config) {
		e, err := evalOne(cfg)
		if err != nil {
			return config.Config{}, nil, err
		}
		if score(e) > score(best) {
			best = e
		}
	}

	// Step 3: independent dimension sweeps from the neighbourhood optimum.
	final := best.Config
	for _, p := range config.RuntimeParams {
		bestV, bestS := best.Config[p], -1.0
		for _, cfg := range config.Sweep(best.Config, p) {
			e, err := evalOne(cfg)
			if err != nil {
				return config.Config{}, nil, err
			}
			if s := score(e); s > bestS {
				bestV, bestS = cfg[p], s
			}
		}
		final[p] = bestV
	}
	return final, all, nil
}
