// Package trainer implements the offline training pipeline of Sections 4.1,
// 4.2 and 5.1: it sweeps workload parameters (Table 3), searches for the
// "best" configuration of each program phase with the three-step
// random-sample → neighbour → dimension-sweep procedure, constructs the
// training dataset whose inputs include the current configuration (the
// paper's key departure from ProfileAdapt), and trains the per-parameter
// decision-tree ensemble.
package trainer

import (
	"context"
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// Eval is the outcome of executing one program phase under one
// configuration: the objective metrics and the telemetry observed.
type Eval struct {
	Config   config.Config
	Metrics  power.Metrics
	Counters sim.Counters
	// Window holds the per-epoch telemetry of the measured window in
	// execution order, used by the history-based extension.
	Window []sim.Counters
}

// Evaluator runs a workload's phases under arbitrary configurations. Each
// evaluation uses a fresh (cold) machine, runs Warmup epochs to stabilize
// behaviour — the paper runs "until the program behavior stabilizes" — and
// measures the next Measure epochs.
type Evaluator struct {
	Chip       power.Chip
	BW         float64
	Workload   kernels.Workload
	EpochScale float64
	Warmup     int
	Measure    int

	// Memo, when non-nil, memoizes the underlying epoch replays across
	// evaluators and callers (see sim.RunMemo). The per-instance cache
	// below already dedups identical (config, phase) queries within one
	// evaluator; the memo additionally dedups across evaluator instances —
	// e.g. the PP and EE dataset passes over one sweep point — with
	// byte-identical results.
	Memo *sim.RunMemo

	phases     []string
	epsByPhase map[string][]sim.EpochRange
	cache      map[cacheKey]Eval
}

type cacheKey struct {
	cfgIdx int
	phase  string
}

// NewEvaluator prepares an evaluator for one workload.
func NewEvaluator(chip power.Chip, bw float64, w kernels.Workload, epochScale float64, warmup, measure int) *Evaluator {
	if warmup < 0 {
		warmup = 0
	}
	if measure < 1 {
		measure = 1
	}
	ev := &Evaluator{
		Chip: chip, BW: bw, Workload: w, EpochScale: epochScale,
		Warmup: warmup, Measure: measure,
		epsByPhase: map[string][]sim.EpochRange{},
		cache:      map[cacheKey]Eval{},
	}
	for _, ep := range w.Epochs(epochScale) {
		if _, ok := ev.epsByPhase[ep.Phase]; !ok {
			ev.phases = append(ev.phases, ep.Phase)
		}
		ev.epsByPhase[ep.Phase] = append(ev.epsByPhase[ep.Phase], ep)
	}
	return ev
}

// Phases returns the workload's explicit phases in execution order.
func (ev *Evaluator) Phases() []string { return ev.phases }

// Eval measures phase under cfg (cached per configuration).
func (ev *Evaluator) Eval(cfg config.Config, phase string) (Eval, error) {
	key := cacheKey{cfg.Index(), phase}
	if e, ok := ev.cache[key]; ok {
		return e, nil
	}
	eps, ok := ev.epsByPhase[phase]
	if !ok {
		return Eval{}, fmt.Errorf("trainer: unknown phase %q", phase)
	}
	warm := ev.Warmup
	if warm >= len(eps) {
		warm = len(eps) - 1
	}
	limit := warm + ev.Measure
	if limit > len(eps) {
		limit = len(eps)
	}
	rs, err := sim.RunEpochs(context.Background(), ev.Memo, ev.Chip, ev.BW, cfg, ev.Workload.Trace, eps[:limit])
	if err != nil {
		return Eval{}, err
	}
	var met power.Metrics
	cs := make([]sim.Counters, 0, limit-warm)
	for _, r := range rs[warm:] {
		met.Add(r.Metrics)
		cs = append(cs, r.Counters)
	}
	e := Eval{Config: cfg, Metrics: met, Counters: sim.AverageCounters(cs), Window: cs}
	ev.cache[key] = e
	return e, nil
}

// BestConfig performs the three-step search of Section 4.1 for the given
// phase: (1) evaluate K random configurations, (2) evaluate the best one's
// hyper-sphere neighbours, (3) sweep each runtime dimension independently
// from the neighbourhood optimum and combine the per-dimension winners
// under the conditional-independence assumption. It returns the final
// configuration and every evaluation performed along the way.
func (ev *Evaluator) BestConfig(rng *rand.Rand, k, l1Type int, phase string, mode power.Mode) (config.Config, []Eval, error) {
	score := func(e Eval) float64 { return e.Metrics.Score(mode) }
	var all []Eval

	evalOne := func(cfg config.Config) (Eval, error) {
		e, err := ev.Eval(cfg, phase)
		if err != nil {
			return Eval{}, err
		}
		all = append(all, e)
		return e, nil
	}

	// Step 1: random sampling.
	best := Eval{Metrics: power.Metrics{}}
	bestSet := false
	for _, cfg := range config.Sample(rng, k, l1Type) {
		e, err := evalOne(cfg)
		if err != nil {
			return config.Config{}, nil, err
		}
		if !bestSet || score(e) > score(best) {
			best, bestSet = e, true
		}
	}
	if !bestSet {
		return config.Config{}, nil, fmt.Errorf("trainer: empty sample")
	}

	// Step 2: neighbour evaluation.
	for _, cfg := range config.Neighbors(best.Config) {
		e, err := evalOne(cfg)
		if err != nil {
			return config.Config{}, nil, err
		}
		if score(e) > score(best) {
			best = e
		}
	}

	// Step 3: independent dimension sweeps from the neighbourhood optimum.
	final := best.Config
	for _, p := range config.RuntimeParams {
		bestV, bestS := best.Config[p], -1.0
		for _, cfg := range config.Sweep(best.Config, p) {
			e, err := evalOne(cfg)
			if err != nil {
				return config.Config{}, nil, err
			}
			if s := score(e); s > bestS {
				bestV, bestS = cfg[p], s
			}
		}
		final[p] = bestV
	}
	return final, all, nil
}
