package trainer

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(tinySweep("spmspv"), power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ds.Mode || got.L1Type != ds.L1Type || len(got.Examples) != len(ds.Examples) {
		t.Fatalf("metadata lost: %+v vs %+v", got.Mode, ds.Mode)
	}
	for i := range ds.Examples {
		if got.Examples[i].Y != ds.Examples[i].Y {
			t.Fatalf("label %d changed", i)
		}
		for j := range ds.Examples[i].X {
			if got.Examples[i].X[j] != ds.Examples[i].X[j] {
				t.Fatalf("feature (%d,%d) changed", i, j)
			}
		}
	}
	// A model trained on the reloaded dataset behaves identically.
	a, err := Train(ds, ml.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(got, ml.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	probe := core.BuildFeatures(config.Baseline, sim.Counters{ClockMHz: 1000, MemReadUtil: 0.9})
	for _, p := range config.RuntimeParams {
		if a.Trees[p].Predict(probe) != b.Trees[p].Predict(probe) {
			t.Fatalf("parameter %v predicts differently after round trip", p)
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestWriteCSVLayout(t *testing.T) {
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := WriteCSV(path, ds); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	wantCols := core.NumFeatures + len(config.RuntimeParams)
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d", len(header), wantCols)
	}
	if header[0] != "cfg-l1-share" || header[len(header)-1] != "best-sched" {
		t.Fatalf("header boundaries wrong: %s ... %s", header[0], header[len(header)-1])
	}
	rows := 0
	for sc.Scan() {
		if cols := strings.Count(sc.Text(), ",") + 1; cols != wantCols {
			t.Fatalf("row %d has %d columns", rows, cols)
		}
		rows++
	}
	if rows != len(ds.Examples) {
		t.Fatalf("CSV rows %d, examples %d", rows, len(ds.Examples))
	}
}

func TestEnsemblePersistRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	ens, err := Train(ds, ml.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := core.SaveEnsemble(path, ens); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadEnsemble(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ens.Mode || len(got.Trees) != len(ens.Trees) {
		t.Fatalf("ensemble shape lost")
	}
	// Identical predictions across a grid of probe inputs.
	for clk := 0; clk < 6; clk++ {
		cfg := config.Baseline
		cfg[config.Clock] = clk
		for _, util := range []float64{0, 0.5, 1} {
			c := sim.Counters{ClockMHz: cfg.ClockMHz(), MemReadUtil: util, GPEIPC: 0.01}
			if got.Predict(cfg, c) != ens.Predict(cfg, c) {
				t.Fatalf("prediction changed after round trip (clk=%d util=%v)", clk, util)
			}
		}
	}
	// Gini importances survive.
	for _, p := range config.RuntimeParams {
		a, b := ens.Importance(p), got.Importance(p)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("importance %v[%d] changed", p, i)
			}
		}
	}
}

func TestLoadEnsembleErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := core.LoadEnsemble(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"mode":0,"trees":{"bogus-param":{"nodes":[{"f":-1}] ,"n_features":1,"n_classes":1}}}`), 0o644)
	if _, err := core.LoadEnsemble(bad); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}
