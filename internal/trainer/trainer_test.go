package trainer

import (
	"math/rand"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

var chip = power.Chip{Tiles: 2, GPEsPerTile: 8}

func smallWorkload(t *testing.T, kernel string, seed int64) kernels.Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	am := matrix.Uniform(rng, 96, 96, 900)
	a := am.ToCSC()
	switch kernel {
	case "spmspm":
		_, w, _ := kernels.SpMSpM(a, am.ToCSR(), chip.NGPE(), chip.Tiles)
		return w
	default:
		x := matrix.RandomVec(rng, 96, 0.5)
		_, w, _ := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
		return w
	}
}

func TestEvaluatorPhases(t *testing.T) {
	w := smallWorkload(t, "spmspm", 1)
	ev := NewEvaluator(chip, sim.DefaultBandwidth, w, 0.05, 1, 2)
	ph := ev.Phases()
	if len(ph) != 2 || ph[0] != "multiply" || ph[1] != "merge" {
		t.Fatalf("phases %v", ph)
	}
}

func TestEvaluatorDeterministicAndCached(t *testing.T) {
	w := smallWorkload(t, "spmspv", 2)
	ev := NewEvaluator(chip, sim.DefaultBandwidth, w, 0.1, 1, 2)
	phase := ev.Phases()[0]
	a, err := ev.Eval(config.Baseline, phase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Eval(config.Baseline, phase)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatal("cached evaluation differs")
	}
	ev2 := NewEvaluator(chip, sim.DefaultBandwidth, w, 0.1, 1, 2)
	c, err := ev2.Eval(config.Baseline, phase)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != c.Metrics {
		t.Fatal("evaluation not deterministic across evaluators")
	}
	if _, err := ev.Eval(config.Baseline, "nope"); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

func TestBestConfigImprovesOnAverage(t *testing.T) {
	w := smallWorkload(t, "spmspv", 3)
	ev := NewEvaluator(chip, sim.DefaultBandwidth, w, 0.1, 1, 2)
	phase := ev.Phases()[0]
	rng := rand.New(rand.NewSource(7))
	best, evals, err := ev.BestConfig(rng, 8, config.CacheMode, phase, power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Valid() || best[config.L1Type] != config.CacheMode {
		t.Fatalf("bad best config %v", best)
	}
	if len(evals) < 8 {
		t.Fatalf("too few evaluations recorded: %d", len(evals))
	}
	// The combined sweep point must score at least as well as the mean of
	// the random samples.
	bestEval, err := ev.Eval(best, phase)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, e := range evals[:8] {
		mean += e.Metrics.Score(power.EnergyEfficient)
	}
	mean /= 8
	if bestEval.Metrics.Score(power.EnergyEfficient) < mean {
		t.Fatalf("search result (%v) worse than random mean (%v)",
			bestEval.Metrics.Score(power.EnergyEfficient), mean)
	}
}

func TestDefaultSweepShapes(t *testing.T) {
	for _, k := range []string{"spmspm", "spmspv"} {
		sw := DefaultSweep(k, config.CacheMode, 0.1)
		if len(sw.Dims) == 0 || len(sw.Densities) == 0 || len(sw.BandwidthsGBps) == 0 {
			t.Fatalf("%s: empty sweep %+v", k, sw)
		}
		if sw.K < 4 {
			t.Fatalf("%s: K too small", k)
		}
	}
}

func tinySweep(kernel string) SweepSpec {
	return SweepSpec{
		Kernel: kernel, L1Type: config.CacheMode,
		Dims: []int{64}, Densities: []float64{0.03},
		BandwidthsGBps: []float64{1},
		K:              4, Seed: 1, Chip: chip,
		EpochScale: 0.05, Warmup: 1, Measure: 2,
	}
}

func TestGenerateAndTrain(t *testing.T) {
	ds, err := Generate(tinySweep("spmspv"), power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Examples) < 20 {
		t.Fatalf("too few examples: %d", len(ds.Examples))
	}
	for _, e := range ds.Examples {
		if len(e.X) != core.NumFeatures {
			t.Fatalf("feature width %d", len(e.X))
		}
		if !e.Y.Valid() {
			t.Fatalf("invalid label %v", e.Y)
		}
	}
	ens, err := Train(ds, ml.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range config.RuntimeParams {
		if ens.Trees[p] == nil {
			t.Fatalf("missing tree for %v", p)
		}
	}
	// Predictions must be valid configurations preserving L1 type.
	got := ens.Predict(config.Baseline, sim.Counters{ClockMHz: 1000})
	if !got.Valid() || got[config.L1Type] != config.CacheMode {
		t.Fatalf("bad prediction %v", got)
	}
}

func TestGenerateUnknownKernel(t *testing.T) {
	sw := tinySweep("nope")
	if _, err := Generate(sw, power.EnergyEfficient); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestTrainCV(t *testing.T) {
	ds, err := Generate(tinySweep("spmspv"), power.PowerPerformance)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := TrainCV(ds, []int{4, 8}, []int{1, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Trees) != len(config.RuntimeParams) {
		t.Fatalf("tree count %d", len(ens.Trees))
	}
	if ens.Mode != power.PowerPerformance {
		t.Fatal("mode not preserved")
	}
}

// End-to-end: a model trained on a small sweep should steer the controller
// to a better efficiency score than the static baseline on a memory-bound
// input it has not seen.
func TestTrainedModelBeatsBaseline(t *testing.T) {
	ds, err := Generate(SweepSpec{
		Kernel: "spmspv", L1Type: config.CacheMode,
		Dims: []int{64, 128}, Densities: []float64{0.02, 0.08},
		BandwidthsGBps: []float64{0.5, 1, 4},
		K:              6, Seed: 2, Chip: chip,
		EpochScale: 0.05, Warmup: 1, Measure: 2,
	}, power.EnergyEfficient)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := Train(ds, ml.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload(t, "spmspv", 99)
	static := core.RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, 0.05)
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	ctl := core.NewController(ens, core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: 0.05})
	dyn := ctl.Run(m, w)
	sS := static.Total.Score(power.EnergyEfficient)
	sD := dyn.Total.Score(power.EnergyEfficient)
	if sD < sS*0.95 {
		t.Fatalf("trained SparseAdapt (%.3g) clearly worse than Baseline (%.3g)", sD, sS)
	}
	t.Logf("efficiency gain over baseline: %.2fx (reconfigs %d)", sD/sS, dyn.Reconfig)
}
