// Package store is the durability layer of the simulation job server: an
// append-only, checksummed JSONL write-ahead journal of job lifecycle
// events plus a periodically compacted snapshot, so a daemon crash (power
// loss, kill -9, OOM) loses no accepted job. The server journals every
// transition — accepted → running → attempt-failed → done / failed /
// canceled / quarantined — with an fsync after each record, and on boot
// replays snapshot + journal into a fold of per-job states: terminal jobs
// are resurfaced with their persisted results, non-terminal jobs are
// re-queued and re-executed (safe, because execution is deterministic per
// task seed and the content-addressed engine cache makes re-runs cheap).
//
// Corruption semantics match what a crash can actually produce: a torn
// final record (the write that died with the process) is tolerated and
// truncated away, while a corrupt record in the middle of the journal —
// which a crash cannot produce, only bit rot or foreign writes can — is a
// hard error, because silently skipping it could resurrect stale state.
// Snapshots are written whole (temp file + fsync + rename + directory
// fsync) and never appended to, so there the tolerance is zero: any
// invalid snapshot record is a hard error.
//
// The package depends only on the standard library; the server layers its
// own wire types on top via json.RawMessage payloads, so the store never
// imports (and cannot cycle with) package server.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record types, mirroring the job lifecycle. A Snapshot record carries a
// whole folded JobState and only appears in compacted snapshots.
const (
	RecAccepted      = "accepted"
	RecRunning       = "running"
	RecAttemptFailed = "attempt_failed"
	RecDone          = "done"
	RecFailed        = "failed"
	RecCanceled      = "canceled"
	RecQuarantined   = "quarantined"
	RecSnapshot      = "snapshot"
)

// Job states as the fold reports them. Queued and Running are the
// non-terminal states a recovery re-executes.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateQuarantined = "quarantined"
)

// Record is one journal entry. Request and Result are opaque payloads
// owned by the caller (the server stores its wire types there); the store
// only carries them through replay.
type Record struct {
	Seq     int64     `json:"seq"`
	Time    time.Time `json:"time"`
	Type    string    `json:"type"`
	JobID   string    `json:"job,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Error   string    `json:"error,omitempty"`

	Request  json.RawMessage `json:"request,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`

	// RequestID is the submission's trace identifier (X-Request-ID),
	// carried on acceptance records so a recovered job keeps its identity
	// across restarts.
	RequestID string `json:"request_id,omitempty"`

	// State is the folded job state a Snapshot record carries.
	State *JobState `json:"state,omitempty"`
}

// JobState is the fold of one job's records: its latest known lifecycle
// state plus everything needed to resurface (terminal) or re-execute
// (non-terminal) it after a restart.
type JobState struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Attempts  int             `json:"attempts,omitempty"`
	LastError string          `json:"last_error,omitempty"`
	Request   json.RawMessage `json:"request,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	RequestID string          `json:"request_id,omitempty"`
	Accepted  time.Time       `json:"accepted"`
	Finished  time.Time       `json:"finished,omitempty"`
}

// Terminal reports whether the state needs no further execution.
func (j JobState) Terminal() bool {
	switch j.State {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return true
	}
	return false
}

// Stats counts the store's activity since Open.
type Stats struct {
	// Appends and Compactions count successful operations.
	Appends, Compactions int64
	// Replayed counts the records recovered at Open (snapshot + journal).
	Replayed int64
	// TruncatedTail reports that Open found and discarded a torn final
	// record — the expected signature of a crash mid-append.
	TruncatedTail bool
}

// ErrCorrupt marks a journal with an invalid record before its final one —
// damage a crash cannot explain. Callers should refuse to run on it rather
// than risk resurrecting stale job state.
var ErrCorrupt = errors.New("store: journal corrupt")

// Store is the durable journal. All methods are safe for concurrent use;
// Append is serialized internally (one fsync per record, in order).
type Store struct {
	dir string

	// CompactEvery triggers automatic compaction after that many appends
	// (default 4096; set before concurrent use).
	CompactEvery int
	// FaultHook, when non-nil, is consulted before every journal write with
	// the operation name ("append", "compact"); a returned error aborts the
	// write. It exists for chaos injection and must be set before use.
	FaultHook func(op string) error

	mu      sync.Mutex
	f       *os.File
	nextSeq int64
	fold    map[string]*JobState
	order   []string // first-seen acceptance order
	appends int      // since last compaction
	stats   Stats
}

func (s *Store) journalPath() string  { return filepath.Join(s.dir, "journal.jsonl") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.jsonl") }

// Open loads (or creates) the store in dir, replaying snapshot and journal
// into the in-memory fold and truncating a torn journal tail. A corrupt
// mid-file journal record — or any invalid snapshot record, since
// snapshots are written whole and can have no torn tail — fails with
// ErrCorrupt.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, CompactEvery: 4096, fold: map[string]*JobState{}}

	// Snapshots are produced atomically (temp file + rename) and never
	// appended to, so an invalid record anywhere in one is real corruption
	// (or a failed compaction), never a tolerable crash artifact.
	snapRecs, _, _, err := readRecords(s.snapshotPath(), false)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", filepath.Base(s.snapshotPath()), err)
	}
	// The journal is append-only: a torn final record is the expected
	// signature of a crash mid-append and is tolerated, then truncated
	// away below. The same parse yields the valid byte offset, so the file
	// is read exactly once.
	jourRecs, valid, truncated, err := readRecords(s.journalPath(), true)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", filepath.Base(s.journalPath()), err)
	}
	s.stats.TruncatedTail = truncated
	for _, recs := range [][]Record{snapRecs, jourRecs} {
		for _, rec := range recs {
			s.apply(rec)
			if rec.Seq >= s.nextSeq {
				s.nextSeq = rec.Seq + 1
			}
			s.stats.Replayed++
		}
	}

	// Re-open the journal for appending, dropping any torn tail first so
	// new records start on a clean line boundary.
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	return s, nil
}

// Jobs returns every folded job state in acceptance order.
func (s *Store) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		if js, ok := s.fold[id]; ok {
			out = append(out, *js)
		}
	}
	return out
}

// Stats returns the store's activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Append journals one record: assign sequence number, write, fsync, fold.
// The record is durable — and only then visible in the fold — when Append
// returns nil.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	if s.FaultHook != nil {
		if err := s.FaultHook("append"); err != nil {
			return err
		}
	}
	rec.Seq = s.nextSeq
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.nextSeq++
	s.apply(rec)
	s.stats.Appends++
	s.appends++
	if s.CompactEvery > 0 && s.appends >= s.CompactEvery {
		s.compactLocked() //nolint:errcheck // best-effort; journal remains authoritative
	}
	return nil
}

// Forget drops a job from the fold (and, after the next compaction, from
// disk). The server calls it when evicting old terminal jobs, so the
// snapshot stays bounded by the server's retention policy.
func (s *Store) Forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.fold[id]; !ok {
		return
	}
	delete(s.fold, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Compact writes the current fold to the snapshot (atomically, via temp
// file + rename) and truncates the journal. Crash-safe: the journal is only
// truncated after the snapshot is durable, so a crash between the two
// replays both — and replaying a snapshot plus the journal that produced it
// folds to the same state (replay is idempotent).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.f == nil {
		return errors.New("store: closed")
	}
	if s.FaultHook != nil {
		if err := s.FaultHook("compact"); err != nil {
			return err
		}
	}
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, id := range s.order {
		js, ok := s.fold[id]
		if !ok {
			continue
		}
		state := *js
		line, err := encodeLine(Record{Seq: s.nextSeq, Time: time.Now().UTC(), Type: RecSnapshot, JobID: id, State: &state})
		if err == nil {
			_, err = w.Write(line)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact: %w", err)
		}
		s.nextSeq++
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	// The rename itself must be durable before the journal shrinks: without
	// the directory fsync a crash could persist the truncation (made
	// durable by the next per-append fsync) while the rename is lost,
	// dropping snapshot and journal at once.
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: compact: syncing dir: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: truncating journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.appends = 0
	s.stats.Compactions++
	return nil
}

// Close compacts and releases the journal. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	cerr := s.compactLocked()
	err := s.f.Close()
	s.f = nil
	if cerr != nil {
		return cerr
	}
	return err
}

// apply folds one record into the per-job state. Caller holds s.mu (or is
// single-threaded during Open). Unknown record types and records for
// unknown jobs degrade gracefully: the fold tracks the most conservative
// consistent state.
func (s *Store) apply(rec Record) {
	if rec.Type == RecSnapshot {
		if rec.State == nil || rec.State.ID == "" {
			return
		}
		st := *rec.State
		if _, ok := s.fold[st.ID]; !ok {
			s.order = append(s.order, st.ID)
		}
		s.fold[st.ID] = &st
		return
	}
	if rec.JobID == "" {
		return
	}
	js, ok := s.fold[rec.JobID]
	if !ok {
		js = &JobState{ID: rec.JobID, State: StateQueued, Accepted: rec.Time}
		s.fold[rec.JobID] = js
		s.order = append(s.order, rec.JobID)
	}
	switch rec.Type {
	case RecAccepted:
		js.State = StateQueued
		js.Request = rec.Request
		js.RequestID = rec.RequestID
		js.Accepted = rec.Time
	case RecRunning:
		js.State = StateRunning
		js.Attempts = rec.Attempt
	case RecAttemptFailed:
		// The attempt failed but the job is still live: it will be retried
		// (or quarantined, which writes its own record).
		js.State = StateQueued
		js.Attempts = rec.Attempt
		js.LastError = rec.Error
	case RecDone:
		js.State = StateDone
		js.Result = rec.Result
		js.CacheHit = rec.CacheHit
		js.LastError = ""
		js.Finished = rec.Time
	case RecFailed, RecCanceled, RecQuarantined:
		js.State = map[string]string{
			RecFailed:      StateFailed,
			RecCanceled:    StateCanceled,
			RecQuarantined: StateQuarantined,
		}[rec.Type]
		js.LastError = rec.Error
		js.Finished = rec.Time
	}
}

// journalLine frames one record on disk: the record JSON plus a CRC-32C of
// exactly those bytes. A record is valid iff its line parses and the
// checksum matches — anything else is a torn or corrupted write.
type journalLine struct {
	Sum string          `json:"sum"`
	Rec json.RawMessage `json:"rec"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func encodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	line, err := json.Marshal(journalLine{
		Sum: fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable)),
		Rec: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding line: %w", err)
	}
	return append(line, '\n'), nil
}

func decodeLine(data []byte) (Record, error) {
	var jl journalLine
	if err := json.Unmarshal(data, &jl); err != nil {
		return Record{}, err
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(jl.Rec, crcTable)); got != jl.Sum {
		return Record{}, fmt.Errorf("checksum mismatch (%s != %s)", got, jl.Sum)
	}
	var rec Record
	if err := json.Unmarshal(jl.Rec, &rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readRecords parses a record file. It returns the valid records, the
// byte offset up to which the file is valid, and whether an invalid final
// record was tolerated as a torn tail. With tolerateTail (journals, which
// a crash can leave mid-append) only the final record may be invalid; an
// earlier invalid record — or, without tolerateTail (snapshots, written
// whole), any invalid record at all — fails with ErrCorrupt.
func readRecords(path string, tolerateTail bool) (recs []Record, valid int64, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	offset := int64(0)
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		}
		consumed := int64(len(line))
		if rest != nil {
			consumed++ // the newline
		}
		if len(bytes.TrimSpace(line)) == 0 {
			offset += consumed
			data = rest
			continue
		}
		rec, derr := decodeLine(line)
		if derr != nil {
			// A bad record is only tolerable as a journal's torn tail: no
			// complete (newline-terminated) valid record may follow it.
			if tolerateTail && (rest == nil || len(bytes.TrimSpace(rest)) == 0) {
				return recs, offset, true, nil
			}
			return nil, 0, false, fmt.Errorf("%w: record %d: %v", ErrCorrupt, len(recs), derr)
		}
		recs = append(recs, rec)
		offset += consumed
		data = rest
	}
	return recs, offset, false, nil
}
