package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustAppend(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatalf("append %+v: %v", rec, err)
	}
}

// lifecycle journals a full accepted→running→done sequence for id.
func lifecycle(t *testing.T, s *Store, id string, result string) {
	t.Helper()
	mustAppend(t, s, Record{Type: RecAccepted, JobID: id, Request: json.RawMessage(`{"mode":"static"}`)})
	mustAppend(t, s, Record{Type: RecRunning, JobID: id, Attempt: 1})
	mustAppend(t, s, Record{Type: RecDone, JobID: id, Result: json.RawMessage(result)})
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, s, "job-000001", `{"epochs":4}`)
	mustAppend(t, s, Record{Type: RecAccepted, JobID: "job-000002", Request: json.RawMessage(`{"mode":"adaptive"}`)})
	mustAppend(t, s, Record{Type: RecRunning, JobID: "job-000002", Attempt: 1})
	mustAppend(t, s, Record{Type: RecAttemptFailed, JobID: "job-000002", Attempt: 1, Error: "boom"})
	want := s.Jobs()

	// Reopen without Close — the crash path — and compare the fold.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Jobs()
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("replayed fold differs:\n got %+v\nwant %+v", got, want)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(got))
	}
	if got[0].State != StateDone || string(got[0].Result) != `{"epochs":4}` {
		t.Errorf("job 1 = %+v, want done with result", got[0])
	}
	if got[1].State != StateQueued || got[1].Attempts != 1 || got[1].LastError != "boom" {
		t.Errorf("job 2 = %+v, want queued attempt 1 after failure", got[1])
	}
	if got[1].Terminal() {
		t.Error("a retrying job must not be terminal")
	}
}

// normalize zeroes timestamps, which legitimately differ between the
// original fold (append times) and a replayed one only in monotonic parts.
func normalize(jobs []JobState) []JobState {
	out := make([]JobState, len(jobs))
	for i, j := range jobs {
		j.Accepted = time.Time{}
		j.Finished = time.Time{}
		out[i] = j
	}
	return out
}

// TestTruncatedTailTolerated cuts the journal mid-way through its final
// record — what a crash during an append leaves behind — and checks Open
// recovers every complete record, reports the truncation, and appends
// cleanly afterwards.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, s, "job-000001", `{}`)
	mustAppend(t, s, Record{Type: RecAccepted, JobID: "job-000002"})
	path := s.journalPath()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record in half (drop its newline and tail bytes).
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if !s2.Stats().TruncatedTail {
		t.Error("stats must report the truncated tail")
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "job-000001" {
		t.Fatalf("jobs after torn tail = %+v, want only job-000001", jobs)
	}
	// The torn bytes are gone: appending and reopening must succeed.
	mustAppend(t, s2, Record{Type: RecAccepted, JobID: "job-000003"})
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Jobs(); len(got) != 2 || got[1].ID != "job-000003" {
		t.Errorf("jobs after post-truncation append = %+v", got)
	}
}

// TestCorruptMidFileRejected flips bytes in a record that is NOT the last
// one. That damage pattern cannot come from a crash, so Open must refuse
// rather than silently drop state.
func TestCorruptMidFileRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		lifecycle(t, s, id, `{}`)
	}
	path := s.journalPath()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mid := len(lines) / 2
	lines[mid] = strings.Replace(lines[mid], `"type"`, `"tXpe"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-file corruption = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotCorruptionRejected tears the snapshot's final record in
// half. In the journal that pattern is a tolerable crash artifact, but
// snapshots are written whole via temp-file + rename and never appended
// to, so a bad tail there is real corruption (or a failed compaction) and
// Open must refuse instead of silently dropping the last job's state.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, s, "job-000001", `{}`)
	lifecycle(t, s, "job-000002", `{}`)
	if err := s.Close(); err != nil { // Close compacts into the snapshot
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with torn snapshot tail = %v, want ErrCorrupt", err)
	}
}

// TestReplayIdempotence opens the same store twice without writes and once
// more after a compaction: all three folds must be identical. Replaying a
// snapshot plus the journal that produced it is the same as replaying once.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, s, "job-000001", `{"epochs":7}`)
	mustAppend(t, s, Record{Type: RecAccepted, JobID: "job-000002"})
	mustAppend(t, s, Record{Type: RecQuarantined, JobID: "job-000002", Error: "poisoned"})

	first, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Jobs(), second.Jobs()) {
		t.Error("two replays of the same files disagree")
	}
	// Compact (snapshot + empty journal) and replay again.
	if err := second.Compact(); err != nil {
		t.Fatal(err)
	}
	third, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(first.Jobs()), normalize(third.Jobs())) {
		t.Errorf("post-compaction replay differs:\n got %+v\nwant %+v", third.Jobs(), first.Jobs())
	}
	if third.Jobs()[1].State != StateQuarantined {
		t.Errorf("job 2 state = %s, want quarantined", third.Jobs()[1].State)
	}
}

// TestAutoCompaction checks the journal is folded into the snapshot once
// CompactEvery appends accumulate, and that nothing is lost across it.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactEvery = 6
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		lifecycle(t, s, id, `{}`)
	}
	if got := s.Stats().Compactions; got == 0 {
		t.Fatal("no compaction after 9 appends with CompactEvery=6")
	}
	info, err := os.Stat(filepath.Join(dir, "snapshot.jsonl"))
	if err != nil || info.Size() == 0 {
		t.Fatalf("snapshot missing or empty: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Jobs(); len(got) != 3 || got[2].State != StateDone {
		t.Errorf("jobs after compaction replay = %+v", got)
	}
}

// TestForgetDropsAfterCompaction mirrors the server's retention eviction.
func TestForgetDropsAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, s, "job-000001", `{}`)
	lifecycle(t, s, "job-000002", `{}`)
	s.Forget("job-000001")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Jobs(); len(got) != 1 || got[0].ID != "job-000002" {
		t.Errorf("jobs after forget+close = %+v, want only job-000002", got)
	}
}

// TestFaultHookBlocksAppends proves a failing journal write reports the
// error to the caller and leaves the fold untouched (no phantom jobs).
func TestFaultHookBlocksAppends(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("chaos: injected journal write error")
	s.FaultHook = func(op string) error { return injected }
	if err := s.Append(Record{Type: RecAccepted, JobID: "job-000001"}); !errors.Is(err, injected) {
		t.Fatalf("append under fault = %v, want injected error", err)
	}
	if len(s.Jobs()) != 0 {
		t.Error("failed append must not enter the fold")
	}
}

// TestAppendAfterClose fails loudly instead of journaling into the void.
func TestAppendAfterClose(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Type: RecAccepted, JobID: "x"}); err == nil {
		t.Fatal("append after close must error")
	}
}
