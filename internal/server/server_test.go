package server_test

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/host"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/power"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// randSrc mirrors the CLI's deterministic vector RNG so the in-process
// comparison run builds the exact workload the server builds.
func randSrc(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed + 1)) }

func powerEE() power.Mode { return power.EnergyEfficient }

// startServer boots a Server with its worker pool on an httptest listener.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort test teardown
	})
	return s, client.New(ts.URL)
}

// idleServer builds a Server whose worker pool is never started, so
// submitted jobs sit in the queue — the deterministic way to exercise
// admission control and queued-state behavior.
func idleServer(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

// TestJobLifecycleMatchesHost is the service's core guarantee: a job
// submitted over HTTP returns a Result identical (through a JSON round
// trip) to the equivalent in-process host.RunAdaptive call.
func TestJobLifecycleMatchesHost(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	req := server.JobRequest{Mode: "adaptive", Kernel: "spmspv", Matrix: "R04", Scale: "test"}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateQueued {
		t.Fatalf("submit state = %q, want queued", st.State)
	}

	var epochs int
	var sawRunning bool
	err = c.Stream(ctx, st.ID, func(ev server.Event) error {
		switch ev.Type {
		case "state":
			if ev.State == server.StateRunning {
				sawRunning = true
			}
		case "epoch":
			epochs++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !sawRunning {
		t.Error("stream never reported the running state")
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone || final.Result == nil {
		t.Fatalf("final = %+v, want done with result", final)
	}
	if epochs == 0 || epochs != final.Result.Epochs {
		t.Errorf("streamed %d epoch events, result says %d epochs", epochs, final.Result.Epochs)
	}

	// Reproduce the identical run in-process through the public host API.
	sc := experiments.TestScale()
	entry, err := matrix.Entry("R04")
	if err != nil {
		t.Fatal(err)
	}
	am := entry.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	x := matrix.RandomVec(randSrc(sc.Seed), a.Cols, 0.5)
	y, wl, err := kernels.SpMSpV(a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	off := host.Offload{
		Workload: wl,
		BytesIn:  host.InputBytes(a.NNZ(), a.Cols) + host.InputBytes(x.NNZ(), a.Cols),
		BytesOut: y.NNZ() * 12,
	}
	model, err := experiments.Model(sc, "spmspv", config.CacheMode, powerEE())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: sc.Epoch}
	r := host.NewRunner(sc.Chip, sc.BW, sc.Epoch)
	want, err := r.RunAdaptive(model, opts, config.Baseline, off)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.Host != want {
		t.Errorf("server result differs from host.RunAdaptive:\n got %+v\nwant %+v", final.Result.Host, want)
	}
}

// TestCacheHitReplaysTrace submits the same job twice and checks the
// second is served from the cache with the full epoch stream replayed.
func TestCacheHitReplaysTrace(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test"}

	first := submitAndWait(t, ctx, c, req)
	if first.CacheHit {
		t.Fatal("first run must not be a cache hit")
	}
	second := submitAndWait(t, ctx, c, req)
	if !second.CacheHit {
		t.Fatal("second identical run must be a cache hit")
	}
	if second.Result.Host != first.Result.Host || second.Result.Epochs != first.Result.Epochs {
		t.Errorf("cached result differs: %+v vs %+v", second.Result, first.Result)
	}
	epochs := 0
	if err := c.Stream(ctx, second.ID, func(ev server.Event) error {
		if ev.Type == "epoch" {
			epochs++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if epochs != first.Result.Epochs {
		t.Errorf("cache-hit stream replayed %d epochs, want %d", epochs, first.Result.Epochs)
	}
}

func submitAndWait(t *testing.T, ctx context.Context, c *client.Client, req server.JobRequest) server.JobStatus {
	t.Helper()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job %s ended %s: %s", st.ID, final.State, final.Error)
	}
	return final
}

// TestQueueFullRejects fills the admission queue of a server whose workers
// never start and checks the overflow submission gets 429 + Retry-After.
func TestQueueFullRejects(t *testing.T) {
	c := idleServer(t, server.Config{QueueDepth: 2})
	ctx := context.Background()
	req := server.JobRequest{Matrix: "R04"}
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, req); err != nil {
			t.Fatalf("submit %d within queue depth: %v", i, err)
		}
	}
	_, err := c.Submit(ctx, req)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("overflow submit error = %v, want APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", apiErr.StatusCode)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("429 must carry a Retry-After hint")
	}
}

// TestRateLimitRejects exhausts the per-client token bucket.
func TestRateLimitRejects(t *testing.T) {
	c := idleServer(t, server.Config{RatePerSec: 0.01, Burst: 1, QueueDepth: 16})
	ctx := context.Background()
	if _, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"}); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit = %v, want 429", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("rate-limit 429 must carry a Retry-After hint")
	}
}

// TestMalformedRequests covers the 400 surface: syntax errors, unknown
// fields, trailing data and semantic validation failures.
func TestMalformedRequests(t *testing.T) {
	c := idleServer(t, server.Config{})
	ts := c.Base
	for _, tc := range []struct {
		name, body string
	}{
		{"syntax", `{"mode":`},
		{"unknown-field", `{"mod":"adaptive"}`},
		{"trailing", `{"mode":"adaptive"}{"mode":"static"}`},
		{"bad-mode", `{"mode":"warp"}`},
		{"bad-matrix", `{"matrix":"nope"}`},
		{"exclusive-input", `{"matrix":"R04","matrix_market":"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n"}`},
		{"faults-wrong-mode", `{"faults":"nan=0.1"}`},
		{"count-wrong-mode", `{"count":3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestOversizedUploadRejected posts a body beyond MaxBodyBytes.
func TestOversizedUploadRejected(t *testing.T) {
	c := idleServer(t, server.Config{MaxBodyBytes: 1024})
	body := `{"matrix_market":"%%MatrixMarket matrix coordinate real general\n` + strings.Repeat("1 1 1.0\\n", 4096) + `"}`
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

// TestMatrixMarketUpload runs a job on an uploaded matrix body.
func TestMatrixMarketUpload(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	mm := "%%MatrixMarket matrix coordinate real general\n" +
		"4 4 6\n1 1 2.0\n2 2 3.0\n3 3 1.0\n4 4 4.0\n1 3 1.5\n4 1 0.5\n"
	final := submitAndWait(t, ctx, c, server.JobRequest{Mode: "static", MatrixMarket: mm})
	if final.Result.Epochs == 0 {
		t.Error("uploaded-matrix job produced no epochs")
	}
}

// TestSSEClientDisconnect cancels an event-stream subscription mid-stream
// and checks the server releases the subscriber (gauge back to zero).
func TestSSEClientDisconnect(t *testing.T) {
	c := idleServer(t, server.Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		done <- c.Stream(sctx, st.ID, func(server.Event) error { return nil })
	}()
	// Let the subscription register, then drop the client.
	waitMetric(t, c, "server_sse_clients 1")
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("stream error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after client disconnect")
	}
	waitMetric(t, c, "server_sse_clients 0")
}

// waitMetric polls /metrics until the exposition contains line, proving
// the server reached the expected state.
func waitMetric(t *testing.T, c *client.Client, line string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		text, err := c.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(text, line) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never contained %q", line)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelQueuedJob cancels a job before any worker picks it up.
func TestCancelQueuedJob(t *testing.T) {
	c := idleServer(t, server.Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != server.StateCanceled {
		t.Fatalf("state after cancel = %q, want canceled", got.State)
	}
	if _, err := c.Cancel(ctx, st.ID); err == nil {
		t.Error("second cancel of a terminal job must conflict")
	}
}

// TestDrainCompletesInflight submits jobs, drains, and checks every job
// reached a terminal state and post-drain submissions are refused.
func TestDrainCompletesInflight(t *testing.T) {
	s, c := startServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, server.JobRequest{Mode: "static", Matrix: "R04"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, err := c.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Errorf("job %s after drain: %s (%s), want done", id, st.State, st.Error)
		}
	}
	_, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %v, want 503", err)
	}
}

// TestProbesAndInventory covers the operational endpoints.
func TestProbesAndInventory(t *testing.T) {
	s, c := startServer(t, server.Config{Workers: 1})
	ctx := context.Background()
	for _, path := range []string{"/healthz", "/readyz", "/version", "/metrics", "/debug/pprof/cmdline"} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	ds, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(matrix.Dataset) {
		t.Errorf("datasets = %d entries, want %d", len(ds), len(matrix.Dataset))
	}
	v, err := c.Version(ctx)
	if err != nil || !strings.Contains(v, "sparseadaptd") {
		t.Errorf("version = %q, %v", v, err)
	}
	// Readiness flips once draining.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}
