package server_test

// Multi-tenant admission tests: the X-Tenant-ID/tenant-field surface, the
// per-tenant 429 contract (own Retry-After, no global slot consumed), the
// queued-cancel slot release, and a -race soak with three tenants of mixed
// priority under chaos injection asserting zero starvation and quota
// conservation (every admitted slot comes back).

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparseadapt/internal/fault"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
	"sparseadapt/internal/tenant"
)

// startTenantServer is startServer plus direct access to the base URL for
// raw header-level requests. Leaving start false keeps the worker pool
// idle, so queued jobs hold their tenant slots deterministically.
func startTenantServer(t *testing.T, cfg server.Config, start bool) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if start {
		s.Start()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Drain(ctx) //nolint:errcheck // best-effort test teardown
		})
	}
	return s, ts
}

func postJob(t *testing.T, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTenantQuotaAdmission(t *testing.T) {
	_, ts := startTenantServer(t, server.Config{
		QueueDepth:  16,
		TenantQuota: tenant.Quota{MaxInflight: 1},
	}, false)

	// The tenant may arrive via the X-Tenant-ID header; the server copies
	// it into the request so forwarding and status reads carry it, and the
	// priority defaults to batch.
	resp := postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test"}`,
		map[string]string{"X-Tenant-ID": "acme"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("header submit: %d", resp.StatusCode)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Request.Tenant != "acme" || st.Request.Priority != "batch" {
		t.Fatalf("tenant/priority not adopted: %+v", st.Request)
	}

	// Second job exceeds MaxInflight=1: per-tenant 429 with the tenant's
	// own Retry-After (no history yet → the 1s floor, not the global queue
	// hint).
	resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test","tenant":"acme"}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want tenant floor \"1\"", ra)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || !strings.Contains(apiErr.Error, "tenant") {
		t.Fatalf("429 body: %q, %v", apiErr.Error, err)
	}

	// The tenant rejection consumed no global capacity: a tenant-less
	// submission and another tenant both still get in.
	if resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test"}`, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-less submit after tenant 429: %d", resp.StatusCode)
	}
	if resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test","tenant":"zeta","priority":"interactive"}`, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant submit: %d", resp.StatusCode)
	}

	// Malformed tenant metadata is rejected before admission.
	if resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test","tenant":"acme","priority":"platinum"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: %d", resp.StatusCode)
	}
	if resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test","priority":"batch"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("priority without tenant: %d", resp.StatusCode)
	}

	// /v1/tenants reports both tenants, sorted, with acme's rejection.
	var snaps []tenant.TenantSnapshot
	r2, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].ID != "acme" || snaps[1].ID != "zeta" {
		t.Fatalf("tenants snapshot: %+v", snaps)
	}
	if snaps[0].Inflight != 1 || snaps[0].RejectedQuota != 1 || snaps[0].Class != "batch" {
		t.Fatalf("acme snapshot: %+v", snaps[0])
	}
	if snaps[1].Class != "interactive" {
		t.Fatalf("zeta snapshot: %+v", snaps[1])
	}

	// Canceling acme's queued job frees its slot even though the Finished
	// hook never fires for queued cancels.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", r3.StatusCode)
	}
	if resp = postJob(t, ts.URL, `{"mode":"static","matrix":"R04","scale":"test","tenant":"acme"}`, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit: %d", resp.StatusCode)
	}
}

// TestTenantSoak runs three tenants of mixed priority against a chaotic
// server (first attempts fail, journal writes error, cache entries corrupt)
// and asserts the two multi-tenant invariants: zero starvation (every
// tenant finishes every job, scavenger included) and quota conservation
// (no inflight slot leaks; admitted == finished once the dust settles).
func TestTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("tenant soak")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	inj := fault.NewChaos(fault.ChaosSpec{
		FailFirst: 1, JournalErr: 0.05, CacheCorrupt: 0.2, Seed: 77,
	})
	srv, ts := startTenantServer(t, server.Config{
		Workers: 3, QueueDepth: 64, StoreDir: t.TempDir(), CacheDir: t.TempDir(),
		MaxAttempts: 3,
		// FailFirst=1 + a 20ms retry floor give every job a guaranteed
		// minimum runtime, so back-to-back submission reliably presses each
		// tenant's inflight depth against MaxInflight.
		RetryBaseDelay: 20 * time.Millisecond, RetryMaxDelay: 40 * time.Millisecond,
		// Every first attempt fails by design; the breaker would correctly
		// shed under that, which is not what this test probes.
		BreakerThreshold: 2,
		Chaos:            inj,
		TenantQuota:      tenant.Quota{MaxInflight: 2, RatePerSec: 500, Burst: 4},
	}, true)

	tenants := []struct {
		id, prio string
	}{
		{"alice", "interactive"},
		{"bob", "batch"},
		{"carol", "scavenger"},
	}
	const jobsPerTenant = 8

	var wg sync.WaitGroup
	var mu sync.Mutex
	done := map[string]int{}
	for ti, tn := range tenants {
		wg.Add(1)
		go func(ti int, id, prio string) {
			defer wg.Done()
			c := client.New(ts.URL)
			// Tight submission against MaxInflight=2 guarantees tenant
			// 429s; the retry policy follows the server's hint, capped so
			// the soak stays fast.
			c.Retry = client.RetryPolicy{Max: 400, BaseWait: 2 * time.Millisecond, MaxWait: 20 * time.Millisecond}
			// Submit everything up front so the tenant's inflight depth
			// actually presses against MaxInflight; then wait for the lot.
			ids := make([]string, 0, jobsPerTenant)
			for i := 0; i < jobsPerTenant; i++ {
				req := server.JobRequest{
					Mode: "static", Matrix: "R04", Scale: "test",
					Seed: int64(100*ti + i), Tenant: id, Priority: prio,
				}
				st, err := c.Submit(ctx, req)
				if err != nil {
					t.Errorf("%s submit %d: %v", id, i, err)
					return
				}
				ids = append(ids, st.ID)
			}
			for i, jid := range ids {
				final, err := c.Wait(ctx, jid)
				if err != nil {
					t.Errorf("%s wait %d: %v", id, i, err)
					return
				}
				if final.State != server.StateDone {
					t.Errorf("%s job %d ended %s: %s", id, i, final.State, final.Error)
				}
				mu.Lock()
				done[id]++
				mu.Unlock()
			}
		}(ti, tn.id, tn.prio)
	}
	wg.Wait()

	for _, tn := range tenants {
		if done[tn.id] != jobsPerTenant {
			t.Errorf("starvation: tenant %s finished %d/%d jobs", tn.id, done[tn.id], jobsPerTenant)
		}
	}
	// A job's terminal state becomes pollable a moment before the Finished
	// hook releases its tenant slot, so give the accounting a bounded
	// window to settle before asserting conservation.
	settle := time.Now().Add(5 * time.Second)
	for srv.Tenants().Active() != 0 && time.Now().Before(settle) {
		time.Sleep(5 * time.Millisecond)
	}
	rejected := int64(0)
	for _, snap := range srv.Tenants().Snapshot() {
		rejected += snap.RejectedQuota + snap.RejectedRate
		if snap.Inflight != 0 {
			t.Errorf("tenant %s leaked %d inflight slots", snap.ID, snap.Inflight)
		}
		if snap.Admitted != snap.Finished {
			t.Errorf("tenant %s admitted %d != finished %d", snap.ID, snap.Admitted, snap.Finished)
		}
		if snap.AvgJobSec <= 0 {
			t.Errorf("tenant %s has no residence EWMA; Retry-After hints would stay at the floor", snap.ID)
		}
	}
	if rejected == 0 {
		t.Error("soak never hit a tenant quota; MaxInflight=2 should have rejected under 8-deep submission")
	}
	if srv.Tenants().Active() != 0 {
		t.Errorf("tenants still active after drain: %d", srv.Tenants().Active())
	}
}
