package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"sparseadapt/internal/fault"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// resultJSON canonicalizes a job result for byte-for-byte comparison
// across servers (the Trace field is excluded from JSON by design, so this
// is exactly the payload a client sees).
func resultJSON(t *testing.T, st server.JobStatus) string {
	t.Helper()
	if st.Result == nil {
		t.Fatalf("job %s has no result", st.ID)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRecoveryRequeuesInterruptedJobs is the crash-recovery contract: jobs
// accepted (journaled) but never executed — the daemon "died" with them
// queued — are re-queued on the next boot, run to completion, and produce
// results byte-for-byte identical to an uninterrupted run.
func TestRecoveryRequeuesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	reqs := []server.JobRequest{
		{Mode: "static", Matrix: "R04", Scale: "test"},
		{Mode: "static", Matrix: "R04", Scale: "test", Seed: 99},
	}

	// Uninterrupted reference run on a plain server.
	_, ref := startServer(t, server.Config{Workers: 1})
	var want []string
	for _, req := range reqs {
		want = append(want, resultJSON(t, submitAndWait(t, ctx, ref, req)))
	}

	// "Crash": a durable server accepts the jobs but its worker pool never
	// starts, and the process state is simply abandoned — exactly what
	// kill -9 leaves behind: accepted records in the journal, no terminal
	// records.
	c1 := idleServer(t, server.Config{StoreDir: dir})
	for i, req := range reqs {
		st, err := c1.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st.State != server.StateQueued {
			t.Fatalf("submit %d state = %q", i, st.State)
		}
	}

	// Reboot on the same journal.
	s2, c2 := startServer(t, server.Config{Workers: 2, StoreDir: dir})
	if got := s2.Recovered(); got != len(reqs) {
		t.Fatalf("recovered %d jobs, want %d", got, len(reqs))
	}
	for i := range reqs {
		id := jobID(i + 1)
		final, err := c2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.State != server.StateDone {
			t.Fatalf("%s ended %s: %s", id, final.State, final.Error)
		}
		if !final.Recovered {
			t.Errorf("%s does not carry the recovered flag", id)
		}
		if got := resultJSON(t, final); got != want[i] {
			t.Errorf("%s result differs from uninterrupted run:\n got %s\nwant %s", id, got, want[i])
		}
	}

	// New submissions must continue the ID sequence past every journaled
	// job, not collide with recovered ones.
	st, err := c2.Submit(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != jobID(len(reqs)+1) {
		t.Errorf("post-recovery submit got ID %s, want %s", st.ID, jobID(len(reqs)+1))
	}
}

func jobID(n int) string { return fmt.Sprintf("job-%06d", n) }

// TestRecoveryResurfacesTerminalJobs: after a clean shutdown, finished
// jobs reappear with their persisted results and sealed event streams —
// a restart does not amnesia the job history.
func TestRecoveryResurfacesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s1, c1 := startServer(t, server.Config{Workers: 1, StoreDir: dir})
	first := submitAndWait(t, ctx, c1, server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test"})
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, c2 := startServer(t, server.Config{Workers: 1, StoreDir: dir})
	if got := s2.Recovered(); got != 0 {
		t.Fatalf("clean shutdown left %d jobs to recover, want 0", got)
	}
	st, err := c2.Get(ctx, first.ID)
	if err != nil {
		t.Fatalf("get resurfaced job: %v", err)
	}
	if st.State != server.StateDone || !st.Recovered {
		t.Fatalf("resurfaced job = state %s recovered %v, want done/true", st.State, st.Recovered)
	}
	if got := resultJSON(t, st); got != resultJSON(t, first) {
		t.Errorf("resurfaced result differs:\n got %s\nwant %s", got, resultJSON(t, first))
	}
	// The sealed event stream must replay a terminal event and end.
	final, err := c2.Wait(ctx, first.ID)
	if err != nil {
		t.Fatalf("wait on resurfaced job: %v", err)
	}
	if final.State != server.StateDone {
		t.Errorf("resurfaced stream ended %s", final.State)
	}
}

// TestJournalFailureShedsSubmission: when the acceptance record cannot be
// committed, the client gets a 503 (with Retry-After) and the job is fully
// withdrawn — a job is durable if and only if the client saw 202.
func TestJournalFailureShedsSubmission(t *testing.T) {
	// journal-err=1 fails every journal write, including the acceptance
	// record (store.Open itself does not write, so New succeeds).
	c := idleServer(t, server.Config{
		StoreDir: t.TempDir(),
		Chaos:    fault.NewChaos(fault.ChaosSpec{JournalErr: 1, Seed: 1}),
	})
	_, err := c.Submit(context.Background(), server.JobRequest{Matrix: "R04"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with broken journal = %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("journal-failure 503 must carry Retry-After")
	}
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("withdrawn job still listed: %+v", jobs)
	}
}
