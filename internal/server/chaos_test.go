package server_test

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"sparseadapt/internal/fault"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
	"sparseadapt/internal/server/store"
)

// TestChaosMidEpochKillRetriesByteIdentical: a job killed mid-epoch on its
// first attempt is retried and its final result is byte-for-byte identical
// to an uninterrupted run — the acceptance bar for the whole retry path.
func TestChaosMidEpochKillRetriesByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test"}

	// Chaos decisions are pure hashes of (seed, job, attempt), so scan for
	// a seed that kills job-000001 early on attempt 1 and spares attempt 2
	// — a deterministic "die mid-run once, then recover" script.
	spec := fault.ChaosSpec{KillEpoch: 0.5}
	for s := int64(1); ; s++ {
		if s > 5000 {
			t.Fatal("no suitable chaos seed in 5000 (hash stream broken?)")
		}
		spec.Seed = s
		probe := fault.NewChaos(spec)
		if e, ok := probe.KillAtEpoch("job-000001", 1); !ok || e != 1 {
			continue
		}
		if _, ok := probe.KillAtEpoch("job-000001", 2); !ok {
			break
		}
	}

	_, ref := startServer(t, server.Config{Workers: 1})
	want := resultJSON(t, submitAndWait(t, ctx, ref, req))

	_, c := startServer(t, server.Config{
		Workers: 1, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		BreakerThreshold: 2, // keep the breaker out of this test
		Chaos:            fault.NewChaos(spec),
	})
	final := submitAndWait(t, ctx, c, req)
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (killed once, then clean)", final.Attempts)
	}
	if got := resultJSON(t, final); got != want {
		t.Errorf("post-retry result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	// The stream must carry the retry event naming the injected kill.
	sawRetry := false
	if err := c.Stream(ctx, final.ID, func(ev server.Event) error {
		if ev.Type == "retry" {
			sawRetry = true
			if ev.Attempt != 1 || !strings.Contains(ev.Error, "chaos") {
				t.Errorf("retry event = attempt %d error %q", ev.Attempt, ev.Error)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawRetry {
		t.Error("stream carried no retry event")
	}
}

// TestChaosQuarantineAfterMaxAttempts: a poison job burns its whole retry
// budget and lands in quarantine, visible in status, stream and metrics.
func TestChaosQuarantineAfterMaxAttempts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, c := startServer(t, server.Config{
		Workers: 1, MaxAttempts: 2,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		BreakerThreshold: 2,
		Chaos:            fault.NewChaos(fault.ChaosSpec{Poison: 1, Seed: 3}),
	})
	st, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateQuarantined {
		t.Fatalf("poison job ended %s (%s), want quarantined", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want MaxAttempts = 2", final.Attempts)
	}
	if !strings.Contains(final.Error, "quarantined after 2 failed attempts") {
		t.Errorf("error %q does not explain the quarantine", final.Error)
	}
	waitMetric(t, c, "server_jobs_quarantined_total 1")
	waitMetric(t, c, "server_job_retries_total 1")
}

// TestChaosBreakerShedsWhenExecutionMeltsDown: sustained attempt failures
// open the breaker — new submissions get 503 + Retry-After and /readyz
// fails while /healthz stays ok.
func TestChaosBreakerShedsWhenExecutionMeltsDown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, c := startServer(t, server.Config{
		Workers: 1, MaxAttempts: 1,
		BreakerWindow: 3, BreakerThreshold: 0.5, BreakerCooldown: time.Minute,
		Chaos: fault.NewChaos(fault.ChaosSpec{Poison: 1, Seed: 5}),
	})
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
		if err != nil {
			t.Fatalf("submit %d (breaker should still be closed): %v", i, err)
		}
		if final, err := c.Wait(ctx, st.ID); err != nil || final.State != server.StateQuarantined {
			t.Fatalf("job %d = %v state %s, want quarantined", i, err, final.State)
		}
	}
	waitMetric(t, c, "server_breaker_open 1")
	waitMetric(t, c, "server_breaker_trips_total 1")

	_, err := c.Submit(ctx, server.JobRequest{Matrix: "R04"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with open breaker = %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("breaker 503 must carry Retry-After")
	}
	if !strings.Contains(apiErr.Message, "circuit breaker") {
		t.Errorf("breaker rejection message %q does not name the breaker", apiErr.Message)
	}

	ready, err := http.Get(c.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz with open breaker = %d, want 503", ready.StatusCode)
	}
	if ready.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 must carry Retry-After")
	}
	healthy, err := http.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthy.Body.Close()
	if healthy.StatusCode != http.StatusOK {
		t.Errorf("/healthz with open breaker = %d; liveness must not fail", healthy.StatusCode)
	}
}

// TestChaosCacheCorruptionCostsWorkNotCorrectness: a corrupted disk cache
// entry is detected by the checksum on the next read and recomputed — the
// injected bit rot costs a cache miss, never a wrong result.
func TestChaosCacheCorruptionCostsWorkNotCorrectness(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test"}
	_, c := startServer(t, server.Config{
		Workers: 1, CacheDir: t.TempDir(), BreakerThreshold: 2,
		Chaos: fault.NewChaos(fault.ChaosSpec{CacheCorrupt: 1, Seed: 7}),
	})
	first := submitAndWait(t, ctx, c, req)
	second := submitAndWait(t, ctx, c, req)
	if second.CacheHit {
		t.Error("corrupted cache entry served as a hit")
	}
	if resultJSON(t, second) != resultJSON(t, first) {
		t.Errorf("recomputed result differs:\n got %s\nwant %s",
			resultJSON(t, second), resultJSON(t, first))
	}
}

// TestChaosSoak floods a durable server with jobs under simultaneous chaos
// — forced first-attempt failures, poison jobs, journal write errors and
// stalls, disk-cache corruption — and asserts the exact robustness
// contract: zero jobs lost, zero duplicated, zero wrong results, and
// quarantine hits precisely the deliberately poisoned set.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	spec := fault.ChaosSpec{
		FailFirst: 1, Poison: 0.2,
		JournalErr: 0.05, JournalSlow: 0.1, SlowMs: 1,
		CacheCorrupt: 0.3, Seed: 1234,
	}
	dir := t.TempDir()
	inj := fault.NewChaos(spec)
	srv, c := startServer(t, server.Config{
		Workers: 3, QueueDepth: 64, StoreDir: dir, CacheDir: t.TempDir(),
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		// Half of all first attempts fail by design; the breaker would
		// (correctly) shed under that, which is not what this test probes.
		BreakerThreshold: 2,
		Chaos:            inj,
	})
	// An oracle injector with the same spec makes the same decisions
	// (fault.TestChaosDeterminism), so the test can predict per-job fates.
	oracle := fault.NewChaos(spec)
	// Journal errors can shed a submission with 503; the client retry
	// policy absorbs that, exactly as a production client would.
	c.Retry = client.RetryPolicy{Max: 10, BaseWait: time.Millisecond, MaxWait: 10 * time.Millisecond}

	const n = 16
	accepted := make(map[string]server.JobRequest, n)
	var order []string
	for i := 0; i < n; i++ {
		req := server.JobRequest{Mode: "static", Matrix: "R04", Scale: "test", Seed: int64(1000 + i)}
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		accepted[st.ID] = req
		order = append(order, st.ID)
	}

	poisoned := 0
	results := make(map[string]string, n)
	for _, id := range order {
		final, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if oracle.Poisoned(id) {
			poisoned++
			if final.State != server.StateQuarantined {
				t.Errorf("poisoned %s ended %s, want quarantined", id, final.State)
			}
			if final.Attempts != 3 {
				t.Errorf("poisoned %s used %d attempts, want MaxAttempts = 3", id, final.Attempts)
			}
			continue
		}
		// fail-first=1: every healthy job fails exactly its first attempt.
		if final.State != server.StateDone {
			t.Errorf("healthy %s ended %s: %s", id, final.State, final.Error)
			continue
		}
		if final.Attempts != 2 {
			t.Errorf("healthy %s used %d attempts, want 2 under fail-first=1", id, final.Attempts)
		}
		results[id] = resultJSON(t, final)
	}
	if poisoned == 0 {
		t.Fatal("poison=0.2 over 16 jobs poisoned none; weak soak")
	}
	// The injector's ledger proves the damage was real, not vacuously
	// survived: every job's first attempt panicked (fail-first=1), and the
	// disk cache took corruption hits.
	counts := inj.Counts()
	if counts.ExecPanics < int64(n) {
		t.Errorf("only %d exec panics fired across %d jobs under fail-first=1", counts.ExecPanics, n)
	}
	if counts.CacheCorrupts == 0 {
		t.Error("cache-corrupt=0.3 never fired")
	}
	t.Logf("soak: %d jobs, %d poisoned/quarantined, chaos counts %+v", n, poisoned, counts)

	// Zero duplicated: the server retains exactly the accepted jobs, once.
	listed, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, st := range listed {
		if seen[st.ID] {
			t.Errorf("job %s listed twice", st.ID)
		}
		seen[st.ID] = true
	}
	if len(listed) != len(accepted) {
		t.Errorf("listed %d jobs, accepted %d", len(listed), len(accepted))
	}

	// Zero wrong results: every completed job matches a chaos-free run of
	// the same request on a pristine server.
	_, ref := startServer(t, server.Config{Workers: 2})
	for id, req := range accepted {
		want, ok := results[id]
		if !ok {
			continue // poisoned
		}
		if got := resultJSON(t, submitAndWait(t, ctx, ref, req)); got != want {
			t.Errorf("%s result differs from chaos-free run:\n got %s\nwant %s", id, want, got)
		}
	}

	// Zero lost across a restart: shut down, then fold the journal the way
	// the next boot would. Every accepted job must still be there; journal
	// chaos may have eaten a terminal record (it is best-effort by design),
	// which only demotes that job to re-executable — never loses it.
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close() //nolint:errcheck // chaos may fail the final compaction; the journal stays authoritative
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopening journal after soak: %v", err)
	}
	defer st.Close() //nolint:errcheck
	folded := map[string]store.JobState{}
	for _, js := range st.Jobs() {
		folded[js.ID] = js
	}
	for id := range accepted {
		js, ok := folded[id]
		if !ok {
			t.Errorf("job %s lost from the journal", id)
			continue
		}
		if js.Terminal() && js.State == store.StateDone && len(js.Result) == 0 {
			t.Errorf("done job %s journaled without its result", id)
		}
	}
	if len(folded) != len(accepted) {
		t.Errorf("journal folds %d jobs, accepted %d", len(folded), len(accepted))
	}
}
