package server

import "sparseadapt/internal/sched"

// The wire types and job lifecycle vocabulary moved to the
// transport-agnostic scheduling core (internal/sched) when the cluster
// layer was introduced; these aliases keep the server package's historical
// API surface — used by the client, the CLI and the test suites — intact.

// The run modes a job can request. See sched.ModeStatic et al.
const (
	ModeStatic    = sched.ModeStatic
	ModeAdaptive  = sched.ModeAdaptive
	ModeResilient = sched.ModeResilient
	ModeBatch     = sched.ModeBatch
)

// Job lifecycle states. See sched.StateQueued et al.
const (
	StateQueued      = sched.StateQueued
	StateRunning     = sched.StateRunning
	StateDone        = sched.StateDone
	StateFailed      = sched.StateFailed
	StateCanceled    = sched.StateCanceled
	StateQuarantined = sched.StateQuarantined
)

// JobRequest is the POST /v1/jobs body. Alias of sched.JobRequest.
type JobRequest = sched.JobRequest

// JobResult is a finished job's payload. Alias of sched.JobResult.
type JobResult = sched.JobResult

// JobStatus is the GET /v1/jobs/{id} body and the submit response. Alias
// of sched.JobStatus.
type JobStatus = sched.JobStatus

// Event is one entry of a job's SSE stream. Alias of sched.Event.
type Event = sched.Event

// DecodeJobRequest parses and validates a JSON job request body (the
// fuzzed decoding surface of the server).
func DecodeJobRequest(data []byte) (JobRequest, error) {
	return sched.DecodeJobRequest(data)
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
