package server

import (
	"math"
	"net"
	"sync"
	"time"
)

// rateLimiter is the per-client admission throttle: one token bucket per
// client key (the request's remote IP), refilled continuously at rate
// tokens/second up to burst. Buckets idle for more than an hour are
// pruned, so the map stays bounded by the active client set.
type rateLimiter struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	sweep   time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// clientKey reduces a RemoteAddr to its host part, so all connections from
// one client share a bucket regardless of ephemeral port.
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

// allow consumes one token from the client's bucket. When the bucket is
// empty it reports false and how long until the next token accrues — the
// Retry-After hint.
func (rl *rateLimiter) allow(client string, now time.Time) (bool, time.Duration) {
	if rl == nil || rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if now.Sub(rl.sweep) > time.Hour {
		for k, b := range rl.buckets {
			if now.Sub(b.last) > time.Hour {
				delete(rl.buckets, k)
			}
		}
		rl.sweep = now
	}
	b, ok := rl.buckets[client]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}
