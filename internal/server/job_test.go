package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparseadapt/internal/fault"
)

// TestRequestCancelIdempotent repeats a cancel against a running job — the
// shape of a client retrying DELETE, or Drain's deadline cancel-all racing
// a client cancel. A running job stays StateRunning after the first
// cancel, so a non-idempotent close of cancelCh would panic here.
func TestRequestCancelIdempotent(t *testing.T) {
	j := newJob("job-000001", JobRequest{}, time.Now())
	if got := j.start(func() {}, time.Now()); got != 1 {
		t.Fatalf("start = attempt %d, want 1", got)
	}
	if !j.requestCancel() {
		t.Fatal("first cancel of a running job must be acknowledged")
	}
	if !j.requestCancel() {
		t.Fatal("second cancel of a still-running job must be acknowledged")
	}
	// Once the worker finalizes the job, further cancels report terminal.
	j.finish(nil, false, context.Canceled, false, time.Now())
	if j.requestCancel() {
		t.Error("cancel of a terminal job must report false")
	}
}

// TestJournalFailureKeepsQueueConsistent submits against a live worker
// pool whose journal rejects every write. The job must never reach the
// queue: no worker may dequeue it (running a job the client was told was
// not accepted) and the queue-depth gauge must stay balanced at zero
// rather than going negative from an unmatched decrement.
func TestJournalFailureKeepsQueueConsistent(t *testing.T) {
	s, err := New(Config{
		Workers:  2,
		StoreDir: t.TempDir(),
		Chaos:    fault.NewChaos(fault.ChaosSpec{JournalErr: 1, Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // test teardown
	}()

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"matrix":"R04"}`))
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with broken journal = %d, want 503", rr.Code)
	}

	// Give a worker a moment to (incorrectly) pick the job up if it was
	// ever enqueued, then check nothing moved.
	time.Sleep(50 * time.Millisecond)
	if n := len(s.queue); n != 0 {
		t.Errorf("withdrawn job left %d entries in the queue", n)
	}
	if got := s.met.queueDepth.Load(); got != 0 {
		t.Errorf("server_queue_depth = %v after withdrawn submission, want 0", got)
	}
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	if jobs != 0 {
		t.Errorf("withdrawn job still tracked (%d jobs)", jobs)
	}
}
