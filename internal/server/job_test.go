package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparseadapt/internal/fault"
	"sparseadapt/internal/obs"
)

// TestJournalFailureKeepsQueueConsistent submits against a live worker
// pool whose journal rejects every write. The job must never reach the
// queue: no worker may dequeue it (running a job the client was told was
// not accepted) and the queue-depth gauge must stay balanced at zero
// rather than going negative from an unmatched decrement.
func TestJournalFailureKeepsQueueConsistent(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Workers:  2,
		StoreDir: t.TempDir(),
		Chaos:    fault.NewChaos(fault.ChaosSpec{JournalErr: 1, Seed: 1}),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // test teardown
	}()

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"matrix":"R04"}`))
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with broken journal = %d, want 503", rr.Code)
	}

	// Give a worker a moment to (incorrectly) pick the job up if it was
	// ever enqueued, then check nothing moved.
	time.Sleep(50 * time.Millisecond)
	if n := s.sch.QueueLen(); n != 0 {
		t.Errorf("withdrawn job left %d entries in the queue", n)
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "server_queue_depth" && m.Value != 0 {
			t.Errorf("server_queue_depth = %v after withdrawn submission, want 0", m.Value)
		}
	}
	if jobs := s.sch.List(); len(jobs) != 0 {
		t.Errorf("withdrawn job still tracked (%d jobs)", len(jobs))
	}
}

// TestRequestIDThreading: a client-supplied X-Request-ID must be echoed in
// the response header, surfaced in the job status, and stamped on every
// SSE event; an invalid one must be rejected at the door.
func TestRequestIDThreading(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // test teardown
	}()

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"matrix":"R04"}`))
	req.Header.Set("X-Request-ID", "trace-me-42")
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("response X-Request-ID = %q, want trace-me-42", got)
	}
	if !strings.Contains(rr.Body.String(), `"request_id": "trace-me-42"`) {
		t.Errorf("submit body lacks request_id: %s", rr.Body)
	}

	// A generated ID appears when the client sends none.
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"matrix":"R04"}`)))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", got)
	}

	// Invalid IDs are a 400, not silently replaced.
	for _, bad := range []string{strings.Repeat("x", 65), "has space", "ctrl\x01char", "ünïcode"} {
		rr = httptest.NewRecorder()
		req = httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"matrix":"R04"}`))
		req.Header.Set("X-Request-ID", bad)
		s.Handler().ServeHTTP(rr, req)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("submit with X-Request-ID %q = %d, want 400", bad, rr.Code)
		}
	}
}
